"""Quickstart: run wafer-scale MD on a tantalum slab and check physics.

Builds a thin tantalum slab (the paper's benchmark geometry, scaled
down), maps it one-atom-per-core onto a simulated WSE, runs 100
timesteps, and compares against the reference MD engine — then reports
the modeled full-wafer timestep rate.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core import CycleCostModel
from repro.potentials.elements import ELEMENTS
from repro.units import simulated_time_per_day_us


def main() -> None:
    element = "Ta"
    reps = (10, 10, 3)

    print(f"Building {element} thin slab {reps} and mapping it to the wafer...")
    wse = repro.quick_wse_simulation(element, reps=reps, temperature=290.0)
    ref = repro.quick_reference_simulation(element, reps=reps,
                                           temperature=290.0)
    print(f"  atoms: {wse.n_atoms}")
    print(f"  core grid: {wse.grid.nx} x {wse.grid.ny} "
          f"({wse.n_atoms / wse.grid.n_tiles:.0%} occupied)")
    print(f"  assignment cost C(g): {wse.assignment_cost():.2f} A")
    print(f"  neighborhood half-width b: {wse.b} "
          f"({(2 * wse.b + 1) ** 2 - 1} candidates)")

    n_steps = 100
    print(f"\nRunning {n_steps} timesteps on both engines (dt = 2 fs)...")
    wse.step(n_steps)
    ref.run(n_steps)

    out = wse.gather_state()
    err = np.abs(out.positions - ref.state.positions).max()
    print(f"  max |WSE - reference| position deviation: {err:.2e} A")
    print(f"  temperature: {out.temperature():.0f} K")

    mean_cand, mean_int = wse.mean_counts()
    print(f"\nPer-atom work: {mean_cand:.0f} candidates, "
          f"{mean_int:.1f} interactions")
    print(f"Modeled WSE-2 rate for this workload: "
          f"{wse.measured_rate():,.0f} timesteps/s")

    # the paper's full 801,792-atom benchmark, through the same model
    el = ELEMENTS[element]
    model = CycleCostModel()
    rate = model.steps_per_second(el.candidates, el.interactions,
                                  el.neighborhood_b)
    per_day = simulated_time_per_day_us(rate, 2.0)
    print(f"\nFull Table-I workload ({el.n_atoms_table1:,} atoms, "
          f"{el.candidates}/{el.interactions} cand/int):")
    print(f"  predicted rate: {rate:,.0f} timesteps/s "
          f"(paper measured: 274,016)")
    print(f"  simulated time per wall-clock day: {per_day:.1f} us")


if __name__ == "__main__":
    main()
