"""Quickstart: run wafer-scale MD on a tantalum slab and check physics.

One declarative ``RunSpec`` describes the workload (the paper's
benchmark geometry, scaled down); the runtime factory builds it on the
simulated WSE *and* the reference MD engine, both engines run 100
timesteps through the same ``Runner``, and the trajectories are
compared — then the modeled full-wafer timestep rate is reported.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CycleCostModel
from repro.potentials.elements import ELEMENTS
from repro.runtime import RunSpec, Runner
from repro.units import simulated_time_per_day_us


def main() -> None:
    spec = RunSpec(
        element="Ta", reps=(10, 10, 3), temperature=290.0,
        engine="wse", steps=100, seed=0,
    )

    print(f"Building {spec.element} thin slab {spec.reps} and mapping it "
          "to the wafer...")
    wse_runner = Runner.from_spec(spec)
    ref_runner = Runner.from_spec(spec.with_engine("reference"))
    wse = wse_runner.engine.sim
    print(f"  atoms: {wse.n_atoms}")
    print(f"  core grid: {wse.grid.nx} x {wse.grid.ny} "
          f"({wse.n_atoms / wse.grid.n_tiles:.0%} occupied)")
    print(f"  assignment cost C(g): {wse.assignment_cost():.2f} A")
    print(f"  neighborhood half-width b: {wse.b} "
          f"({(2 * wse.b + 1) ** 2 - 1} candidates)")

    print(f"\nRunning {spec.steps} timesteps on both engines "
          f"(dt = {spec.dt_fs:.0f} fs, one Runner path)...")
    wse_runner.run()
    ref_runner.run()

    out = wse_runner.engine.state
    ref = ref_runner.engine.state
    err = np.abs(out.positions - ref.positions).max()
    print(f"  max |WSE - reference| position deviation: {err:.2e} A")
    print(f"  temperature: {out.temperature():.0f} K")

    mean_cand, mean_int = wse.mean_counts()
    print(f"\nPer-atom work: {mean_cand:.0f} candidates, "
          f"{mean_int:.1f} interactions")
    print(f"Modeled WSE-2 rate for this workload: "
          f"{wse.measured_rate():,.0f} timesteps/s")

    # the paper's full 801,792-atom benchmark, through the same model
    el = ELEMENTS[spec.element]
    model = CycleCostModel()
    rate = model.steps_per_second(el.candidates, el.interactions,
                                  el.neighborhood_b)
    per_day = simulated_time_per_day_us(rate, 2.0)
    print(f"\nFull Table-I workload ({el.n_atoms_table1:,} atoms, "
          f"{el.candidates}/{el.interactions} cand/int):")
    print(f"  predicted rate: {rate:,.0f} timesteps/s "
          f"(paper measured: 274,016)")
    print(f"  simulated time per wall-clock day: {per_day:.1f} us")


if __name__ == "__main__":
    main()
