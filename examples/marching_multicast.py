"""Inside the fabric: the marching multicast, wavelet by wavelet.

Drives the event-level router simulation (paper Fig. 3/4) on a small
chain, printing the systolic schedule's roles per phase, verifying
exactly-once delivery, and comparing the measured cycle count with the
closed-form model the full-machine simulator uses.

Run:  python examples/marching_multicast.py
"""

from repro.wse.fabric import ChainFabric
from repro.wse.machine import WSE2
from repro.wse.multicast import (
    MarchingMulticastSchedule,
    exchange_cycle_model,
    stage_cycles,
)


def main() -> None:
    b, n_tiles, vector_len = 3, 13, 3  # 3-word atom positions

    sched = MarchingMulticastSchedule(b=b)
    print(f"Marching multicast: b = {b}, strip width = {sched.strip_width}, "
          f"{sched.n_phases} phases\n")
    print("Role of each column per phase (H = head, b = body, T = tail):")
    for phase in range(sched.n_phases):
        roles = "".join(
            {"head": "H", "body": "b", "tail": "T"}[sched.role_at(c, phase)]
            for c in range(n_tiles)
        )
        senders = sched.senders_in_phase(phase, n_tiles)
        print(f"  phase {phase}: {roles}   senders: {senders}")
    print(f"  conflict-free: {sched.link_conflict_free(n_tiles)}")

    print(f"\nSimulating one direction, {n_tiles} tiles, "
          f"{vector_len}-word vectors...")
    result = ChainFabric(n_tiles, b, vector_len).run()
    print(f"  cycles: {result.cycles} "
          f"(closed form: {stage_cycles(vector_len, b)})")
    print(f"  link-cycles of traffic: {result.link_busy_cycles}")
    mid = n_tiles // 2
    print(f"  tile {mid} received, in arrival order: "
          f"{result.sources_for(mid)} (the {b} tiles upstream)")

    print("\nFull 2-D neighborhood exchange cost (positions + embedding "
          "derivatives):")
    for bb in (4, 7):
        cycles = exchange_cycle_model(3, bb) + exchange_cycle_model(1, bb)
        n_cand = (2 * bb + 1) ** 2 - 1
        ns = cycles * WSE2.cycle_ns
        print(f"  b = {bb}: {cycles} cycles = {ns:,.0f} ns "
              f"({ns / n_cand:.1f} ns per candidate; "
              f"paper attributes ~6 ns/candidate)")


if __name__ == "__main__":
    main()
