"""Binary W-Ta alloy on the wafer: heterogeneous ensembles end-to-end.

The paper's potential machinery is atom-type dependent by design
(Sec. II-A).  This example builds a W-Ta random solid solution with a
Johnson-mixed EAM potential, runs it on both engines, verifies they
agree, and uses the centro-symmetry parameter to watch the lattice
stay crystalline.  A trajectory is written in extended-XYZ.

Run:  python examples/alloy_solution.py
"""

import io

import numpy as np

from repro.analysis.centrosymmetry import centrosymmetry
from repro.io.xyz import write_xyz
from repro.lattice.cells import BCC
from repro.lattice.crystals import replicate
from repro.md.boundary import Box
from repro.md.simulation import Simulation
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.alloy import mix_tables
from repro.potentials.eam import EAMPotential
from repro.potentials.elements import ELEMENTS, make_element_tables
from repro.runtime import RunSpec, Runner, seed_streams


def main() -> None:
    print("Mixing W and Ta potentials (Johnson cross-pair construction)...")
    tables = mix_tables(make_element_tables("W"), make_element_tables("Ta"))
    pot = EAMPotential(tables)
    print(f"  2 types, cutoff {tables.cutoff:.2f} A "
          f"(cross pair to {tables.meta['cross_cutoff']:.2f} A)")

    a = 0.5 * (ELEMENTS["W"].lattice_constant
               + ELEMENTS["Ta"].lattice_constant)
    crystal = replicate(BCC, a, (8, 8, 3))
    streams = seed_streams(0)  # one seed, independent named streams
    rng = streams["velocities"]
    types = (rng.random(crystal.n_atoms) < 0.5).astype(np.int64)
    box = Box.open(crystal.box + 25.0)
    state = AtomsState(
        positions=crystal.positions - crystal.box / 2,
        velocities=np.zeros((crystal.n_atoms, 3)),
        types=types,
        masses=np.array([ELEMENTS["W"].mass, ELEMENTS["Ta"].mass]),
        box=box,
    )
    maxwell_boltzmann_velocities(state, 290.0, rng)
    frac_w = float((types == 0).mean())
    print(f"  {state.n_atoms} atoms: {frac_w:.0%} W, {1 - frac_w:.0%} Ta")

    # The mixed lattice at the average spacing carries static strain
    # (W and Ta prefer different a0) and free surfaces; equilibrate with
    # a Langevin thermostat before the engine comparison.
    from repro.md.langevin import LangevinThermostat
    print("\nEquilibrating 400 steps at 290 K (Langevin)...")
    eq = Simulation(state, pot, dt_fs=2.0, skin=0.8)
    langevin = LangevinThermostat(
        290.0, damping_fs=100.0, rng=streams["thermostat"]
    )
    for _ in range(40):
        eq.run(10)
        langevin.apply(state, dt_fs=2.0 * 10)
    print(f"  T = {state.temperature():.0f} K")

    # the comparison runs through the unified runtime: one spec, the
    # custom alloy state/potential passed to the factory, both engines
    # on the same Runner path (the skin override tightens the
    # reference neighbor list for the equilibrated structure)
    spec = RunSpec(element="Ta", reps=(8, 8, 3), temperature=0.0,
                   engine="wse", steps=60, dt_fs=2.0, skin=0.6)
    wse_runner = Runner.from_spec(spec, state=state.copy(), potential=pot)
    ref_runner = Runner.from_spec(spec.with_engine("reference"),
                                  state=state.copy(), potential=pot)
    wse = wse_runner.engine.sim
    print(f"\nRunning {spec.steps} steps on both engines "
          f"(grid {wse.grid.nx}x{wse.grid.ny}, b={wse.b})...")
    frames = io.StringIO()
    wse_runner.add_observer(20, lambda ev: write_xyz(
        ev.state, frames, symbols=["W", "Ta"], append=True))
    wse_runner.run()
    ref_runner.run()
    out = wse_runner.engine.state
    err = np.abs(out.positions - ref_runner.engine.state.positions).max()
    print(f"  engines agree to {err:.2e} A; T = {out.temperature():.0f} K")
    print(f"  trajectory: 3 frames, {len(frames.getvalue().splitlines())} "
          f"lines of extended-XYZ")

    # CSP over the first BCC shell only (cutoff between shells 1 and 2),
    # with an ideal-lattice reference for contrast
    csp = centrosymmetry(out.positions, box, n_neighbors=8, cutoff=a * 0.93)
    ref_csp = centrosymmetry(
        crystal.positions - crystal.box / 2, box, n_neighbors=8,
        cutoff=a * 0.93,
    )
    med = float(np.median(csp[np.isfinite(csp)]))
    ref_med = float(np.median(ref_csp[np.isfinite(ref_csp)]))
    print(f"\nCentro-symmetry (first shell, interior atoms): median "
          f"{med:.2f} A^2 vs {ref_med:.2f} on the ideal lattice — the "
          f"disorder is thermal motion plus W/Ta size-mismatch strain; "
          f"the underlying BCC topology is intact (every atom still has "
          f"its 8-neighbor first shell).")
    print(f"Modeled WSE-2 rate for the alloy: "
          f"{wse.measured_rate():,.0f} timesteps/s")


if __name__ == "__main__":
    main()
