"""Grain-boundary MD with online atom-swap remapping (paper Sec. V-E).

Builds a tungsten bicrystal slab (two grains meeting at y = 0, Fig. 2's
geometry), equilibrates it, then runs wafer-scale MD while atoms diffuse
in the boundary — demonstrating that the greedy mutual atom swap keeps
the atom-to-core assignment cost bounded as the structure evolves.

Run:  python examples/grain_boundary.py
"""

import numpy as np

from repro.analysis.displacement import DisplacementTracker
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.elements import ELEMENTS, make_element_potential
from repro.runtime import RunSpec, Runner, seed_streams


def main() -> None:
    el = ELEMENTS["W"]
    pot = make_element_potential("W")

    print("Building W bicrystal (22.6 degree symmetric tilt boundary)...")
    gb = make_grain_boundary_slab(
        el.cell, el.lattice_constant, extent_xy=(38.0, 38.0),
        thickness_z=9.0, misorientation_deg=22.6,
    )
    box = Box.open(gb.box + 4.0 * el.cutoff)
    state = AtomsState.from_positions(gb.positions, box, mass=el.mass)
    maxwell_boltzmann_velocities(state, 290.0, seed_streams(0)["velocities"])
    print(f"  atoms: {state.n_atoms}")

    for swap_interval, label in ((0, "no swaps"), (25, "swap every 25 steps")):
        # same bicrystal state through the runtime factory; the swap
        # interval is part of the declarative spec, b_margin is an
        # engine-level override for the diffusing boundary
        spec = RunSpec(element="W", reps=(1, 1, 1), temperature=0.0,
                       engine="wse", steps=200, dt_fs=2.0,
                       swap_interval=swap_interval)
        runner = Runner.from_spec(spec, state=state.copy(), potential=pot,
                                  b_margin=2.5)
        sim = runner.engine.sim
        tracker = DisplacementTracker(state.positions.copy())
        print(f"\n[{label}]  grid {sim.grid.nx}x{sim.grid.ny}, b={sim.b}, "
              f"initial C(g) = {sim.assignment_cost():.2f} A")
        print(f"  {'step':>6} {'time/ps':>8} {'max XY disp/A':>14} "
              f"{'C(g)/A':>8} {'swaps':>6}")

        def report(ev, sim=sim, tracker=tracker):
            disp = tracker.record(ev.step * 0.002, ev.state.positions)
            print(f"  {ev.step:>6} {ev.step * 0.002:>8.2f} "
                  f"{disp:>14.2f} {sim.assignment_cost():>8.2f} "
                  f"{sim.swap_count:>6}")

        runner.add_observer(50, report)
        runner.run()

    print(
        "\nWith swapping enabled the assignment cost tracks the EAM cutoff"
        "\nplus a few angstroms (paper Fig. 9: within 3 A + cutoff for swap"
        "\nintervals of 100 steps or less), while without it the cost grows"
        "\nwith atomic motion."
    )

    # Fig. 2's view: classify atoms by common-neighbor analysis and
    # render a coarse top-down map of the boundary plane.
    from repro.analysis.cna import StructureType, common_neighbor_analysis

    print("\nStructure map (common-neighbor analysis, mid-plane slice):")
    print("  '.' = BCC grain interior, 'o' = boundary/defect (Fig. 2's white)")
    kinds = common_neighbor_analysis(
        gb.positions, box, cutoff=el.lattice_constant * 1.2
    )
    slab_atoms = np.abs(gb.positions[:, 2]) < el.lattice_constant
    pos2d = gb.positions[slab_atoms][:, :2]
    k2d = kinds[slab_atoms]
    n_bins = 26
    lo = pos2d.min(axis=0)
    hi = pos2d.max(axis=0) + 1e-9
    rows = []
    for by in range(n_bins - 1, -1, -1):
        line = []
        for bx in range(n_bins):
            cell_lo = lo + np.array([bx, by]) / n_bins * (hi - lo)
            cell_hi = lo + np.array([bx + 1, by + 1]) / n_bins * (hi - lo)
            mask = np.all((pos2d >= cell_lo) & (pos2d < cell_hi), axis=1)
            if not np.any(mask):
                line.append(" ")
            elif (k2d[mask] == StructureType.BCC).mean() >= 0.5:
                line.append(".")
            else:
                line.append("o")
        rows.append("  " + "".join(line))
    print("\n".join(rows))
    frac_gb = float((k2d != StructureType.BCC).mean())
    print(f"  defective fraction in the slice: {frac_gb:.0%} "
          f"(concentrated in the y = 0 boundary band)")


if __name__ == "__main__":
    main()
