"""Weak scaling to a multi-wafer cluster (paper Sec. VI-C, Table VI).

Explores the ghost-region model: how the ghost-shell width lambda trades
wafer utilization against per-period amortization of the inter-node
latency, and what a 64-wafer cluster could simulate.

Run:  python examples/multiwafer_cluster.py
"""

from repro.core import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.multiwafer import MultiWaferModel
from repro.potentials.elements import ELEMENTS

# Table VI geometries: (X, Z) lattice sites per subdomain
GEOMETRY = {"Cu": (283, 10), "W": (317, 8), "Ta": (317, 8)}


def main() -> None:
    cost = CycleCostModel()
    mw = MultiWaferModel()

    table = Table(
        "Multi-wafer ghost-region model (omega = 1.2 Tb/s, tau = 2 us)",
        ["element", "lambda", "k steps/period", "ghosts", "steps/s",
         "% of 1 wafer", "interior frac"],
    )
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        x, z = GEOMETRY[sym]
        single = cost.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        t_wall = 1.0 / single
        for lam in (8, 17, 40, 88, 160):
            try:
                p = mw.evaluate(sym, x, z, lam, el.cutoff_nn, t_wall, single)
            except ValueError:
                continue
            table.add_row(
                sym, lam, p.k_steps, p.n_ghost,
                round(p.rate_steps_per_s),
                f"{100 * p.fraction_of_single_wafer:.1f}",
                f"{p.interior_fraction:.2f}",
            )
    table.print()

    el = ELEMENTS["Ta"]
    x, z = GEOMETRY["Ta"]
    single = cost.steps_per_second(
        el.candidates, el.interactions, el.neighborhood_b
    )
    p = mw.evaluate("Ta", x, z, 88, el.cutoff_nn, 1.0 / single, single)
    atoms = mw.cluster_atoms(p, 64)
    print(
        f"A deployed 64-wafer cluster at lambda = 88 simulates "
        f"{atoms / 1e6:.0f} M tantalum atoms at "
        f"{p.rate_steps_per_s:,.0f} steps/s "
        f"({100 * p.fraction_of_single_wafer:.0f}% of single-wafer speed) — "
        f"the paper's Sec. VI-C estimate."
    )


if __name__ == "__main__":
    main()
