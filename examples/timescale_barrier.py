"""The timescale barrier (paper Fig. 1): WSE vs Frontier vs Quartz.

For each benchmark metal, compares the modeled wafer-scale timestep rate
against the LAMMPS strong-scaling baselines and converts to the
achievable simulated timescale in 30 days of wall-clock time — the
paper's headline comparison.

Run:  python examples/timescale_barrier.py
"""

from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
from repro.core import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.timescale import TimescalePoint
from repro.potentials.elements import ELEMENTS


def main() -> None:
    model = CycleCostModel()
    n_atoms = 801_792

    table = Table(
        "Breaking the timescale barrier: 801,792-atom EAM benchmarks",
        ["element", "machine", "steps/s", "best config",
         "sim time in 30 days", "speedup"],
    )
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        wse_rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        gpu_rate, gpu_n = FRONTIER_MODELS[sym].best_rate(n_atoms)
        cpu_rate, cpu_n = QUARTZ_MODELS[sym].best_rate(n_atoms)
        rows = [
            ("WSE-2", wse_rate, "1 wafer", 1.0),
            ("Frontier", gpu_rate, f"{gpu_n} GCDs", wse_rate / gpu_rate),
            ("Quartz", cpu_rate, f"{cpu_n} nodes", wse_rate / cpu_rate),
        ]
        for machine, rate, config, speedup in rows:
            ts = TimescalePoint(machine, rate)
            table.add_row(
                sym, machine, round(rate), config,
                f"{ts.simulated_us:,.0f} us",
                "--" if speedup == 1.0 else f"{speedup:.0f}x",
            )
    table.print()

    ta = ELEMENTS["Ta"]
    wse = TimescalePoint(
        "WSE", model.steps_per_second(ta.candidates, ta.interactions,
                                      ta.neighborhood_b)
    )
    gpu = TimescalePoint("GPU", FRONTIER_MODELS["Ta"].best_rate(n_atoms)[0])
    print(
        f"A year-long Frontier run covers what the wafer covers in "
        f"{365 / wse.speedup_over(gpu):.1f} days — the paper's "
        f'"reducing every year of runtime to two days".'
    )


if __name__ == "__main__":
    main()
