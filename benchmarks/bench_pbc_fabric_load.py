"""E12 — Sec. V-F: fabric load with periodic boundaries.

The paper verifies that the position exchange takes the *same time* with
and without periodic boundaries (the routers carry the doubled traffic
on the reverse direction of the full-duplex links), while periodicity
still costs some extra compute for the modular arithmetic in the
distance calculation.
"""

import numpy as np
import pytest

from repro.core.cycle_model import CycleCostModel
from repro.core.wse_md import WseMd
from repro.io.table_io import Table
from repro.lattice.cells import BCC
from repro.lattice.crystals import replicate
from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.elements import ELEMENTS, make_element_potential


def test_pbc_exchange_time_unchanged(benchmark):
    from repro.wse.multicast import exchange_data_words

    model = CycleCostModel()

    def exchange_costs():
        return [
            (b,
             model.exchange_cycles(b, pbc=False),
             model.exchange_cycles(b, pbc=True),
             exchange_data_words(3, b, pbc=False),
             exchange_data_words(3, b, pbc=True))
            for b in (2, 4, 7)
        ]

    rows = benchmark(exchange_costs)
    table = Table(
        "Sec. V-F - position exchange, open vs periodic boundaries",
        ["b", "cycles open", "cycles PBC", "equal time",
         "words open", "words PBC"],
    )
    for b, open_c, pbc_c, w_open, w_pbc in rows:
        table.add_row(b, round(open_c), round(pbc_c), open_c == pbc_c,
                      w_open, w_pbc)
        assert open_c == pbc_c       # same time...
        assert w_pbc == 2 * w_open   # ...despite double the traffic
    table.print()


def test_pbc_costs_modular_arithmetic_only(benchmark, capsys):
    """Periodicity adds per-candidate compute, not exchange time."""
    model = CycleCostModel()
    el = ELEMENTS["Ta"]

    def rates():
        open_rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b, pbc=False
        )
        pbc_rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b, pbc=True
        )
        return open_rate, pbc_rate

    open_rate, pbc_rate = benchmark(rates)
    with capsys.disabled():
        print(f"\n[PBC] open: {open_rate:,.0f} steps/s; "
              f"periodic: {pbc_rate:,.0f} steps/s "
              f"({100 * (1 - pbc_rate / open_rate):.1f}% modular-arithmetic "
              f"overhead)")
    assert pbc_rate < open_rate
    assert pbc_rate > 0.95 * open_rate  # small compute-only penalty


def test_pbc_functional_equivalence(benchmark):
    """The folded mapping computes identical physics to minimum image."""
    a = ELEMENTS["Ta"].lattice_constant
    crystal = replicate(BCC, a, (8, 5, 2))
    box = Box(
        np.array([8 * a, 5 * a + 30.0, 2 * a + 30.0]),
        periodic=[True, False, False],
        origin=np.array([0.0, -15.0, -15.0]),
    )
    state = AtomsState.from_positions(crystal.positions, box, mass=180.95)
    maxwell_boltzmann_velocities(state, 200.0, np.random.default_rng(3))
    pot = make_element_potential("Ta")

    from repro.md.simulation import Simulation
    wse = WseMd(state.copy(), pot, dt_fs=2.0)
    ref = Simulation(state.copy(), pot, dt_fs=2.0, skin=0.6)

    def advance():
        wse.step(2)
        ref.run(2)
        out = wse.gather_state()
        return float(np.abs(out.positions - ref.state.positions).max())

    err = benchmark.pedantic(advance, rounds=3, iterations=1)
    assert err < 1e-9
