"""E4 — Table IV: utilization (fraction of peak) on three architectures.

Credits every platform with the same Table III FLOP model (the paper
notes this is slightly generous to LAMMPS) and divides by each
machine's theoretical peak: CS-2 at 1.45 PFLOP/s, Frontier at 32 GCDs
(0.77 PFLOP/s), Quartz at 800 CPUs (0.50 PFLOP/s).
"""

import pytest

from common import N_PAPER_ATOMS
from repro.baselines import FRONTIER, FRONTIER_MODELS, QUARTZ, QUARTZ_MODELS
from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.utilization import utilization
from repro.potentials.elements import ELEMENTS

PAPER_TABLE4 = {
    ("CS-2", "Cu"): 22.0, ("CS-2", "W"): 23.0, ("CS-2", "Ta"): 20.0,
    ("Frontier", "Cu"): 0.4, ("Frontier", "W"): 0.4, ("Frontier", "Ta"): 0.2,
    ("Quartz", "Cu"): 1.9, ("Quartz", "W"): 2.5, ("Quartz", "Ta"): 1.0,
}


def build_table4():
    model = CycleCostModel()
    rows = []
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        wse_rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        rows.append(utilization(
            "CS-2", sym, wse_rate, N_PAPER_ATOMS, el.candidates,
            el.interactions, 1.45e15,
        ))
        gpu_rate = FRONTIER_MODELS[sym].rate(N_PAPER_ATOMS, 32)
        rows.append(utilization(
            "Frontier", sym, gpu_rate, N_PAPER_ATOMS, el.candidates,
            el.interactions, FRONTIER.peak_flops(32),
        ))
        cpu_rate = QUARTZ_MODELS[sym].rate(N_PAPER_ATOMS, 400 * 36)
        rows.append(utilization(
            "Quartz", sym, cpu_rate, N_PAPER_ATOMS, el.candidates,
            el.interactions, QUARTZ.peak_flops(800),
        ))
    return rows


def test_table4_utilization(benchmark):
    rows = benchmark(build_table4)
    table = Table(
        "Table IV - utilization (fraction of peak)",
        ["machine", "element", "steps/s", "peak PFLOP/s",
         "utilization %", "paper %"],
    )
    for r in rows:
        paper = PAPER_TABLE4[(r.machine, r.element)]
        table.add_row(
            r.machine, r.element, round(r.rate_steps_per_s),
            f"{r.peak_pflops:.2f}", f"{r.percent:.2f}", paper,
        )
        # CS-2 rows match closely; baseline rows to the paper's rounding
        if r.machine == "CS-2":
            assert r.percent == pytest.approx(paper, abs=2.0)
        else:
            assert r.percent == pytest.approx(paper, abs=max(0.3, paper * 0.5))
    table.print()


def test_wse_dominates_utilization(benchmark):
    def ordering():
        rows = build_table4()
        by_machine = {}
        for r in rows:
            by_machine.setdefault(r.machine, []).append(r.utilization)
        return by_machine

    by_machine = benchmark(ordering)
    assert min(by_machine["CS-2"]) > 7 * max(by_machine["Quartz"])
    assert min(by_machine["Quartz"]) > max(by_machine["Frontier"])
