#!/usr/bin/env python3
"""CI gate: the JIT tier must not lose to numpy on the Ta slab.

Reads a ``repro bench`` report (v2 history format) and compares the
newest ``numba-Ta`` rate against the newest ``ref-Ta`` rate measured in
the same mode — the same slab under the numpy backend.  Exits non-zero
when the numba case is missing (the leg that runs this installs numba,
so a skip means the backend silently failed to import) or when its
steps/s falls below ``--min-ratio`` times the numpy rate.

Usage: ``python benchmarks/check_numba_tier.py BENCH_numba.json``
"""

from __future__ import annotations

import argparse
import json
import sys


def newest_rate(report: dict, name: str) -> tuple[float, str] | None:
    """Newest ``(steps_per_s, mode)`` for case ``name`` in the history."""
    history = report.get("history") or [report]
    for entry in reversed(history):
        for r in entry.get("results", []):
            if r.get("name") == name and r.get("steps_per_s"):
                return float(r["steps_per_s"]), entry.get("mode", "?")
    return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="bench report JSON (repro-bench/2)")
    ap.add_argument("--case", default="numba-Ta",
                    help="JIT-tier case name (default numba-Ta)")
    ap.add_argument("--ref", default="ref-Ta",
                    help="numpy sibling case name (default ref-Ta)")
    ap.add_argument("--min-ratio", type=float, default=1.0,
                    help="required numba/numpy steps-per-s ratio "
                         "(default 1.0: must not lose)")
    args = ap.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)
    got = newest_rate(report, args.case)
    ref = newest_rate(report, args.ref)
    if got is None:
        print(f"FAIL: no {args.case!r} timing in {args.report} — the "
              "numba backend did not run (import failure?)")
        return 1
    if ref is None:
        print(f"FAIL: no {args.ref!r} timing in {args.report} to "
              "compare against")
        return 1
    rate, mode = got
    ref_rate, ref_mode = ref
    if mode != ref_mode:
        print(f"FAIL: {args.case} timed in {mode!r} mode but "
              f"{args.ref} in {ref_mode!r} — rates are not comparable")
        return 1
    ratio = rate / ref_rate
    verdict = "OK" if ratio >= args.min_ratio else "FAIL"
    print(f"{verdict}: {args.case} {rate:.2f} steps/s = {ratio:.2f}x "
          f"{args.ref} ({ref_rate:.2f} steps/s, {mode} mode); "
          f"required >= {args.min_ratio:.2f}x")
    return 0 if ratio >= args.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
