"""E6 — Table VI: modeled multi-wafer performance vs ghost-region size.

Evaluates the Sec. VI-C ghost-shell model at the paper's subdomain
geometries and lambda values, reproducing the 92-99% single-wafer
performance retention, and the 64-node cluster estimates.
"""

import pytest

from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.multiwafer import MultiWaferModel
from repro.potentials.elements import ELEMENTS

# (element, X, Z, lambda_low, lambda_high, paper perf low/high, frac low/high)
PAPER_TABLE6 = [
    ("Cu", 283, 10, 78, 15, 105_152, 99_239, 0.99, 0.93),
    ("W", 317, 8, 88, 17, 95_281, 91_743, 0.99, 0.95),
    ("Ta", 317, 8, 88, 17, 269_214, 251_046, 0.98, 0.92),
]


def build_table6():
    cost = CycleCostModel()
    mw = MultiWaferModel()
    out = []
    for sym, x, z, lam_lo, lam_hi, p_lo, p_hi, f_lo, f_hi in PAPER_TABLE6:
        el = ELEMENTS[sym]
        single = cost.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        t_wall = 1.0 / single
        lo = mw.evaluate(sym, x, z, lam_lo, el.cutoff_nn, t_wall, single)
        hi = mw.evaluate(sym, x, z, lam_hi, el.cutoff_nn, t_wall, single)
        out.append((sym, single, lo, hi, p_lo, p_hi, f_lo, f_hi))
    return out


def test_table6_multiwafer(benchmark):
    results = benchmark(build_table6)
    table = Table(
        "Table VI - modeled multi-wafer performance",
        ["element", "X", "Z", "t_wall us", "lambda", "k",
         "steps/s", "% of 1 wafer", "paper steps/s"],
    )
    for sym, single, lo, hi, p_lo, p_hi, f_lo, f_hi in results:
        for point, paper_perf, paper_frac in ((lo, p_lo, f_lo),
                                              (hi, p_hi, f_hi)):
            table.add_row(
                sym, point.x_sites, point.z_sites,
                f"{1e6 / single:.2f}", point.lam, point.k_steps,
                round(point.rate_steps_per_s),
                f"{100 * point.fraction_of_single_wafer:.0f}",
                paper_perf,
            )
            assert point.fraction_of_single_wafer == pytest.approx(
                paper_frac, abs=0.02
            )
            assert point.rate_steps_per_s == pytest.approx(
                paper_perf, rel=0.05
            )
    table.print()


def test_cluster_estimates(benchmark, capsys):
    """Sec. VI-C: 64-node clusters simulate 10-40M+ atoms at ~these rates."""
    mw = MultiWaferModel()
    cost = CycleCostModel()
    el = ELEMENTS["Ta"]
    single = cost.steps_per_second(
        el.candidates, el.interactions, el.neighborhood_b
    )

    def cluster():
        lo = mw.evaluate("Ta", 317, 8, 88, el.cutoff_nn, 1.0 / single, single)
        hi = mw.evaluate("Ta", 317, 8, 17, el.cutoff_nn, 1.0 / single, single)
        return (mw.cluster_atoms(lo, 64), lo.rate_steps_per_s,
                mw.cluster_atoms(hi, 64), hi.rate_steps_per_s)

    n_lo, r_lo, n_hi, r_hi = benchmark(cluster)
    with capsys.disabled():
        print(
            f"\n[64-wafer cluster, Ta] lambda=88: {n_lo / 1e6:.0f}M atoms at "
            f"{r_lo:,.0f} steps/s; lambda=17: {n_hi / 1e6:.0f}M atoms at "
            f"{r_hi:,.0f} steps/s"
        )
    assert n_lo > 40_000_000
    assert r_lo > 260_000
    assert r_hi > 240_000
