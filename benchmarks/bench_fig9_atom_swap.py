"""E10 — Fig. 9: atom motion and assignment cost vs swap interval.

Runs the grain-boundary workload (Sec. IV-B type 3) on the lockstep
machine from a deliberately sub-optimal initial mapping, with swap
intervals from 1 to 250 timesteps, tracking:

* the largest max-norm x-y displacement of any atom over time
  (Fig. 9's black line), and
* the atom-to-core assignment cost (the colored lines).

The paper's findings to reproduce: after an initial transient, swapping
recovers the sub-optimal start and then *maintains* the assignment cost
near the offline-optimum level (2.1 A + cutoff), with more frequent
swapping recovering faster; and a swap round costs about one timestep.

The initial sub-optimality is injected as a *local* scramble (swaps
within two fabric hops).  The neighborhood half-width b is chosen with
enough margin to keep every interaction covered throughout —
``verify_coverage`` asserts this invariant, without which the machine
would silently compute wrong forces.
"""

import numpy as np
import pytest

from repro.analysis.displacement import DisplacementTracker
from repro.core.wse_md import WseMd
from repro.io.table_io import Table
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.elements import ELEMENTS, make_element_potential

N_STEPS = 200
CHECK_EVERY = 50
INTERVALS = (0, 1, 10, 25, 100)  # 0 = no swapping


def gb_state(seed=0) -> AtomsState:
    el = ELEMENTS["W"]
    gb = make_grain_boundary_slab(
        el.cell, el.lattice_constant, extent_xy=(32.0, 32.0),
        thickness_z=8.0, misorientation_deg=22.6,
    )
    box = Box.open(gb.box + 4.0 * el.cutoff)
    state = AtomsState.from_positions(gb.positions, box, mass=el.mass)
    maxwell_boltzmann_velocities(state, 290.0, np.random.default_rng(seed))
    return state


def scramble_mapping(sim: WseMd, rng: np.random.Generator,
                     max_hop: int = 2) -> None:
    """Local scramble: swap tiles within ``max_hop`` fabric hops.

    Keeps the perturbation inside the margin ``b`` was sized for, so
    physics stays correct while the mapping is clearly sub-optimal.
    """
    nx, ny = sim.grid.nx, sim.grid.ny
    occ_idx = np.argwhere(sim.occ)
    for x, y in occ_idx:
        if rng.random() < 0.5:
            continue
        dx, dy = rng.integers(-max_hop, max_hop + 1, size=2)
        px, py = x + dx, y + dy
        if not (0 <= px < nx and 0 <= py < ny):
            continue
        for arr in (sim.pos, sim.vel, sim.aid, sim.typ, sim.occ):
            tmp = arr[x, y].copy()
            arr[x, y] = arr[px, py]
            arr[px, py] = tmp


def run_interval(interval: int):
    state = gb_state()
    sim = WseMd(state, make_element_potential("W"), dt_fs=2.0,
                swap_interval=interval, b_margin=6.0)
    scramble_mapping(sim, np.random.default_rng(1))
    assert sim.verify_coverage() == 0, "scramble exceeded the b margin"
    tracker = DisplacementTracker(sim.gather_state().positions)
    costs, disps = [sim.assignment_cost()], [0.0]
    for _ in range(N_STEPS // CHECK_EVERY):
        sim.step(CHECK_EVERY)
        costs.append(sim.assignment_cost())
        disps.append(tracker.max_xy_norm(sim.gather_state().positions))
    assert sim.verify_coverage() == 0
    return costs, disps, sim


def test_fig9_assignment_cost_vs_swap_interval(benchmark):
    results = {}
    for interval in INTERVALS:
        results[interval] = run_interval(interval)
    # benchmark one variant's full run for the harness timing
    benchmark.pedantic(lambda: run_interval(100)[2], rounds=1, iterations=1)

    cutoff = ELEMENTS["W"].cutoff
    table = Table(
        "Fig. 9 - assignment cost (A) vs time, by swap interval",
        ["swap interval"] + [
            f"step {k * CHECK_EVERY}"
            for k in range(N_STEPS // CHECK_EVERY + 1)
        ],
    )
    for interval, (costs, _, _) in results.items():
        label = "none" if interval == 0 else str(interval)
        table.add_row(label, *[f"{c:.2f}" for c in costs])
    _, disps, _ = results[0]
    table.add_row("max XY displacement", *[f"{d:.2f}" for d in disps])
    table.print()

    final_none = results[0][0][-1]
    for interval in (1, 10, 25):
        final = results[interval][0][-1]
        # swapping recovers the scrambled start and beats no-swapping
        assert final < final_none
        # paper: maintained within ~3 A plus the EAM cutoff
        assert final < 3.0 + cutoff
    # more frequent swapping recovers at least as fast
    assert results[1][0][1] <= results[100][0][1] + 1e-9
    # displacement grows with time (the black line's trend)
    assert disps[-1] > disps[1]


def test_swap_round_cost_comparable_to_timestep(benchmark, capsys):
    """Paper: 'a swap takes roughly the same time as a timestep'.

    The protocol's two neighborhood exchanges move comparable data to
    the timestep's two exchanges.  Verify the lockstep machine's swap
    wall-time is the same order as its step wall-time.
    """
    import time

    state = gb_state()
    sim = WseMd(state, make_element_potential("W"), dt_fs=2.0, b_margin=4.0)

    def one_swap_round():
        return sim._swap_round()

    benchmark(one_swap_round)
    t0 = time.perf_counter()
    sim.step(5)
    step_time = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        sim._swap_round()
    swap_time = (time.perf_counter() - t0) / 5
    with capsys.disabled():
        print(f"\n[swap cost] step {step_time * 1e3:.1f} ms vs swap round "
              f"{swap_time * 1e3:.1f} ms (host wall-time, same order)")
    assert swap_time < 10 * step_time
