"""E9 — Fig. 8: perfect weak scaling across three orders of magnitude.

Grows the controlled-grid workload (one atom per core) from ~10^2 to
~10^5 cores on the lockstep machine and measures the timestep rate at
each size.  Because tiles run in lockstep and their per-tile work is
size-independent, the rate stays flat — the paper reports within 1%
over three orders of magnitude of core recruitment.
"""

import numpy as np
import pytest

from common import controlled_grid_sim
from repro.io.table_io import Table
from repro.potentials.elements import make_element_potential


def run_weak_scaling():
    pot = make_element_potential("Ta")
    # avoid lattice distances that land exactly on the cutoff
    spacing = pot.cutoff / 2.05
    results = []
    for side in (12, 24, 48, 96, 192, 320):
        sim = controlled_grid_sim(side, 4, spacing, pot)
        sim.step(1)
        occ = sim.occ
        interior = np.zeros_like(occ)
        interior[4:-4, 4:-4] = True
        cand = float(sim.last_candidates[occ & interior].mean())
        inter = float(sim.last_interactions[occ & interior].mean())
        cycles = sim.cost_model.step_cycles(cand, inter, sim.b)
        rate = 1.0 / sim.cost_model.machine.cycles_to_seconds(cycles)
        results.append((side * side, rate))
    return results


def test_fig8_weak_scaling(benchmark):
    # single round: the sweep's largest grid runs 102,400 lockstep tiles
    results = benchmark.pedantic(run_weak_scaling, rounds=1, iterations=1)
    table = Table(
        "Fig. 8 - weak scaling on the wafer (one atom per core)",
        ["cores", "steps/s", "vs smallest"],
    )
    base = results[0][1]
    for cores, rate in results:
        table.add_row(cores, round(rate), f"{100 * rate / base:.2f}%")
    table.print()
    rates = np.array([r for _, r in results])
    # perfect weak scaling to within 1% across 3 orders of magnitude
    assert results[-1][0] / results[0][0] > 500
    assert np.ptp(rates) / rates.mean() < 0.01


def test_fig8_full_machine_invariance(benchmark, capsys):
    """Every interior tile does identical work regardless of grid size."""
    pot = make_element_potential("Ta")

    def interior_count_spread():
        sims = [
            controlled_grid_sim(side, 4, pot.cutoff / 2.05, pot)
            for side in (16, 64)
        ]
        spreads = []
        for sim in sims:
            sim.step(1)
            interior = np.zeros_like(sim.occ)
            interior[4:-4, 4:-4] = True
            counts = sim.last_interactions[interior]
            spreads.append((counts.min(), counts.max()))
        return spreads

    spreads = benchmark(interior_count_spread)
    with capsys.disabled():
        print(f"\n[weak scaling] interior interaction count ranges: {spreads}")
    for lo, hi in spreads:
        assert lo == hi  # uniform grid: identical work everywhere
    assert spreads[0] == spreads[1]
