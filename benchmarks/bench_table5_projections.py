"""E5 — Table V: projected gains from future optimizations.

Stacks the paper's four conservative optimizations (fixed-cost halving,
neighbor-list reuse, force symmetry, multi-core workers) on the baseline
cost basis and reports the projected rate for each element — ending with
tantalum above one million timesteps per second.

Also runs the same levels through this repo's cycle model
(:data:`repro.core.cycle_model.TABLE5_LEVELS`) as an ablation: the two
roads agree on every stage.
"""

import pytest

from repro.core.cycle_model import TABLE5_LEVELS, CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.projections import project_optimizations
from repro.potentials.elements import ELEMENTS

PAPER_TABLE5_TA = {"Baseline": 270, "Fixed cost": 290, "Neighbor list": 460,
                   "Symmetry": 650, "Parallel": 1100}

WORKLOADS = {
    sym: (ELEMENTS[sym].candidates, ELEMENTS[sym].interactions)
    for sym in ("Ta", "W", "Cu")
}


def test_table5_projections(benchmark):
    rows = benchmark(project_optimizations, WORKLOADS)
    table = Table(
        "Table V - projected performance (1,000 timesteps/s)",
        ["description", "multicast ns", "miss ns", "interaction ns",
         "fixed ns", "Ta", "W", "Cu", "paper Ta"],
    )
    for row in rows:
        table.add_row(
            row.description,
            f"{row.basis.multicast:.1f}",
            f"{row.basis.miss:.1f}",
            f"{row.basis.interaction:.1f}",
            f"{row.basis.fixed:.0f}",
            f"{row.rates['Ta'] / 1000:.0f}",
            f"{row.rates['W'] / 1000:.0f}",
            f"{row.rates['Cu'] / 1000:.0f}",
            PAPER_TABLE5_TA[row.description],
        )
        assert row.rates["Ta"] / 1000 == pytest.approx(
            PAPER_TABLE5_TA[row.description], rel=0.10
        )
    table.print()
    assert rows[-1].rates["Ta"] > 1.0e6


def test_table5_via_cycle_model_ablation(benchmark):
    """The cycle model's optimization levels tell the same story."""
    model = CycleCostModel()
    el = ELEMENTS["Ta"]

    def rates():
        return [
            model.with_opt(opt).steps_per_second(
                el.candidates, el.interactions, el.neighborhood_b
            )
            for opt in TABLE5_LEVELS
        ]

    out = benchmark(rates)
    table = Table(
        "Table V ablation - same levels through the cycle model (Ta)",
        ["level", "steps/s"],
    )
    for opt, rate in zip(TABLE5_LEVELS, out):
        table.add_row(opt.name, round(rate))
    table.print()
    assert all(b > a for a, b in zip(out, out[1:]))
    assert out[-1] > 0.9e6
