"""E7 — Fig. 1: maximum achievable MD timescale, WSE vs exascale GPU.

The figure's stars: simulated time reachable in 30 wall-clock days for
the 800,000-atom Ta benchmark at each platform's measured rate, placed
against the method boxes (QM / MD / CM).  The WSE star sits ~179x higher
than the GPU star — "the nearly 180-fold increase in maximum achievable
timescale".
"""

import pytest

from common import N_PAPER_ATOMS
from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.timescale import METHOD_BOXES, TimescalePoint
from repro.potentials.elements import ELEMENTS


def build_fig1():
    el = ELEMENTS["Ta"]
    wse_rate = CycleCostModel().steps_per_second(
        el.candidates, el.interactions, el.neighborhood_b
    )
    return [
        TimescalePoint("WSE", wse_rate),
        TimescalePoint("GPU (Frontier)",
                       FRONTIER_MODELS["Ta"].best_rate(N_PAPER_ATOMS)[0]),
        TimescalePoint("CPU (Quartz)",
                       QUARTZ_MODELS["Ta"].best_rate(N_PAPER_ATOMS)[0]),
    ]


def test_fig1_stars(benchmark):
    points = benchmark(build_fig1)
    table = Table(
        "Fig. 1 - achievable timescale for 800k Ta atoms (30 days, 2 fs)",
        ["machine", "steps/s", "simulated time", "vs GPU"],
    )
    gpu = points[1]
    for p in points:
        us = p.simulated_us
        stamp = f"{us / 1000:.2f} ms" if us > 1000 else f"{us:.1f} us"
        table.add_row(p.machine, round(p.rate_steps_per_s), stamp,
                      f"{p.speedup_over(gpu):.0f}x")
    table.print()
    assert points[0].speedup_over(gpu) == pytest.approx(179, rel=0.05)
    # the WSE star reaches beyond 1 ms — past the conventional MD box
    assert points[0].simulated_us > 1000.0
    assert points[1].simulated_us < 20.0


def test_fig1_boxes(benchmark):
    """The WSE star lands above the classical MD time range."""
    points = benchmark(build_fig1)
    md_lo, md_hi = METHOD_BOXES["MD"][2], METHOD_BOXES["MD"][3]
    wse_seconds = points[0].simulated_us * 1e-6
    gpu_seconds = points[1].simulated_us * 1e-6
    assert gpu_seconds <= md_hi  # the GPU stays inside the MD box
    assert wse_seconds > md_hi  # the wafer breaks out of it
