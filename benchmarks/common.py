"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure from the
paper's evaluation section (see DESIGN.md's per-experiment index) and
prints the same rows/series the paper reports.  Absolute WSE numbers
come from the calibrated cycle model driven by simulated workloads; the
*shape* of every comparison (who wins, by what factor, where crossovers
fall) is the reproduction target.
"""

from __future__ import annotations

import numpy as np

from repro.core.wse_md import WseMd
from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.lattice.slab import make_slab
from repro.potentials.elements import ELEMENTS, make_element_potential
from repro.wse.geometry import TileGrid

#: Paper Table I reference numbers.
PAPER_TABLE1 = {
    "Cu": {"predicted": 104_895, "measured": 106_313, "frontier": 973,
           "quartz": 3_120, "vs_gpu": 109, "vs_cpu": 34},
    "W": {"predicted": 93_048, "measured": 96_140, "frontier": 998,
          "quartz": 3_633, "vs_gpu": 96, "vs_cpu": 26},
    "Ta": {"predicted": 270_097, "measured": 274_016, "frontier": 1_530,
           "quartz": 4_938, "vs_gpu": 179, "vs_cpu": 55},
}

N_PAPER_ATOMS = 801_792


def element_wse_sim(
    symbol: str,
    scale: float = 0.05,
    temperature: float = 290.0,
    seed: int = 0,
    **kwargs,
) -> WseMd:
    """A scaled-down Table-I slab on the lockstep machine."""
    el = ELEMENTS[symbol]
    nx, ny, nz = el.replication
    reps = (max(4, int(nx * scale)), max(4, int(ny * scale)), nz)
    slab = make_slab(el.cell, el.lattice_constant, reps)
    box = Box.open(slab.box + 4.0 * el.cutoff)
    state = AtomsState.from_positions(slab.positions, box, mass=el.mass)
    if temperature > 0:
        maxwell_boltzmann_velocities(
            state, temperature, np.random.default_rng(seed)
        )
    return WseMd(state, make_element_potential(symbol), **kwargs)


def controlled_grid_sim(
    n_side: int,
    b: int,
    spacing: float,
    potential,
    **kwargs,
) -> WseMd:
    """Paper Sec. IV-B type-2 workload: a regular 2-D grid of atoms.

    One atom per core, ``b`` fixed, zero timestep constant (atoms hold
    position), interaction count controlled by ``spacing`` relative to
    the potential's cutoff.
    """
    xs = np.arange(n_side) * spacing
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    positions = np.stack(
        [gx.ravel(), gy.ravel(), np.zeros(n_side * n_side)], axis=1
    )
    box = Box.open(
        np.array([n_side * spacing + 10.0, n_side * spacing + 10.0, 10.0])
    )
    state = AtomsState.from_positions(positions, box, mass=100.0)
    return WseMd(
        state, potential, grid=TileGrid(n_side, n_side), b=b, dt_fs=0.0,
        **kwargs,
    )
