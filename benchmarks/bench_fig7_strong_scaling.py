"""E8 — Fig. 7: performance and energy efficiency, WSE vs GPU vs CPU.

(a) timesteps/s across node counts for Ta/Cu/W at 801,792 atoms;
(b) timesteps/joule for the same sweeps;
(c) relative performance and efficiency normalized to the WSE,
    with the WSE Pareto-dominant on both axes.
"""

import pytest

from common import N_PAPER_ATOMS
from repro.baselines import (
    FRONTIER,
    FRONTIER_MODELS,
    QUARTZ,
    QUARTZ_MODELS,
    sweep_cpu,
    sweep_gpu,
)
from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.energy import EfficiencyPoint, pareto_front
from repro.potentials.elements import ELEMENTS
from repro.wse.machine import WSE2


def wse_point(sym: str) -> EfficiencyPoint:
    el = ELEMENTS[sym]
    rate = CycleCostModel().steps_per_second(
        el.candidates, el.interactions, el.neighborhood_b
    )
    return EfficiencyPoint(
        machine="WSE-2", element=sym, units=1,
        rate_steps_per_s=rate, power_watts=WSE2.power_watts,
    )


def build_sweeps(sym: str):
    gpu = sweep_gpu(FRONTIER_MODELS[sym], FRONTIER, N_PAPER_ATOMS,
                    unit_counts=[1, 2, 4, 8, 16, 32, 64, 128, 256, 512])
    cpu = sweep_cpu(QUARTZ_MODELS[sym], QUARTZ, N_PAPER_ATOMS,
                    node_counts=[1, 4, 16, 64, 100, 200, 400, 800, 1600])
    return gpu, cpu


def test_fig7a_strong_scaling(benchmark):
    sym = "Ta"
    gpu, cpu = benchmark(build_sweeps, sym)
    wse = wse_point(sym)
    table = Table(
        "Fig. 7a - strong scaling, Ta 801,792 atoms (timesteps/s)",
        ["machine", "units", "steps/s"],
    )
    table.add_row("WSE-2", "1 wafer", round(wse.rate_steps_per_s))
    for p in gpu:
        table.add_row("Frontier", f"{p.units} GCD", round(p.rate_steps_per_s))
    for p in cpu:
        table.add_row("Quartz", f"{p.units // 2} nodes",
                      round(p.rate_steps_per_s))
    table.print()
    best_gpu = max(p.rate_steps_per_s for p in gpu)
    best_cpu = max(p.rate_steps_per_s for p in cpu)
    assert wse.rate_steps_per_s / best_gpu == pytest.approx(179, rel=0.06)
    assert wse.rate_steps_per_s / best_cpu == pytest.approx(55, rel=0.08)
    assert best_cpu > best_gpu  # CPUs beat GPUs at this size (Sec. V-A)


@pytest.mark.parametrize("sym", ["Cu", "W", "Ta"])
def test_fig7b_energy_efficiency(benchmark, sym):
    gpu, cpu = benchmark(build_sweeps, sym)
    wse = wse_point(sym)
    table = Table(
        f"Fig. 7b - energy efficiency, {sym} (timesteps/joule)",
        ["machine", "units", "steps/s", "steps/J"],
    )
    table.add_row("WSE-2", "1 wafer", round(wse.rate_steps_per_s),
                  f"{wse.steps_per_joule:.2f}")
    for p in gpu[::3]:
        table.add_row("Frontier", f"{p.units} GCD",
                      round(p.rate_steps_per_s), f"{p.steps_per_joule:.4f}")
    for p in cpu[::3]:
        table.add_row("Quartz", f"{p.units // 2} nodes",
                      round(p.rate_steps_per_s), f"{p.steps_per_joule:.4f}")
    table.print()
    # one to two orders of magnitude better than the best baseline point
    best_baseline = max(p.steps_per_joule for p in gpu + cpu)
    ratio = wse.steps_per_joule / best_baseline
    assert 10 < ratio < 500

    # past the knee, rate and efficiency fall together (Sec. V-A)
    knee = max(range(len(cpu)), key=lambda k: cpu[k].rate_steps_per_s)
    if knee + 1 < len(cpu):
        assert cpu[knee + 1].steps_per_joule < cpu[knee].steps_per_joule


def test_fig7c_pareto_dominance(benchmark):
    def all_points():
        pts = []
        for sym in ("Cu", "W", "Ta"):
            gpu, cpu = build_sweeps(sym)
            pts.extend(gpu)
            pts.extend(cpu)
            pts.append(wse_point(sym))
        return pts

    pts = benchmark(all_points)
    eff_points = [
        EfficiencyPoint(
            machine=p.machine, element=p.element, units=p.units,
            rate_steps_per_s=p.rate_steps_per_s, power_watts=p.power_watts,
        )
        if not isinstance(p, EfficiencyPoint) else p
        for p in pts
    ]
    front = pareto_front(eff_points)
    table = Table(
        "Fig. 7c - Pareto front over (performance, efficiency)",
        ["machine", "element", "units", "steps/s", "steps/J"],
    )
    for p in front:
        table.add_row(p.machine, p.element, p.units,
                      round(p.rate_steps_per_s), f"{p.steps_per_joule:.3f}")
    table.print()
    # Every front member is a WSE point: Pareto dominance on both metrics.
    assert all(p.machine == "WSE-2" for p in front)
