"""E14 — Sec. II-B: the small-system rates that motivate the paper.

The conventional strong-scaling limit the paper opens with: a 1,000-atom
Lennard-Jones system tops out below 10k steps/s on a V100 (kernel-launch
bound) and around 25k steps/s on a dual-socket Skylake (MPI bound) —
while a million-step-per-second rate is what O(100 us) of simulated time
per day requires.  The wafer closes that gap: the same 1k-atom workload
mapped one-atom-per-core is fixed-cost dominated and lands deep into the
hundreds of thousands of steps per second.
"""

import pytest

from repro.baselines.cpu_model import SKYLAKE_LJ_MODEL
from repro.baselines.gpu_model import V100_LJ_MODEL
from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table

N_SMALL = 1_000


def build_rates():
    model = CycleCostModel()
    # 1k atoms in 3-D at LJ-like density: ~55 neighbors within 2.5 sigma,
    # a Ta-like thin-slab candidate footprint
    wse_rate = model.steps_per_second(80, 55, 4)
    return {
        "V100 GPU (LAMMPS LJ)": V100_LJ_MODEL.rate(N_SMALL, 1),
        "2x Skylake, 36 ranks (LAMMPS LJ)": SKYLAKE_LJ_MODEL.rate(N_SMALL, 36),
        "WSE (one atom per core)": wse_rate,
    }


def test_small_system_rates(benchmark):
    rates = benchmark(build_rates)
    table = Table(
        "Sec. II-B - 1,000-atom strong-scaling limit (timesteps/s)",
        ["platform", "steps/s", "paper says"],
    )
    table.add_row("V100 GPU (LAMMPS LJ)",
                  round(rates["V100 GPU (LAMMPS LJ)"]), "< 10k")
    table.add_row("2x Skylake, 36 ranks (LAMMPS LJ)",
                  round(rates["2x Skylake, 36 ranks (LAMMPS LJ)"]), "~25k")
    table.add_row("WSE (one atom per core)",
                  round(rates["WSE (one atom per core)"]),
                  "fixed-cost bound")
    table.print()
    assert rates["V100 GPU (LAMMPS LJ)"] < 10_000
    assert rates["2x Skylake, 36 ranks (LAMMPS LJ)"] == pytest.approx(
        25_000, rel=0.2
    )
    assert rates["WSE (one atom per core)"] > 100_000


def test_required_rate_for_timescale_goal(benchmark):
    """O(1e11) steps in ~1e5 s needs ~1e6 steps/s (Sec. II-B's argument)."""
    def needed():
        simulated_seconds = 1.0e-4   # the 100 us goal
        dt = 2.0e-15
        wall_seconds = 86_400.0      # one day
        return simulated_seconds / dt / wall_seconds

    rate = benchmark(needed)
    assert rate == pytest.approx(5.8e5, rel=0.01)
    # no conventional platform in the table gets within 20x of this
    assert rate > 20 * SKYLAKE_LJ_MODEL.rate(N_SMALL, 36)
