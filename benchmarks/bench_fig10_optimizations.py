"""E11 — Fig. 10: performance across the optimization campaign.

Replays the paper's Sec. V-G methodology: the first functioning code ran
5.6x slower than the performance model; Tungsten-level optimizations
(loop vectorization, feature elimination, memory interleaving, fewer
conditionals) brought it within 2x; hand-edited assembly (instruction
reordering, stream-descriptor reuse, bank-conflict offsets, hardware
offloads) closed the remaining gap.  Each stage is a compute-cost
multiplier on the cycle model; the bench prints the measured rate per
stage per element, as the figure plots.
"""

import pytest

from repro.core.cycle_model import FIG10_STAGES, CycleCostModel
from repro.io.table_io import Table
from repro.potentials.elements import ELEMENTS


def build_fig10():
    model = CycleCostModel()
    rows = []
    for name, factor in FIG10_STAGES:
        staged = model.scaled(factor)
        rates = {
            sym: staged.steps_per_second(
                ELEMENTS[sym].candidates, ELEMENTS[sym].interactions,
                ELEMENTS[sym].neighborhood_b,
            )
            for sym in ("Ta", "W", "Cu")
        }
        rows.append((name, factor, rates))
    return rows


def test_fig10_optimization_history(benchmark):
    rows = benchmark(build_fig10)
    table = Table(
        "Fig. 10 - performance across code changes (timesteps/s)",
        ["code change", "compute cost factor", "Ta", "W", "Cu"],
    )
    for name, factor, rates in rows:
        table.add_row(name, f"{factor:.2f}x", round(rates["Ta"]),
                      round(rates["W"]), round(rates["Cu"]))
    table.print()

    ta = [r["Ta"] for _, _, r in rows]
    # monotone improvement across the campaign
    assert all(b >= a for a, b in zip(ta, ta[1:]))
    # overall ~5x gain from first working code to final
    assert 4.0 < ta[-1] / ta[0] < 5.6
    # the "within 2x of the model" milestone sits mid-campaign
    mid = [r["Ta"] for (n, f, r) in rows if f == 2.0][0]
    assert ta[-1] / mid < 2.0


def test_fig10_final_stage_matches_table1(benchmark):
    rows = benchmark(build_fig10)
    final = rows[-1][2]
    assert final["Ta"] == pytest.approx(274_016, rel=0.03)
    assert final["Cu"] == pytest.approx(106_313, rel=0.03)
    assert final["W"] == pytest.approx(96_140, rel=0.04)
