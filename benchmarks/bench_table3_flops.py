"""E3 — Table III: FLOP accounting per model term.

Prints the full add/multiply/other accounting and the at-peak versus
measured time of each component (the right-hand column of Table III:
candidate 5.3/26.6 ns = 20%, interaction 21.2/71.4 ns = 30%,
fixed 7.1/574 ns = 1%).
"""

import pytest

from repro.io.table_io import Table
from repro.perfmodel.flops import TABLE3_ROWS, at_peak_time_ns, flop_table
from repro.perfmodel.linear import PAPER_TABLE2
from repro.wse.machine import WSE2


def build_table3() -> Table:
    table = Table(
        "Table III - FLOP count for all adds, muls, and other steps",
        ["term", "group", "+", "x", "~", "note"],
    )
    for row in TABLE3_ROWS:
        table.add_row(
            row.term, row.group, row.counts.adds, row.counts.muls,
            row.counts.other, row.note,
        )
    groups = flop_table()
    measured = {
        "candidate": PAPER_TABLE2.a_candidate,
        "interaction": PAPER_TABLE2.b_interaction,
        "fixed": PAPER_TABLE2.c_fixed,
    }
    for g, counts in groups.items():
        peak = at_peak_time_ns(counts, WSE2.fp32_per_cycle, WSE2.clock_hz)
        table.add_row(
            f"{g} subtotal", g, counts.adds, counts.muls, counts.other,
            f"{peak:.1f} ns / {measured[g]:.1f} ns = "
            f"{100 * peak / measured[g]:.0f}%",
        )
    return table


def test_table3_accounting(benchmark):
    table = benchmark(build_table3)
    table.print()
    groups = flop_table()
    assert groups["candidate"].total == 9
    assert groups["interaction"].total == 36
    assert groups["fixed"].total == 12
    # the published utilization fractions per component
    peak_cand = at_peak_time_ns(groups["candidate"], 2.0, WSE2.clock_hz)
    assert peak_cand / 26.6 == pytest.approx(0.20, abs=0.02)
