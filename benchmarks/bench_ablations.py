"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify the extension features (paper
Sec. VI-A / V-C / V-E) through both the functional simulator and the
cycle model:

* force symmetry: functional half-neighborhood mode, identical physics,
  half the pair work;
* multi-atom-per-core packing: capacity vs rate trade;
* offline mapping optimization vs the paper's 2.1 A benchmark;
* neighbor-list reuse amortization.
"""

import numpy as np
import pytest

from common import element_wse_sim
from repro.core.cycle_model import CycleCostModel, OptimizationConfig
from repro.core.mapping import build_mapping
from repro.core.optimize import optimize_mapping
from repro.io.table_io import Table
from repro.perfmodel.packing import packing_sweep
from repro.potentials.elements import ELEMENTS, make_element_potential


def test_force_symmetry_ablation(benchmark, capsys):
    """Half-neighborhood mode: same trajectory, half the pair work."""
    sim_full = element_wse_sim("Ta", scale=0.03, seed=1)
    sim_half = element_wse_sim("Ta", scale=0.03, seed=1,
                               force_symmetry=True)

    def run_both():
        sim_full.step(1)
        sim_half.step(1)
        a = sim_full.gather_state().positions
        b = sim_half.gather_state().positions
        return float(np.abs(a - b).max())

    err = benchmark.pedantic(run_both, rounds=3, iterations=1)
    fc, fi = sim_full.mean_counts()
    hc, hi = sim_half.mean_counts()
    with capsys.disabled():
        print(f"\n[force symmetry] trajectory deviation {err:.1e} A; "
              f"work {fi:.1f} -> {hi:.1f} interactions/atom "
              f"({100 * hi / fi:.0f}%)")
    assert err < 1e-9
    assert hi == pytest.approx(fi / 2, rel=0.05)


def test_packing_tradeoff(benchmark):
    model = CycleCostModel()
    el = ELEMENTS["Ta"]
    sweep = benchmark(
        packing_sweep, model, el.candidates, el.interactions,
        el.neighborhood_b,
    )
    table = Table(
        "Ablation - multi-atom-per-core packing (Ta workload)",
        ["atoms/core", "b (tiles)", "steps/s", "atom-steps/s", "max atoms"],
    )
    for c in sweep:
        table.add_row(c.atoms_per_core, c.b_tiles,
                      round(c.steps_per_second),
                      f"{c.atom_steps_per_second:.2e}", c.max_atoms)
    table.print()
    assert sweep[0].steps_per_second > sweep[-1].steps_per_second
    assert sweep[-1].max_atoms == 16 * 850_000


def test_offline_mapping_vs_paper(benchmark, capsys):
    """Paper Sec. V-E: best offline optimization reached 2.1 A."""
    el = ELEMENTS["Ta"]
    from repro.lattice.slab import make_slab
    from repro.md.boundary import Box
    slab = make_slab(el.cell, el.lattice_constant, (16, 16, 6))
    box = Box.open(slab.box + 20.0)
    mapping = build_mapping(slab.positions, box)

    result = benchmark.pedantic(
        optimize_mapping, args=(mapping, slab.positions),
        kwargs={"max_rounds": 120}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n[offline optimization] C(g): {result.initial_cost:.2f} -> "
              f"{result.final_cost:.2f} A in {result.rounds} rounds, "
              f"{result.swaps} swaps (paper offline optimum: 2.1 A)")
    assert result.final_cost <= result.initial_cost
    assert result.final_cost < 3.5


def test_neighbor_list_reuse_pricing(benchmark):
    """Table V row 'Neighbor list' in isolation."""
    model = CycleCostModel()
    el = ELEMENTS["Ta"]

    def rates():
        out = []
        for k in (1, 2, 5, 10, 20):
            opt = OptimizationConfig(name=f"reuse{k}",
                                     neighbor_list_reuse=k)
            out.append((k, model.with_opt(opt).steps_per_second(
                el.candidates, el.interactions, el.neighborhood_b)))
        return out

    out = benchmark(rates)
    table = Table(
        "Ablation - neighbor-list reuse interval (Ta)",
        ["reuse every k steps", "steps/s"],
    )
    for k, r in out:
        table.add_row(k, round(r))
    table.print()
    rates_only = [r for _, r in out]
    assert all(b > a for a, b in zip(rates_only, rates_only[1:]))
    # diminishing returns: candidate cost is amortized away
    assert rates_only[-1] / rates_only[0] < 2.2
