"""E1 — Table I: predicted and measured performance for 800k-atom models.

Regenerates every column of Table I: the linear-model prediction, the
"measured" WSE rate (here: the lockstep machine's cycle accounting on a
scaled-down slab with the paper's per-atom work counts priced at full
scale), the Frontier and Quartz baselines, and the speedup ratios.
"""

import pytest

from common import N_PAPER_ATOMS, PAPER_TABLE1, element_wse_sim
from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
from repro.core.cycle_model import CycleCostModel
from repro.io.table_io import Table
from repro.perfmodel.linear import PAPER_TABLE2
from repro.potentials.elements import ELEMENTS


def build_table1() -> Table:
    model = CycleCostModel()
    table = Table(
        "Table I - 801,792-atom models: timesteps per second",
        ["element", "inter/cand", "predicted", "measured(sim)",
         "error %", "Frontier", "Quartz", "vs GPU", "vs CPU",
         "paper meas."],
    )
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        predicted = PAPER_TABLE2.steps_per_second(
            el.candidates, el.interactions
        )
        measured = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        gpu, _ = FRONTIER_MODELS[sym].best_rate(N_PAPER_ATOMS)
        cpu, _ = QUARTZ_MODELS[sym].best_rate(N_PAPER_ATOMS)
        table.add_row(
            sym,
            f"{el.interactions}/{el.candidates}",
            round(predicted),
            round(measured),
            f"{100 * abs(predicted - measured) / measured:.1f}",
            round(gpu),
            round(cpu),
            f"{measured / gpu:.0f}x",
            f"{measured / cpu:.0f}x",
            PAPER_TABLE1[sym]["measured"],
        )
    return table


def test_table1_rows_print_and_match(benchmark):
    table = benchmark(build_table1)
    table.print()
    for row in table.rows:
        sym = row[0]
        assert row[3] == pytest.approx(
            PAPER_TABLE1[sym]["measured"], rel=0.05
        )


def test_table1_lockstep_functional_run(benchmark, capsys):
    """Drive the actual lockstep machine on a scaled-down Ta slab."""
    sim = element_wse_sim("Ta", scale=0.04)

    def one_step():
        sim.step(1)
        return sim.measured_rate()

    rate = benchmark(one_step)
    cand, inter = sim.mean_counts()
    with capsys.disabled():
        print(
            f"\n[lockstep Ta, N={sim.n_atoms}, our mapping b={sim.b}] "
            f"mean cand/int = {cand:.0f}/{inter:.1f}, "
            f"modeled machine rate = {rate:,.0f} steps/s "
            f"(paper-counts prediction: 271,585)"
        )
    assert rate > 100_000
