"""E2/E13 — Table II: linear regression of time per timestep.

Runs the paper's controlled parameter sweep (Sec. IV-B type 2): atoms on
a regular 2-D grid, one per core, zero timestep constant, varying the
neighborhood size (candidate count) and effective cutoff (interaction
count).  Fits ``t = A n_candidate + B n_interaction + C`` and reports
the constants, plus the timestep-time stability statistics of Sec. V-B.
"""

import numpy as np
import pytest

from common import controlled_grid_sim
from repro.io.table_io import Table
from repro.perfmodel.linear import PAPER_TABLE2, fit_linear_model
from repro.potentials.elements import make_element_potential


def run_sweep():
    pot = make_element_potential("Ta")
    cutoff = pot.cutoff
    n_cand, n_int, t_ns = [], [], []
    for b in (2, 3, 4, 5, 6, 7):
        # spacing controls how many grid neighbors fall inside the cutoff
        for spacing in (cutoff / 3.2, cutoff / 2.2, cutoff / 1.6,
                        cutoff / 1.1):
            side = max(2 * b + 3, 14)
            sim = controlled_grid_sim(side, b, spacing, pot)
            sim.step(1)
            occ = sim.occ
            # interior tiles only: full neighborhoods, as on the wafer
            interior = np.zeros_like(occ)
            interior[b:-b, b:-b] = True
            cand = float(sim.last_candidates[occ & interior].mean())
            inter = float(sim.last_interactions[occ & interior].mean())
            cycles = sim.cost_model.step_cycles(cand, inter, b)
            n_cand.append(cand)
            n_int.append(inter)
            t_ns.append(cycles * sim.cost_model.machine.cycle_ns)
    return np.array(n_cand), np.array(n_int), np.array(t_ns)


def test_table2_regression(benchmark):
    n_cand, n_int, t_ns = run_sweep()
    fit = benchmark(fit_linear_model, n_cand, n_int, t_ns)

    table = Table(
        "Table II - linear regression of time per timestep",
        ["constant", "fitted (this repo)", "paper"],
    )
    table.add_row("A per candidate (ns)", f"{fit.a_candidate:.1f}", 26.6)
    table.add_row("B per interaction (ns)", f"{fit.b_interaction:.1f}", 71.4)
    table.add_row("C fixed (ns)", f"{fit.c_fixed:.1f}", 574.0)
    table.add_row("r^2", f"{fit.r_squared:.5f}", 0.9998)
    table.print()

    assert fit.a_candidate == pytest.approx(PAPER_TABLE2.a_candidate, rel=0.10)
    assert fit.b_interaction == pytest.approx(
        PAPER_TABLE2.b_interaction, rel=0.05
    )
    assert fit.c_fixed == pytest.approx(PAPER_TABLE2.c_fixed, rel=0.20)
    assert fit.r_squared > 0.999


def test_timestep_stability(benchmark, capsys):
    """Sec. V-B: per-tile 0.11% std; array-averaged 91 ppm."""
    pot = make_element_potential("Ta")

    def run():
        sim = controlled_grid_sim(
            16, 4, pot.cutoff / 2.0, pot, jitter_rel=0.0011, seed=7
        )
        sim.step(40)
        return sim.trace

    trace = benchmark(run)
    data = trace.as_array()
    per_tile_rel = float(data.std(axis=0).mean() / data.mean())
    array_rel = float(data.mean(axis=1).std() / data.mean())
    with capsys.disabled():
        print(
            f"\n[stability] per-tile std: {100 * per_tile_rel:.3f}% "
            f"(paper 0.11%);  array-averaged: {1e6 * array_rel:.0f} ppm "
            f"(paper 91 ppm)"
        )
    assert per_tile_rel == pytest.approx(0.0011, rel=0.5)
    assert array_rel < per_tile_rel
