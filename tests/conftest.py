"""Shared fixtures: cached potentials and small benchmark workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice.slab import make_slab
from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.elements import ELEMENTS, make_element_potential


@pytest.fixture(scope="session")
def ta_potential():
    return make_element_potential("Ta")


@pytest.fixture(scope="session")
def cu_potential():
    return make_element_potential("Cu")


@pytest.fixture(scope="session")
def w_potential():
    return make_element_potential("W")


@pytest.fixture(scope="session")
def element_potentials(ta_potential, cu_potential, w_potential):
    return {"Ta": ta_potential, "Cu": cu_potential, "W": w_potential}


def small_slab_state(
    element: str = "Ta",
    reps: tuple[int, int, int] = (6, 6, 3),
    temperature: float = 290.0,
    seed: int = 7,
    margin_cutoffs: float = 4.0,
) -> AtomsState:
    """A small open-boundary thin-slab state for functional tests."""
    el = ELEMENTS[element]
    slab = make_slab(el.cell, el.lattice_constant, reps)
    box = Box.open(slab.box + margin_cutoffs * el.cutoff)
    state = AtomsState.from_positions(slab.positions, box, mass=el.mass)
    if temperature > 0:
        maxwell_boltzmann_velocities(
            state, temperature, np.random.default_rng(seed)
        )
    return state


def bulk_state(
    element: str = "Ta",
    reps: tuple[int, int, int] = (4, 4, 4),
    temperature: float = 0.0,
    seed: int = 7,
) -> AtomsState:
    """A fully periodic bulk crystal state."""
    from repro.lattice.crystals import replicate

    el = ELEMENTS[element]
    crystal = replicate(el.cell, el.lattice_constant, reps)
    box = Box(crystal.box, periodic=[True, True, True], origin=np.zeros(3))
    state = AtomsState.from_positions(crystal.positions, box, mass=el.mass)
    if temperature > 0:
        maxwell_boltzmann_velocities(
            state, temperature, np.random.default_rng(seed)
        )
    return state


@pytest.fixture()
def ta_slab_state():
    return small_slab_state("Ta")


@pytest.fixture()
def ta_bulk_state():
    return bulk_state("Ta")
