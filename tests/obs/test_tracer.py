"""Tracer unit tests: nesting, self-time, sinks, JSONL round trip."""

import pytest

from repro.obs import (
    ENGINE_PHASES,
    NULL_TRACER,
    PHASES,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
    read_trace,
    render_phase_table,
    required_phases,
)


class FakeClock:
    """Deterministic clock: each call advances by the queued deltas."""

    def __init__(self, times):
        self.times = list(times)

    def __call__(self):
        return self.times.pop(0)


class TestSpanAccounting:
    def test_flat_span_self_time_equals_duration(self):
        tr = Tracer(clock=FakeClock([0.0, 2.0]))
        with tr.phase("neighbor"):
            pass
        assert tr.phase_totals() == {"neighbor": 2.0}
        assert tr.total_s() == 2.0

    def test_nested_child_time_subtracted_from_parent(self):
        # parent opens at 0, child runs [1, 4], parent closes at 10
        tr = Tracer(clock=FakeClock([0.0, 1.0, 4.0, 10.0]))
        with tr.phase("exchange"):
            with tr.phase("neighbor"):
                pass
        totals = tr.phase_totals()
        assert totals["neighbor"] == 3.0
        assert totals["exchange"] == 7.0  # 10 - child's 3
        # phase totals tile the traced wall exactly
        assert sum(totals.values()) == tr.total_s() == 10.0

    def test_record_credits_child_time_of_open_span(self):
        # span opens at 0, record() observes "now"=5, span closes at 8
        tr = Tracer(clock=FakeClock([0.0, 5.0, 8.0]))
        with tr.phase("exchange"):
            tr.record("neighbor", 2.0, {"offsets": 9})
        totals = tr.phase_totals()
        assert totals["neighbor"] == 2.0
        assert totals["exchange"] == 6.0
        assert sum(totals.values()) == tr.total_s() == 8.0

    def test_totals_accumulate_across_steps(self):
        tr = Tracer(clock=FakeClock([0.0, 1.0, 5.0, 7.0]))
        with tr.phase("density"):
            pass
        with tr.phase("density"):
            pass
        assert tr.phase_totals() == {"density": 3.0}
        assert tr.span_count == 2

    def test_reset_zeroes_totals_and_rejects_open_spans(self):
        tr = Tracer()
        with tr.phase("density"):
            with pytest.raises(RuntimeError, match="open spans"):
                tr.reset()
        tr.reset()
        assert tr.phase_totals() == {}
        assert tr.total_s() == 0.0


class TestSinks:
    def test_list_sink_sees_paths_and_counters(self):
        sink = ListSink()
        tr = Tracer(sinks=[sink])
        with tr.phase("exchange") as ph:
            ph.add(offsets=9)
            with tr.phase("neighbor", pairs=4):
                pass
        names = [s.name for s in sink.spans]
        assert names == ["neighbor", "exchange"]  # children close first
        assert sink.spans[0].path == "exchange/neighbor"
        assert sink.spans[0].depth == 1
        assert sink.spans[0].counters == {"pairs": 4}
        assert sink.spans[1].counters == {"offsets": 9}

    def test_jsonl_round_trip_with_static_fields(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, static={"engine": "wse"})
        sink.write_meta(spec={"element": "Ta"})
        tr = Tracer(sinks=[sink])
        with tr.phase("density", candidates=12):
            pass
        sink.close()
        records = read_trace(path)
        assert records[0]["type"] == "meta"
        assert records[0]["engine"] == "wse"
        span = records[1]
        assert span["type"] == "span"
        assert span["name"] == "density"
        assert span["engine"] == "wse"
        assert span["counters"] == {"candidates": 12}

    def test_read_trace_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)

    def test_shared_filehandle_not_closed_by_sink(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        with open(path, "w") as fh:
            JsonlSink(fh, static={"engine": "reference"}).close()
            assert not fh.closed

    def test_render_phase_table_has_total_row(self):
        text = render_phase_table("t", {"neighbor": 0.75, "density": 0.25},
                                  wall_s=1.0)
        assert "neighbor" in text
        assert "(total)" in text
        assert "100.0%" in text


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        tr = NULL_TRACER
        assert isinstance(tr, NullTracer)
        assert not tr.enabled
        with tr.phase("density", pairs=1) as ph:
            ph.add(more=2)
        tr.record("neighbor", 1.0)
        assert tr.phase_totals() == {}
        assert tr.total_s() == 0.0
        tr.reset()

    def test_null_tracer_rejects_sinks(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.add_sink(ListSink())


class TestTaxonomy:
    def test_engine_phases_subset_of_taxonomy(self):
        for phases in ENGINE_PHASES.values():
            assert set(phases) <= set(PHASES)

    def test_swap_required_only_when_enabled(self):
        assert "swap" not in required_phases("wse", swap_interval=0)
        assert "swap" in required_phases("wse", swap_interval=10)
        assert "swap" not in required_phases("reference", swap_interval=10)
