"""Metrics registry unit tests (``repro.obs.metrics``)."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, metrics


class TestCounter:
    def test_increments_accumulate(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        assert reg.counter("a").value == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="must be >= 0"):
            reg.counter("a").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_streaming_moments_match_numpy(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        samples = np.array([1.0, 2.0, 4.0, 8.0])
        for s in samples[:2]:
            h.observe(s)
        h.observe_many(samples[2:])
        assert h.count == 4
        assert h.mean == pytest.approx(samples.mean())
        assert h.std == pytest.approx(samples.std())
        assert h.min == 1.0 and h.max == 8.0

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}

    def test_observe_many_empty_is_noop(self):
        h = MetricsRegistry().histogram("h")
        h.observe_many(np.array([]))
        assert h.count == 0

    def test_summary_is_json_ready(self):
        import json

        h = MetricsRegistry().histogram("h")
        h.observe_many([1.0, 2.0])
        json.dumps(h.summary())


class TestRegistry:
    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.histogram("x")

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(1.0)
        snap = reg.as_dict()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_in_place_keeps_registry_identity(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.as_dict()["counters"] == {}
        # a fresh instrument starts from zero after reset
        assert reg.counter("c").value == 0.0

    def test_process_registry_shared(self):
        assert metrics() is metrics()
