"""Profile reduction tests: phase coverage + Table II fit recovery."""

import pytest

from repro.obs import metrics, required_phases
from repro.obs.profile import (
    expected_linear_constants,
    fit_traced_linear,
    profile_spec,
)
from repro.obs.sinks import read_trace
from repro.runtime.spec import RunSpec


@pytest.fixture()
def tiny_spec():
    return RunSpec(
        element="Ta",
        reps=(5, 5, 2),
        steps=6,
        swap_interval=3,
        force_symmetry=True,
    )


class TestRequiredPhases:
    def test_overlapped_adds_the_overlap_spans(self):
        base = required_phases("reference", sharded=True)
        over = required_phases("reference", sharded=True, overlapped=True)
        assert "halo_exchange" in base
        assert "parallel.halo_wait" not in base
        assert set(over) == set(base) | {
            "parallel.halo_wait", "parallel.overlap",
        }

    def test_overlapped_requires_sharded(self):
        # a serial (or wse) run never owes the overlap spans, whatever
        # the caller passes for overlapped
        assert "parallel.overlap" not in required_phases(
            "reference", overlapped=True
        )
        assert "parallel.overlap" not in required_phases(
            "wse", overlapped=True
        )


class TestProfileSpec:
    def test_both_engines_emit_required_phases(self, tiny_spec, tmp_path):
        metrics().reset()
        trace = tmp_path / "trace.jsonl"
        profiles = profile_spec(tiny_spec, trace_path=str(trace))
        assert set(profiles) == {"reference", "wse"}
        for name, prof in profiles.items():
            assert prof.missing_phases == ()
            assert prof.steps == 6
            assert prof.wall_s > 0
            required = required_phases(name, swap_interval=3)
            assert set(required) <= set(prof.phase_seconds)
        # the shared trace parses and carries both engines' spans
        records = read_trace(trace)
        engines = {r.get("engine") for r in records}
        assert engines == {"reference", "wse"}
        assert any(r["type"] == "meta" for r in records)

    def test_phase_seconds_tile_traced_wall(self, tiny_spec):
        metrics().reset()
        profiles = profile_spec(tiny_spec, engines=("reference",))
        prof = profiles["reference"]
        # self-times sum to the traced total by construction; coverage
        # against the engine wall clock is timing-dependent, so just
        # require the envelope to account for most of it
        assert prof.coverage > 0.5
        assert prof.coverage < 1.5

    def test_wse_fit_recovers_cycle_model_constants(self, tiny_spec):
        metrics().reset()
        profiles = profile_spec(tiny_spec, engines=("wse",))
        prof = profiles["wse"]
        assert prof.fit is not None
        errors = prof.fit_rel_errors()
        # jitter_rel defaults to 0 -> traced cycles are exactly linear
        assert max(errors.values()) < 1e-6

    def test_steps_override(self, tiny_spec):
        metrics().reset()
        profiles = profile_spec(tiny_spec, engines=("reference",), steps=2)
        assert profiles["reference"].steps == 2

    def test_wse_fit_at_scale_within_5_percent(self):
        # the streaming sweeps must keep feeding true per-tile
        # candidate/interaction counts into the Table II fit at the
        # >=10k-atom grids the scaling CI leg watches
        metrics().reset()
        spec = RunSpec(
            element="Ta", reps=(48, 48, 3), steps=3, force_symmetry=True
        )
        profiles = profile_spec(spec, engines=("wse",))
        prof = profiles["wse"]
        assert prof.counters["n_atoms"] >= 10_000
        assert prof.missing_phases == ()
        errors = prof.fit_rel_errors()
        assert max(errors.values()) < 0.05
        # the streaming phases still tile the wall time at scale
        assert prof.coverage > 0.9


class TestFitHelpers:
    def test_expected_constants_from_cycle_model(self, tiny_spec):
        from repro.runtime.engines import build_engine

        engine = build_engine(tiny_spec.with_engine("wse"))
        sim = engine.sim
        expected = expected_linear_constants(sim)
        ns = sim.cost_model.machine.cycle_ns
        assert expected["a_candidate"] == pytest.approx(
            sim.cost_model.candidate_cycles(pbc=sim.pbc_inplane) * ns
        )
        assert expected["b_interaction"] == pytest.approx(
            sim.cost_model.interaction_cycles() * ns
        )

    def test_fit_none_without_trace_counts(self, tiny_spec):
        from repro.runtime.engines import build_engine

        engine = build_engine(tiny_spec.with_engine("wse"))
        # no steps run yet -> the cycle trace has no samples
        assert fit_traced_linear(engine.sim) is None
