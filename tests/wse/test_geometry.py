"""Tile grid geometry tests."""

import numpy as np
import pytest

from repro.wse.geometry import TileGrid


class TestGrid:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TileGrid(0, 5)

    def test_flatten_unflatten_roundtrip(self):
        g = TileGrid(7, 11)
        idx = np.arange(g.n_tiles)
        x, y = g.unflatten(idx)
        assert np.array_equal(g.flatten(x, y), idx)

    def test_contains(self):
        g = TileGrid(4, 4)
        assert g.contains(0, 0)
        assert g.contains(3, 3)
        assert not g.contains(4, 0)
        assert not g.contains(-1, 2)

    def test_max_norm_distance(self):
        assert TileGrid.max_norm_distance(0, 0, 3, 2) == 3
        assert TileGrid.max_norm_distance(5, 5, 5, 5) == 0


class TestNeighborhood:
    def test_offset_count(self):
        g = TileGrid(20, 20)
        assert len(g.neighborhood_offsets(2)) == 24  # 5^2 - 1
        assert len(g.neighborhood_offsets(7)) == 224  # paper's Cu/W
        assert len(g.neighborhood_offsets(4)) == 80  # paper's Ta

    def test_center_inclusion(self):
        g = TileGrid(10, 10)
        offs = g.neighborhood_offsets(1, include_center=True)
        assert len(offs) == 9
        assert any((o == [0, 0]).all() for o in offs)

    def test_offsets_within_max_norm(self):
        g = TileGrid(10, 10)
        offs = g.neighborhood_offsets(3)
        assert np.all(np.abs(offs).max(axis=1) <= 3)
        # complete: every in-range offset present exactly once
        assert len(np.unique(offs, axis=0)) == len(offs) == 48

    def test_neighborhood_clipped_at_edges(self):
        g = TileGrid(5, 5)
        pts = g.neighborhood(0, 0, 2)
        assert len(pts) == 9  # 3x3 corner
        pts = g.neighborhood(2, 2, 2)
        assert len(pts) == 25

    def test_deterministic_arrival_order(self):
        """Offsets iterate raster-style: dy major, dx minor."""
        g = TileGrid(10, 10)
        offs = g.neighborhood_offsets(1)
        assert offs.tolist() == [
            [-1, -1], [0, -1], [1, -1],
            [-1, 0], [1, 0],
            [-1, 1], [0, 1], [1, 1],
        ]


class TestStrips:
    def test_partition_exact(self):
        g = TileGrid(12, 4)
        strips = g.strips(3)
        assert strips == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_final_strip_narrow(self):
        g = TileGrid(10, 4)
        strips = g.strips(4)
        assert strips[-1] == (8, 10)

    def test_covers_all_columns(self):
        g = TileGrid(17, 3)
        covered = set()
        for a, b in g.strips(5):
            covered.update(range(a, b))
        assert covered == set(range(17))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            TileGrid(5, 5).strips(0)
