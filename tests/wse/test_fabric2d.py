"""Wavelet-level 2-D exchange vs the shift-based functional exchange."""

import pytest

from repro.core.exchange import neighborhood_sources
from repro.wse.fabric2d import ExchangeFabric2D
from repro.wse.geometry import TileGrid
from repro.wse.multicast import exchange_cycle_model


class TestExchange2D:
    @pytest.mark.parametrize("b", [1, 2, 3])
    def test_full_neighborhood_delivered(self, b):
        g = TileGrid(4 * (b + 1) + 1, 3 * (b + 1) + 2)
        result = ExchangeFabric2D(g, b, vector_len=3).run()
        for x in range(g.nx):
            for y in range(g.ny):
                flat = int(g.flatten(x, y))
                expect = neighborhood_sources(g, b, x, y)
                assert result.neighborhoods[flat] == expect, (x, y)

    def test_cycles_match_closed_form(self):
        g = TileGrid(13, 13)
        sim = ExchangeFabric2D(g, 3, vector_len=3)
        result = sim.run()
        assert result.total_cycles == sim.expected_cycles()
        assert result.total_cycles == exchange_cycle_model(3, 3)

    def test_vertical_stage_dominates(self):
        # the vertical stage carries (2b+1)x the data
        result = ExchangeFabric2D(TileGrid(12, 12), 2, vector_len=3).run()
        assert result.vertical_cycles > 2 * result.horizontal_cycles

    def test_embedding_exchange_cheaper_than_positions(self):
        g = TileGrid(12, 12)
        pos = ExchangeFabric2D(g, 2, vector_len=3).run()
        emb = ExchangeFabric2D(g, 2, vector_len=1).run()
        assert emb.total_cycles < pos.total_cycles

    def test_rejects_oversized_neighborhood(self):
        with pytest.raises(ValueError):
            ExchangeFabric2D(TileGrid(5, 5), 3)
