"""Tile core model and SRAM budget tests."""

import pytest

from repro.wse.machine import WSE2, MachineConfig
from repro.wse.tile import TABLE3_FLOPS, SramBudget, TileCoreModel
from repro.wse.trace import CycleTrace

import numpy as np


class TestMachine:
    def test_wse2_clock_from_peak(self):
        # 1.45 PFLOP/s over 850k cores at 2 FLOP/cycle -> ~853 MHz
        assert WSE2.clock_hz == pytest.approx(852.9e6, rel=0.001)

    def test_cycle_ns(self):
        assert WSE2.cycle_ns == pytest.approx(1.1724, rel=0.001)

    def test_cycles_to_seconds(self):
        assert WSE2.cycles_to_seconds(WSE2.clock_hz) == pytest.approx(1.0)

    def test_rejects_cores_exceeding_mesh(self):
        with pytest.raises(ValueError):
            MachineConfig(
                name="bad", grid_x=10, grid_y=10, usable_cores=101,
                sram_per_tile=1, power_watts=1.0, peak_flops_fp32=1.0,
            )


class TestTable3Flops:
    def test_paper_subtotals(self):
        assert TABLE3_FLOPS["candidate"].total == 9       # 6 + 3
        assert TABLE3_FLOPS["interaction"].total == 36    # 14 + 19 + 3
        assert TABLE3_FLOPS["fixed"].total == 12          # 8 + 2 + 2

    def test_at_peak_times_match_table3(self):
        """Paper: candidate 5.3 ns, interaction 21.2 ns, fixed 7.1 ns."""
        from repro.perfmodel.flops import at_peak_time_ns
        assert at_peak_time_ns(
            TABLE3_FLOPS["candidate"], 2.0, WSE2.clock_hz
        ) == pytest.approx(5.3, abs=0.1)
        assert at_peak_time_ns(
            TABLE3_FLOPS["interaction"], 2.0, WSE2.clock_hz
        ) == pytest.approx(21.2, abs=0.2)
        assert at_peak_time_ns(
            TABLE3_FLOPS["fixed"], 2.0, WSE2.clock_hz
        ) == pytest.approx(7.1, abs=0.1)


class TestSramBudget:
    def test_paper_configs_fit(self):
        budget = SramBudget()
        # Ta b=4 and Cu/W b=7 must fit in 48 kB
        assert budget.fits(4)
        assert budget.fits(7)

    def test_oversized_neighborhood_does_not_fit(self):
        assert not SramBudget().fits(25)

    def test_max_b_consistent(self):
        budget = SramBudget()
        b = budget.max_b()
        assert budget.fits(b)
        assert not budget.fits(b + 1)

    def test_budget_grows_quadratically_with_b(self):
        budget = SramBudget()
        d1 = budget.candidate_buffers(4)
        d2 = budget.candidate_buffers(8)
        assert d2 / d1 == pytest.approx((17 / 9) ** 2, rel=0.01)


class TestTileCoreModel:
    def test_flops_per_step_ta(self):
        model = TileCoreModel()
        # Ta: 9*80 + 36*14 + 12 = 1236 FLOPs per atom-step
        assert model.flops_per_step(80, 14) == 1236

    def test_cycle_costs_exceed_at_peak(self):
        model = TileCoreModel()
        assert model.candidate_cycles() > 9 / 2
        assert model.interaction_cycles() > 36 / 2
        assert model.fixed_cycles() > 12 / 2


class TestCycleTrace:
    def test_stability_reductions(self):
        rng = np.random.default_rng(0)
        trace = CycleTrace(n_tiles=100)
        base = 3477.0
        for _ in range(50):
            trace.record(base * (1 + 0.0011 * rng.standard_normal(100)))
        rep = trace.stability()
        # array-averaging shrinks the std by ~sqrt(n_tiles)
        assert rep.array_avg_rel < rep.per_tile_rel / 5
        assert rep.per_tile_rel == pytest.approx(0.0011, rel=0.3)

    def test_step_cycles_max_vs_mean(self):
        trace = CycleTrace(4)
        trace.record([10.0, 20.0, 30.0, 40.0])
        assert trace.step_cycles(reduce="max")[0] == 40.0
        assert trace.step_cycles(reduce="mean")[0] == 25.0
        assert trace.total_cycles() == 40.0

    def test_shape_validation(self):
        trace = CycleTrace(3)
        with pytest.raises(ValueError):
            trace.record([1.0, 2.0])

    def test_empty_trace_raises(self):
        with pytest.raises(RuntimeError):
            CycleTrace(2).as_array()
