"""Event-level fabric simulation: the marching multicast, wavelet by wavelet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wse.fabric import ChainFabric, MulticastChainSim
from repro.wse.multicast import (
    MarchingMulticastSchedule,
    exchange_cycle_model,
    stage_cycles,
)
from repro.wse.router import MarchingRouter, RouterState, advance_command_list
from repro.wse.wavelet import RouterCommand, Wavelet, WaveletKind


class TestRouter:
    def test_head_accepts_core_data(self):
        r = MarchingRouter(state=RouterState.HEAD)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        out, delivered = r.route(w, from_core=True)
        assert out == [w] and not delivered

    def test_body_delivers_and_forwards(self):
        r = MarchingRouter(state=RouterState.BODY)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        out, delivered = r.route(w, from_core=False)
        assert out == [w] and delivered

    def test_tail_delivers_only(self):
        r = MarchingRouter(state=RouterState.TAIL)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        out, delivered = r.route(w, from_core=False)
        assert out == [] and delivered

    def test_non_head_core_injection_rejected(self):
        r = MarchingRouter(state=RouterState.BODY)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        with pytest.raises(RuntimeError, match="only the head"):
            r.route(w, from_core=True)

    def test_advance_promotes_body_next(self):
        r = MarchingRouter(state=RouterState.BODY_NEXT)
        w = Wavelet(kind=WaveletKind.COMMAND, vc=0, src=0,
                    commands=advance_command_list(3))
        out, _ = r.route(w, from_core=False)
        assert r.state is RouterState.HEAD
        assert len(out) == 1 and len(out[0].commands) == 2

    def test_reset_returns_tail_to_body_and_consumes(self):
        r = MarchingRouter(state=RouterState.TAIL)
        w = Wavelet(kind=WaveletKind.COMMAND, vc=0, src=0,
                    commands=[RouterCommand.RESET])
        out, _ = r.route(w, from_core=False)
        assert r.state is RouterState.BODY
        assert out == []

    def test_finish_transmission_head_to_tail(self):
        r = MarchingRouter(state=RouterState.HEAD)
        r.finish_transmission()
        assert r.state is RouterState.TAIL

    def test_finish_on_non_head_rejected(self):
        with pytest.raises(RuntimeError):
            MarchingRouter(state=RouterState.BODY).finish_transmission()

    def test_command_list_sizing(self):
        assert len(advance_command_list(1)) == 1
        assert len(advance_command_list(4)) == 4
        with pytest.raises(ValueError):
            advance_command_list(0)


class TestSchedule:
    def test_phase_count(self):
        assert MarchingMulticastSchedule(b=3).n_phases == 4

    def test_roles_shift_each_phase(self):
        s = MarchingMulticastSchedule(b=3)
        assert s.role_at(0, 0) == "head"
        assert s.role_at(1, 1) == "head"
        assert s.role_at(0, 1) == "tail"  # old head becomes tail
        assert s.role_at(3, 1) == "body"  # old tail becomes body

    def test_every_column_heads_exactly_once(self):
        s = MarchingMulticastSchedule(b=4)
        for col in range(20):
            heads = [
                p for p in range(s.n_phases) if s.role_at(col, p) == "head"
            ]
            assert len(heads) == 1

    def test_conflict_free(self):
        for b in (1, 2, 3, 5, 7):
            assert MarchingMulticastSchedule(b=b).link_conflict_free(64)

    def test_senders_spaced_by_strip_width(self):
        s = MarchingMulticastSchedule(b=3)
        senders = s.senders_in_phase(2, 20)
        assert all(b2 - a == 4 for a, b2 in zip(senders, senders[1:]))


class TestChainFabric:
    @pytest.mark.parametrize("b", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("vector_len", [1, 3])
    def test_cycles_match_closed_form(self, b, vector_len):
        n = 3 * (b + 1) + 2
        res = ChainFabric(n, b, vector_len).run()
        assert res.cycles == stage_cycles(vector_len, b)

    @pytest.mark.parametrize("b", [1, 2, 4, 7])
    def test_exactly_once_delivery(self, b):
        n = 4 * (b + 1) + 1
        res = ChainFabric(n, b, 3).run()
        for t in range(n):
            # every tile receives each of the b upstream tiles' vectors once
            expect = list(range(max(0, t - b), t))
            got = [src for src, _ in res.received[t]]
            assert sorted(set(got)) == expect
            assert len(got) == len(expect) * 3  # all words delivered

    def test_words_arrive_in_order_per_source(self):
        res = ChainFabric(12, 3, 4).run()
        for t in range(12):
            per_src = {}
            for src, seq in res.received[t]:
                per_src.setdefault(src, []).append(seq)
            for seqs in per_src.values():
                assert seqs == sorted(seqs) == list(range(4))

    def test_link_busy_accounting(self):
        # every tile's vector travels b hops: total link-cycles >= n*b*L
        n, b, L = 14, 2, 3
        res = ChainFabric(n, b, L).run()
        interior_transfers = sum(
            min(b, n - 1 - t) * L for t in range(n)
        )
        assert res.link_busy_cycles >= interior_transfers

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ChainFabric(1, 1, 3)
        with pytest.raises(ValueError):
            ChainFabric(10, 0, 3)
        with pytest.raises(ValueError):
            ChainFabric(5, 5, 3)
        with pytest.raises(ValueError):
            ChainFabric(10, 2, 0)

    @given(b=st.integers(1, 6), L=st.integers(1, 8), chains=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_schedule_always_clean(self, b, L, chains):
        """No contention, full coverage, closed-form cycles — any config."""
        n = chains * (b + 1) + 1
        res = ChainFabric(n, b, L).run()  # raises on link contention
        assert res.cycles == stage_cycles(L, b)
        for t in range(n):
            got = {src for src, _ in res.received[t]}
            assert got == set(range(max(0, t - b), t))


class TestBidirectional:
    def test_sources_cover_both_directions(self):
        cyc, sources = MulticastChainSim(15, 3, 3).run()
        assert cyc == stage_cycles(3, 3)
        assert sorted(sources[7]) == [4, 5, 6, 8, 9, 10]

    def test_edge_tiles_have_truncated_neighborhoods(self):
        _, sources = MulticastChainSim(10, 3, 1).run()
        assert sorted(sources[0]) == [1, 2, 3]
        assert sorted(sources[9]) == [6, 7, 8]


class TestExchangeModel:
    def test_exchange_is_two_stages(self):
        for b in (2, 4, 7):
            assert exchange_cycle_model(3, b) == (
                stage_cycles(3, b) + stage_cycles((2 * b + 1) * 3, b)
            )

    def test_vertical_stage_carries_row_segment(self):
        # the vertical stage's vector is (2b+1) x the horizontal one
        assert exchange_cycle_model(1, 2) == stage_cycles(1, 2) + stage_cycles(5, 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            stage_cycles(0, 2)
        with pytest.raises(ValueError):
            stage_cycles(3, 0)
