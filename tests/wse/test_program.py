"""Tile program (thread/vector-move) model tests."""

import pytest

from repro.wse.program import (
    StreamKind,
    TileProgram,
    VectorMove,
    exchange_program,
)


class TestVectorMove:
    def test_send_receive_classification(self):
        s = VectorMove("s", StreamKind.MEMORY, StreamKind.FABRIC_TX, 3)
        r = VectorMove("r", StreamKind.FABRIC_RX, StreamKind.MEMORY, 3)
        assert s.is_send and not r.is_send

    def test_fabric_to_fabric_rejected(self):
        with pytest.raises(ValueError, match="memory"):
            VectorMove("bad", StreamKind.FABRIC_RX, StreamKind.FABRIC_TX, 3)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            VectorMove("bad", StreamKind.MEMORY, StreamKind.FABRIC_TX, -1)


class TestScheduler:
    def test_single_send_takes_length_cycles(self):
        prog = TileProgram([
            VectorMove("s", StreamKind.MEMORY, StreamKind.FABRIC_TX, 10)
        ])
        result = prog.run()
        assert result.cycles == 10
        assert result.per_thread_active["s"] == 10

    def test_duplicate_thread_names_rejected(self):
        mv = VectorMove("s", StreamKind.MEMORY, StreamKind.FABRIC_TX, 1)
        mv2 = VectorMove("s", StreamKind.MEMORY, StreamKind.FABRIC_TX, 1)
        with pytest.raises(ValueError, match="duplicate"):
            TileProgram([mv, mv2])

    def test_threads_overlap(self):
        """Four threads of equal length finish together, not serially."""
        prog = exchange_program(b=4, vector_len=3)
        result = prog.run()
        # wall time is set by the longest thread (the 12-word receives),
        # not the 30-word total
        assert result.cycles == 12
        assert result.overlap_factor > 2.0

    def test_receive_limited_by_arrival_rate(self):
        prog = TileProgram([
            VectorMove("r", StreamKind.FABRIC_RX, StreamKind.MEMORY, 10)
        ])
        result = prog.run(rx_rate=0.5)
        assert result.cycles == pytest.approx(20, abs=2)

    def test_short_receive_terminates(self):
        """Edge tiles receive fewer records; the thread ends early."""
        prog = TileProgram([
            VectorMove("r", StreamKind.FABRIC_RX, StreamKind.MEMORY, 12)
        ])
        result = prog.run(rx_words={"r": 6})
        assert result.per_thread_active["r"] == 6

    def test_stuck_program_detected(self):
        prog = TileProgram([
            VectorMove("r", StreamKind.FABRIC_RX, StreamKind.MEMORY, 5)
        ])
        with pytest.raises(RuntimeError, match="stuck"):
            prog.run(rx_rate=0.0, max_cycles=100)


class TestExchangeProgram:
    def test_thread_structure_matches_paper(self):
        """Sec. III-B: four threads, one send/receive per channel."""
        prog = exchange_program(b=7, vector_len=3)
        sends = [m for m in prog.moves if m.is_send]
        recvs = [m for m in prog.moves if not m.is_send]
        assert len(sends) == 2 and len(recvs) == 2
        assert all(m.length == 3 for m in sends)
        assert all(m.length == 21 for m in recvs)

    def test_exchange_occupancy_below_schedule_budget(self):
        """Per-tile thread work fits inside the marching schedule time."""
        from repro.wse.multicast import stage_cycles
        for b in (2, 4, 7):
            prog = exchange_program(b, 3)
            result = prog.run(rx_rate=1.0)
            assert result.cycles <= stage_cycles(3, b)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            exchange_program(0, 3)
