"""Virial stress / pressure tests."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.md.state import AtomsState
from repro.md.stress import pair_virial, pressure
from repro.lattice.crystals import replicate
from repro.potentials.base import PairTable
from repro.potentials.elements import ELEMENTS, make_element_potential


def bulk(symbol, scale=1.0):
    el = ELEMENTS[symbol]
    a = el.lattice_constant * scale
    crystal = replicate(el.cell, a, (4, 4, 4))
    box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
    state = AtomsState.from_positions(crystal.positions, box, mass=el.mass)
    pot = make_element_potential(symbol)
    i, j, rij, r = all_pairs(state.positions, pot.cutoff, box)
    return state, pot, PairTable(i=i, j=j, rij=rij, r=r)


class TestPressure:
    @pytest.mark.parametrize("symbol", ["Cu", "Ta"])
    def test_equilibrium_is_stress_free(self, symbol):
        state, pot, pairs = bulk(symbol)
        p = pressure(state, pot, pairs)
        # |P| well under 0.1 GPa at the construction's equilibrium
        assert abs(p) < 0.1 / 160.2

    def test_compression_gives_positive_pressure(self):
        state, pot, pairs = bulk("Ta", scale=0.98)
        assert pressure(state, pot, pairs) > 0

    def test_tension_gives_negative_pressure(self):
        state, pot, pairs = bulk("Ta", scale=1.02)
        assert pressure(state, pot, pairs) < 0

    def test_pressure_slope_matches_bulk_modulus(self):
        """B = -V dP/dV: finite-difference the EOS around equilibrium."""
        el = ELEMENTS["Ta"]
        eps = 0.004
        p_lo = pressure(*bulk("Ta", scale=1.0 - eps))
        p_hi = pressure(*bulk("Ta", scale=1.0 + eps))
        # dV/V = 3 ds/s; B = -dP / (dV/V)
        b_est = -(p_hi - p_lo) / (6.0 * eps)
        assert b_est == pytest.approx(el.bulk_modulus, rel=0.08)


class TestVirialTensor:
    def test_isotropic_in_cubic_crystal(self):
        state, pot, pairs = bulk("Cu", scale=0.98)
        w = pair_virial(pot, state.n_atoms, pairs, state.types).sum(axis=0)
        assert w[0, 0] == pytest.approx(w[1, 1], rel=1e-6)
        assert w[1, 1] == pytest.approx(w[2, 2], rel=1e-6)
        off = np.abs(w - np.diag(np.diag(w))).max()
        assert off < 1e-8 * abs(w[0, 0])

    def test_isolated_pair_virial(self):
        """Two-atom system: virial equals -1/2 r (x) f per atom."""
        pot = make_element_potential("Ta")
        pos = np.array([[0.0, 0.0, 0.0], [2.9, 0.0, 0.0]])
        box = Box.open([50, 50, 50])
        i, j, rij, r = all_pairs(pos, pot.cutoff, box)
        pairs = PairTable(i=i, j=j, rij=rij, r=r)
        w = pair_virial(pot, 2, pairs)
        _, forces = pot.compute(2, pairs)
        # W_1 = 1/2 (r_1 - r_0) (x) f_1
        expect = 0.5 * (pos[1] - pos[0])[0] * forces[1][0]
        # each atom carries half of the pair's xx virial
        assert w[0, 0, 0] == pytest.approx(expect, rel=1e-10)
        assert w[1, 0, 0] == pytest.approx(expect, rel=1e-10)

    def test_empty_pairs(self):
        pot = make_element_potential("Ta")
        pairs = PairTable(i=np.empty(0, int), j=np.empty(0, int),
                          rij=np.empty((0, 3)), r=np.empty(0))
        w = pair_virial(pot, 3, pairs)
        assert np.all(w == 0)
