"""Integrator tests: exactness on analytic problems, symplectic behaviour."""

import numpy as np
import pytest

from repro.constants import MVV2E
from repro.md.boundary import Box
from repro.md.integrators import LeapfrogVerlet, VelocityVerlet, accelerations
from repro.md.state import AtomsState


def free_particle_state(v=1.5):
    return AtomsState(
        positions=np.zeros((1, 3)),
        velocities=np.array([[v, 0.0, 0.0]]),
        types=np.zeros(1, dtype=int),
        masses=np.array([10.0]),
        box=Box.open([100, 100, 100]),
    )


class TestAccelerations:
    def test_unit_conversion(self):
        s = free_particle_state()
        f = np.array([[1.0, 0.0, 0.0]])  # eV/A
        a = accelerations(s, f)
        assert a[0, 0] == pytest.approx(1.0 / (10.0 * MVV2E))

    def test_shape_mismatch_rejected(self):
        s = free_particle_state()
        with pytest.raises(ValueError):
            accelerations(s, np.zeros((2, 3)))


class TestLeapfrog:
    def test_free_particle_straight_line(self):
        s = free_particle_state(v=2.0)
        integ = LeapfrogVerlet(dt_fs=1.0)
        for _ in range(100):
            integ.step(s, np.zeros((1, 3)))
        assert s.positions[0, 0] == pytest.approx(2.0 * 0.1)  # 100 fs = 0.1 ps

    def test_constant_force_quadratic(self):
        s = free_particle_state(v=0.0)
        dt_fs = 0.5
        integ = LeapfrogVerlet(dt_fs)
        f = np.array([[3.0, 0.0, 0.0]])
        n = 200
        for _ in range(n):
            integ.step(s, f)
        t = n * dt_fs / 1000.0
        a = 3.0 / (10.0 * MVV2E)
        # leapfrog with v at half steps: exact for constant acceleration
        assert s.positions[0, 0] == pytest.approx(0.5 * a * t * t, rel=1e-2)

    def test_harmonic_oscillator_energy_bounded(self):
        """Symplecticity: energy oscillates but does not drift."""
        k = 1.0  # eV/A^2
        m = 10.0
        s = free_particle_state(v=0.0)
        s.positions[0, 0] = 1.0
        integ = LeapfrogVerlet(dt_fs=1.0)
        energies = []
        for _ in range(5000):
            f = -k * s.positions
            integ.step(s, f)
            # synchronized energy estimate is approximate; drift matters
            pe = 0.5 * k * float(s.positions[0] @ s.positions[0])
            ke = s.kinetic_energy()
            energies.append(pe + ke)
        e = np.asarray(energies)
        first, last = e[:100].mean(), e[-100:].mean()
        assert abs(last - first) / first < 1e-3

    def test_time_reversibility(self):
        k = 2.0
        s = free_particle_state(v=1.0)
        s.positions[0, 0] = 0.5
        integ = LeapfrogVerlet(dt_fs=1.0)
        for _ in range(50):
            integ.step(s, -k * s.positions)
        # exact reversal negates the *next* half-step velocity: apply
        # one more kick to advance v(n-1/2) -> v(n+1/2), then negate
        s.velocities += accelerations(s, -k * s.positions) * integ.dt
        s.velocities *= -1.0
        for _ in range(50):
            integ.step(s, -k * s.positions)
        assert s.positions[0, 0] == pytest.approx(0.5, abs=1e-9)

    def test_rejects_bad_timestep(self):
        with pytest.raises(ValueError):
            LeapfrogVerlet(0.0)


class TestVelocityVerlet:
    def test_matches_leapfrog_positions(self):
        """Same discrete trajectory when started consistently."""
        k = 1.5
        m = 10.0
        dt_fs = 1.0
        # leapfrog run
        s1 = free_particle_state(v=0.0)
        s1.positions[0, 0] = 1.0
        # consistent start: leapfrog velocity is v(-dt/2)
        a0 = -k * 1.0 / (m * MVV2E)
        s1.velocities[0, 0] = -0.5 * a0 * (dt_fs / 1000.0)
        lf = LeapfrogVerlet(dt_fs)
        # velocity verlet run
        s2 = free_particle_state(v=0.0)
        s2.positions[0, 0] = 1.0
        vv = VelocityVerlet(dt_fs)
        forces = -k * s2.positions
        for _ in range(100):
            lf.step(s1, -k * s1.positions)
            forces = vv.step(s2, forces, lambda st: -k * st.positions)
        assert s1.positions[0, 0] == pytest.approx(s2.positions[0, 0], abs=1e-10)
