"""Langevin thermostat tests."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.langevin import LangevinThermostat
from repro.md.state import AtomsState


def free_gas(n=800, seed=0):
    rng = np.random.default_rng(seed)
    return AtomsState.from_positions(
        rng.uniform(0, 50, (n, 3)), Box.open([100, 100, 100]), mass=100.0
    )


class TestLangevin:
    def test_heats_cold_system_to_target(self):
        state = free_gas()
        thermo = LangevinThermostat(300.0, damping_fs=50.0, seed=1)
        for _ in range(3000):
            thermo.apply(state, dt_fs=2.0)
        assert state.temperature() == pytest.approx(300.0, rel=0.1)

    def test_cools_hot_system(self):
        from repro.md.thermostat import maxwell_boltzmann_velocities
        state = free_gas()
        maxwell_boltzmann_velocities(state, 900.0, np.random.default_rng(2))
        thermo = LangevinThermostat(300.0, damping_fs=50.0, seed=3)
        for _ in range(3000):
            thermo.apply(state, dt_fs=2.0)
        assert state.temperature() == pytest.approx(300.0, rel=0.1)

    def test_zero_temperature_is_pure_friction(self):
        state = free_gas()
        state.velocities[:] = 1.0
        thermo = LangevinThermostat(0.0, damping_fs=100.0)
        for _ in range(500):
            thermo.apply(state, dt_fs=2.0)
        assert state.temperature() < 0.05

    def test_deterministic_given_seed(self):
        a, b = free_gas(seed=5), free_gas(seed=5)
        for st in (a, b):
            LangevinThermostat(300.0, seed=11).apply(st, 2.0)
        # fresh thermostats with the same seed produce identical kicks
        t1 = LangevinThermostat(300.0, seed=11)
        t2 = LangevinThermostat(300.0, seed=11)
        t1.apply(a, 2.0)
        t2.apply(b, 2.0)
        assert np.array_equal(a.velocities, b.velocities)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            LangevinThermostat(-5.0)
        with pytest.raises(ValueError):
            LangevinThermostat(300.0, damping_fs=0.0)

    def test_overdamped_timestep_rejected(self):
        thermo = LangevinThermostat(300.0, damping_fs=1.0)
        with pytest.raises(ValueError, match="too large"):
            thermo.apply(free_gas(n=4), dt_fs=2.0)
