"""AtomsState tests."""

import numpy as np
import pytest

from repro.constants import KB_EV
from repro.md.boundary import Box
from repro.md.state import AtomsState


def make_state(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return AtomsState(
        positions=rng.uniform(0, 10, (n, 3)),
        velocities=rng.normal(size=(n, 3)),
        types=np.zeros(n, dtype=int),
        masses=np.array([50.0]),
        box=Box.open([20, 20, 20]),
    )


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AtomsState(
                positions=np.zeros((5, 3)),
                velocities=np.zeros((4, 3)),
                types=np.zeros(5, dtype=int),
                masses=np.array([1.0]),
                box=Box.open([10, 10, 10]),
            )

    def test_type_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AtomsState(
                positions=np.zeros((2, 3)),
                velocities=np.zeros((2, 3)),
                types=np.array([0, 3]),
                masses=np.array([1.0]),
                box=Box.open([10, 10, 10]),
            )

    def test_nonpositive_mass_rejected(self):
        with pytest.raises(ValueError):
            AtomsState(
                positions=np.zeros((1, 3)),
                velocities=np.zeros((1, 3)),
                types=np.zeros(1, dtype=int),
                masses=np.array([0.0]),
                box=Box.open([10, 10, 10]),
            )

    def test_default_ids_sequential(self):
        s = make_state(7)
        assert s.ids.tolist() == list(range(7))


class TestObservables:
    def test_kinetic_energy_single_atom(self):
        s = AtomsState(
            positions=np.zeros((1, 3)),
            velocities=np.array([[2.0, 0.0, 0.0]]),
            types=np.zeros(1, dtype=int),
            masses=np.array([10.0]),
            box=Box.open([10, 10, 10]),
        )
        from repro.constants import MVV2E
        assert s.kinetic_energy() == pytest.approx(0.5 * 10.0 * 4.0 * MVV2E)

    def test_temperature_consistent_with_equipartition(self):
        s = make_state(1000, seed=1)
        t = s.temperature()
        assert t == pytest.approx(
            2 * s.kinetic_energy() / (3 * 1000 * KB_EV)
        )

    def test_momentum_zero_for_zero_velocities(self):
        s = make_state()
        s.velocities[:] = 0
        assert np.allclose(s.momentum(), 0)


class TestCopyReorder:
    def test_copy_is_deep(self):
        s = make_state()
        c = s.copy()
        c.positions[0, 0] = 999.0
        assert s.positions[0, 0] != 999.0

    def test_reorder_moves_ids_with_atoms(self):
        s = make_state(5)
        perm = np.array([4, 3, 2, 1, 0])
        r = s.reorder(perm)
        assert r.ids.tolist() == [4, 3, 2, 1, 0]
        assert np.allclose(r.positions[0], s.positions[4])

    def test_reorder_rejects_non_permutation(self):
        s = make_state(5)
        with pytest.raises(ValueError):
            s.reorder(np.array([0, 0, 1, 2, 3]))

    def test_from_positions_factory(self):
        pos = np.random.default_rng(0).uniform(0, 5, (6, 3))
        s = AtomsState.from_positions(pos, Box.open([10, 10, 10]), mass=2.0)
        assert s.n_atoms == 6
        assert np.all(s.velocities == 0)
        assert s.atom_masses.tolist() == [2.0] * 6
