"""Velocity initialization and thermostat tests."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.state import AtomsState
from repro.md.thermostat import (
    BerendsenThermostat,
    maxwell_boltzmann_velocities,
    rescale_to_temperature,
    zero_net_momentum,
)


def state(n=500, seed=0):
    rng = np.random.default_rng(seed)
    return AtomsState.from_positions(
        rng.uniform(0, 20, (n, 3)), Box.open([40, 40, 40]), mass=63.5
    )


class TestMaxwellBoltzmann:
    def test_exact_temperature(self):
        s = state()
        maxwell_boltzmann_velocities(s, 290.0, np.random.default_rng(1))
        assert s.temperature() == pytest.approx(290.0)

    def test_zero_momentum(self):
        s = state()
        maxwell_boltzmann_velocities(s, 290.0, np.random.default_rng(1))
        p = s.momentum()
        assert np.allclose(p / s.n_atoms, 0.0, atol=1e-10)

    def test_zero_temperature_zeroes_velocities(self):
        s = state()
        s.velocities[:] = 1.0
        maxwell_boltzmann_velocities(s, 0.0)
        assert np.all(s.velocities == 0.0)

    def test_distribution_is_gaussian(self):
        s = state(n=4000)
        maxwell_boltzmann_velocities(
            s, 300.0, np.random.default_rng(2), exact=False
        )
        vx = s.velocities[:, 0]
        # skewness and excess kurtosis near 0
        assert abs(float(np.mean(vx**3)) / np.std(vx) ** 3) < 0.15
        assert abs(float(np.mean(vx**4)) / np.std(vx) ** 4 - 3.0) < 0.3

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            maxwell_boltzmann_velocities(state(), -1.0)

    def test_missing_rng_fails_loudly(self):
        # an implicit fresh generator would silently make runs
        # irreproducible; the seed must come from the caller
        with pytest.raises(ValueError, match="explicit rng"):
            maxwell_boltzmann_velocities(state(), 290.0)

    def test_zero_temperature_needs_no_rng(self):
        maxwell_boltzmann_velocities(state(), 0.0)  # must not raise


class TestRescale:
    def test_rescale_hits_target(self):
        s = state()
        maxwell_boltzmann_velocities(s, 100.0, np.random.default_rng(3))
        rescale_to_temperature(s, 450.0)
        assert s.temperature() == pytest.approx(450.0)

    def test_rescale_zero_velocities_raises(self):
        s = state()
        with pytest.raises(ValueError, match="zero velocities"):
            rescale_to_temperature(s, 300.0)

    def test_zero_momentum_removes_drift(self):
        s = state()
        s.velocities[:] = [1.0, 2.0, 3.0]
        zero_net_momentum(s)
        assert np.allclose(s.momentum(), 0.0, atol=1e-9)


class TestBerendsen:
    def test_relaxes_toward_target(self):
        s = state()
        maxwell_boltzmann_velocities(s, 100.0, np.random.default_rng(4))
        thermo = BerendsenThermostat(300.0, tau_fs=50.0)
        temps = []
        for _ in range(200):
            thermo.apply(s, dt_fs=2.0)
            temps.append(s.temperature())
        assert temps[-1] == pytest.approx(300.0, rel=0.01)
        assert temps[0] < temps[-1]

    def test_noop_at_target(self):
        s = state()
        maxwell_boltzmann_velocities(s, 300.0, np.random.default_rng(5))
        v = s.velocities.copy()
        BerendsenThermostat(300.0).apply(s, dt_fs=2.0)
        assert np.allclose(s.velocities, v, rtol=1e-10)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BerendsenThermostat(-10.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, tau_fs=0.0)
