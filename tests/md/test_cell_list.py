"""Cell-list pair search vs brute force (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box
from repro.md.cell_list import CellList, all_pairs, concatenated_ranges


def pair_set(i, j):
    return set(zip(i.tolist(), j.tolist()))


def cell_list_pairs(positions, cutoff, box):
    cl = CellList(box, cutoff)
    cl.build(positions)
    i, j = cl.candidate_pairs()
    d = positions[j] - positions[i]
    d = box.minimum_image(d)
    r2 = np.einsum("ij,ij->i", d, d)
    keep = r2 < cutoff * cutoff
    return i[keep], j[keep]


class TestConcatenatedRanges:
    def test_basic(self):
        out = concatenated_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty(self):
        assert len(concatenated_ranges(np.array([], dtype=int),
                                       np.array([], dtype=int))) == 0

    def test_zero_counts_skipped(self):
        out = concatenated_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert out.tolist() == [7, 8]


class TestAgainstBruteForce:
    @given(
        n=st.integers(2, 40),
        seed=st.integers(0, 1000),
        cutoff=st.floats(0.5, 3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_open_box_matches_brute_force(self, n, seed, cutoff):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 10.0, size=(n, 3))
        box = Box.open([20.0, 20.0, 20.0])
        bi, bj, _, _ = all_pairs(pos, cutoff, box)
        ci, cj = cell_list_pairs(pos, cutoff, box)
        assert pair_set(bi, bj) == pair_set(ci, cj)

    @given(n=st.integers(2, 30), seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_periodic_box_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        box = Box(np.array([9.0, 9.0, 9.0]), periodic=[True] * 3,
                  origin=np.zeros(3))
        pos = rng.uniform(0, 9.0, size=(n, 3))
        cutoff = 2.5
        bi, bj, _, _ = all_pairs(pos, cutoff, box)
        ci, cj = cell_list_pairs(pos, cutoff, box)
        assert pair_set(bi, bj) == pair_set(ci, cj)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_small_periodic_falls_back_to_brute(self, seed):
        # box of 2 cells per dim: the stencil would alias; must still be correct
        rng = np.random.default_rng(seed)
        box = Box(np.array([6.0, 6.0, 6.0]), periodic=[True] * 3,
                  origin=np.zeros(3))
        pos = rng.uniform(0, 6.0, size=(12, 3))
        cutoff = 2.5
        bi, bj, _, _ = all_pairs(pos, cutoff, box)
        ci, cj = cell_list_pairs(pos, cutoff, box)
        assert pair_set(bi, bj) == pair_set(ci, cj)

    def test_mixed_boundaries(self):
        rng = np.random.default_rng(3)
        box = Box(np.array([12.0, 30.0, 30.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        pos = rng.uniform(0, 12.0, size=(40, 3)) * [1.0, 2.0, 2.0]
        bi, bj, _, _ = all_pairs(pos, 3.0, box)
        ci, cj = cell_list_pairs(pos, 3.0, box)
        assert pair_set(bi, bj) == pair_set(ci, cj)


class TestStructure:
    def test_pairs_are_directed_and_symmetric(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 8, size=(25, 3))
        box = Box.open([20, 20, 20])
        i, j = cell_list_pairs(pos, 3.0, box)
        s = pair_set(i, j)
        assert all((b, a) in s for a, b in s)
        assert all(a != b for a, b in s)

    def test_no_self_pairs_with_duplicated_positions(self):
        # two atoms at identical positions: pair appears, but no (i, i)
        pos = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [5.0, 5.0, 5.0]])
        box = Box.open([20, 20, 20])
        cl = CellList(box, 2.0)
        cl.build(pos)
        i, j = cl.candidate_pairs()
        assert np.all(i != j)
        assert (0, 1) in pair_set(i, j)

    def test_rejects_nonfinite_positions(self):
        box = Box.open([10, 10, 10])
        cl = CellList(box, 2.0)
        with pytest.raises(FloatingPointError):
            cl.build(np.array([[0.0, 0.0, np.nan]]))

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            CellList(Box.open([10, 10, 10]), -1.0)

    def test_candidate_pairs_before_build_raises(self):
        cl = CellList(Box.open([10, 10, 10]), 2.0)
        with pytest.raises(RuntimeError):
            cl.candidate_pairs()
