"""Cell-list pair search vs brute force (property-based).

``candidate_pairs`` is a *half* list: each undirected pair appears
exactly once.  The brute-force ``all_pairs`` oracle stays directed, so
comparisons normalize both sides to unordered pair sets and separately
assert the half list carries no duplicates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box
from repro.md.cell_list import CellList, all_pairs, concatenated_ranges


def undirected_set(i, j):
    return {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}


def cell_list_pairs(positions, cutoff, box):
    cl = CellList(box, cutoff)
    cl.build(positions)
    i, j = cl.candidate_pairs()
    d = positions[j] - positions[i]
    d = box.minimum_image(d)
    r2 = np.einsum("ij,ij->i", d, d)
    keep = r2 < cutoff * cutoff
    return i[keep], j[keep]


def assert_half_matches_brute(positions, cutoff, box):
    bi, bj, _, _ = all_pairs(positions, cutoff, box)
    ci, cj = cell_list_pairs(positions, cutoff, box)
    # every undirected pair present, and present exactly once
    assert undirected_set(bi, bj) == undirected_set(ci, cj)
    assert len(ci) == len(undirected_set(ci, cj))


class TestConcatenatedRanges:
    def test_basic(self):
        out = concatenated_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty(self):
        assert len(concatenated_ranges(np.array([], dtype=int),
                                       np.array([], dtype=int))) == 0

    def test_zero_counts_skipped(self):
        out = concatenated_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert out.tolist() == [7, 8]


class TestAgainstBruteForce:
    @given(
        n=st.integers(2, 40),
        seed=st.integers(0, 1000),
        cutoff=st.floats(0.5, 3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_open_box_matches_brute_force(self, n, seed, cutoff):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 10.0, size=(n, 3))
        box = Box.open([20.0, 20.0, 20.0])
        assert_half_matches_brute(pos, cutoff, box)

    @given(n=st.integers(2, 30), seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_periodic_box_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        box = Box(np.array([9.0, 9.0, 9.0]), periodic=[True] * 3,
                  origin=np.zeros(3))
        pos = rng.uniform(0, 9.0, size=(n, 3))
        assert_half_matches_brute(pos, 2.5, box)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_small_periodic_falls_back_to_brute(self, seed):
        # box of 2 cells per dim: the stencil would alias; must still be correct
        rng = np.random.default_rng(seed)
        box = Box(np.array([6.0, 6.0, 6.0]), periodic=[True] * 3,
                  origin=np.zeros(3))
        pos = rng.uniform(0, 6.0, size=(12, 3))
        assert_half_matches_brute(pos, 2.5, box)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_three_cell_periodic_wrap_no_duplicates(self, seed):
        # exactly 3 cells per periodic dim: +1 and -1 stencil neighbors
        # are distinct but adjacent both ways — the duplication trap
        rng = np.random.default_rng(seed)
        box = Box(np.array([7.5, 7.5, 7.5]), periodic=[True] * 3,
                  origin=np.zeros(3))
        pos = rng.uniform(0, 7.5, size=(20, 3))
        assert_half_matches_brute(pos, 2.5, box)

    def test_mixed_boundaries(self):
        rng = np.random.default_rng(3)
        box = Box(np.array([12.0, 30.0, 30.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        pos = rng.uniform(0, 12.0, size=(40, 3)) * [1.0, 2.0, 2.0]
        assert_half_matches_brute(pos, 3.0, box)


class TestStructure:
    def test_pairs_are_half_and_unique(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 8, size=(25, 3))
        box = Box.open([20, 20, 20])
        i, j = cell_list_pairs(pos, 3.0, box)
        seen = set(zip(i.tolist(), j.tolist()))
        assert len(seen) == len(i)
        # each unordered pair once: never both (a, b) and (b, a)
        assert all((b, a) not in seen for a, b in seen)
        assert all(a != b for a, b in seen)

    def test_directed_view_doubles(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 8, size=(20, 3))
        box = Box.open([20, 20, 20])
        cl = CellList(box, 3.0)
        cl.build(pos)
        hi, hj = cl.candidate_pairs()
        di, dj = cl.directed_candidate_pairs()
        assert len(di) == 2 * len(hi)
        s = set(zip(di.tolist(), dj.tolist()))
        assert all((b, a) in s for a, b in s)

    def test_no_self_pairs_with_duplicated_positions(self):
        # two atoms at identical positions: pair appears, but no (i, i)
        pos = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [5.0, 5.0, 5.0]])
        box = Box.open([20, 20, 20])
        cl = CellList(box, 2.0)
        cl.build(pos)
        i, j = cl.candidate_pairs()
        assert np.all(i != j)
        assert (0, 1) in undirected_set(i, j)

    def test_rejects_nonfinite_positions(self):
        box = Box.open([10, 10, 10])
        cl = CellList(box, 2.0)
        with pytest.raises(FloatingPointError):
            cl.build(np.array([[0.0, 0.0, np.nan]]))

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            CellList(Box.open([10, 10, 10]), -1.0)

    def test_candidate_pairs_before_build_raises(self):
        cl = CellList(Box.open([10, 10, 10]), 2.0)
        with pytest.raises(RuntimeError):
            cl.candidate_pairs()
