"""Verlet-list skin/rebuild policy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.md.neighbor_list import NeighborList
from repro.obs import metrics


@pytest.fixture()
def cluster():
    rng = np.random.default_rng(4)
    return rng.uniform(0, 10.0, size=(30, 3))


def undirected_set(i, j):
    return {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}


class TestCorrectness:
    def test_pairs_match_brute_force(self, cluster):
        box = Box.open([25, 25, 25])
        nl = NeighborList(box, 3.0, skin=0.5)
        pairs = nl.pairs(cluster)
        bi, bj, _, _ = all_pairs(cluster, 3.0, box)
        assert pairs.half
        assert pairs.n_pairs == len(bi) // 2
        assert undirected_set(pairs.i, pairs.j) == undirected_set(bi, bj)

    def test_directed_view_matches_brute_force(self, cluster):
        box = Box.open([25, 25, 25])
        pairs = NeighborList(box, 3.0, skin=0.5).pairs(cluster).directed()
        bi, bj, _, _ = all_pairs(cluster, 3.0, box)
        assert not pairs.half
        assert set(zip(pairs.i.tolist(), pairs.j.tolist())) == set(
            zip(bi.tolist(), bj.tolist())
        )

    def test_pairs_correct_after_motion_within_skin(self, cluster):
        box = Box.open([25, 25, 25])
        nl = NeighborList(box, 3.0, skin=1.0)
        nl.pairs(cluster)
        builds = nl.n_builds
        moved = cluster + 0.2  # uniform shift < skin/2
        pairs = nl.pairs(moved)
        assert nl.n_builds == builds  # reused
        bi, bj, _, _ = all_pairs(moved, 3.0, box)
        assert undirected_set(pairs.i, pairs.j) == undirected_set(bi, bj)

    def test_distances_always_current(self, cluster):
        box = Box.open([25, 25, 25])
        nl = NeighborList(box, 3.0, skin=1.0)
        nl.pairs(cluster)
        moved = cluster.copy()
        moved[0] += 0.3
        pairs = nl.pairs(moved)
        expect = np.linalg.norm(moved[pairs.j] - moved[pairs.i], axis=1)
        assert np.allclose(pairs.r, expect)


class TestRebuildPolicy:
    def test_first_call_builds(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0)
        assert nl.needs_rebuild(cluster)
        nl.pairs(cluster)
        assert nl.n_builds == 1

    def test_rebuild_when_atom_exceeds_half_skin(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        nl.pairs(cluster)
        moved = cluster.copy()
        moved[5] += np.array([0.6, 0.0, 0.0])  # > skin/2
        assert nl.needs_rebuild(moved)
        nl.pairs(moved)
        assert nl.n_builds == 2

    def test_no_rebuild_below_half_skin(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        nl.pairs(cluster)
        moved = cluster + 0.1
        assert not nl.needs_rebuild(moved)

    def test_zero_skin_always_rebuilds(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=0.0)
        nl.pairs(cluster)
        nl.pairs(cluster)
        assert nl.n_builds == 2

    def test_atom_count_change_forces_rebuild(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        nl.pairs(cluster)
        assert nl.needs_rebuild(cluster[:-1])

    def test_rejects_negative_skin(self):
        with pytest.raises(ValueError):
            NeighborList(Box.open([10, 10, 10]), 3.0, skin=-0.5)


class TestRebuildReasons:
    def test_reason_progression(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        assert nl.rebuild_reason(cluster) == "first"
        nl.pairs(cluster)
        assert nl.rebuild_reason(cluster) is None
        assert nl.rebuild_reason(cluster[:-1]) == "size"
        moved = cluster.copy()
        moved[3] += np.array([0.7, 0.0, 0.0])
        assert nl.rebuild_reason(moved) == "displacement"

    def test_zero_skin_reason(self, cluster):
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=0.0)
        nl.pairs(cluster)
        assert nl.rebuild_reason(cluster) == "skin_zero"

    def test_stale_guard_catches_tampered_reference(self, cluster):
        # if the cached reference positions are replaced behind the
        # list's back, indexing cached candidates into a smaller array
        # must trigger a rebuild rather than an IndexError (or silently
        # wrong physics)
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        nl.pairs(cluster)
        nl._ref_positions = cluster[:-1].copy()
        builds = nl.n_builds
        pairs = nl.pairs(cluster[:-1])
        assert nl.n_builds == builds + 1
        bi, bj, _, _ = all_pairs(cluster[:-1], 3.0, nl.box)
        assert undirected_set(pairs.i, pairs.j) == undirected_set(bi, bj)

    def test_metrics_count_rebuilds_and_reuses(self, cluster):
        metrics().reset()
        nl = NeighborList(Box.open([25, 25, 25]), 3.0, skin=1.0)
        nl.pairs(cluster)          # first build
        nl.pairs(cluster + 0.1)    # reuse
        nl.pairs(cluster + 5.0)    # displacement rebuild
        counters = metrics().as_dict()["counters"]
        assert counters["neighbor.rebuilds"] == 2
        assert counters["neighbor.rebuilds.first"] == 1
        assert counters["neighbor.rebuilds.displacement"] == 1
        assert counters["neighbor.reuses"] == 1


class TestSkinProperty:
    @given(seed=st.integers(0, 2**16), skin=st.floats(0.2, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_skin_never_changes_the_pair_set(self, seed, skin):
        # a skinned list queried along a random walk must report the
        # same interacting pairs as a skinless (always-rebuilt) list
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 8.0, size=(20, 3))
        box = Box.open([25, 25, 25])
        skinned = NeighborList(box, 3.0, skin=skin)
        skinless = NeighborList(box, 3.0, skin=0.0)
        for _ in range(4):
            a = skinned.pairs(pos)
            b = skinless.pairs(pos)
            assert undirected_set(a.i, a.j) == undirected_set(b.i, b.j)
            np.testing.assert_allclose(
                np.sort(a.r), np.sort(b.r), rtol=1e-12
            )
            pos = pos + rng.uniform(-0.3, 0.3, size=pos.shape)
