"""Box / boundary-condition tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box


class TestConstruction:
    def test_default_origin_centers_box(self):
        b = Box(np.array([10.0, 20.0, 30.0]))
        assert np.allclose(b.origin, [-5, -10, -15])

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError):
            Box(np.array([1.0, 0.0, 1.0]))

    def test_open_factory(self):
        b = Box.open([5, 5, 5])
        assert not np.any(b.periodic)

    def test_cube_periodic_factory(self):
        b = Box.cube_periodic(7.0)
        assert np.all(b.periodic)
        assert b.volume == pytest.approx(343.0)


class TestWrap:
    def test_open_box_never_wraps(self):
        b = Box.open([10, 10, 10])
        pos = np.array([[100.0, -50.0, 3.0]])
        assert np.allclose(b.wrap(pos), pos)

    def test_periodic_wrap_into_primary_cell(self):
        b = Box(np.array([10.0, 10.0, 10.0]), periodic=[True] * 3,
                origin=np.zeros(3))
        pos = np.array([[12.0, -3.0, 5.0]])
        assert np.allclose(b.wrap(pos), [[2.0, 7.0, 5.0]])

    def test_mixed_periodicity(self):
        b = Box(np.array([10.0, 10.0, 10.0]), periodic=[True, False, False],
                origin=np.zeros(3))
        out = b.wrap(np.array([[12.0, 12.0, 12.0]]))
        assert np.allclose(out, [[2.0, 12.0, 12.0]])


class TestMinimumImage:
    def test_short_vector_unchanged(self):
        b = Box.cube_periodic(10.0)
        d = np.array([[1.0, -2.0, 3.0]])
        assert np.allclose(b.minimum_image(d), d)

    def test_long_vector_folded(self):
        b = Box.cube_periodic(10.0)
        d = np.array([[7.0, -8.0, 0.0]])
        assert np.allclose(b.minimum_image(d), [[-3.0, 2.0, 0.0]])

    def test_open_dims_untouched(self):
        b = Box(np.array([10.0, 10.0, 10.0]), periodic=[False, True, False])
        d = np.array([[9.0, 9.0, 9.0]])
        assert np.allclose(b.minimum_image(d), [[9.0, -1.0, 9.0]])

    @given(
        x=st.floats(-50, 50), y=st.floats(-50, 50), z=st.floats(-50, 50)
    )
    @settings(max_examples=50, deadline=None)
    def test_minimum_image_bounded_by_half_box(self, x, y, z):
        b = Box.cube_periodic(10.0)
        d = b.minimum_image(np.array([[x, y, z]]))
        assert np.all(np.abs(d) <= 5.0 + 1e-9)

    def test_half_box_ties_fold_deterministically(self):
        # at exactly +-L/2 both images are equidistant; np.round's
        # banker's rounding used to map +5 and +15 to different signs.
        # The floor-based fold always picks -L/2: result is in [-L/2, L/2).
        b = Box.cube_periodic(10.0)
        ties = np.array(
            [[5.0, -5.0, 15.0], [-15.0, 25.0, -25.0]]
        )
        out = b.minimum_image(ties)
        assert np.all(out == -5.0)

    def test_half_box_ties_consistent_across_offsets(self):
        # every odd multiple of L/2 is the same physical separation;
        # all of them must fold to the identical representative
        b = Box.cube_periodic(10.0)
        offsets = np.array([5.0 + 10.0 * k for k in range(-3, 4)])
        d = np.zeros((len(offsets), 3))
        d[:, 0] = offsets
        out = b.minimum_image(d)
        assert np.all(out[:, 0] == -5.0)

    def test_wse_engine_minimum_image_matches_box(self):
        from repro.core.wse_md import WseMd

        # the lockstep engine's private fold must break half-box ties
        # the same way, or the engines drift apart at exactly +-L/2
        b = Box.cube_periodic(10.0)
        stub = object.__new__(WseMd)
        stub.box = b
        d = np.array([[5.0, -5.0, 15.0], [1.0, -8.0, 7.0]])
        got = WseMd._minimum_image(stub, d.copy())
        np.testing.assert_array_equal(got, b.minimum_image(d))


class TestValidation:
    def test_minimum_image_validity_check(self):
        b = Box.cube_periodic(10.0)
        b.check_minimum_image_valid(4.9)  # fine
        with pytest.raises(ValueError, match="minimum image"):
            b.check_minimum_image_valid(5.1)

    def test_open_box_any_cutoff_ok(self):
        Box.open([2.0, 2.0, 2.0]).check_minimum_image_valid(100.0)

    def test_contains(self):
        b = Box(np.array([10.0, 10.0, 10.0]), origin=np.zeros(3))
        inside = b.contains(np.array([[5.0, 5.0, 5.0], [11.0, 5.0, 5.0]]))
        assert inside.tolist() == [True, False]
