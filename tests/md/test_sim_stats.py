"""Simulation loop statistics (:class:`repro.md.simulation.SimStats`)."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.simulation import Simulation, SimStats
from repro.md.state import AtomsState
from repro.potentials.lennard_jones import LennardJones


@pytest.fixture()
def lj_sim():
    rng = np.random.default_rng(11)
    # jittered 4x4x3 lattice near the LJ minimum spacing: cheap and
    # well-separated (random overlaps would blow the integrator up),
    # with enough thermal motion to trigger skin rebuilds
    grid = np.stack(
        np.meshgrid(np.arange(4), np.arange(4), np.arange(3),
                    indexing="ij"), axis=-1,
    ).reshape(-1, 3)
    pos = grid * 3.0 + rng.uniform(-0.15, 0.15, size=(48, 3))
    box = Box.open([30.0, 30.0, 30.0])
    state = AtomsState.from_positions(pos, box, mass=40.0)
    state.velocities[:] = rng.normal(scale=0.08, size=(48, 3))
    pot = LennardJones(epsilon=0.01, sigma=2.5, cutoff=6.0)
    return Simulation(state, pot, dt_fs=1.0, skin=0.5)


class TestAccumulation:
    def test_starts_empty(self, lj_sim):
        st = lj_sim.stats
        assert st.steps == 0
        assert st.force_evaluations == 0
        assert st.wall_time_s == 0.0
        assert st.pairs_per_step == 0.0
        assert st.steps_per_s == 0.0

    def test_counts_steps_and_evaluations(self, lj_sim):
        lj_sim.run(5)
        st = lj_sim.stats
        assert st.steps == 5
        assert st.force_evaluations == 5
        assert st.neighbor_rebuilds >= 1  # first call always builds
        assert st.pairs_total >= st.pairs_last
        assert st.time_force_s > 0.0
        assert st.time_neighbor_s > 0.0
        assert st.time_integrate_s > 0.0

    def test_pairs_per_step_is_mean(self, lj_sim):
        lj_sim.run(4)
        st = lj_sim.stats
        assert st.pairs_per_step == pytest.approx(
            st.pairs_total / st.force_evaluations
        )

    def test_potential_energy_counts_as_evaluation_not_step(self, lj_sim):
        lj_sim.potential_energy()
        st = lj_sim.stats
        assert st.force_evaluations == 1
        assert st.steps == 0

    def test_steps_per_s_consistent(self, lj_sim):
        lj_sim.run(3)
        st = lj_sim.stats
        assert st.steps_per_s == pytest.approx(st.steps / st.wall_time_s)


class TestObserverSnapshot:
    def test_records_carry_stats_snapshots(self, lj_sim):
        seen = []
        lj_sim.add_observer(2, lambda rec: seen.append(rec))
        lj_sim.run(6)
        assert [rec.step for rec in seen] == [2, 4, 6]
        assert all(isinstance(rec.stats, SimStats) for rec in seen)
        assert [rec.stats.steps for rec in seen] == [2, 4, 6]

    def test_snapshot_is_detached_from_live_stats(self, lj_sim):
        seen = []
        lj_sim.add_observer(1, lambda rec: seen.append(rec))
        lj_sim.run(1)
        first = seen[0].stats
        lj_sim.run(4)
        assert first.steps == 1  # later steps must not mutate the snapshot
        assert lj_sim.stats.steps == 5
