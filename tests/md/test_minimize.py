"""FIRE minimizer tests."""

import numpy as np
import pytest

from repro.lattice.cells import BCC
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.md.boundary import Box
from repro.md.minimize import FireMinimizer
from repro.md.state import AtomsState
from repro.potentials.elements import ELEMENTS, make_element_potential


class TestFire:
    def test_perturbed_crystal_relaxes_back(self, ta_potential):
        from repro.lattice.crystals import replicate
        el = ELEMENTS["Ta"]
        c = replicate(el.cell, el.lattice_constant, (3, 3, 3))
        box = Box(c.box, periodic=[True] * 3, origin=np.zeros(3))
        rng = np.random.default_rng(0)
        pos = c.positions + rng.normal(scale=0.08, size=c.positions.shape)
        state = AtomsState.from_positions(pos, box, mass=el.mass)
        result = FireMinimizer(ta_potential).run(state, max_steps=800)
        assert result.converged
        assert result.final_energy < result.initial_energy
        # back to the cohesive-energy floor
        assert result.final_energy / state.n_atoms == pytest.approx(
            -el.cohesive_energy, abs=5e-3
        )

    def test_energy_monotone_overall(self, ta_potential):
        from repro.lattice.crystals import replicate
        el = ELEMENTS["Ta"]
        c = replicate(el.cell, el.lattice_constant, (3, 3, 2))
        box = Box.open(c.box + 20.0)
        rng = np.random.default_rng(1)
        pos = c.positions + rng.normal(scale=0.05, size=c.positions.shape)
        state = AtomsState.from_positions(pos, box, mass=el.mass)
        r = FireMinimizer(ta_potential).run(state, max_steps=400,
                                            force_tolerance=5e-3)
        assert r.final_energy <= r.initial_energy

    def test_grain_boundary_relaxation_lowers_energy(self, w_potential):
        el = ELEMENTS["W"]
        gb = make_grain_boundary_slab(
            BCC, el.lattice_constant, extent_xy=(22.0, 22.0),
            thickness_z=7.0,
        )
        box = Box.open(gb.box + 4 * el.cutoff)
        state = AtomsState.from_positions(gb.positions, box, mass=el.mass)
        r = FireMinimizer(w_potential).run(
            state, max_steps=300, force_tolerance=5e-2
        )
        assert r.final_energy < r.initial_energy - 0.5  # real relaxation

    def test_already_minimal_converges_immediately(self, ta_potential):
        from repro.lattice.crystals import replicate
        el = ELEMENTS["Ta"]
        c = replicate(el.cell, el.lattice_constant, (3, 3, 3))
        box = Box(c.box, periodic=[True] * 3, origin=np.zeros(3))
        state = AtomsState.from_positions(c.positions, box, mass=el.mass)
        r = FireMinimizer(ta_potential).run(state)
        assert r.converged
        assert r.n_steps == 0

    def test_rejects_bad_timesteps(self, ta_potential):
        with pytest.raises(ValueError):
            FireMinimizer(ta_potential, dt_fs=2.0, dt_max_fs=1.0)
