"""The force+integrate fusion knob: off by default, physics-identical.

``fuse_integrate`` folds the leap-frog kick+drift into the kernel
backend's ``force_integrate`` pass.  It is a speed knob: under the
numpy backend the fused update is the same vectorized arithmetic as
:class:`~repro.md.integrators.LeapfrogVerlet`, so trajectories must be
**bitwise** identical with the knob on or off, and the knob must never
enter the physics hash (a checkpoint resumes with it flipped).
"""

import numpy as np
import pytest

from repro.kernels import DEFAULT_BACKEND, set_backend
from repro.runtime import RunSpec, build_engine


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    set_backend(DEFAULT_BACKEND)


def _trajectory(spec: RunSpec):
    engine = build_engine(spec)
    try:
        engine.step(spec.steps)
        return (
            engine.state.positions.copy(),
            engine.state.velocities.copy(),
            engine.total_energy(),
        )
    finally:
        engine.close()


class TestFuseIntegrateKnob:
    def test_default_off(self):
        assert RunSpec().fuse_integrate is False
        from repro.md.simulation import Simulation

        assert Simulation.__init__.__kwdefaults__["fuse_integrate"] is False

    def test_excluded_from_spec_hash(self):
        base = RunSpec(engine="reference", steps=4)
        fused = RunSpec(engine="reference", steps=4, fuse_integrate=True)
        assert base.spec_hash() == fused.spec_hash()

    def test_round_trips_through_dict(self):
        fused = RunSpec(engine="reference", fuse_integrate=True)
        assert fused.to_dict()["fuse_integrate"] is True
        assert RunSpec.from_dict(fused.to_dict()).fuse_integrate is True
        # off is the default, so it is omitted from the serialized form
        assert "fuse_integrate" not in RunSpec().to_dict()

    def test_bitwise_identical_trajectory_under_numpy(self):
        set_backend("numpy")
        base = RunSpec(
            engine="reference", reps=(4, 4, 2), steps=8, temperature=150.0
        )
        pos_a, vel_a, e_a = _trajectory(base)
        pos_b, vel_b, e_b = _trajectory(
            RunSpec(
                engine="reference",
                reps=(4, 4, 2),
                steps=8,
                temperature=150.0,
                fuse_integrate=True,
            )
        )
        assert np.array_equal(pos_a, pos_b)
        assert np.array_equal(vel_a, vel_b)
        assert e_a == e_b

    def test_fused_with_thermostat(self):
        """The thermostat still applies after the fused update."""
        set_backend("numpy")
        thermo = {"kind": "berendsen", "temperature": 100.0, "tau_fs": 50.0}
        kw = dict(
            engine="reference",
            reps=(3, 3, 2),
            steps=6,
            temperature=300.0,
            thermostat=dict(thermo),
        )
        pos_a, vel_a, _ = _trajectory(RunSpec(**kw))
        pos_b, vel_b, _ = _trajectory(RunSpec(**kw, fuse_integrate=True))
        assert np.array_equal(pos_a, pos_b)
        assert np.array_equal(vel_a, vel_b)
