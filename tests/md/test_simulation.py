"""Reference MD engine integration tests: conservation laws, observers."""

import numpy as np
import pytest

from repro.md.simulation import Simulation
from tests.conftest import bulk_state, small_slab_state


class TestConservation:
    def test_energy_conservation_bulk_ta(self, ta_potential):
        state = bulk_state("Ta", (3, 3, 3), temperature=290.0)
        sim = Simulation(state, ta_potential, dt_fs=2.0)
        e0 = sim.potential_energy() + state.kinetic_energy()
        sim.run(100)
        e1 = sim.potential_energy() + state.kinetic_energy()
        assert abs(e1 - e0) / state.n_atoms < 1e-3  # eV/atom

    def test_energy_conservation_open_slab(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=200.0)
        sim = Simulation(state, ta_potential, dt_fs=2.0)
        e0 = sim.potential_energy() + state.kinetic_energy()
        sim.run(100)
        e1 = sim.potential_energy() + state.kinetic_energy()
        assert abs(e1 - e0) / state.n_atoms < 1e-3

    def test_momentum_conservation(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=290.0)
        sim = Simulation(state, ta_potential, dt_fs=2.0)
        p0 = state.momentum()
        sim.run(80)
        assert np.allclose(state.momentum(), p0, atol=1e-7 * state.n_atoms)

    def test_smaller_timestep_conserves_better(self, ta_potential):
        drifts = []
        for dt in (4.0, 1.0):
            state = bulk_state("Ta", (3, 3, 3), temperature=400.0, seed=9)
            sim = Simulation(state, ta_potential, dt_fs=dt)
            e0 = sim.potential_energy() + state.kinetic_energy()
            sim.run(int(100 * 4.0 / dt))  # same simulated time
            e1 = sim.potential_energy() + state.kinetic_energy()
            drifts.append(abs(e1 - e0))
        assert drifts[1] < drifts[0]


class TestCrystalStability:
    def test_cold_crystal_stays_put(self, ta_potential):
        state = bulk_state("Ta", (3, 3, 3), temperature=0.0)
        ref = state.positions.copy()
        sim = Simulation(state, ta_potential)
        sim.run(50)
        assert np.max(np.abs(state.positions - ref)) < 1e-8

    def test_room_temperature_crystal_does_not_melt(self, ta_potential):
        state = bulk_state("Ta", (3, 3, 3), temperature=290.0, seed=2)
        ref = state.positions.copy()
        sim = Simulation(state, ta_potential)
        sim.run(150)
        # max displacement well below the nearest-neighbor distance
        disp = np.linalg.norm(state.positions - ref, axis=1)
        assert disp.max() < 0.5 * 2.86


class TestDriverMechanics:
    def test_observer_called_at_interval(self, ta_potential):
        state = small_slab_state("Ta", (3, 3, 2))
        sim = Simulation(state, ta_potential)
        seen = []
        sim.add_observer(5, lambda rec: seen.append(rec.step))
        sim.run(20)
        assert seen == [5, 10, 15, 20]

    def test_observer_record_contents(self, ta_potential):
        state = small_slab_state("Ta", (3, 3, 2))
        sim = Simulation(state, ta_potential)
        records = []
        sim.add_observer(10, records.append)
        sim.run(10)
        rec = records[0]
        assert rec.energies.total == pytest.approx(
            rec.energies.potential + rec.energies.kinetic
        )
        assert rec.max_force > 0

    def test_bad_observer_interval_rejected(self, ta_potential):
        sim = Simulation(small_slab_state("Ta", (3, 3, 2)), ta_potential)
        with pytest.raises(ValueError):
            sim.add_observer(0, lambda r: None)

    def test_negative_steps_rejected(self, ta_potential):
        sim = Simulation(small_slab_state("Ta", (3, 3, 2)), ta_potential)
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_equilibrate_restores_thermostat(self, ta_potential):
        state = small_slab_state("Ta", (3, 3, 2), temperature=100.0)
        sim = Simulation(state, ta_potential)
        sim.equilibrate(10, 290.0)
        assert sim.thermostat is None

    def test_equilibration_warms_system(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=50.0, seed=3)
        sim = Simulation(state, ta_potential)
        sim.equilibrate(300, 290.0, tau_fs=50.0)
        assert state.temperature() > 150.0
