"""Checkpoint write/read round-trips and the resume-refusal guards."""

import json

import numpy as np
import pytest

from repro.io.xyz import read_xyz
from repro.runtime import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    RunSpec,
    build_state,
    checkpoint_paths,
    get_rng_state,
    read_checkpoint,
    seed_streams,
    set_rng_state,
    sweep_orphan_tmp,
    write_checkpoint,
)

SPEC = RunSpec(element="Ta", reps=(3, 3, 2), temperature=200.0, seed=4)


@pytest.fixture
def state():
    return build_state(SPEC)[0]


def test_round_trip_is_lossless(tmp_path, state):
    prefix = tmp_path / "run" / "ckpt"  # parent dir is created on demand
    rng = seed_streams(4)["thermostat"]
    rng.random(17)  # advance so the saved state is non-trivial
    write_checkpoint(
        prefix,
        state,
        step_count=42,
        spec_hash=SPEC.spec_hash(),
        engine="reference",
        rng_states={"thermostat": get_rng_state(rng)},
        extra={"swap_count": 3},
    )
    ckpt = read_checkpoint(prefix, expected_spec_hash=SPEC.spec_hash())

    np.testing.assert_array_equal(ckpt.state.positions, state.positions)
    np.testing.assert_array_equal(ckpt.state.velocities, state.velocities)
    np.testing.assert_array_equal(ckpt.state.types, state.types)
    np.testing.assert_array_equal(ckpt.state.ids, state.ids)
    np.testing.assert_array_equal(ckpt.state.masses, state.masses)
    np.testing.assert_array_equal(
        ckpt.state.box.lengths, state.box.lengths
    )
    assert ckpt.step_count == 42
    assert ckpt.engine == "reference"
    assert ckpt.extra == {"swap_count": 3}

    # the restored generator continues the exact stream
    restored = seed_streams(0)["thermostat"]
    set_rng_state(restored, ckpt.rng_states["thermostat"])
    np.testing.assert_array_equal(restored.random(5), rng.random(5))


def test_trio_files_written(tmp_path, state):
    prefix = tmp_path / "c"
    paths = write_checkpoint(
        prefix, state, step_count=0, spec_hash="x", engine="wse"
    )
    assert paths == checkpoint_paths(prefix)
    for p in paths:
        assert p.exists(), p
    assert not list(tmp_path.glob("*.tmp"))  # atomic renames left no temps


def test_sidecar_is_plain_json(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix,
        state,
        step_count=7,
        spec_hash=SPEC.spec_hash(),
        engine="reference",
        rng_states={"thermostat": get_rng_state(seed_streams(1)["thermostat"])},
    )
    sidecar = json.loads(checkpoint_paths(prefix)[1].read_text())
    assert sidecar["schema"] == CHECKPOINT_SCHEMA
    assert sidecar["step_count"] == 7


def test_xyz_frame_preserves_velocities(tmp_path, state):
    """The human-readable frame keeps velocities to ~1e-9 A/ps."""
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=0, spec_hash="x", engine="reference",
        symbols=["Ta"],
    )
    frame = read_xyz(checkpoint_paths(prefix)[2], masses=state.masses)
    np.testing.assert_allclose(
        frame.velocities, state.velocities, atol=1e-9
    )
    np.testing.assert_allclose(frame.positions, state.positions, atol=1e-9)
    np.testing.assert_array_equal(frame.ids, state.ids)


def test_spec_hash_mismatch_refused(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=0, spec_hash=SPEC.spec_hash(),
        engine="reference",
    )
    other = RunSpec(element="Ta", reps=(3, 3, 2), temperature=200.0, seed=5)
    with pytest.raises(CheckpointError, match="different physics"):
        read_checkpoint(prefix, expected_spec_hash=other.spec_hash())
    # without the expectation the same checkpoint reads fine
    assert read_checkpoint(prefix).step_count == 0


def test_missing_checkpoint_raises(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(tmp_path / "nope")


def test_corrupt_sidecar_raises(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=0, spec_hash="x", engine="reference"
    )
    checkpoint_paths(prefix)[1].write_text("{broken")
    with pytest.raises(CheckpointError, match="corrupt"):
        read_checkpoint(prefix)


def test_wrong_schema_raises(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=0, spec_hash="x", engine="reference"
    )
    sidecar = json.loads(checkpoint_paths(prefix)[1].read_text())
    sidecar["schema"] = "repro-checkpoint/99"
    checkpoint_paths(prefix)[1].write_text(json.dumps(sidecar))
    with pytest.raises(CheckpointError, match="schema"):
        read_checkpoint(prefix)


def test_torn_trio_step_disagreement_raises(tmp_path, state):
    """A sidecar whose step count disagrees with the npz payload is a
    torn checkpoint (one file from an older write survived a crash)."""
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=10, spec_hash="x", engine="reference"
    )
    json_path = checkpoint_paths(prefix)[1]
    sidecar = json.loads(json_path.read_text())
    sidecar["step_count"] = 99
    json_path.write_text(json.dumps(sidecar))
    with pytest.raises(CheckpointError, match="torn checkpoint"):
        read_checkpoint(prefix)


def test_payload_step_count_stored_in_npz(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=12, spec_hash="x", engine="reference"
    )
    with np.load(checkpoint_paths(prefix)[0]) as data:
        assert int(data["step_count"]) == 12


def test_sweep_orphan_tmp_removes_only_tmp_siblings(tmp_path, state):
    prefix = tmp_path / "c"
    write_checkpoint(
        prefix, state, step_count=3, spec_hash="x", engine="reference"
    )
    # simulate a crash mid-write: staged temps next to the live trio
    orphans = [
        p.with_name(p.name + ".tmp") for p in checkpoint_paths(prefix)
    ]
    for orphan in orphans:
        orphan.write_bytes(b"partial")
    bystander = tmp_path / "other.npz"
    bystander.write_bytes(b"keep me")
    removed = sweep_orphan_tmp(prefix)
    assert sorted(removed) == sorted(orphans)
    assert not any(p.exists() for p in orphans)
    assert bystander.exists()
    # the live trio is untouched and still reads back
    assert read_checkpoint(prefix).step_count == 3


def test_sweep_orphan_tmp_empty_dir_is_noop(tmp_path):
    assert sweep_orphan_tmp(tmp_path / "never-written") == []
