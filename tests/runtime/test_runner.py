"""Runner orchestration: observers, checkpoint cadence, resume fidelity."""

import dataclasses

import numpy as np
import pytest

from repro.runtime import (
    CheckpointError,
    RunSpec,
    Runner,
    ThermostatSpec,
    checkpoint_paths,
    read_checkpoint,
)

QUICK = dict(element="Ta", reps=(3, 3, 2), temperature=150.0, seed=6)


def _positions(runner):
    state = runner.engine.state
    return state.positions[np.argsort(state.ids)]


class TestLoop:
    def test_run_defaults_to_spec_steps(self):
        runner = Runner.from_spec(RunSpec(steps=5, **QUICK))
        tel = runner.run()
        assert runner.engine.step_count == 5
        assert tel.steps == 5

    def test_run_is_resumable_to_spec_target(self):
        runner = Runner.from_spec(RunSpec(steps=6, **QUICK))
        runner.run(2)
        runner.run()  # tops up to the spec's 6
        assert runner.engine.step_count == 6

    def test_observers_fire_on_absolute_steps(self):
        runner = Runner.from_spec(RunSpec(steps=10, **QUICK))
        seen2, seen5 = [], []
        runner.add_observer(2, lambda ev: seen2.append(ev.step))
        runner.add_observer(5, lambda ev: seen5.append(ev.step))
        runner.run()
        assert seen2 == [2, 4, 6, 8, 10]
        assert seen5 == [5, 10]

    def test_observer_event_exposes_state(self):
        runner = Runner.from_spec(RunSpec(engine="wse", steps=2, **QUICK))
        atoms = []
        runner.add_observer(1, lambda ev: atoms.append(ev.state.n_atoms))
        runner.run()
        assert atoms == [runner.engine.state.n_atoms] * 2

    def test_bad_observer_interval(self):
        runner = Runner.from_spec(RunSpec(steps=1, **QUICK))
        with pytest.raises(ValueError, match="interval"):
            runner.add_observer(0, lambda ev: None)

    def test_chunking_does_not_change_trajectory(self):
        spec = RunSpec(steps=9, **QUICK)
        plain = Runner.from_spec(spec)
        plain.run()
        chopped = Runner.from_spec(spec)
        chopped.add_observer(2, lambda ev: None)
        chopped.add_observer(7, lambda ev: None)
        chopped.run()
        np.testing.assert_array_equal(_positions(plain), _positions(chopped))


class TestCheckpointing:
    def test_final_checkpoint_always_written(self, tmp_path):
        prefix = tmp_path / "c"
        Runner.from_spec(
            RunSpec(steps=3, **QUICK), checkpoint_prefix=prefix
        ).run()
        assert all(p.exists() for p in checkpoint_paths(prefix))
        assert read_checkpoint(prefix).step_count == 3

    def test_periodic_checkpoints(self, tmp_path):
        prefix = tmp_path / "c"
        spec = RunSpec(steps=6, checkpoint_interval=2, **QUICK)
        steps_seen = []
        runner = Runner.from_spec(spec, checkpoint_prefix=prefix)
        # probe at odd steps: the snapshot on disk is the last even one
        runner.add_observer(
            3, lambda ev: steps_seen.append(read_checkpoint(prefix).step_count)
        )
        runner.run()
        assert steps_seen == [2, 4]
        assert read_checkpoint(prefix).step_count == 6

    def test_no_prefix_no_files(self, tmp_path):
        Runner.from_spec(RunSpec(steps=2, checkpoint_interval=1, **QUICK)).run()
        assert not list(tmp_path.iterdir())


@pytest.mark.parametrize(
    "engine_kwargs",
    [
        {"engine": "reference"},
        {"engine": "wse"},
        {"engine": "wse", "swap_interval": 2, "force_symmetry": True},
        {
            "engine": "reference",
            "thermostat": ThermostatSpec("langevin", 290.0, tau_fs=100.0),
        },
        {
            "engine": "wse",
            "thermostat": ThermostatSpec("berendsen", 100.0, tau_fs=50.0),
        },
    ],
    ids=["reference", "wse", "wse-swaps", "langevin", "wse-berendsen"],
)
def test_resume_matches_uninterrupted(tmp_path, engine_kwargs):
    """Kill-at-step-k property: checkpoint at k, resume, compare at N."""
    spec = RunSpec(steps=8, **QUICK, **engine_kwargs)

    straight = Runner.from_spec(spec)
    straight.run()

    prefix = tmp_path / "c"
    first = Runner.from_spec(spec, checkpoint_prefix=prefix)
    first.run(3)
    first.write_checkpoint()
    del first  # the "crash"

    resumed = Runner.resume(spec, prefix)
    assert resumed.engine.step_count == 3
    resumed.run()  # tops up to the spec's 8
    assert resumed.engine.step_count == 8

    np.testing.assert_allclose(
        _positions(straight), _positions(resumed), atol=1e-12
    )
    vs = straight.engine.state
    vr = resumed.engine.state
    np.testing.assert_allclose(
        vs.velocities[np.argsort(vs.ids)],
        vr.velocities[np.argsort(vr.ids)],
        atol=1e-12,
    )


def test_resume_with_longer_steps_is_legal(tmp_path):
    prefix = tmp_path / "c"
    spec = RunSpec(steps=2, **QUICK)
    Runner.from_spec(spec, checkpoint_prefix=prefix).run()
    longer = dataclasses.replace(spec, steps=4)
    resumed = Runner.resume(longer, prefix)
    resumed.run()
    assert resumed.engine.step_count == 4


def test_resume_refuses_different_physics(tmp_path):
    prefix = tmp_path / "c"
    Runner.from_spec(RunSpec(steps=2, **QUICK), checkpoint_prefix=prefix).run()
    other = RunSpec(steps=2, **{**QUICK, "seed": 7})
    with pytest.raises(CheckpointError, match="different physics"):
        Runner.resume(other, prefix)


def test_resume_continues_checkpointing_at_same_prefix(tmp_path):
    prefix = tmp_path / "c"
    spec = RunSpec(steps=4, **QUICK)
    runner = Runner.from_spec(spec, checkpoint_prefix=prefix)
    runner.run(2)
    resumed = Runner.resume(spec, prefix)
    resumed.run()
    assert read_checkpoint(prefix).step_count == 4


class TestTeardown:
    """close()/request_stop(): idempotent, thread-safe, resumable."""

    @pytest.mark.parametrize("engine", ["reference", "wse"])
    def test_close_twice_is_harmless(self, engine):
        runner = Runner.from_spec(RunSpec(engine=engine, steps=2, **QUICK))
        runner.run()
        runner.close()
        runner.close()  # second call is a no-op, not an error

    @pytest.mark.parametrize("engine", ["reference", "wse"])
    def test_close_from_another_thread(self, engine):
        import threading

        runner = Runner.from_spec(RunSpec(engine=engine, steps=2, **QUICK))
        runner.run()
        errors = []

        def _close():
            try:
                runner.close()
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [threading.Thread(target=_close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        runner.close()  # and again from the original thread

    def test_request_stop_breaks_at_chunk_boundary(self, tmp_path):
        prefix = tmp_path / "c"
        spec = RunSpec(steps=10, **QUICK)
        runner = Runner.from_spec(spec, checkpoint_prefix=prefix)
        runner.add_observer(
            2, lambda ev: runner.request_stop() if ev.step >= 4 else None
        )
        runner.run()
        assert runner.stop_requested
        assert runner.engine.step_count == 4  # not the target 10

        # the stopped run still wrote its final checkpoint and resumes
        resumed = Runner.resume(spec, prefix)
        assert resumed.engine.step_count == 4
        resumed.run()
        assert resumed.engine.step_count == 10

    def test_stopped_run_matches_uninterrupted(self, tmp_path):
        spec = RunSpec(steps=8, **QUICK)
        straight = Runner.from_spec(spec)
        straight.run()

        prefix = tmp_path / "c"
        stopped = Runner.from_spec(spec, checkpoint_prefix=prefix)
        stopped.add_observer(3, lambda ev: stopped.request_stop())
        stopped.run()
        resumed = Runner.resume(spec, prefix)
        resumed.run()
        np.testing.assert_allclose(
            _positions(straight), _positions(resumed), atol=1e-12
        )

    def test_resume_sweeps_orphan_tmp(self, tmp_path):
        prefix = tmp_path / "c"
        spec = RunSpec(steps=2, **QUICK)
        Runner.from_spec(spec, checkpoint_prefix=prefix).run()
        orphan = tmp_path / "c.npz.tmp"
        orphan.write_bytes(b"partial write from a crash")
        Runner.resume(spec, prefix)
        assert not orphan.exists()
