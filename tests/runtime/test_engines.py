"""Engine protocol conformance and the spec-driven factory."""

import numpy as np
import pytest

from repro.runtime import (
    Engine,
    ReferenceEngine,
    RunSpec,
    Telemetry,
    ThermostatSpec,
    WseEngine,
    build_engine,
    build_state,
    seed_streams,
)

QUICK = dict(element="Ta", reps=(3, 3, 2), temperature=150.0, steps=4, seed=2)


@pytest.mark.parametrize("engine", ["reference", "wse"])
class TestProtocol:
    def test_factory_builds_conforming_engine(self, engine):
        eng = build_engine(RunSpec(engine=engine, **QUICK))
        assert isinstance(eng, Engine)
        assert eng.name == engine
        assert eng.step_count == 0

    def test_step_advances_count_and_state(self, engine):
        eng = build_engine(RunSpec(engine=engine, **QUICK))
        before = eng.state.positions.copy()
        eng.step(3)
        assert eng.step_count == 3
        assert not np.allclose(eng.state.positions, before)

    def test_telemetry_shape(self, engine):
        eng = build_engine(RunSpec(engine=engine, **QUICK))
        eng.step(2)
        tel = eng.telemetry()
        assert isinstance(tel, Telemetry)
        assert tel.engine == engine
        assert tel.steps == 2
        assert tel.wall_time_s > 0
        assert tel.counters["n_atoms"] == eng.state.n_atoms
        assert tel.steps_per_s > 0
        d = tel.as_dict()
        assert d["engine"] == engine

    def test_reset_telemetry_keeps_state(self, engine):
        eng = build_engine(RunSpec(engine=engine, **QUICK))
        eng.step(2)
        pos = eng.state.positions.copy()
        eng.reset_telemetry()
        tel = eng.telemetry()
        assert tel.steps == 0
        assert tel.wall_time_s == 0.0
        assert eng.step_count == 2  # stepping history is state, not telemetry
        np.testing.assert_array_equal(eng.state.positions, pos)

    def test_telemetry_trace_phases(self, engine):
        from repro.obs import Tracer, required_phases

        eng = build_engine(RunSpec(engine=engine, **QUICK), tracer=Tracer())
        eng.step(3)
        tel = eng.telemetry()
        assert tel.trace_phases is not None
        for phase in required_phases(engine, swap_interval=0):
            assert tel.trace_phases[phase] > 0.0
        assert "trace_phases" in tel.as_dict()

    def test_untraced_telemetry_has_no_phases(self, engine):
        eng = build_engine(RunSpec(engine=engine, **QUICK))
        eng.step(2)
        tel = eng.telemetry()
        assert tel.trace_phases is None
        assert "trace_phases" not in tel.as_dict()

    def test_reset_telemetry_zeroes_tracer(self, engine):
        from repro.obs import Tracer

        eng = build_engine(RunSpec(engine=engine, **QUICK), tracer=Tracer())
        eng.step(2)
        eng.reset_telemetry()
        assert eng.tracer.phase_totals() == {}
        eng.step(1)
        assert eng.telemetry().trace_phases["integrate"] > 0.0

    def test_same_spec_same_trajectory(self, engine):
        spec = RunSpec(engine=engine, **QUICK)
        a = build_engine(spec)
        b = build_engine(spec)
        a.step(4)
        b.step(4)
        np.testing.assert_array_equal(a.state.positions, b.state.positions)
        np.testing.assert_array_equal(a.state.velocities, b.state.velocities)

    def test_different_seed_different_trajectory(self, engine):
        spec = RunSpec(engine=engine, **QUICK)
        a = build_engine(spec)
        b = build_engine(RunSpec(engine=engine, **{**QUICK, "seed": 3}))
        a.step(2)
        b.step(2)
        assert not np.allclose(a.state.positions, b.state.positions)


class TestFactory:
    def test_engine_classes(self):
        assert isinstance(build_engine(RunSpec(**QUICK)), ReferenceEngine)
        assert isinstance(
            build_engine(RunSpec(engine="wse", **QUICK)), WseEngine
        )

    def test_build_state_matches_factory_initial_state(self):
        spec = RunSpec(**QUICK)
        state, _ = build_state(spec)
        eng = build_engine(spec)
        np.testing.assert_array_equal(state.positions, eng.state.positions)
        np.testing.assert_array_equal(state.velocities, eng.state.velocities)

    def test_custom_state_not_redrawn(self):
        spec = RunSpec(**QUICK)
        state, pot = build_state(spec)
        vel = state.velocities.copy()
        eng = build_engine(spec, state=state, potential=pot)
        np.testing.assert_array_equal(eng.state.velocities, vel)

    def test_engine_kwargs_win(self):
        eng = build_engine(RunSpec(engine="wse", **QUICK), b_margin=3.0)
        assert eng.sim is not None  # constructed without error

    def test_seed_streams_are_independent_and_named(self):
        streams = seed_streams(0)
        assert set(streams) == {"velocities", "thermostat", "engine"}
        a = streams["velocities"].random(4)
        b = seed_streams(0)["velocities"].random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, seed_streams(1)["velocities"].random(4))

    def test_wse_engine_uses_engine_stream(self):
        eng = build_engine(RunSpec(engine="wse", **QUICK))
        expected = seed_streams(QUICK["seed"])["engine"]
        assert (
            eng.sim.rng.bit_generator.state == expected.bit_generator.state
        )


class TestThermostats:
    def test_berendsen_cools_wse(self):
        ts = ThermostatSpec("berendsen", temperature=50.0, tau_fs=20.0)
        spec = RunSpec(
            engine="wse", thermostat=ts, **{**QUICK, "temperature": 400.0}
        )
        eng = build_engine(spec)
        t0 = eng.state.temperature()
        eng.step(20)
        assert eng.state.temperature() < t0

    def test_berendsen_matches_across_engines(self):
        ts = ThermostatSpec("berendsen", temperature=100.0, tau_fs=50.0)
        base = dict(QUICK, temperature=300.0)
        ref = build_engine(RunSpec(engine="reference", thermostat=ts, **base))
        wse = build_engine(RunSpec(engine="wse", thermostat=ts, **base))
        ref.step(6)
        wse.step(6)
        np.testing.assert_allclose(
            ref.state.positions, wse.state.positions, atol=1e-10
        )

    def test_langevin_reference_deterministic_per_seed(self):
        ts = ThermostatSpec("langevin", temperature=290.0, tau_fs=100.0)
        spec = RunSpec(thermostat=ts, **QUICK)
        a = build_engine(spec)
        b = build_engine(spec)
        a.step(4)
        b.step(4)
        np.testing.assert_array_equal(a.state.positions, b.state.positions)
        assert a.rng_states()  # the stochastic stream is checkpointable
