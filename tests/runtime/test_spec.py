"""RunSpec parsing, validation, round-trips and the physics hash."""

import json

import pytest

from repro.runtime import RunSpec, SpecError, ThermostatSpec


class TestValidation:
    def test_defaults_are_valid(self):
        spec = RunSpec()
        assert spec.element == "Ta"
        assert spec.engine == "reference"

    def test_unknown_element(self):
        with pytest.raises(SpecError, match="unknown element"):
            RunSpec(element="Xx")

    def test_unknown_engine(self):
        with pytest.raises(SpecError, match="unknown engine"):
            RunSpec(engine="gpu")

    @pytest.mark.parametrize("reps", [(0, 1, 1), (2, 2), (1, 2, 3, 4)])
    def test_bad_reps(self, reps):
        with pytest.raises(SpecError, match="reps"):
            RunSpec(reps=reps)

    def test_reps_coerced_to_int_tuple(self):
        spec = RunSpec(reps=[4, 4, 2])
        assert spec.reps == (4, 4, 2)
        assert all(isinstance(r, int) for r in spec.reps)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": -1.0},
            {"steps": -1},
            {"dt_fs": 0.0},
            {"skin": -0.1},
            {"swap_interval": -5},
            {"checkpoint_interval": -1},
        ],
    )
    def test_out_of_range_scalars(self, kwargs):
        with pytest.raises(SpecError):
            RunSpec(**kwargs)

    def test_langevin_on_wse_rejected(self):
        ts = ThermostatSpec(kind="langevin", temperature=290.0)
        with pytest.raises(SpecError, match="langevin"):
            RunSpec(engine="wse", thermostat=ts)

    def test_langevin_on_reference_ok(self):
        ts = ThermostatSpec(kind="langevin", temperature=290.0)
        spec = RunSpec(engine="reference", thermostat=ts)
        assert spec.thermostat.kind == "langevin"

    def test_berendsen_on_wse_ok(self):
        ts = ThermostatSpec(kind="berendsen", temperature=150.0)
        assert RunSpec(engine="wse", thermostat=ts).thermostat is ts

    def test_thermostat_dict_promoted(self):
        spec = RunSpec(thermostat={"kind": "berendsen", "temperature": 300.0})
        assert isinstance(spec.thermostat, ThermostatSpec)
        assert spec.thermostat.tau_fs == 100.0

    def test_bad_thermostat_kind(self):
        with pytest.raises(SpecError, match="thermostat kind"):
            ThermostatSpec(kind="nose-hoover", temperature=300.0)


class TestSerialization:
    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown spec keys"):
            RunSpec.from_dict({"element": "Ta", "temprature": 290.0})

    def test_dict_round_trip(self):
        spec = RunSpec(
            element="W",
            reps=(4, 4, 2),
            engine="wse",
            steps=25,
            seed=7,
            swap_interval=10,
            force_symmetry=True,
            thermostat=ThermostatSpec("berendsen", 200.0, tau_fs=50.0),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_safe(self):
        spec = RunSpec(thermostat={"kind": "langevin", "temperature": 290.0})
        json.dumps(spec.to_dict())  # must not raise

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(
            'element = "Cu"\nreps = [3, 3, 2]\nengine = "wse"\n'
            "steps = 5\nseed = 3\n"
        )
        spec = RunSpec.from_file(path)
        assert (spec.element, spec.reps, spec.seed) == ("Cu", (3, 3, 2), 3)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"element": "W", "steps": 8}))
        spec = RunSpec.from_file(path)
        assert (spec.element, spec.steps) == ("W", 8)

    @pytest.mark.parametrize(
        "name, body",
        [
            ("bad.toml", "element = ["),
            ("bad.json", "{not json"),
            ("bad.yaml", "element: Ta"),
        ],
    )
    def test_malformed_files_raise_spec_error(self, tmp_path, name, body):
        path = tmp_path / name
        path.write_text(body)
        with pytest.raises(SpecError):
            RunSpec.from_file(path)

    def test_missing_file_raises_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            RunSpec.from_file(tmp_path / "nope.toml")


class TestSpecHash:
    def test_physics_change_changes_hash(self):
        base = RunSpec()
        assert base.spec_hash() != RunSpec(seed=1).spec_hash()
        assert base.spec_hash() != RunSpec(temperature=100.0).spec_hash()
        assert base.spec_hash() != base.with_engine("wse").spec_hash()

    def test_non_physics_fields_do_not_change_hash(self):
        base = RunSpec(steps=10)
        import dataclasses

        longer = dataclasses.replace(
            base, steps=1000, backend="numpy", checkpoint_interval=5
        )
        assert base.spec_hash() == longer.spec_hash()

    def test_hash_stable_across_round_trip(self):
        spec = RunSpec(
            engine="wse",
            thermostat={"kind": "berendsen", "temperature": 250.0},
        )
        assert RunSpec.from_dict(spec.to_dict()).spec_hash() == spec.spec_hash()
