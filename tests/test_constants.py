"""Units and physical-constant sanity."""

import math

import pytest

from repro import constants, units


class TestMetalUnits:
    def test_mvv2e_value(self):
        # the LAMMPS metal-units constant
        assert constants.MVV2E == pytest.approx(1.0364269e-4, rel=1e-4)

    def test_force_to_accel_is_inverse(self):
        assert constants.FORCE_TO_ACCEL * constants.MVV2E == pytest.approx(1.0)

    def test_boltzmann(self):
        assert constants.KB_EV == pytest.approx(8.617e-5, rel=1e-3)

    def test_gpa_conversion(self):
        # 160.2 GPa is 1 eV/A^3
        assert 1.0 / constants.GPA_TO_EV_PER_A3 == pytest.approx(160.2, rel=1e-3)


class TestTemperature:
    def test_roundtrip(self):
        ke = constants.temperature_to_kinetic_energy(300.0, 3000)
        assert constants.kinetic_energy_to_temperature(ke, 3000) == pytest.approx(300.0)

    def test_zero_dof(self):
        assert constants.kinetic_energy_to_temperature(1.0, 0) == 0.0

    def test_thermal_velocity_scale_copper(self):
        # Cu at 300K: sigma = sqrt(kT/m) ~ 0.63 A/ps per component
        sigma = constants.thermal_velocity_scale(300.0, 63.546)
        assert sigma == pytest.approx(
            math.sqrt(constants.KB_EV * 300.0 / (63.546 * constants.MVV2E))
        )
        assert 1.0 < sigma < 3.0

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            constants.thermal_velocity_scale(300.0, -1.0)


class TestUnitHelpers:
    def test_cycles_ns_roundtrip(self):
        ns = units.cycles_to_ns(1000, 1e9)
        assert ns == pytest.approx(1000.0)
        assert units.ns_to_cycles(ns, 1e9) == pytest.approx(1000.0)

    def test_steps_per_second(self):
        assert units.steps_per_second(1000.0) == pytest.approx(1e6)
        assert units.step_time_ns(1e6) == pytest.approx(1000.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.steps_per_second(0.0)
        with pytest.raises(ValueError):
            units.cycles_to_ns(10, 0.0)

    def test_simulated_time_per_day(self):
        # 274,016 steps/s at 2 fs -> ~47 us/day (the paper's Ta rate)
        us = units.simulated_time_per_day_us(274016, 2.0)
        assert us == pytest.approx(47.35, rel=0.01)

    def test_timesteps_per_joule(self):
        assert units.timesteps_per_joule(274016, 23000) == pytest.approx(
            11.91, rel=0.01
        )
