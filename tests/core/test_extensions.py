"""Extension features: force symmetry, offline optimization, packing."""

import numpy as np
import pytest

from repro.core.cycle_model import CycleCostModel, OptimizationConfig
from repro.core.mapping import build_mapping
from repro.core.optimize import optimize_mapping
from repro.core.validate import compare_trajectories
from repro.core.wse_md import WseMd
from repro.md.simulation import Simulation
from repro.perfmodel.packing import packed_step_cycles, packing_sweep
from repro.potentials.elements import ELEMENTS
from tests.conftest import small_slab_state


class TestForceSymmetry:
    def test_trajectories_identical_to_full_mode(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=290.0)
        sym = WseMd(state.copy(), ta_potential, force_symmetry=True)
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.6)
        cmp = compare_trajectories(state, sym, ref, 20)
        assert cmp.max_position_error < 1e-10
        assert cmp.energy_error < 1e-8

    def test_half_the_work(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        full = WseMd(state.copy(), ta_potential)
        half = WseMd(state.copy(), ta_potential, force_symmetry=True)
        full.step(1)
        half.step(1)
        fc, fi = full.mean_counts()
        hc, hi = half.mean_counts()
        assert hc == pytest.approx(fc / 2, rel=0.02)
        assert hi == pytest.approx(fi / 2, rel=0.02)

    def test_symmetric_energy_equals_full(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=100.0)
        full = WseMd(state.copy(), ta_potential)
        half = WseMd(state.copy(), ta_potential, force_symmetry=True)
        assert half.compute_energy() == pytest.approx(
            full.compute_energy(), abs=1e-9
        )

    def test_priced_with_symmetry_opt_is_faster(self):
        model = CycleCostModel()
        sym = model.with_opt(
            OptimizationConfig(name="sym", interaction_factor=0.5)
        )
        el = ELEMENTS["Ta"]
        assert sym.steps_per_second(
            el.candidates / 2, el.interactions / 2, el.neighborhood_b
        ) > model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )


class TestOfflineOptimization:
    def test_improves_scrambled_mapping(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        mapping = build_mapping(state.positions, state.box)
        # scramble: swap random core assignments
        rng = np.random.default_rng(0)
        scrambled = mapping.atom_core.copy()
        idx = rng.permutation(len(scrambled))[:100]
        scrambled[idx] = scrambled[np.roll(idx, 1)]
        from repro.core.mapping import Mapping
        bad = Mapping(
            grid=mapping.grid, projection=mapping.projection,
            pitch=mapping.pitch, origin=mapping.origin, atom_core=scrambled,
        )
        result = optimize_mapping(bad, state.positions)
        assert result.final_cost < result.initial_cost
        assert result.swaps > 0
        assert result.mapping.n_atoms == mapping.n_atoms
        # one-to-one preserved (Mapping validates on construction)
        assert len(np.unique(result.mapping.atom_core)) == mapping.n_atoms

    def test_good_mapping_left_nearly_unchanged(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        mapping = build_mapping(state.positions, state.box)
        result = optimize_mapping(mapping, state.positions, max_rounds=50)
        assert result.final_cost <= result.initial_cost + 1e-9

    def test_converges_toward_paper_offline_quality(self, ta_potential):
        """Paper Sec. V-E: best offline attempt reached 2.1 A."""
        state = small_slab_state("Ta", (8, 8, 3), temperature=0.0)
        mapping = build_mapping(state.positions, state.box)
        result = optimize_mapping(mapping, state.positions)
        assert result.final_cost < 3.5

    def test_position_count_mismatch_rejected(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=0.0)
        mapping = build_mapping(state.positions, state.box)
        with pytest.raises(ValueError):
            optimize_mapping(mapping, state.positions[:-1])


class TestPacking:
    def test_k1_matches_base_model(self):
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        packed = packed_step_cycles(
            model, el.candidates, el.interactions, el.neighborhood_b, 1
        )
        base = model.step_cycles(
            el.candidates, el.interactions, el.neighborhood_b
        )
        assert packed == pytest.approx(base, rel=0.001)

    def test_rate_falls_capacity_grows(self):
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        sweep = packing_sweep(
            model, el.candidates, el.interactions, el.neighborhood_b
        )
        rates = [c.steps_per_second for c in sweep]
        atoms = [c.max_atoms for c in sweep]
        assert all(b < a for a, b in zip(rates, rates[1:]))
        assert all(b > a for a, b in zip(atoms, atoms[1:]))

    def test_atom_throughput_grows_with_packing(self):
        """More atoms per core: lower step rate, higher atom-steps/s."""
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        sweep = packing_sweep(
            model, el.candidates, el.interactions, el.neighborhood_b,
            k_values=(1, 4, 16),
        )
        thr = [c.atom_steps_per_second for c in sweep]
        assert thr[-1] > thr[0]

    def test_neighborhood_shrinks_in_tiles(self):
        model = CycleCostModel()
        sweep = packing_sweep(model, 224, 42, 7, k_values=(1, 4, 16))
        assert [c.b_tiles for c in sweep] == [7, 4, 2]

    def test_rejects_bad_k(self):
        model = CycleCostModel()
        with pytest.raises(ValueError):
            packed_step_cycles(model, 80, 14, 4, 0)
