"""Periodic folding tests (paper Fig. 5 properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.folding import FabricProjection, circle_distance, fold_coordinate
from repro.md.boundary import Box


class TestFoldCoordinate:
    def test_near_half_maps_doubled(self):
        assert fold_coordinate(np.array([3.0]), 20.0)[0] == pytest.approx(6.0)

    def test_far_half_interleaves(self):
        # u and L-u map to adjacent line positions
        w1 = fold_coordinate(np.array([3.0]), 20.0)[0]
        w2 = fold_coordinate(np.array([17.0]), 20.0)[0]
        assert abs(w1 - w2) == pytest.approx(1.0)

    def test_wraps_input(self):
        w1 = fold_coordinate(np.array([23.0]), 20.0)[0]
        w2 = fold_coordinate(np.array([3.0]), 20.0)[0]
        assert w1 == pytest.approx(w2)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            fold_coordinate(np.array([1.0]), 0.0)

    @given(
        u1=st.floats(0, 100), u2=st.floats(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_lipschitz_bound_2d_plus_1(self, u1, u2):
        """|w(u1) - w(u2)| <= 2 d_circle + 1: the two-hop property."""
        length = 25.0
        w1 = fold_coordinate(np.array([u1]), length)[0]
        w2 = fold_coordinate(np.array([u2]), length)[0]
        d = circle_distance(np.array([u1]), np.array([u2]), length)[0]
        assert abs(w1 - w2) <= 2.0 * d + 1.0 + 1e-9

    def test_output_range(self):
        u = np.linspace(0, 30.0, 1000)
        w = fold_coordinate(u, 30.0)
        assert w.min() >= -1.0 - 1e-9
        assert w.max() <= 30.0 + 1e-9


class TestCircleDistance:
    def test_wraps(self):
        assert circle_distance(1.0, 19.0, 20.0) == pytest.approx(2.0)

    def test_symmetry(self):
        assert circle_distance(3.0, 15.0, 20.0) == circle_distance(
            15.0, 3.0, 20.0
        )

    def test_max_is_half_period(self):
        assert circle_distance(0.0, 10.0, 20.0) == pytest.approx(10.0)


class TestFabricProjection:
    def test_open_box_projection_is_identity(self):
        box = Box.open([20, 20, 10])
        proj = FabricProjection(box)
        pos = np.array([[1.0, 2.0, 3.0], [-4.0, 5.0, -1.0]])
        out = proj.project(pos)
        assert np.allclose(out, pos[:, :2])
        assert np.all(proj.lipschitz == 1.0)

    def test_periodic_x_folds(self):
        box = Box(np.array([20.0, 20.0, 10.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        proj = FabricProjection(box)
        out = proj.project(np.array([[3.0, 5.0, 0.0]]))
        assert out[0, 0] == pytest.approx(6.0)
        assert out[0, 1] == pytest.approx(5.0)
        assert proj.lipschitz.tolist() == [2.0, 1.0]

    def test_z_periodicity_ignored(self):
        # z periodicity needs no folding: the projection discards z
        box = Box(np.array([20.0, 20.0, 10.0]), periodic=[False, False, True])
        proj = FabricProjection(box)
        assert not any(proj.fold_dims)

    def test_separation_bound(self):
        box = Box(np.array([20.0, 20.0, 10.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        proj = FabricProjection(box)
        assert proj.separation_bound(4.0) == pytest.approx(9.0)  # 2*4 + 1
        open_proj = FabricProjection(Box.open([20, 20, 10]))
        assert open_proj.separation_bound(4.0) == pytest.approx(4.0)

    def test_plane_extent_fixed_for_folded_dim(self):
        box = Box(np.array([20.0, 20.0, 10.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        proj = FabricProjection(box)
        pos = np.array([[1.0, -3.0, 0.0], [8.0, 7.0, 0.0]])
        lo, hi = proj.plane_extent(pos)
        assert lo[0] == -1.0 and hi[0] == 20.0
        assert lo[1] == -3.0 and hi[1] == 7.0

    def test_interacting_atoms_stay_close_after_fold(self):
        """Across the periodic seam, folded coordinates remain adjacent."""
        box = Box(np.array([30.0, 30.0, 10.0]), periodic=[True, False, False],
                  origin=np.zeros(3))
        proj = FabricProjection(box)
        a = np.array([[0.5, 0.0, 0.0]])
        b = np.array([[29.5, 0.0, 0.0]])  # 1 A apart across the seam
        wa = proj.project(a)[0, 0]
        wb = proj.project(b)[0, 0]
        assert abs(wa - wb) <= 3.0  # 2*1 + 1
