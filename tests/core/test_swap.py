"""Atom-swap protocol: conservation, mutuality, cost improvement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.swap import SWAP_OFFSETS, SwapEngine


def make_grids(nx, ny, seed=0, occupancy=0.9):
    """Random per-tile atom projections with some empty tiles."""
    rng = np.random.default_rng(seed)
    occ = rng.random((nx, ny)) < occupancy
    centers = np.empty((nx, ny, 2))
    centers[:, :, 0] = np.arange(nx)[:, None]
    centers[:, :, 1] = np.arange(ny)[None, :]
    # atoms near their core, some scrambled
    proj = centers + rng.normal(scale=1.2, size=(nx, ny, 2))
    proj[~occ] = 1e15
    return occ, proj, centers


def total_cost(proj, occ, centers):
    d = np.abs(proj - centers).max(axis=2)
    return float(d[occ].max()), float(d[occ].sum())


class TestProposal:
    def test_no_swaps_for_perfect_assignment(self):
        occ = np.ones((6, 6), dtype=bool)
        centers = np.empty((6, 6, 2))
        centers[:, :, 0] = np.arange(6)[:, None]
        centers[:, :, 1] = np.arange(6)[None, :]
        engine = SwapEngine()
        choice, benefit = engine.propose(centers.copy(), occ, centers,
                                         np.array([1.0, 1.0]))
        assert np.all(choice == -1)

    def test_obvious_swap_detected(self):
        # two adjacent tiles holding each other's atom
        occ = np.ones((4, 4), dtype=bool)
        centers = np.empty((4, 4, 2))
        centers[:, :, 0] = np.arange(4)[:, None]
        centers[:, :, 1] = np.arange(4)[None, :]
        proj = centers.copy()
        proj[1, 1] = centers[2, 1]
        proj[2, 1] = centers[1, 1]
        engine = SwapEngine()
        choice, benefit = engine.propose(proj, occ, centers,
                                         np.array([1.0, 1.0]))
        # (1,1) prefers +x (offset 0), (2,1) prefers -x (offset 1)
        assert choice[1, 1] == 0
        assert choice[2, 1] == 1
        assert benefit[1, 1] > 0

    def test_move_into_empty_tile(self):
        occ = np.ones((4, 4), dtype=bool)
        occ[2, 1] = False
        centers = np.empty((4, 4, 2))
        centers[:, :, 0] = np.arange(4)[:, None]
        centers[:, :, 1] = np.arange(4)[None, :]
        proj = centers.copy()
        proj[1, 1] = centers[2, 1]  # atom belongs where the hole is
        proj[2, 1] = 1e15
        engine = SwapEngine()
        grids = {"proj": proj, "occ": occ}
        n = engine.apply(grids, proj, occ, centers, np.array([1.0, 1.0]))
        assert n == 1
        assert grids["occ"][2, 1] and not grids["occ"][1, 1]


class TestApply:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_atoms_conserved(self, seed):
        occ, proj, centers = make_grids(8, 8, seed)
        ids = np.where(occ, np.arange(64).reshape(8, 8), -1)
        engine = SwapEngine()
        grids = {"proj": proj, "occ": occ, "ids": ids}
        engine.apply(grids, proj, occ, centers, np.array([1.0, 1.0]))
        held = set(grids["ids"][grids["occ"]].tolist())
        expected = set(ids[ids >= 0].tolist())
        assert held == expected
        assert grids["occ"].sum() == occ.sum() if grids is not None else True

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_total_cost_never_increases(self, seed):
        occ, proj, centers = make_grids(8, 8, seed)
        engine = SwapEngine()
        _, sum_before = total_cost(proj, occ, centers)
        grids = {"proj": proj, "occ": occ}
        engine.apply(grids, proj, occ, centers, np.array([1.0, 1.0]))
        _, sum_after = total_cost(grids["proj"], grids["occ"], centers)
        # every executed swap had positive local benefit
        assert sum_after <= sum_before + 1e-9

    def test_repeated_rounds_converge(self):
        occ, proj, centers = make_grids(10, 10, seed=5)
        engine = SwapEngine()
        grids = {"proj": proj, "occ": occ}
        costs = []
        for _ in range(40):
            engine.apply(grids, grids["proj"], grids["occ"], centers,
                         np.array([1.0, 1.0]))
            costs.append(total_cost(grids["proj"], grids["occ"], centers)[1])
        # strictly improving then stable
        assert costs[-1] <= costs[0]
        assert costs[-1] == pytest.approx(costs[-2])

    def test_scrambled_mapping_substantially_improved(self):
        """A deliberately bad start (paper Fig. 9's transient) recovers."""
        rng = np.random.default_rng(1)
        nx = ny = 12
        occ = np.ones((nx, ny), dtype=bool)
        centers = np.empty((nx, ny, 2))
        centers[:, :, 0] = np.arange(nx)[:, None]
        centers[:, :, 1] = np.arange(ny)[None, :]
        # locally shuffled atoms: permute within 3x3 blocks heavily
        proj = centers + rng.normal(scale=2.0, size=(nx, ny, 2))
        engine = SwapEngine()
        grids = {"proj": proj}
        start = total_cost(proj, occ, centers)[1]
        for _ in range(60):
            engine.apply(grids, grids["proj"], occ, centers,
                         np.array([1.0, 1.0]))
        end = total_cost(grids["proj"], occ, centers)[1]
        assert end < 0.7 * start


class TestOffsets:
    def test_offsets_paired_with_opposites(self):
        from repro.core.swap import _OPPOSITE
        for k, (dx, dy) in enumerate(SWAP_OFFSETS):
            ox, oy = SWAP_OFFSETS[_OPPOSITE[k]]
            assert (ox, oy) == (-dx, -dy)
