"""Property-based engine equivalence: random configs, random settings.

hypothesis drives the whole stack — random slab sizes, temperatures,
elements, swap settings — asserting the lockstep wafer machine always
reproduces the reference engine's trajectory.  This is the repo's
strongest single guarantee: the wafer mapping changes *where* arithmetic
happens, never *what* is computed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.validate import compare_trajectories
from repro.core.wse_md import WseMd
from repro.md.simulation import Simulation
from tests.conftest import small_slab_state


@st.composite
def workload(draw):
    element = draw(st.sampled_from(["Ta", "Cu", "W"]))
    nx = draw(st.integers(4, 7))
    ny = draw(st.integers(4, 7))
    nz = draw(st.integers(2, 3))
    temperature = draw(st.sampled_from([0.0, 150.0, 350.0]))
    seed = draw(st.integers(0, 100))
    swap_interval = draw(st.sampled_from([0, 4]))
    symmetry = draw(st.booleans())
    return element, (nx, ny, nz), temperature, seed, swap_interval, symmetry


class TestEngineEquivalence:
    @given(w=workload())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_wafer_machine_equals_reference(self, w, element_potentials):
        element, reps, temperature, seed, swap_interval, symmetry = w
        pot = element_potentials[element]
        state = small_slab_state(element, reps, temperature, seed=seed)
        wse = WseMd(
            state.copy(), pot, dt_fs=2.0, swap_interval=swap_interval,
            force_symmetry=symmetry, b_margin=2.0,
        )
        ref = Simulation(state.copy(), pot, dt_fs=2.0, skin=0.8)
        cmp = compare_trajectories(state, wse, ref, 8)
        assert cmp.max_position_error < 1e-9, w
        assert cmp.max_velocity_error < 1e-9, w

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_gas_configurations_also_equal(self, seed, ta_potential):
        """Non-crystal (no layer structure) configurations."""
        from repro.md.boundary import Box
        from repro.md.state import AtomsState
        from repro.md.thermostat import maxwell_boltzmann_velocities

        rng = np.random.default_rng(seed)
        n = 60
        pos = rng.uniform(-15, 15, (n, 3)) * [1.0, 1.0, 0.15]
        # enforce a minimum separation to keep the potential in range
        from scipy.spatial.distance import pdist
        tries = 0
        while pdist(pos).min() < 1.9 and tries < 300:
            pos = rng.uniform(-15, 15, (n, 3)) * [1.0, 1.0, 0.15]
            tries += 1
        if pdist(pos).min() < 1.9:
            return  # could not build a valid random configuration
        box = Box.open([60, 60, 30])
        state = AtomsState.from_positions(pos, box, mass=180.95)
        maxwell_boltzmann_velocities(state, 100.0, rng)
        wse = WseMd(state.copy(), ta_potential, dt_fs=1.0, b_margin=2.0)
        ref = Simulation(state.copy(), ta_potential, dt_fs=1.0, skin=0.8)
        cmp = compare_trajectories(state, wse, ref, 5)
        assert cmp.max_position_error < 1e-9
