"""Cycle cost model: paper-constant calibration, optimization levels."""

import numpy as np
import pytest

from repro.core.cycle_model import (
    BASELINE,
    FIG10_STAGES,
    TABLE5_LEVELS,
    CycleCostModel,
    OptimizationConfig,
)
from repro.potentials.elements import ELEMENTS


@pytest.fixture(scope="module")
def model():
    return CycleCostModel()


PAPER_MEASURED = {"Cu": 106_313, "W": 96_140, "Ta": 274_016}
PAPER_PREDICTED = {"Cu": 104_895, "W": 93_048, "Ta": 270_097}


class TestCalibration:
    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_table1_rates_within_3_percent(self, model, symbol):
        """Paper's own prediction error bound (contribution #2)."""
        el = ELEMENTS[symbol]
        rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        assert rate == pytest.approx(PAPER_MEASURED[symbol], rel=0.03)

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_matches_paper_predictions_closely(self, model, symbol):
        el = ELEMENTS[symbol]
        rate = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        assert rate == pytest.approx(PAPER_PREDICTED[symbol], rel=0.02)

    def test_component_costs_near_table2(self, model):
        cyc_ns = model.machine.cycle_ns
        # B = per-interaction cost: paper 71.4 ns
        assert model.interaction_cycles() * cyc_ns == pytest.approx(71.4, abs=1.0)
        # fixed near 574 ns minus the exchange's constant part
        assert 400 < model.fixed_cycles() * cyc_ns < 574

    def test_exchange_scales_with_b(self, model):
        assert model.exchange_cycles(7) > model.exchange_cycles(4)

    def test_per_candidate_multicast_share_near_paper(self, model):
        """Table V attributes ~6 ns/candidate to the multicast."""
        for b in (4, 7):
            n_cand = (2 * b + 1) ** 2 - 1
            per_cand_ns = (
                model.exchange_cycles(b) * model.machine.cycle_ns / n_cand
            )
            assert 2.0 < per_cand_ns < 8.0


class TestStepPricing:
    def test_array_input(self, model):
        nc = np.array([80.0, 224.0])
        ni = np.array([14.0, 42.0])
        cycles = model.step_cycles(nc, ni, 4)
        assert cycles.shape == (2,)
        assert cycles[1] > cycles[0]

    def test_scalar_input(self, model):
        assert isinstance(model.step_cycles(80, 14, 4), float)

    def test_pbc_adds_compute_not_exchange(self, model):
        """Sec. V-F: position exchange takes the same time under PBC."""
        assert model.exchange_cycles(4, pbc=True) == model.exchange_cycles(
            4, pbc=False
        )
        assert model.candidate_cycles(pbc=True) > model.candidate_cycles(
            pbc=False
        )


class TestOptimizationLevels:
    def test_table5_order_and_final_rate(self, model):
        """Cumulative stages accelerate Ta monotonically past 1M steps/s."""
        el = ELEMENTS["Ta"]
        rates = [
            model.with_opt(opt).steps_per_second(
                el.candidates, el.interactions, el.neighborhood_b
            )
            for opt in TABLE5_LEVELS
        ]
        assert all(b > a for a, b in zip(rates, rates[1:]))
        assert rates[-1] > 0.9e6  # paper projects ~1.1M

    def test_neighbor_list_reuse_amortizes_candidates(self, model):
        opt = OptimizationConfig(name="nl", neighbor_list_reuse=10)
        m = model.with_opt(opt)
        assert m.candidate_cycles() == pytest.approx(
            model.candidate_cycles() / 10
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            OptimizationConfig(name="bad", fixed_factor=0.0)
        with pytest.raises(ValueError):
            OptimizationConfig(name="bad", neighbor_list_reuse=0)


class TestFig10Stages:
    def test_stages_monotone_improving(self, model):
        el = ELEMENTS["Ta"]
        rates = [
            model.scaled(f).steps_per_second(
                el.candidates, el.interactions, el.neighborhood_b
            )
            for _, f in FIG10_STAGES
        ]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_first_stage_is_5_6x_slower(self, model):
        el = ELEMENTS["Ta"]
        final = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        first = model.scaled(FIG10_STAGES[0][1]).steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        # compute scales 5.6x but the multicast does not, so the overall
        # slowdown is a bit under 5.6
        assert 4.0 < final / first < 5.6

    def test_final_stage_is_identity(self, model):
        el = ELEMENTS["Cu"]
        assert model.scaled(1.0).steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        ) == pytest.approx(
            model.steps_per_second(
                el.candidates, el.interactions, el.neighborhood_b
            )
        )
