"""Failure injection: the machine detects broken invariants loudly.

The wafer algorithm rests on invariants (neighborhood coverage, SRAM
capacity, finite state); these tests verify that violations surface as
errors or detections rather than silent corruption.
"""

import numpy as np
import pytest

from repro.core.wse_md import WseMd
from repro.potentials.elements import make_element_potential
from repro.wse.fabric import ChainFabric
from repro.wse.router import MarchingRouter, RouterState
from repro.wse.tile import SramBudget
from repro.wse.wavelet import RouterCommand, Wavelet, WaveletKind
from tests.conftest import small_slab_state


class TestCoverageViolations:
    def test_undersized_b_detected_by_verify_coverage(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        sim = WseMd(state.copy(), ta_potential, b=2)  # too small on purpose
        assert sim.verify_coverage() > 0

    def test_adequate_b_passes(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        sim = WseMd(state.copy(), ta_potential)
        assert sim.verify_coverage() == 0

    def test_undersized_b_loses_interactions(self, ta_potential):
        """The physical consequence: missing pair work."""
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        good = WseMd(state.copy(), ta_potential)
        bad = WseMd(state.copy(), ta_potential, b=2)
        good.step(1)
        bad.step(1)
        assert bad.last_interactions.sum() < good.last_interactions.sum()

    def test_neighborhood_larger_than_grid_rejected(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=0.0)
        with pytest.raises(ValueError, match="exceeds grid"):
            WseMd(state.copy(), ta_potential, b=50)


class TestStateCorruption:
    def test_overlapping_atoms_raise_in_reference(self, ta_potential):
        from repro.md.simulation import Simulation
        state = small_slab_state("Ta", (4, 4, 2), temperature=0.0)
        state.positions[1] = state.positions[0] + 0.05
        sim = Simulation(state, ta_potential)
        with pytest.raises(FloatingPointError, match="overlapping"):
            sim.compute_forces()

    def test_nonfinite_positions_raise_in_cell_list(self, ta_potential):
        from repro.md.neighbor_list import NeighborList
        state = small_slab_state("Ta", (4, 4, 2), temperature=0.0)
        state.positions[3, 1] = np.inf
        nl = NeighborList(state.box, ta_potential.cutoff)
        with pytest.raises(FloatingPointError, match="non-finite"):
            nl.pairs(state.positions)


class TestFabricMisconfiguration:
    def test_body_core_injection_rejected(self):
        r = MarchingRouter(state=RouterState.BODY)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        with pytest.raises(RuntimeError, match="only the head"):
            r.route(w, from_core=True)

    def test_misrouted_advance_detected(self):
        # ADVANCE must only reach the next-in-line body (or b=1 tail)
        r = MarchingRouter(state=RouterState.BODY)
        w = Wavelet(kind=WaveletKind.COMMAND, vc=0, src=0,
                    commands=[RouterCommand.ADVANCE, RouterCommand.RESET])
        with pytest.raises(RuntimeError, match="mis-sized"):
            r.route(w, from_core=False)

    def test_data_at_head_from_upstream_detected(self):
        r = MarchingRouter(state=RouterState.HEAD)
        w = Wavelet(kind=WaveletKind.DATA, vc=0, src=0)
        with pytest.raises(RuntimeError, match="head"):
            r.route(w, from_core=False)

    def test_stuck_fabric_times_out(self):
        fabric = ChainFabric(10, 2, 3)
        # sabotage: silence all heads so nothing ever transmits
        for r in fabric.routers:
            if r.state is RouterState.HEAD:
                r.state = RouterState.BODY
        with pytest.raises(RuntimeError, match="did not drain|stuck"):
            fabric.run(max_cycles=200)


class TestSramPressure:
    def test_paper_b_values_fit_with_margin(self):
        budget = SramBudget()
        for b in (4, 7):
            assert budget.total(b) < budget.capacity * 0.9

    def test_capacity_exceeded_is_detectable(self):
        budget = SramBudget()
        big_b = budget.max_b() + 1
        assert not budget.fits(big_b)
        assert budget.total(big_b) > budget.capacity
