"""Scalar worker program vs the reference force kernel."""

import numpy as np
import pytest

from repro.core.worker import Candidate, Worker
from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.potentials.base import PairTable
from repro.potentials.eam import EAMPotential
from repro.potentials.elements import ELEMENTS, make_element_tables


@pytest.fixture(scope="module")
def cluster():
    rng = np.random.default_rng(21)
    pos = rng.uniform(0, 8.0, size=(12, 3))
    from scipy.spatial.distance import pdist
    while pdist(pos).min() < 2.0:
        pos = rng.uniform(0, 8.0, size=(12, 3))
    return pos


@pytest.fixture(scope="module")
def reference(cluster):
    tables = make_element_tables("Ta")
    pot = EAMPotential(tables)
    box = Box.open([100, 100, 100])
    i, j, rij, r = all_pairs(cluster, tables.cutoff, box)
    pairs = PairTable(i=i, j=j, rij=rij, r=r)
    rho = pot.accumulate_density(len(cluster), pairs)
    f_val, f_der = pot.embed(rho)
    e_pair, forces = pot.pair_energy_forces(len(cluster), pairs, f_der)
    return {
        "tables": tables, "pairs": pairs, "rho": rho, "f_val": f_val,
        "f_der": f_der, "e_pair": e_pair, "forces": forces,
    }


def run_worker(cluster, reference, atom: int):
    tables = reference["tables"]
    w = Worker(
        atom_id=atom,
        position=cluster[atom].copy(),
        velocity=np.zeros(3),
        tables=tables,
        mass=ELEMENTS["Ta"].mass,
    )
    candidates = [
        Candidate(atom_id=k, position=cluster[k])
        for k in range(len(cluster)) if k != atom
    ]
    w.receive_candidates(candidates)
    return w, candidates


class TestWorkerProgram:
    def test_neighbor_list_is_ordinal_list(self, cluster, reference):
        w, candidates = run_worker(cluster, reference, 0)
        tables = reference["tables"]
        for ordinal in w.neighbor_list:
            d = np.linalg.norm(candidates[ordinal].position - cluster[0])
            assert d < tables.cutoff
        assert w.neighbor_list == sorted(w.neighbor_list)

    def test_density_matches_reference(self, cluster, reference):
        for atom in range(len(cluster)):
            w, _ = run_worker(cluster, reference, atom)
            w.compute_embedding()
            assert w.rho_bar == pytest.approx(reference["rho"][atom], abs=1e-12)

    def test_embedding_derivative_matches(self, cluster, reference):
        w, _ = run_worker(cluster, reference, 3)
        f_der = w.compute_embedding()
        assert f_der == pytest.approx(reference["f_der"][3], abs=1e-12)

    def test_force_matches_reference(self, cluster, reference):
        for atom in (0, 5, 11):
            w, candidates = run_worker(cluster, reference, atom)
            w.compute_embedding()
            neighbor_ids = [candidates[o].atom_id for o in w.neighbor_list]
            # the embedding exchange delivers neighbors' F'
            neighbor_fder = reference["f_der"][neighbor_ids]
            force = w.compute_force(neighbor_fder)
            assert np.allclose(force, reference["forces"][atom], atol=1e-10)

    def test_pair_energy_matches(self, cluster, reference):
        w, _ = run_worker(cluster, reference, 2)
        w.compute_embedding()
        assert w.pair_energy() == pytest.approx(
            reference["e_pair"][2], abs=1e-12
        )

    def test_integrate_leapfrog_step(self, reference):
        tables = reference["tables"]
        w = Worker(
            atom_id=0, position=np.zeros(3), velocity=np.array([1.0, 0, 0]),
            tables=tables, mass=100.0,
        )
        w.receive_candidates([])
        w.compute_embedding()
        w.integrate(np.zeros(3), dt_fs=1000.0)  # 1 ps, no force
        assert np.allclose(w.position, [1.0, 0.0, 0.0])

    def test_force_requires_matching_fder_length(self, cluster, reference):
        w, _ = run_worker(cluster, reference, 0)
        w.compute_embedding()
        with pytest.raises(ValueError, match="one F' per neighbor"):
            w.compute_force(np.zeros(w.n_interactions + 1))

    def test_staging_order_enforced(self, reference):
        w = Worker(
            atom_id=0, position=np.zeros(3), velocity=np.zeros(3),
            tables=reference["tables"], mass=1.0,
        )
        with pytest.raises(RuntimeError):
            w.compute_embedding()
