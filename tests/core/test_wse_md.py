"""Lockstep machine: trajectory equivalence and machine invariants."""

import numpy as np
import pytest

from repro.core.exchange import neighborhood_sources, shift2d
from repro.core.neighborhood import candidate_count, choose_b, required_b
from repro.core.validate import compare_trajectories
from repro.core.wse_md import WseMd
from repro.md.boundary import Box
from repro.md.simulation import Simulation
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.wse.geometry import TileGrid
from tests.conftest import small_slab_state


class TestShift2d:
    def test_basic_shift(self):
        a = np.arange(12).reshape(3, 4)
        out = shift2d(a, 1, 0, fill=-1)
        assert out[0, 0] == a[1, 0]
        assert np.all(out[2, :] == -1)

    def test_negative_shift(self):
        a = np.arange(12).reshape(3, 4)
        out = shift2d(a, 0, -2, fill=0)
        assert out[1, 2] == a[1, 0]
        assert np.all(out[:, 0] == 0)

    def test_vector_payload(self):
        a = np.random.default_rng(0).normal(size=(4, 4, 3))
        out = shift2d(a, -1, 1, fill=0.0)
        assert np.allclose(out[2, 1], a[1, 2])

    def test_shift_beyond_grid_all_fill(self):
        a = np.ones((3, 3))
        assert np.all(shift2d(a, 5, 0, fill=7.0) == 7.0)

    def test_matches_neighborhood_sources(self):
        g = TileGrid(6, 5)
        # the set of (dx,dy) shifts covering tile (2,2)'s neighborhood
        srcs = neighborhood_sources(g, 2, 2, 2)
        expect = set()
        for dx in (-2, -1, 0, 1, 2):
            for dy in (-2, -1, 0, 1, 2):
                if dx == dy == 0:
                    continue  # a tile does not receive its own atom
                x, y = 2 + dx, 2 + dy
                if 0 <= x < 6 and 0 <= y < 5:
                    expect.add(int(g.flatten(x, y)))
        assert srcs == expect


class TestNeighborhoodSizing:
    def test_candidate_count(self):
        assert candidate_count(4) == 80
        assert candidate_count(7) == 224
        with pytest.raises(ValueError):
            candidate_count(-1)

    def test_required_b_covers_all_pairs(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        from repro.core.mapping import build_mapping
        m = build_mapping(state.positions, state.box)
        b = required_b(m, state.positions, state.box, ta_potential.cutoff)
        cx, cy = m.core_xy()
        from repro.md.neighbor_list import NeighborList
        pairs = NeighborList(state.box, ta_potential.cutoff, skin=0.0).pairs(
            state.positions
        )
        dist = np.maximum(
            np.abs(cx[pairs.i] - cx[pairs.j]), np.abs(cy[pairs.i] - cy[pairs.j])
        )
        assert dist.max() <= b

    def test_choose_b_bound_exceeds_required(self, ta_potential):
        state = small_slab_state("Ta", (12, 12, 3), temperature=0.0)
        from repro.core.mapping import build_mapping
        m = build_mapping(state.positions, state.box)
        loose = choose_b(m, state.positions, ta_potential.cutoff)
        tight = required_b(m, state.positions, state.box, ta_potential.cutoff)
        assert loose >= tight


class TestTrajectoryEquivalence:
    """The central claim: same physics as the reference engine."""

    def test_open_boundary_slab(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=290.0)
        wse = WseMd(state.copy(), ta_potential, dt_fs=2.0)
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.6)
        cmp = compare_trajectories(state, wse, ref, 25)
        assert cmp.max_position_error < 1e-10
        assert cmp.max_velocity_error < 1e-10
        assert cmp.energy_error < 1e-8

    def test_z_periodic_slab(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=250.0)
        lz = 3 * 3.304
        box = Box(
            np.array([state.box.lengths[0], state.box.lengths[1], lz]),
            periodic=[False, False, True],
            origin=np.array([state.box.origin[0], state.box.origin[1],
                             -lz / 2.0]),
        )
        state = AtomsState(
            positions=state.positions, velocities=state.velocities,
            types=state.types, masses=state.masses, box=box,
        )
        wse = WseMd(state.copy(), ta_potential, dt_fs=2.0)
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.6)
        cmp = compare_trajectories(state, wse, ref, 20)
        assert cmp.max_position_error < 1e-10

    def test_inplane_periodic_uses_folding(self, ta_potential):
        el_a = 3.304
        nx = 8
        lx = nx * el_a
        from repro.lattice.crystals import replicate
        from repro.lattice.cells import BCC
        crystal = replicate(BCC, el_a, (nx, 6, 2))
        box = Box(
            np.array([lx, 6 * el_a + 30.0, 2 * el_a + 30.0]),
            periodic=[True, False, False],
            origin=np.array([0.0, -15.0, -15.0]),
        )
        state = AtomsState.from_positions(crystal.positions, box, mass=180.95)
        maxwell_boltzmann_velocities(state, 200.0, np.random.default_rng(8))
        wse = WseMd(state.copy(), ta_potential, dt_fs=2.0)
        assert wse.pbc_inplane
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.6)
        cmp = compare_trajectories(state, wse, ref, 15)
        assert cmp.max_position_error < 1e-10

    def test_equivalence_with_atom_swaps_enabled(self, ta_potential):
        """Swaps permute storage, never physics."""
        state = small_slab_state("Ta", (5, 5, 3), temperature=290.0, seed=12)
        wse = WseMd(state.copy(), ta_potential, dt_fs=2.0, swap_interval=5,
                    b_margin=2.0)
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.8)
        cmp = compare_trajectories(state, wse, ref, 30)
        assert cmp.max_position_error < 1e-9

    def test_fp32_mode_close_to_fp64(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=290.0)
        wse32 = WseMd(state.copy(), ta_potential, dtype=np.float32)
        ref = Simulation(state.copy(), ta_potential, dt_fs=2.0, skin=0.6)
        cmp = compare_trajectories(state, wse32, ref, 10)
        # FP32 storage: agreement at single precision, not double
        assert cmp.max_position_error < 1e-3
        assert cmp.max_position_error > 0.0


class TestMachineBehaviour:
    def test_counts_match_reference_neighbor_counts(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 3), temperature=0.0)
        wse = WseMd(state.copy(), ta_potential)
        wse.step(1)
        mean_cand, mean_int = wse.mean_counts()
        # bulk Ta coordination is 14; slab surface atoms see fewer
        assert 8.0 < mean_int < 14.0
        assert mean_cand <= candidate_count(wse.b)

    def test_cycle_trace_recorded(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2))
        wse = WseMd(state.copy(), ta_potential)
        wse.step(3)
        assert wse.trace.n_steps == 3
        assert wse.measured_rate() > 0

    def test_empty_tiles_have_lower_cost(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2))
        wse = WseMd(state.copy(), ta_potential)
        wse.step(1)
        cycles = wse.trace.as_array()[0].reshape(wse.grid.nx, wse.grid.ny)
        if np.any(~wse.occ):
            assert cycles[~wse.occ].max() < cycles[wse.occ].max()

    def test_jitter_produces_paper_like_stability(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=0.0)
        clean = WseMd(state.copy(), ta_potential, jitter_rel=0.0)
        noisy = WseMd(state.copy(), ta_potential, jitter_rel=0.0011, seed=3)
        clean.step(20)
        noisy.step(20)
        # static atoms + no jitter: per-tile timings are exactly repeatable
        per_tile_clean = clean.trace.as_array().std(axis=0)
        assert np.allclose(per_tile_clean, 0.0)
        rep = noisy.trace.stability()
        per_tile_noisy = noisy.trace.as_array().std(axis=0).mean()
        mean = noisy.trace.as_array().mean()
        assert per_tile_noisy / mean == pytest.approx(0.0011, rel=0.5)
        # array-averaging shrinks the noise (paper: 0.11% -> 91 ppm)
        assert rep.array_avg_rel < per_tile_noisy / mean

    def test_swap_maintains_assignment_cost(self, ta_potential):
        state = small_slab_state("Ta", (6, 6, 2), temperature=400.0, seed=4)
        with_swaps = WseMd(state.copy(), ta_potential, swap_interval=10,
                           b_margin=2.0)
        without = WseMd(state.copy(), ta_potential, b_margin=2.0)
        with_swaps.step(100)
        without.step(100)
        assert with_swaps.assignment_cost() <= without.assignment_cost() + 0.5

    def test_vacated_tiles_reset_after_swaps(self, ta_potential):
        from repro.core.wse_md import _FAR

        state = small_slab_state("Ta", (6, 6, 2), temperature=400.0, seed=4)
        wse = WseMd(state.copy(), ta_potential, swap_interval=5, b_margin=2.0)
        wse.step(25)
        vac = ~wse.occ
        assert vac.any()  # grid is larger than the atom count
        # a vacated tile must look exactly like it never held an atom
        assert np.all(wse.pos[vac] == _FAR)
        assert np.all(wse.vel[vac] == 0.0)
        assert np.all(wse.aid[vac] == -1)
        assert np.all(wse.typ[vac] == 0)

    def test_integrate_never_touches_empty_tiles(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=290.0)
        wse = WseMd(state.copy(), ta_potential)
        vac = ~wse.occ
        pos_before = wse.pos[vac].copy()
        vel_before = wse.vel[vac].copy()
        wse.step(5)
        assert np.array_equal(wse.pos[vac], pos_before)
        assert np.array_equal(wse.vel[vac], vel_before)

    def test_gather_state_preserves_ids(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        wse = WseMd(state.copy(), ta_potential, swap_interval=3)
        wse.step(9)
        out = wse.gather_state()
        assert np.array_equal(out.ids, np.sort(state.ids))
        assert out.n_atoms == state.n_atoms

    def test_rejects_bad_arguments(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        with pytest.raises(ValueError):
            WseMd(state.copy(), ta_potential, swap_interval=-1)
        with pytest.raises(ValueError):
            WseMd(state.copy(), ta_potential, b=0)
        wse = WseMd(state.copy(), ta_potential)
        with pytest.raises(ValueError):
            wse.step(-1)
        with pytest.raises(RuntimeError):
            WseMd(state.copy(), ta_potential).measured_rate()

    def test_explicit_grid_and_b(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        wse = WseMd(state.copy(), ta_potential, grid=TileGrid(40, 40), b=8)
        assert wse.grid.nx == 40
        assert wse.b == 8
