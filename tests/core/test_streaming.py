"""Streaming-sweep equivalence and memory-scaling tests.

The streaming, offset-fused sweeps (:mod:`repro.core.streaming`)
replaced the record-based lockstep passes that kept one full-grid
record per neighborhood offset.  The contract is **bitwise** identity:
per candidate, the arithmetic and the per-tile accumulation order are
exactly those of the old passes.  This module pins that contract
against a reference implementation of the record-based passes embedded
below (the pre-streaming ``_collect_pairs`` / ``_density_pass`` /
``_force_pass`` logic, verbatim in structure), across dtypes, chunk
sizes, b values, non-square grids and the force-symmetry path.

The memory tests assert the whole point of the restructuring: peak
memory is O(chunk x grid), so paper-scale grids fit.  The expensive
scale tiers are opt-in via ``REPRO_SCALE_TESTS`` (any value enables the
~50k-atom smoke the CI scaling leg runs; ``paper`` additionally runs
the 801,792-atom paper grid).
"""

import os

import numpy as np
import pytest

from repro.core.exchange import iter_neighborhood, shift2d_into
from repro.core.streaming import FAR, StreamingSweeps, auto_chunk
from repro.core.wse_md import WseMd
from repro.potentials.spline import SplineGroup, UniformCubicSpline
from tests.conftest import bulk_state, small_slab_state

SCALE_TESTS = os.environ.get("REPRO_SCALE_TESTS", "")


# -- the reference (record-based) passes -------------------------------------
#
# A faithful transcription of the pre-streaming WseMd pass logic: one
# full-grid record per offset, per-type spline loops, identical offset
# and accumulation order.  Deliberately kept independent of
# repro.core.streaming so the equivalence test has a second opinion.


def reference_density_force(sim: WseMd):
    """Record-based density + force passes on ``sim``'s current grids."""
    nx, ny = sim.grid.nx, sim.grid.ny
    tables = sim.potential.tables
    rc2 = sim.potential.cutoff ** 2

    def rho_values(r, src_types, deriv=False):
        idx = 1 if deriv else 0
        if tables.n_types == 1:
            return tables.rho[0].evaluate(r)[idx]
        vals = np.zeros(len(r))
        for t in range(tables.n_types):
            m = src_types == t
            if np.any(m):
                vals[m] = tables.rho[t].evaluate(r[m])[idx]
        return vals

    records = []
    for dx, dy, fabric in iter_neighborhood(sim.grid, sim.b):
        if sim.force_symmetry and not (dy > 0 or (dy == 0 and dx > 0)):
            continue
        opos = shift2d_into(
            np.empty_like(sim.pos), sim.pos, dx, dy, fill=FAR
        )
        oocc = shift2d_into(
            np.empty_like(sim.occ), sim.occ, dx, dy, fill=False
        )
        d = opos - sim.pos
        both = sim.occ & oocc
        np.copyto(d, 0.0, where=~both[:, :, None])
        d = sim._minimum_image(d)
        r2 = np.einsum("xyk,xyk->xy", d, d)
        within = both & (r2 < rc2) & (r2 > 0.0)
        if np.any(within):
            r = np.sqrt(r2[within])
            unit = d[within] / r[:, None]
        else:
            r = np.empty(0)
            unit = np.empty((0, 3))
        records.append((dx, dy, fabric, within, r, unit))

    rho_bar = np.zeros((nx, ny))
    n_cand = np.zeros((nx, ny), dtype=np.int64)
    n_int = np.zeros((nx, ny), dtype=np.int64)
    for dx, dy, fabric, within, r, _unit in records:
        n_cand += fabric & sim.occ
        n_int += within
        if len(r) == 0:
            continue
        if tables.n_types == 1:
            src_t = ctr_t = np.zeros(len(r), dtype=np.int64)
        else:
            otyp = shift2d_into(
                np.empty_like(sim.typ), sim.typ, dx, dy, fill=0
            )
            src_t = otyp[within]
            ctr_t = sim.typ[within]
        rho_bar[within] += rho_values(r, src_t)
        if sim.force_symmetry:
            contrib = np.zeros((nx, ny))
            contrib[within] = rho_values(r, ctr_t)
            rho_bar += shift2d_into(
                np.empty((nx, ny)), contrib, -dx, -dy, fill=0.0
            )

    _, f_der = sim._embed(rho_bar)
    force = np.zeros((nx, ny, 3))
    e_pair = np.zeros((nx, ny))
    for dx, dy, _fabric, within, r, unit in records:
        if len(r) == 0:
            continue
        ofder = shift2d_into(
            np.empty((nx, ny)), f_der, dx, dy, fill=0.0
        )
        if tables.n_types == 1:
            rho_d = tables.rho[0].evaluate(r)[1]
            rho_d_src = rho_d_ctr = rho_d
            phi_v, phi_d = tables.phi_for(0, 0).evaluate(r)
        else:
            otyp = shift2d_into(
                np.empty_like(sim.typ), sim.typ, dx, dy, fill=0
            )
            t_src = otyp[within]
            t_ctr = sim.typ[within]
            rho_d_src = rho_values(r, t_src, deriv=True)
            rho_d_ctr = rho_values(r, t_ctr, deriv=True)
            phi_v = np.zeros(len(r))
            phi_d = np.zeros(len(r))
            for t1 in range(tables.n_types):
                for t2 in range(tables.n_types):
                    m = (t_ctr == t1) & (t_src == t2)
                    if np.any(m):
                        v, dv = tables.phi_for(t1, t2).evaluate(r[m])
                        phi_v[m] = v
                        phi_d[m] = dv
        s = f_der[within] * rho_d_src + ofder[within] * rho_d_ctr + phi_d
        if sim.force_symmetry:
            fvec = np.zeros((nx, ny, 3))
            fvec[within] = s[:, None] * unit
            force += fvec
            force -= shift2d_into(
                np.empty((nx, ny, 3)), fvec, -dx, -dy, fill=0.0
            )
            e_half = np.zeros((nx, ny))
            e_half[within] = 0.5 * phi_v
            e_pair += e_half + shift2d_into(
                np.empty((nx, ny)), e_half, -dx, -dy, fill=0.0
            )
        else:
            force[within] += s[:, None] * unit
            e_pair[within] += 0.5 * phi_v
    return rho_bar, n_cand, n_int, force, e_pair


# -- bitwise equivalence ------------------------------------------------------


@pytest.mark.parametrize("force_symmetry", [False, True])
@pytest.mark.parametrize(
    "reps,dtype,chunk,b",
    [
        ((4, 4, 2), np.float64, 0, None),
        ((4, 4, 2), np.float32, 1, None),
        ((5, 3, 2), np.float64, 7, None),  # non-square grid
        ((3, 5, 2), np.float64, 3, None),  # non-square, other axis
        ((6, 6, 2), np.float64, 0, 5),  # wider-than-needed b
        ((4, 4, 2), np.float64, 10_000, 4),  # chunk > n_offsets
    ],
)
def test_sweeps_match_record_passes_bitwise(
    ta_potential, reps, dtype, chunk, b, force_symmetry
):
    kw = {"b": b} if b is not None else {}
    sim = WseMd(
        small_slab_state(reps=reps),
        ta_potential,
        dtype=dtype,
        offset_chunk=chunk,
        force_symmetry=force_symmetry,
        **kw,
    )
    sim.step(3)  # off-lattice positions exercise the minimum image
    rho_ref, cand_ref, int_ref, force_ref, epair_ref = (
        reference_density_force(sim)
    )
    rho, n_cand, n_int, _, _ = sim._density_sweep()
    _, f_der = sim._embed(rho)
    force, e_pair, _, _ = sim._force_sweep(f_der)
    # bitwise: the streaming sweeps ARE the record passes, reordered
    # only where reordering is exact
    assert np.array_equal(rho, rho_ref)
    assert np.array_equal(n_cand, cand_ref)
    assert np.array_equal(n_int, int_ref)
    assert np.array_equal(force, force_ref)
    assert np.array_equal(e_pair, epair_ref)


def test_periodic_box_matches_record_passes(ta_potential):
    sim = WseMd(
        bulk_state(reps=(3, 3, 3), temperature=400.0),
        ta_potential,
        offset_chunk=5,
    )
    sim.step(2)
    rho_ref, _, _, force_ref, _ = reference_density_force(sim)
    rho, *_ = sim._density_sweep()
    _, f_der = sim._embed(rho)
    force, _, _, _ = sim._force_sweep(f_der)
    assert np.array_equal(rho, rho_ref)
    assert np.array_equal(force, force_ref)


@pytest.mark.parametrize("force_symmetry", [False, True])
def test_trajectory_chunk_invariant(ta_potential, force_symmetry):
    """Any chunking is a pure memory knob: trajectories are identical."""
    outs = []
    for chunk in (1, 7, 0):
        sim = WseMd(
            small_slab_state(reps=(4, 4, 2)),
            ta_potential,
            offset_chunk=chunk,
            force_symmetry=force_symmetry,
            swap_interval=4,
        )
        sim.step(10)
        outs.append(sim.gather_state())
    for other in outs[1:]:
        assert np.array_equal(outs[0].positions, other.positions)
        assert np.array_equal(outs[0].velocities, other.velocities)


def test_auto_chunk_bounds():
    assert auto_chunk(10, 10) == 16  # small grids cap at the max depth
    assert auto_chunk(2000, 2000) == 1  # huge grids degrade to 1
    nx = ny = 924  # ~the paper grid
    chunk = auto_chunk(nx, ny)
    assert 1 <= chunk <= 16
    assert chunk * nx * ny <= 4_000_000


def test_invalid_chunk_rejected(ta_potential):
    with pytest.raises(ValueError, match="offset_chunk"):
        WseMd(small_slab_state(reps=(4, 4, 2)), ta_potential,
              offset_chunk=-1)
    with pytest.raises(ValueError, match="workers"):
        WseMd(small_slab_state(reps=(4, 4, 2)), ta_potential, workers=-1)


# -- grouped spline evaluation ------------------------------------------------


class TestSplineGroup:
    def test_matches_member_evaluation_bitwise(self, ta_potential):
        tables = ta_potential.tables
        group = tables.grouped()
        r = np.linspace(0.5, tables.rho[0].x_max * 1.1, 400)
        v_ref, d_ref = tables.rho[0].evaluate(r)
        v, d = group.rho.evaluate(r, 0)
        assert np.array_equal(v, v_ref)
        assert np.array_equal(d, d_ref)

    def test_mixed_members_route_per_point(self):
        a = UniformCubicSpline.from_function(np.sin, 0.0, 3.0, 20)
        b = UniformCubicSpline.from_function(np.cos, 0.5, 4.0, 30)
        group = a.group_with(b)
        assert group.n_members == 2
        x = np.linspace(0.6, 2.9, 57)
        member = np.arange(len(x)) % 2
        v, d = group.evaluate(x, member)
        va, da = a.evaluate(x)
        vb, db = b.evaluate(x)
        assert np.array_equal(v[member == 0], va[member == 0])
        assert np.array_equal(d[member == 0], da[member == 0])
        assert np.array_equal(v[member == 1], vb[member == 1])
        assert np.array_equal(d[member == 1], db[member == 1])

    def test_mismatched_boundary_flags_rejected(self):
        a = UniformCubicSpline.from_function(np.sin, 0.0, 3.0, 20)
        b = UniformCubicSpline.from_function(
            np.cos, 0.0, 3.0, 20, zero_above=False
        )
        with pytest.raises(ValueError, match="boundary handling"):
            SplineGroup([a, b])

    def test_grouped_tables_cached(self, ta_potential):
        tables = ta_potential.tables
        assert tables.grouped() is tables.grouped()


# -- memory scaling -----------------------------------------------------------


def _peak_rss_run(reps, steps=2):
    """Peak RSS (bytes) of constructing + stepping a WseMd at ``reps``."""
    from repro.bench import peak_rss_bytes, reset_peak_rss
    from repro.potentials.elements import make_element_potential

    state = small_slab_state(reps=reps, temperature=80.0)
    if not reset_peak_rss():  # pragma: no cover - non-Linux
        pytest.skip("peak-RSS reset unsupported on this platform")
    sim = WseMd(state, make_element_potential("Ta"), force_symmetry=True)
    sim.step(steps)
    peak = peak_rss_bytes()
    assert peak is not None
    return peak, sim


def test_streaming_buffers_are_chunk_sized(ta_potential):
    """The sweeper's grid-proportional buffers obey the chunk budget."""
    sweeps = StreamingSweeps(
        nx=500, ny=500, dtype=np.float64,
        lengths=(1e3, 1e3, 1e3), periodic=(False,) * 3,
        cutoff=ta_potential.cutoff, tables=ta_potential.tables,
        offsets=[(dx, dy) for dx in range(-5, 6) for dy in range(-5, 6)
                 if (dx, dy) != (0, 0)],
        chunk=0,
    )
    depth = min(auto_chunk(500, 500), 120)
    # d-stack + occ + r2 + both per stacked tile; never O(offsets)
    per_tile = 3 * 8 + 1 + 8 + 1
    assert sweeps.buffer_bytes() == depth * 500 * 500 * per_tile


@pytest.mark.skipif(not SCALE_TESTS, reason="set REPRO_SCALE_TESTS to run")
def test_memory_smoke_50k_atoms():
    """~50k-atom lockstep run stays under a 2 GB ceiling (CI leg)."""
    peak, sim = _peak_rss_run((91, 92, 3))  # 50,232 atoms
    assert sim.n_atoms == 50_232
    assert peak < 2 * 1024**3, f"peak RSS {peak / 1e9:.2f} GB >= 2 GB"


@pytest.mark.skipif(
    SCALE_TESTS != "paper", reason="set REPRO_SCALE_TESTS=paper to run"
)
def test_memory_paper_grid_under_8gb():
    """The paper's 801,792-atom slab runs 2 steps under 8 GB peak RSS."""
    peak, sim = _peak_rss_run((256, 261, 6))
    assert sim.n_atoms == 801_792
    assert peak < 8 * 1024**3, f"peak RSS {peak / 1e9:.2f} GB >= 8 GB"
