"""Mapping invariants: bijectivity, bounded cost, layer awareness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    Mapping,
    assign_rows,
    build_mapping,
    grid_for_atoms,
    layer_offsets,
)
from repro.lattice.slab import make_slab
from repro.md.boundary import Box
from repro.potentials.elements import ELEMENTS
from repro.wse.geometry import TileGrid


def slab_and_box(symbol="Ta", reps=(8, 8, 3), pad=20.0):
    el = ELEMENTS[symbol]
    slab = make_slab(el.cell, el.lattice_constant, reps)
    return slab, Box.open(slab.box + pad)


class TestAssignRows:
    def test_no_collision_identity(self):
        d = np.array([1, 3, 5, 7])
        assert assign_rows(d, 10).tolist() == [1, 3, 5, 7]

    def test_collisions_spread_centered(self):
        d = np.array([5, 5, 5])
        rows = assign_rows(d, 11)
        assert len(set(rows.tolist())) == 3
        assert abs(int(np.mean(rows)) - 5) <= 1

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            assign_rows(np.array([0, 0, 0]), 2)

    def test_empty(self):
        assert len(assign_rows(np.array([], dtype=int), 5)) == 0

    @given(
        n_rows=st.integers(4, 60),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_distinct_monotone_in_range(self, n_rows, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(1, n_rows + 1)
        d = np.sort(rng.integers(0, n_rows, size=m))
        rows = assign_rows(d, n_rows)
        assert len(np.unique(rows)) == m
        assert np.all(np.diff(rows) > 0)
        assert rows.min() >= 0 and rows.max() < n_rows

    def test_no_accumulating_drift_under_uniform_overload(self):
        """2 atoms per even row at 94% fill: displacement stays local."""
        d = np.sort(np.repeat(np.arange(0, 232, 2), 2)[:218])
        rows = assign_rows(d, 232)
        assert np.abs(rows - d).max() <= 30  # bounded, not ~115


class TestGridSizing:
    def test_capacity_sufficient(self):
        g = grid_for_atoms(1000, np.array([100.0, 100.0]), fill=0.9)
        assert g.n_tiles >= 1000

    def test_aspect_follows_extent(self):
        g = grid_for_atoms(1000, np.array([400.0, 100.0]))
        assert g.nx > g.ny

    def test_max_tiles_enforced(self):
        with pytest.raises(ValueError, match="machine has"):
            grid_for_atoms(1000, np.array([10.0, 10.0]), max_tiles=500)

    def test_paper_fill_factor(self):
        # 801,792 atoms at 94% -> within the 850k-core wafer
        g = grid_for_atoms(801_792, np.array([850.0, 860.0]), fill=0.94)
        assert 801_792 <= g.n_tiles <= 880_000


class TestLayerOffsets:
    def test_flat_config_has_no_layers(self):
        z = np.zeros(100)
        assert layer_offsets(z) is None

    def test_slab_layers_detected(self):
        slab, _ = slab_and_box("Ta", (4, 4, 3))
        offs = layer_offsets(slab.positions[:, 2])
        assert offs is not None
        # adjacent layers get adjacent pattern cells (serpentine)
        zs = np.unique(np.round(slab.positions[:, 2], 6))
        by_z = {}
        for z in zs:
            mask = np.isclose(slab.positions[:, 2], z)
            by_z[z] = offs[mask][0]
        keys = sorted(by_z)
        for z1, z2 in zip(keys, keys[1:]):
            d = np.abs(by_z[z1] - by_z[z2])
            assert d.max() <= 1.0 + 1e-9

    def test_same_layer_same_offset(self):
        slab, _ = slab_and_box("Cu", (4, 4, 3))
        offs = layer_offsets(slab.positions[:, 2])
        z0 = slab.positions[0, 2]
        mask = np.isclose(slab.positions[:, 2], z0)
        assert np.allclose(offs[mask], offs[mask][0])


class TestBuildMapping:
    def test_one_to_one(self):
        slab, box = slab_and_box()
        m = build_mapping(slab.positions, box)
        assert len(np.unique(m.atom_core)) == slab.n_atoms

    def test_cost_is_small_and_size_independent(self):
        costs = []
        for reps in ((8, 8, 3), (16, 16, 3), (32, 32, 3)):
            slab, box = slab_and_box("Ta", reps)
            m = build_mapping(slab.positions, box)
            costs.append(m.assignment_cost(slab.positions))
        assert max(costs) < 5.0  # paper's offline optimum: 2.1 A
        assert costs[2] < costs[0] * 2.0  # no growth with system size

    def test_per_atom_cost_max_norm(self):
        slab, box = slab_and_box()
        m = build_mapping(slab.positions, box)
        per = m.per_atom_cost(slab.positions)
        assert per.shape == (slab.n_atoms,)
        assert m.assignment_cost(slab.positions) == pytest.approx(per.max())

    def test_occupancy_counts(self):
        slab, box = slab_and_box()
        m = build_mapping(slab.positions, box)
        occ = m.occupancy()
        assert occ.sum() == slab.n_atoms
        assert occ.shape == (m.grid.nx, m.grid.ny)

    def test_explicit_grid_respected(self):
        slab, box = slab_and_box("Ta", (4, 4, 2))
        g = TileGrid(30, 30)
        m = build_mapping(slab.positions, box, grid=g)
        assert m.grid is g

    def test_too_small_grid_rejected(self):
        slab, box = slab_and_box("Ta", (4, 4, 2))
        with pytest.raises(ValueError, match="too small"):
            build_mapping(slab.positions, box, grid=TileGrid(5, 5))

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            build_mapping(np.empty((0, 3)), Box.open([10, 10, 10]))

    def test_duplicate_core_rejected_in_mapping_type(self):
        slab, box = slab_and_box("Ta", (3, 3, 2))
        m = build_mapping(slab.positions, box)
        bad = m.atom_core.copy()
        bad[1] = bad[0]
        with pytest.raises(ValueError, match="one-to-one"):
            Mapping(
                grid=m.grid, projection=m.projection, pitch=m.pitch,
                origin=m.origin, atom_core=bad,
            )

    def test_random_gas_also_maps(self):
        """Non-crystal configurations (no layers) still map one-to-one."""
        rng = np.random.default_rng(0)
        pos = rng.uniform(-20, 20, size=(500, 3)) * [1, 1, 0.1]
        box = Box.open([60, 60, 20])
        m = build_mapping(pos, box)
        assert len(np.unique(m.atom_core)) == 500
