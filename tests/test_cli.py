"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.element == "Ta"
        assert args.engine == "wse"
        assert args.reps == [8, 8, 3]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "850,000 cores" in out
        assert "Ta" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "x" in out  # speedup columns

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        assert "Parallel" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        assert "lambda" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Frontier" in capsys.readouterr().out

    def test_run_wse(self, capsys):
        rc = main(["run", "--element", "Ta", "--reps", "4", "4", "2",
                   "--steps", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timesteps/s" in out

    def test_run_reference(self, capsys):
        rc = main(["run", "--engine", "reference", "--reps", "4", "4", "2",
                   "--steps", "5"])
        assert rc == 0
        assert "energy drift" in capsys.readouterr().out

    def test_run_with_swaps_and_symmetry(self, capsys):
        rc = main(["run", "--reps", "4", "4", "2", "--steps", "6",
                   "--swap-interval", "3", "--force-symmetry"])
        assert rc == 0
        assert "swaps performed" in capsys.readouterr().out
