"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.element == "Ta"
        assert args.engine == "wse"
        assert args.reps == [8, 8, 3]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_submit_shares_workload_flags_with_run(self):
        """run and submit accept the same RunSpec-shaping flags."""
        args = build_parser().parse_args(
            ["submit", "--element", "Cu", "--reps", "4", "4", "2",
             "--steps", "7", "--engine", "reference", "--replicas", "3"]
        )
        assert args.element == "Cu"
        assert args.steps == 7
        assert args.replicas == 3

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7421
        assert args.slots == 2
        assert args.cache_dir is None

    def test_jobs_flags(self):
        args = build_parser().parse_args(["jobs", "--cancel", "j0001"])
        assert args.cancel == "j0001"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "850,000 cores" in out
        assert "Ta" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "x" in out  # speedup columns

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        assert "Parallel" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        assert "lambda" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Frontier" in capsys.readouterr().out

    def test_run_wse(self, capsys):
        rc = main(["run", "--element", "Ta", "--reps", "4", "4", "2",
                   "--steps", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timesteps/s" in out

    def test_run_reference(self, capsys):
        rc = main(["run", "--engine", "reference", "--reps", "4", "4", "2",
                   "--steps", "5"])
        assert rc == 0
        assert "energy drift" in capsys.readouterr().out

    def test_run_with_swaps_and_symmetry(self, capsys):
        rc = main(["run", "--reps", "4", "4", "2", "--steps", "6",
                   "--swap-interval", "3", "--force-symmetry"])
        assert rc == 0
        assert "swaps performed" in capsys.readouterr().out


class TestSpecRuns:
    """``repro run --spec`` / checkpointing / resume / exit codes."""

    def _write_spec(self, tmp_path, **overrides):
        spec = {"element": "Ta", "reps": [3, 3, 2], "temperature": 150.0,
                "engine": "wse", "steps": 4, "seed": 0}
        spec.update(overrides)
        lines = []
        for key, value in spec.items():
            if isinstance(value, str):
                lines.append(f'{key} = "{value}"')
            elif isinstance(value, list):
                lines.append(f"{key} = {value}")
            else:
                lines.append(f"{key} = {value}")
        path = tmp_path / "run.toml"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_run_from_spec_file(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["run", "--spec", str(path)]) == 0
        assert "timesteps/s" in capsys.readouterr().out

    def test_run_spec_steps_override(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, engine="reference")
        assert main(["run", "--spec", str(path), "--steps", "2"]) == 0
        assert "after 2 steps" in capsys.readouterr().out

    def test_bad_spec_file_exit_code_2(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('element = "Unobtanium"\n')
        assert main(["run", "--spec", str(path)]) == 2
        assert "invalid run spec" in capsys.readouterr().err

    def test_missing_spec_file_exit_code_2(self, tmp_path):
        assert main(["run", "--spec", str(tmp_path / "nope.toml")]) == 2

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, engine="reference", steps=3)
        prefix = tmp_path / "ckpt"
        assert main(["run", "--spec", str(path),
                     "--checkpoint", str(prefix)]) == 0
        assert "checkpoint written" in capsys.readouterr().out
        assert (tmp_path / "ckpt.npz").exists()
        rc = main(["run", "--spec", str(path), "--steps", "6",
                   "--resume", str(prefix)])
        assert rc == 0
        assert "after 3 steps" in capsys.readouterr().out  # 6 total - 3 done

    def test_resume_missing_checkpoint_exit_code_2(self, tmp_path, capsys):
        """An unusable --resume prefix is bad input (2), not a run
        failure (1): nothing was computed."""
        path = self._write_spec(tmp_path)
        rc = main(["run", "--spec", str(path),
                   "--resume", str(tmp_path / "nothing")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert len(err.strip().splitlines()) == 1  # one-line diagnostic

    def test_resume_corrupt_checkpoint_exit_code_2(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, engine="reference", steps=2)
        prefix = tmp_path / "ckpt"
        assert main(["run", "--spec", str(path),
                     "--checkpoint", str(prefix)]) == 0
        capsys.readouterr()
        (tmp_path / "ckpt.json").write_text("{torn")
        rc = main(["run", "--spec", str(path), "--steps", "4",
                   "--resume", str(prefix)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert len(err.strip().splitlines()) == 1

    def test_resume_wrong_physics_exit_code_2(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, engine="reference", steps=2)
        prefix = tmp_path / "ckpt"
        assert main(["run", "--spec", str(path),
                     "--checkpoint", str(prefix)]) == 0
        capsys.readouterr()
        other = self._write_spec(tmp_path, engine="reference", steps=2,
                                 seed=9)
        rc = main(["run", "--spec", str(other), "--resume", str(prefix)])
        assert rc == 2
        assert "different physics" in capsys.readouterr().err


class TestProfile:
    def test_profile_both_engines_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["profile", "--quick", "--reps", "4", "4", "2",
                   "--steps", "6", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "reference engine" in text
        assert "wse engine" in text
        assert "fitted step model" in text
        from repro.obs.sinks import read_trace

        records = read_trace(out)
        assert {r.get("engine") for r in records} == {"reference", "wse"}

    def test_profile_check_mode_passes(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["profile", "--quick", "--out", str(out), "--check"])
        assert rc == 0
        assert "profile checks passed" in capsys.readouterr().out

    def test_profile_single_engine(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["profile", "--quick", "--reps", "4", "4", "2",
                   "--steps", "4", "--engines", "reference",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "wse engine" not in text

    def test_profile_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "p.toml"
        path.write_text(
            'element = "Ta"\nreps = [4, 4, 2]\ntemperature = 150.0\n'
            "steps = 4\n"
        )
        out = tmp_path / "trace.jsonl"
        assert main(["profile", "--spec", str(path),
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_profile_bad_spec_exit_code_2(self, tmp_path):
        path = tmp_path / "p.toml"
        path.write_text('engine = "gpu"\n')
        assert main(["profile", "--spec", str(path),
                     "--out", str(tmp_path / "t.jsonl")]) == 2


class TestValidate:
    def test_validate_defaults(self, capsys):
        rc = main(["validate", "--reps", "3", "3", "2", "--steps", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "position deviation" in out

    def test_validate_from_spec(self, tmp_path, capsys):
        path = tmp_path / "v.toml"
        path.write_text(
            'element = "Ta"\nreps = [3, 3, 2]\ntemperature = 150.0\n'
            "steps = 4\n"
        )
        assert main(["validate", "--spec", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_impossible_tolerance_fails(self, capsys):
        rc = main(["validate", "--reps", "3", "3", "2", "--steps", "4",
                   "--tol-pos", "0"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_bad_spec_exit_code_2(self, tmp_path):
        path = tmp_path / "v.toml"
        path.write_text('engine = "gpu"\n')
        assert main(["validate", "--spec", str(path)]) == 2
