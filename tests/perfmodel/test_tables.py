"""Tables III, IV, V, VI and Fig. 1 model tests against paper values."""

import pytest

from repro.perfmodel.flops import (
    TABLE3_ROWS,
    at_peak_time_ns,
    flop_table,
    flops_per_atom_step,
)
from repro.perfmodel.multiwafer import MultiWaferModel
from repro.perfmodel.projections import (
    PAPER_BASELINE_BASIS,
    project_optimizations,
)
from repro.perfmodel.timescale import TimescalePoint, achievable_timescale_um
from repro.perfmodel.utilization import utilization
from repro.wse.machine import WSE2
from repro.wse.tile import TABLE3_FLOPS


class TestTable3:
    def test_row_subtotals_match_table3_flops(self):
        groups = flop_table()
        for g in ("candidate", "interaction", "fixed"):
            assert groups[g].adds == TABLE3_FLOPS[g].adds
            assert groups[g].muls == TABLE3_FLOPS[g].muls
            assert groups[g].other == TABLE3_FLOPS[g].other

    def test_paper_subtotal_values(self):
        groups = flop_table()
        assert (groups["candidate"].adds, groups["candidate"].muls) == (6, 3)
        assert (groups["interaction"].adds, groups["interaction"].muls,
                groups["interaction"].other) == (14, 19, 3)
        assert (groups["fixed"].adds, groups["fixed"].muls,
                groups["fixed"].other) == (8, 2, 2)

    def test_all_rows_have_notes(self):
        assert all(r.note for r in TABLE3_ROWS)

    def test_utilization_fractions_from_table3(self):
        """Paper: 5.3/26.6 = 20%, 21.2/71.4 = 30%, 7.1/574 = 1%."""
        cand = at_peak_time_ns(TABLE3_FLOPS["candidate"], 2.0, WSE2.clock_hz)
        inter = at_peak_time_ns(TABLE3_FLOPS["interaction"], 2.0, WSE2.clock_hz)
        fixed = at_peak_time_ns(TABLE3_FLOPS["fixed"], 2.0, WSE2.clock_hz)
        assert cand / 26.6 == pytest.approx(0.20, abs=0.02)
        assert inter / 71.4 == pytest.approx(0.30, abs=0.02)
        assert fixed / 574.0 == pytest.approx(0.012, abs=0.01)


class TestTable4:
    def test_cs2_utilization_near_paper(self):
        # CS-2 row: Cu 22%, W 23%, Ta 20%
        cases = {
            "Cu": (106_313, 224, 42, 0.22),
            "W": (96_140, 224, 59, 0.23),
            "Ta": (274_016, 80, 14, 0.20),
        }
        for sym, (rate, nc, ni, target) in cases.items():
            row = utilization(
                "CS-2", sym, rate, 801_792, nc, ni, WSE2.peak_flops_fp32
            )
            assert row.utilization == pytest.approx(target, abs=0.03)

    def test_frontier_utilization_fraction_of_percent(self):
        row = utilization("Frontier", "Cu", 973, 801_792, 224, 42, 0.77e15)
        assert row.utilization == pytest.approx(0.004, abs=0.002)

    def test_quartz_utilization(self):
        row = utilization("Quartz", "W", 3633, 801_792, 224, 59, 0.50e15)
        assert row.utilization == pytest.approx(0.025, abs=0.008)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            utilization("x", "y", 0.0, 1, 1, 1, 1.0)


class TestTable5:
    def test_baseline_consistent_with_table2(self):
        # multicast + miss = A; interaction - miss = B
        b = PAPER_BASELINE_BASIS
        assert b.multicast + b.miss == pytest.approx(26.6, abs=0.1)
        assert b.interaction - b.miss == pytest.approx(71.4, abs=0.1)

    def test_projection_rows_match_paper(self):
        workloads = {"Ta": (80, 14), "W": (224, 59), "Cu": (224, 42)}
        rows = project_optimizations(workloads)
        assert [r.description for r in rows] == [
            "Baseline", "Fixed cost", "Neighbor list", "Symmetry", "Parallel",
        ]
        # paper Table V (rates in 1000 steps/s): Ta column
        ta = [r.rates["Ta"] / 1000 for r in rows]
        paper_ta = [270, 290, 460, 650, 1100]
        for ours, ref in zip(ta, paper_ta):
            assert ours == pytest.approx(ref, rel=0.10)
        # final Cu and W rates
        assert rows[-1].rates["Cu"] / 1000 == pytest.approx(510, rel=0.10)
        assert rows[-1].rates["W"] / 1000 == pytest.approx(430, rel=0.10)

    def test_rates_monotone_across_stages(self):
        rows = project_optimizations({"Ta": (80, 14)})
        rates = [r.rates["Ta"] for r in rows]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_more_interactions_than_candidates_rejected(self):
        with pytest.raises(ValueError):
            PAPER_BASELINE_BASIS.step_time_ns(10, 20)


class TestTable6:
    # paper Table VI rows: (element, X, Z, rcut/rlat, t_wall_us,
    #                       lam_low, k_low, perf_low, frac_low,
    #                       lam_high, k_high, perf_high, frac_high)
    ROWS = [
        ("Cu", 283, 10, 1.94, 9.41, 78, 20, 105_152, 0.99, 15, 3, 99_239, 0.93),
        ("W", 317, 8, 2.02, 10.4, 88, 21, 95_281, 0.99, 17, 4, 91_743, 0.95),
        ("Ta", 317, 8, 1.39, 3.65, 88, 31, 269_214, 0.98, 17, 6, 251_046, 0.92),
    ]
    SINGLE = {"Cu": 106_313, "W": 96_140, "Ta": 274_016}

    @pytest.mark.parametrize("row", ROWS, ids=[r[0] for r in ROWS])
    def test_k_steps_match(self, row):
        sym, x, z, ratio, twall, lam_lo, k_lo, _, _, lam_hi, k_hi, _, _ = row
        model = MultiWaferModel()
        lo = model.evaluate(sym, x, z, lam_lo, ratio, twall * 1e-6,
                            self.SINGLE[sym])
        hi = model.evaluate(sym, x, z, lam_hi, ratio, twall * 1e-6,
                            self.SINGLE[sym])
        assert lo.k_steps == k_lo
        assert hi.k_steps == k_hi

    @pytest.mark.parametrize("row", ROWS, ids=[r[0] for r in ROWS])
    def test_performance_fractions_match(self, row):
        sym, x, z, ratio, twall, lam_lo, _, perf_lo, frac_lo, lam_hi, _, \
            perf_hi, frac_hi = row
        model = MultiWaferModel()
        lo = model.evaluate(sym, x, z, lam_lo, ratio, twall * 1e-6,
                            self.SINGLE[sym])
        hi = model.evaluate(sym, x, z, lam_hi, ratio, twall * 1e-6,
                            self.SINGLE[sym])
        assert lo.fraction_of_single_wafer == pytest.approx(frac_lo, abs=0.02)
        assert hi.fraction_of_single_wafer == pytest.approx(frac_hi, abs=0.02)
        assert lo.rate_steps_per_s == pytest.approx(perf_lo, rel=0.03)
        assert hi.rate_steps_per_s == pytest.approx(perf_hi, rel=0.03)

    def test_interior_atom_counts(self):
        model = MultiWaferModel()
        p = model.evaluate("Cu", 283, 10, 78, 1.94, 9.41e-6, 106_313)
        assert p.n_interior == 800_890  # paper's N_atom column

    def test_cluster_scale_estimate(self):
        """Sec. VI-C: 64 nodes -> tens of millions of atoms at ~these rates."""
        model = MultiWaferModel()
        p = model.evaluate("Ta", 317, 8, 88, 1.39, 3.65e-6, 274_016)
        total = model.cluster_atoms(p, 64)
        assert total > 10_000_000
        assert p.rate_steps_per_s > 250_000

    def test_serialized_transfers_slower(self):
        overlap = MultiWaferModel(overlap_transfers=True)
        serial = MultiWaferModel(overlap_transfers=False)
        a = overlap.evaluate("Cu", 283, 10, 78, 1.94, 9.41e-6, 106_313)
        b = serial.evaluate("Cu", 283, 10, 78, 1.94, 9.41e-6, 106_313)
        assert b.rate_steps_per_s < a.rate_steps_per_s

    def test_zero_step_ghost_width_rejected(self):
        with pytest.raises(ValueError, match="zero usable steps"):
            MultiWaferModel().evaluate("Cu", 100, 10, 1, 1.94, 1e-5, 1e5)


class TestFig1:
    def test_wse_timescale_near_47us_per_day_times_30(self):
        # 274,016 steps/s x 2 fs: ~47 us/day -> ~1.4 ms in 30 days
        us = achievable_timescale_um(274_016, 2.0, 30.0)
        assert us == pytest.approx(1420, rel=0.02)

    def test_speedup_is_rate_ratio(self):
        wse = TimescalePoint("WSE", 274_016)
        gpu = TimescalePoint("Frontier", 1_530)
        assert wse.speedup_over(gpu) == pytest.approx(274_016 / 1_530)
        assert wse.speedup_over(gpu) == pytest.approx(179, rel=0.01)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            achievable_timescale_um(0.0)
