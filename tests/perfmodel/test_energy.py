"""Energy-efficiency model tests (Fig. 7b/c)."""

import pytest

from repro.perfmodel.energy import EfficiencyPoint, EnergyModel, pareto_front


def pt(machine, rate, power, units=1.0, element="Ta"):
    return EfficiencyPoint(
        machine=machine, element=element, units=units,
        rate_steps_per_s=rate, power_watts=power,
    )


class TestEfficiency:
    def test_wse_steps_per_joule(self):
        p = pt("WSE", 274_016, 23_000)
        assert p.steps_per_joule == pytest.approx(11.9, rel=0.01)

    def test_relative_normalization(self):
        wse = pt("WSE", 274_016, 23_000)
        gpu = pt("Frontier", 1_530, 13_760)
        rel_perf, rel_eff = wse.relative_to(gpu)
        assert rel_perf == pytest.approx(1_530 / 274_016)
        # WSE ~100x more efficient (paper: one to two orders)
        assert 1.0 / rel_eff > 30

    def test_energy_model_power(self):
        m = EnergyModel(unit_power_watts=430.0)
        assert m.power(32) == pytest.approx(13_760)
        with pytest.raises(ValueError):
            m.power(0)


class TestParetoFront:
    def test_dominated_points_removed(self):
        pts = [
            pt("A", 100, 10),   # 10 steps/J
            pt("B", 100, 20),   # dominated by A
            pt("C", 200, 40),   # faster, less efficient
        ]
        front = pareto_front(pts)
        names = [p.machine for p in front]
        assert "B" not in names
        assert "A" in names and "C" in names

    def test_single_dominating_point(self):
        pts = [pt("WSE", 274_016, 23_000), pt("CPU", 4_938, 140_000)]
        front = pareto_front(pts)
        assert [p.machine for p in front] == ["WSE"]

    def test_front_sorted_by_rate(self):
        pts = [pt("C", 200, 40), pt("A", 100, 5)]
        front = pareto_front(pts)
        rates = [p.rate_steps_per_s for p in front]
        assert rates == sorted(rates)
