"""Table II regression model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.linear import (
    PAPER_TABLE2,
    LinearStepModel,
    fit_linear_model,
)


class TestPaperModel:
    @pytest.mark.parametrize(
        "nc,ni,expected",
        # paper Table I "Predicted (WSE)" column
        [(224, 42, 104_895), (224, 59, 93_048), (80, 14, 270_097)],
    )
    def test_reproduces_table1_predictions(self, nc, ni, expected):
        assert PAPER_TABLE2.steps_per_second(nc, ni) == pytest.approx(
            expected, rel=0.001
        )

    def test_relative_error_against_measured(self):
        # paper Table I "Prediction (error)": Ta 1.4%
        err = PAPER_TABLE2.relative_error(274_016, 80, 14)
        assert err == pytest.approx(0.014, abs=0.003)

    def test_vectorized_step_time(self):
        t = PAPER_TABLE2.step_time_ns(np.array([80, 224]), np.array([14, 42]))
        assert t.shape == (2,)
        assert t[1] > t[0]


class TestFitting:
    def test_exact_recovery_of_planted_model(self):
        rng = np.random.default_rng(0)
        nc = rng.integers(8, 400, size=50).astype(float)
        ni = np.minimum(nc, rng.integers(4, 80, size=50)).astype(float)
        t = 26.6 * nc + 71.4 * ni + 574.0
        fit = fit_linear_model(nc, ni, t)
        assert fit.a_candidate == pytest.approx(26.6, abs=1e-9)
        assert fit.b_interaction == pytest.approx(71.4, abs=1e-9)
        assert fit.c_fixed == pytest.approx(574.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    @given(
        a=st.floats(5, 50), b=st.floats(20, 120), c=st.floats(100, 900),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_recovery_with_noise(self, a, b, c, seed):
        rng = np.random.default_rng(seed)
        nc = rng.integers(8, 400, size=80).astype(float)
        ni = np.minimum(nc, rng.integers(4, 80, size=80)).astype(float)
        t = a * nc + b * ni + c
        t = t * (1 + 0.001 * rng.standard_normal(80))
        fit = fit_linear_model(nc, ni, t)
        assert fit.a_candidate == pytest.approx(a, rel=0.05)
        assert fit.b_interaction == pytest.approx(b, rel=0.10)
        assert fit.r_squared > 0.99

    def test_degenerate_sweep_rejected(self):
        nc = np.array([10.0, 20.0, 30.0, 40.0])
        ni = nc / 2  # collinear
        with pytest.raises(ValueError, match="degenerate|collinear"):
            fit_linear_model(nc, ni, nc * 3)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError, match="at least 3"):
            fit_linear_model(np.array([1.0]), np.array([1.0]), np.array([1.0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            fit_linear_model(np.zeros(3), np.zeros(4), np.zeros(3))
