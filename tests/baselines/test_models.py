"""Baseline platform models: anchor reproduction and curve shapes."""

import pytest

from repro.baselines.cpu_model import QUARTZ_MODELS, SKYLAKE_LJ_MODEL
from repro.baselines.gpu_model import FRONTIER_MODELS, V100_LJ_MODEL
from repro.baselines.platform import FRONTIER, QUARTZ
from repro.baselines.sweep import powers_of_two, sweep_cpu, sweep_gpu

N_PAPER = 801_792

GPU_ANCHORS = {"Cu": 973, "W": 998, "Ta": 1_530}
CPU_ANCHORS = {"Cu": 3_120, "W": 3_633, "Ta": 4_938}


class TestGpuModel:
    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_best_rate_matches_table1(self, symbol):
        rate, n = FRONTIER_MODELS[symbol].best_rate(N_PAPER)
        assert rate == pytest.approx(GPU_ANCHORS[symbol], rel=0.02)

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_best_near_32_gcds(self, symbol):
        """Table IV credits Frontier at 32 GCDs (~25k atoms per GCD)."""
        _, n = FRONTIER_MODELS[symbol].best_rate(N_PAPER)
        assert 16 <= n <= 64

    def test_rate_declines_past_optimum(self):
        m = FRONTIER_MODELS["Ta"]
        best, n = m.best_rate(N_PAPER)
        assert m.rate(N_PAPER, n * 8) < best

    def test_kernel_launch_floor_binds_at_small_atoms_per_gcd(self):
        m = FRONTIER_MODELS["Cu"]
        # far beyond the knee, halving atoms/GCD doesn't help
        assert m.rate(N_PAPER, 512) == pytest.approx(
            m.rate(N_PAPER, 1024) / 1.0, rel=0.1
        )

    def test_v100_lj_anchor(self):
        # paper Sec. II-B: < 10k steps/s for 1k-atom LJ on a V100
        assert V100_LJ_MODEL.rate(1_000, 1) < 10_000
        assert V100_LJ_MODEL.rate(1_000, 1) > 5_000

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FRONTIER_MODELS["Cu"].rate(0, 1)


class TestCpuModel:
    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_rate_at_400_nodes_matches_table1(self, symbol):
        """Paper: scaling stalls at 400 dual-socket nodes."""
        r = QUARTZ_MODELS[symbol].rate_for_nodes(N_PAPER, 400)
        assert r == pytest.approx(CPU_ANCHORS[symbol], rel=0.02)

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_best_rate_close_to_anchor(self, symbol):
        rate, n = QUARTZ_MODELS[symbol].best_rate(N_PAPER)
        assert rate == pytest.approx(CPU_ANCHORS[symbol], rel=0.05)
        assert 200 <= n <= 1200  # flat region around the stall

    def test_rate_declines_at_large_node_counts(self):
        m = QUARTZ_MODELS["Ta"]
        assert m.rate_for_nodes(N_PAPER, 2048) < m.rate_for_nodes(N_PAPER, 512)

    def test_cpu_beats_gpu_at_this_size(self):
        """Paper Sec. V-A: CPUs are more effective than GPUs here."""
        for sym in ("Cu", "W", "Ta"):
            assert (
                QUARTZ_MODELS[sym].best_rate(N_PAPER)[0]
                > FRONTIER_MODELS[sym].best_rate(N_PAPER)[0]
            )

    def test_skylake_lj_anchor(self):
        # ~25k steps/s for the 1k-atom LJ system on 36 ranks
        assert SKYLAKE_LJ_MODEL.rate(1_000, 36) == pytest.approx(
            25_000, rel=0.2
        )


class TestPlatforms:
    def test_peak_flops_match_table4(self):
        assert FRONTIER.peak_flops(32) == pytest.approx(0.77e15)
        assert QUARTZ.peak_flops(800) == pytest.approx(0.50e15)

    def test_power_accounting(self):
        assert FRONTIER.power(32) == pytest.approx(32 * 430.0)
        with pytest.raises(ValueError):
            FRONTIER.power(0)

    def test_unit_bounds(self):
        with pytest.raises(ValueError):
            QUARTZ.power(100_000)


class TestSweeps:
    def test_powers_of_two(self):
        assert powers_of_two(1, 8) == [1, 2, 4, 8]
        assert powers_of_two(3, 20) == [4, 8, 16]
        with pytest.raises(ValueError):
            powers_of_two(0, 4)

    def test_gpu_sweep_shape(self):
        pts = sweep_gpu(FRONTIER_MODELS["Ta"], FRONTIER, N_PAPER)
        rates = [p.rate_steps_per_s for p in pts]
        # rises then flattens/declines
        assert max(rates) == pytest.approx(1_530, rel=0.05)
        assert rates[0] < max(rates)

    def test_cpu_sweep_efficiency_declines_with_nodes(self):
        pts = sweep_cpu(QUARTZ_MODELS["Ta"], QUARTZ, N_PAPER,
                        node_counts=[1, 16, 400, 2048])
        eff = [p.steps_per_joule for p in pts]
        assert eff[0] > eff[-1]

    def test_gpu_best_efficiency_at_one_gcd(self):
        """Paper: best GPU energy efficiency using only one GCD."""
        pts = sweep_gpu(FRONTIER_MODELS["Ta"], FRONTIER, N_PAPER)
        best = max(pts, key=lambda p: p.steps_per_joule)
        assert best.units == 1
