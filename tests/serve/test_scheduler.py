"""JobScheduler: coalescing, cache dispositions, ensembles, cancel.

No pytest-asyncio in the test environment, so every test drives its
own loop with ``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.runtime import RunSpec, Runner
from repro.serve import JobScheduler, JobState, ResultCache

SPEC = RunSpec(
    element="Ta", reps=(3, 3, 2), temperature=120.0, seed=5,
    engine="reference", steps=4,
)


def _scheduler(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(tmp_path / "cache"))
    return JobScheduler(**kwargs)


class TestCacheSemantics:
    def test_identical_request_is_a_hit_with_bitwise_telemetry(
        self, tmp_path
    ):
        async def body():
            sched = _scheduler(tmp_path)
            first = await sched.submit(SPEC)
            await sched.wait(first)
            second = await sched.submit(SPEC)
            await sched.wait(second)
            await sched.close()
            return first, second

        first, second = asyncio.run(body())
        assert first.state is JobState.DONE and first.cache == "miss"
        assert second.state is JobState.DONE and second.cache == "hit"
        # the hit returns the *stored* record: bitwise-identical JSON
        assert json.dumps(
            first.result["telemetry"], sort_keys=True
        ) == json.dumps(second.result["telemetry"], sort_keys=True)

    def test_concurrent_duplicates_coalesce_to_one_run(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            jobs = [await sched.submit(SPEC) for _ in range(4)]
            await sched.wait(jobs[0])
            await sched.close()
            return sched, jobs

        sched, jobs = asyncio.run(body())
        assert len({job.id for job in jobs}) == 1  # one Job object
        assert jobs[0].coalesced == 3
        assert sched.cache.misses == 1 and sched.cache.hits == 0

    def test_longer_request_resumes_from_checkpoint(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            short = await sched.submit(SPEC)
            await sched.wait(short)
            longer = await sched.submit(SPEC, steps=8)
            await sched.wait(longer)
            await sched.close()
            return longer

        longer = asyncio.run(body())
        assert longer.state is JobState.DONE
        assert longer.cache == "resume"
        assert longer.resume_step == 4
        assert longer.result["telemetry"]["serve"]["resume_step"] == 4
        assert longer.result["steps"] == 8

    def test_resumed_trajectory_matches_uninterrupted(self, tmp_path):
        import numpy as np

        from repro.runtime import read_checkpoint

        async def body():
            sched = _scheduler(tmp_path)
            await sched.wait(await sched.submit(SPEC))
            longer = await sched.submit(SPEC, steps=8)
            await sched.wait(longer)
            cache = sched.cache
            await sched.close()
            return cache

        cache = asyncio.run(body())
        served = read_checkpoint(cache.prefix(SPEC.spec_hash(), 8)).state
        straight = Runner.from_spec(SPEC)
        straight.run(8)
        state = straight.engine.state
        straight.close()
        np.testing.assert_array_equal(
            served.positions[np.argsort(served.ids)],
            state.positions[np.argsort(state.ids)],
        )

    def test_speed_knob_change_still_hits(self, tmp_path):
        """backend/workers/fuse are not physics: same cache key."""
        from dataclasses import replace

        async def body():
            sched = _scheduler(tmp_path)
            await sched.wait(await sched.submit(SPEC))
            tweaked = replace(
                SPEC, backend="numpy", fuse_integrate=True, offset_chunk=7
            )
            job = await sched.submit(tweaked)
            await sched.wait(job)
            await sched.close()
            return job

        job = asyncio.run(body())
        assert job.cache == "hit"

    def test_physics_change_misses(self, tmp_path):
        from dataclasses import replace

        async def body():
            sched = _scheduler(tmp_path)
            await sched.wait(await sched.submit(SPEC))
            other = await sched.submit(replace(SPEC, seed=6))
            await sched.wait(other)
            await sched.close()
            return other

        assert asyncio.run(body()).cache == "miss"

    def test_no_cache_scheduler_always_runs(self, tmp_path):
        async def body():
            sched = JobScheduler(cache=None)
            a = await sched.submit(SPEC)
            await sched.wait(a)
            b = await sched.submit(SPEC)
            await sched.wait(b)
            await sched.close()
            return a, b

        a, b = asyncio.run(body())
        assert a.cache == "miss" and b.cache == "miss"

    def test_cache_survives_scheduler_restart(self, tmp_path):
        async def first_life():
            sched = _scheduler(tmp_path)
            await sched.wait(await sched.submit(SPEC))
            await sched.close()

        async def second_life():
            sched = _scheduler(tmp_path)  # fresh ResultCache, same dir
            job = await sched.submit(SPEC)
            await sched.wait(job)
            await sched.close()
            return job

        asyncio.run(first_life())
        assert asyncio.run(second_life()).cache == "hit"


class TestLifecycle:
    def test_states_and_events_stream_in_order(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            sub = sched.bus.subscribe()
            job = await sched.submit(SPEC)
            await sched.wait(job)
            await sched.close()
            events = []
            while not sub.queue.empty():
                events.append(sub.queue.get_nowait())
            return job, events

        job, events = asyncio.run(body())
        states = [
            e.payload["state"] for e in events if e.kind == "state"
        ]
        assert states == ["queued", "running", "done"]
        assert any(e.kind == "progress" for e in events)
        assert all(e.job_id == job.id for e in events)

    def test_failed_job_captures_error(self, tmp_path, monkeypatch):
        def explode(self, job, spec_hash, target):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(JobScheduler, "_build_runner", explode)

        async def body():
            sched = _scheduler(tmp_path)
            bad = await sched.submit(SPEC)
            await sched.wait(bad)
            ok = await sched.cancel(bad.id)  # terminal: not cancellable
            await sched.close()
            return bad, ok

        bad, ok = asyncio.run(body())
        assert bad.state is JobState.FAILED
        assert "engine exploded" in bad.error
        assert not ok

    def test_cancel_queued_job_never_runs(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path, slots=1)
            blocker = await sched.submit(SPEC)
            queued = await sched.submit(SPEC, steps=16)
            cancelled = await sched.cancel(queued.id)
            await sched.wait(blocker)
            await sched.close()
            return queued, cancelled

        queued, cancelled = asyncio.run(body())
        assert cancelled
        assert queued.state is JobState.CANCELLED
        assert queued.runner is None  # never took a slot

    def test_cancel_unknown_or_done_job_is_false(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            job = await sched.submit(SPEC)
            await sched.wait(job)
            late = await sched.cancel(job.id)
            ghost = await sched.cancel("j9999")
            await sched.close()
            return late, ghost

        assert asyncio.run(body()) == (False, False)

    def test_close_cancels_outstanding_jobs(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path, slots=1)
            running = await sched.submit(SPEC, steps=200)
            queued = await sched.submit(SPEC, steps=300)
            await asyncio.sleep(0.05)
            await sched.close()
            return running, queued

        running, queued = asyncio.run(body())
        assert running.terminal
        assert queued.state is JobState.CANCELLED

    def test_submit_after_close_raises(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            await sched.close()
            with pytest.raises(RuntimeError, match="closed"):
                await sched.submit(SPEC)

        asyncio.run(body())


class TestEnsembles:
    def test_replicas_fan_out_over_seeds(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            jobs = await sched.submit_ensemble(SPEC, replicas=3)
            for job in jobs:
                await sched.wait(job)
            await sched.close()
            return jobs

        jobs = asyncio.run(body())
        assert [job.spec.seed for job in jobs] == [5, 6, 7]
        assert len({job.ensemble for job in jobs}) == 1
        assert all(job.state is JobState.DONE for job in jobs)
        # replicas share one workload-cache slot (same element+reps)
        assert len({job.key for job in jobs}) == 3

    def test_sweep_crosses_with_replicas(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            jobs = await sched.submit_ensemble(
                SPEC, replicas=2, sweep={"temperature": [50.0, 150.0]}
            )
            for job in jobs:
                await sched.wait(job)
            await sched.close()
            return jobs

        jobs = asyncio.run(body())
        combos = {(job.spec.temperature, job.spec.seed) for job in jobs}
        assert combos == {(50.0, 5), (50.0, 6), (150.0, 5), (150.0, 6)}

    def test_ensemble_shares_workload_construction(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            jobs = await sched.submit_ensemble(SPEC, replicas=3)
            for job in jobs:
                await sched.wait(job)
            shared = dict(sched._workload_cache)
            await sched.close()
            return jobs, shared

        jobs, shared = asyncio.run(body())
        assert all(job.state is JobState.DONE for job in jobs)
        # one slab+potential construction for the whole batch
        assert list(shared) == [(SPEC.element, SPEC.reps)]

    def test_snapshot_counts_states(self, tmp_path):
        async def body():
            sched = _scheduler(tmp_path)
            job = await sched.submit(SPEC)
            await sched.wait(job)
            snap = sched.snapshot()
            await sched.close()
            return snap

        snap = asyncio.run(body())
        assert snap["states"] == {"done": 1}
        assert snap["cache"]["entries"] == 1
