"""Served jobs hear parallel degradation warnings, every job.

The warn-once caches (``repro.parallel._warned_reasons`` for the
``REPRO_PARALLEL_NO_REUSE`` rebuild-every-step fallback,
``repro.parallel.domains._warned_degenerate`` for degenerate halo
widths) are process state: without the scheduler's per-job
``reset_warnings()`` re-arm, the first job would permanently silence
every later job's degradation report.  These tests pin that two
sequential served jobs each emit the warnings.

No pytest-asyncio in the test environment, so each test drives its
own loop with ``asyncio.run``.
"""

import asyncio
import warnings

import pytest

from repro.parallel.pool import fork_available
from repro.runtime import RunSpec
from repro.serve import JobScheduler, JobState

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel backend requires fork"
)

#: A tiny parallel job that degrades twice: reuse disabled via env
#: (the no-reuse fallback) and a 4x1 grid over a slab too narrow for
#: four tiles (the degenerate-halo advisory).
PAR_SPEC = RunSpec(
    element="Ta", reps=(3, 3, 2), temperature=120.0, seed=5,
    steps=2, backend="parallel", topology=(4, 1), transport="inline",
)


def _serve_twice():
    async def body():
        sched = JobScheduler(cache=None)  # every submit really runs
        first = await sched.submit(PAR_SPEC)
        await sched.wait(first)
        second = await sched.submit(PAR_SPEC)
        await sched.wait(second)
        await sched.close()
        return first, second

    return asyncio.run(body())


def test_each_served_job_hears_degradations():
    with warnings.catch_warnings(record=True) as heard:
        warnings.simplefilter("always")
        first, second = _serve_twice()
    assert first.state is JobState.DONE
    assert second.state is JobState.DONE
    no_reuse = [w for w in heard if "rebuilding every step" in str(w.message)]
    halo = [w for w in heard if "ghost regions dominate" in str(w.message)]
    # once per *job*, not once per process: the scheduler re-armed the
    # caches between the two runs
    assert len(no_reuse) == 2
    assert len(halo) == 2


@pytest.fixture(autouse=True)
def _no_reuse_env(monkeypatch):
    import repro.parallel as par
    from repro.kernels import active_backend_name, set_backend
    from repro.parallel import domains

    monkeypatch.setenv("REPRO_PARALLEL_NO_REUSE", "1")
    # start from a clean slate so earlier tests' warnings don't mask
    par._warned_reasons.clear()
    domains._warned_degenerate.clear()
    base = active_backend_name()
    yield
    # the served parallel job switches the process-wide backend
    set_backend(base)
    par._warned_reasons.clear()
    domains._warned_degenerate.clear()
