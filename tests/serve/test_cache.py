"""ResultCache: hits, resume depth, corruption tolerance, LRU cap."""

import json

import pytest

from repro.runtime import RunSpec, Runner, checkpoint_paths
from repro.serve import ResultCache

SPEC = RunSpec(
    element="Ta", reps=(3, 3, 2), temperature=120.0, seed=3,
    engine="reference", steps=4,
)


def _populate(cache: ResultCache, spec: RunSpec = SPEC, steps: int = 4):
    """Run the spec to ``steps`` and publish it into the cache."""
    spec_hash = spec.spec_hash()
    runner = Runner.from_spec(
        spec, checkpoint_prefix=cache.prefix(spec_hash, steps)
    )
    telemetry = runner.run(steps - runner.engine.step_count)
    runner.close()
    return cache.put(spec_hash, steps, telemetry.as_dict())


class TestLookup:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup(SPEC.spec_hash(), 4) is None
        assert cache.misses == 1

    def test_put_then_exact_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = _populate(cache)
        hit = cache.lookup(SPEC.spec_hash(), 4)
        assert hit is not None
        assert hit.key == entry.key
        assert cache.hits == 1

    def test_telemetry_roundtrip_is_bitwise(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache)
        runner = Runner.from_spec(SPEC)
        expected = runner.run().as_dict()
        runner.close()
        stored = cache.telemetry(SPEC.spec_hash(), 4)
        # everything but wall-clock fields must round-trip exactly
        for key in ("engine", "steps", "counters"):
            assert stored[key] == expected[key]

    def test_different_steps_is_a_different_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=4)
        assert cache.lookup(SPEC.spec_hash(), 6) is None

    def test_survives_reload(self, tmp_path):
        _populate(ResultCache(tmp_path))
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.lookup(SPEC.spec_hash(), 4) is not None


class TestBestResume:
    def test_picks_deepest_shallower_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=2)
        _populate(cache, steps=4)
        entry = cache.best_resume(SPEC.spec_hash(), 10)
        assert entry.steps == 4
        assert cache.resumes == 1

    def test_never_returns_equal_or_deeper(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=4)
        assert cache.best_resume(SPEC.spec_hash(), 4) is None
        assert cache.best_resume(SPEC.spec_hash(), 3) is None

    def test_other_spec_never_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=2)
        other = RunSpec(
            element="Ta", reps=(3, 3, 2), temperature=120.0, seed=99,
            engine="reference", steps=4,
        )
        assert cache.best_resume(other.spec_hash(), 10) is None


class TestCorruptionTolerance:
    def test_torn_npz_evicts_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache)
        npz = checkpoint_paths(cache.prefix(SPEC.spec_hash(), 4))[0]
        npz.write_bytes(b"not a zipfile")
        assert cache.lookup(SPEC.spec_hash(), 4) is None
        assert len(cache) == 0  # evicted, not retried forever

    def test_corrupt_sidecar_evicts_on_resume_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=2)
        sidecar = checkpoint_paths(cache.prefix(SPEC.spec_hash(), 2))[1]
        sidecar.write_text("{torn")
        assert cache.best_resume(SPEC.spec_hash(), 10) is None
        assert len(cache) == 0

    def test_corrupt_index_is_an_empty_cache(self, tmp_path):
        _populate(ResultCache(tmp_path))
        (tmp_path / "index.json").write_text("}{ garbage")
        cache = ResultCache(tmp_path)
        assert len(cache) == 0

    def test_missing_entry_files_drop_the_row(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache)
        checkpoint_paths(cache.prefix(SPEC.spec_hash(), 4))[0].unlink()
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 0

    def test_orphan_tmp_swept_on_load(self, tmp_path):
        orphan = tmp_path / "deadbeef-4.npz.tmp"
        tmp_path.mkdir(exist_ok=True)
        orphan.write_bytes(b"partial")
        ResultCache(tmp_path)
        assert not orphan.exists()

    def test_unreferenced_files_garbage_collected(self, tmp_path):
        stray = tmp_path / "cafecafe-9.telemetry.json"
        tmp_path.mkdir(exist_ok=True)
        stray.write_text("{}")
        ResultCache(tmp_path)
        assert not stray.exists()


class TestLRU:
    def test_byte_cap_evicts_least_recently_used(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        entry = _populate(probe, steps=2)
        # cap sized to hold two entries but not three
        cache = ResultCache(tmp_path / "real", max_bytes=entry.nbytes * 2 + 64)
        _populate(cache, steps=2)
        _populate(cache, steps=3)
        cache.lookup(SPEC.spec_hash(), 2)  # make steps=2 the fresher one
        _populate(cache, steps=5)
        keys = {key for key in cache._entries}
        assert (SPEC.spec_hash(), 3) not in keys  # LRU victim
        assert (SPEC.spec_hash(), 2) in keys
        assert (SPEC.spec_hash(), 5) in keys
        assert cache.evictions >= 1

    def test_never_evicts_the_entry_just_added(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)  # everything oversized
        entry = _populate(cache, steps=2)
        assert entry.key in {key for key in cache._entries}

    def test_eviction_order_survives_reload(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, steps=2)
        _populate(cache, steps=3)
        cache.lookup(SPEC.spec_hash(), 2)
        clock = cache._clock
        reloaded = ResultCache(tmp_path)
        assert reloaded._clock == clock
        used = {
            key[1]: row["used"] for key, row in reloaded._entries.items()
        }
        assert used[2] > used[3]  # the touched entry stays fresher


def test_stats_are_json_ready(tmp_path):
    cache = ResultCache(tmp_path)
    _populate(cache)
    cache.lookup(SPEC.spec_hash(), 4)
    cache.lookup(SPEC.spec_hash(), 5)
    stats = json.loads(json.dumps(cache.stats()))
    assert stats["entries"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1


def test_clear_empties_directory_but_keeps_it(tmp_path):
    cache = ResultCache(tmp_path)
    _populate(cache)
    cache.clear()
    assert len(cache) == 0
    assert (tmp_path / "index.json").exists()
    assert cache.lookup(SPEC.spec_hash(), 4) is None


def test_concurrent_puts_from_worker_threads(tmp_path):
    # Every runner slot publishes through the same cache: racing puts
    # must not trip over each other's index.json.tmp -> index.json
    # rename (the pre-lock failure mode was FileNotFoundError there).
    import concurrent.futures
    import shutil

    cache = ResultCache(tmp_path)
    seeded = _populate(cache, steps=2)
    spec_hash = SPEC.spec_hash()
    tele = cache.telemetry(spec_hash, 2)
    keys = list(range(3, 19))
    for steps in keys:
        for src, dst in zip(
            checkpoint_paths(cache.prefix(spec_hash, 2)),
            checkpoint_paths(cache.prefix(spec_hash, steps)),
        ):
            shutil.copy(src, dst)

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        entries = list(
            pool.map(lambda s: cache.put(spec_hash, s, tele), keys)
        )

    assert all(entry.nbytes == seeded.nbytes for entry in entries)
    assert len(cache) == len(keys) + 1
    reloaded = ResultCache(tmp_path)
    assert len(reloaded) == len(keys) + 1
