"""The JSON-lines TCP API: ops, exit-code mapping, event streaming.

Each test runs a real server on an ephemeral port and talks to it
with the blocking :class:`ServeClient` from an executor thread —
exactly how the CLI uses it.
"""

import asyncio
import json
import socket

from repro.runtime import RunSpec
from repro.serve import (
    JobScheduler,
    ResultCache,
    ServeClient,
    ServeServer,
)

SPEC = RunSpec(
    element="Ta", reps=(3, 3, 2), temperature=120.0, seed=8,
    engine="reference", steps=3,
)


def _with_server(tmp_path, fn, **scheduler_kwargs):
    """Run ``fn(client)`` in a thread against a live server."""
    scheduler_kwargs.setdefault("cache", ResultCache(tmp_path / "cache"))

    async def body():
        scheduler = JobScheduler(**scheduler_kwargs)
        server = ServeServer(scheduler, port=0)
        await server.start()
        client = ServeClient(port=server.port, timeout=120.0)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, fn, client
            )
        finally:
            await server.close()
            await scheduler.close()

    return asyncio.run(body())


class TestOps:
    def test_ping(self, tmp_path):
        assert _with_server(tmp_path, lambda c: c.ping()) is True

    def test_ping_dead_server_is_false(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert ServeClient(port=free_port, timeout=2.0).ping() is False

    def test_submit_roundtrip(self, tmp_path):
        response = _with_server(
            tmp_path, lambda c: c.submit(SPEC.to_dict())
        )
        assert response["ok"]
        job = response["job"]
        assert job["state"] == "done"
        assert job["cache"] == "miss"
        assert job["result"]["telemetry"]["steps"] == 3

    def test_second_submit_is_a_hit(self, tmp_path):
        def both(client):
            client.submit(SPEC.to_dict())
            return client.submit(SPEC.to_dict())

        assert _with_server(tmp_path, both)["job"]["cache"] == "hit"

    def test_longer_submit_resumes(self, tmp_path):
        def both(client):
            client.submit(SPEC.to_dict())
            return client.submit(SPEC.to_dict(), steps=7)

        job = _with_server(tmp_path, both)["job"]
        assert job["cache"] == "resume"
        assert job["resume_step"] == 3
        assert job["result"]["telemetry"]["serve"]["resume_step"] == 3

    def test_jobs_listing_drops_result_payload(self, tmp_path):
        def run(client):
            client.submit(SPEC.to_dict())
            return client.jobs()

        listing = _with_server(tmp_path, run)["jobs"]
        assert len(listing) == 1
        assert "result" not in listing[0]
        assert listing[0]["state"] == "done"

    def test_status_and_unknown_job(self, tmp_path):
        def run(client):
            job_id = client.submit(SPEC.to_dict())["job"]["id"]
            return client.status(job_id), client.status("j9999")

        found, missing = _with_server(tmp_path, run)
        assert found["ok"] and found["job"]["log"]
        assert not missing["ok"] and "no such job" in missing["error"]

    def test_stats_include_cache_counters(self, tmp_path):
        def run(client):
            client.submit(SPEC.to_dict())
            client.submit(SPEC.to_dict())
            return client.stats()

        stats = _with_server(tmp_path, run)["stats"]
        assert stats["states"] == {"done": 2}
        assert stats["cache"]["hits"] == 1

    def test_ensemble_submit(self, tmp_path):
        response = _with_server(
            tmp_path,
            lambda c: c.submit(SPEC.to_dict(), replicas=2),
        )
        assert len(response["jobs"]) == 2
        seeds = {j["spec_hash"] for j in response["jobs"]}
        assert len(seeds) == 2


class TestErrors:
    def test_bad_spec_maps_to_code_2(self, tmp_path):
        response = _with_server(
            tmp_path,
            lambda c: c.submit({"element": "Unobtanium"}),
        )
        assert not response["ok"]
        assert response["code"] == 2
        assert "invalid run spec" in response["error"]

    def test_bad_sweep_field_maps_to_code_2(self, tmp_path):
        response = _with_server(
            tmp_path,
            lambda c: c.submit(
                SPEC.to_dict(), replicas=1, sweep={"no_such_field": [1]}
            ),
        )
        assert not response["ok"]
        assert response["code"] == 2

    def test_unknown_op(self, tmp_path):
        response = _with_server(
            tmp_path, lambda c: c.request({"op": "explode"})
        )
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_malformed_json_line(self, tmp_path):
        def run(client):
            with socket.create_connection(
                (client.host, client.port), timeout=30
            ) as conn:
                conn.sendall(b"{not json\n")
                return json.loads(conn.makefile().readline())

        response = _with_server(tmp_path, run)
        assert not response["ok"]
        assert "bad request" in response["error"]


class TestWatch:
    def test_watch_streams_events_then_result(self, tmp_path):
        events = []

        def run(client):
            return client.submit(
                SPEC.to_dict(), watch=True, on_event=events.append
            )

        response = _with_server(tmp_path, run)
        assert response["ok"] and response["job"]["state"] == "done"
        kinds = {e["kind"] for e in events}
        assert "state" in kinds and "progress" in kinds
        states = [
            e["payload"]["state"] for e in events if e["kind"] == "state"
        ]
        assert states[-1] == "done"

    def test_cancel_op_on_done_job(self, tmp_path):
        def run(client):
            job_id = client.submit(SPEC.to_dict())["job"]["id"]
            return client.cancel(job_id)

        response = _with_server(tmp_path, run)
        assert response["ok"] and response["cancelled"] is False


def test_shutdown_op_stops_serve_loop(tmp_path):
    async def body():
        scheduler = JobScheduler(cache=None)
        server = ServeServer(scheduler, port=0)
        await server.start()
        client = ServeClient(port=server.port, timeout=30.0)
        loop = asyncio.get_running_loop()
        serve_task = asyncio.create_task(server.serve_until_shutdown())
        response = await loop.run_in_executor(None, client.shutdown)
        await asyncio.wait_for(serve_task, timeout=30)
        return response

    response = asyncio.run(body())
    assert response["ok"] and response["stopping"]


def test_cli_submit_and_jobs_against_live_server(tmp_path, capsys):
    """The repro submit / repro jobs commands, end to end."""
    from repro.cli import main

    async def body():
        scheduler = JobScheduler(cache=ResultCache(tmp_path / "cache"))
        server = ServeServer(scheduler, port=0)
        await server.start()
        loop = asyncio.get_running_loop()

        def cli_calls():
            argv = ["submit", "--port", str(server.port),
                    "--element", "Ta", "--reps", "3", "3", "2",
                    "--steps", "3", "--engine", "reference",
                    "--temperature", "120", "--seed", "8"]
            first = main(argv)
            second = main(argv)
            listing = main(["jobs", "--port", str(server.port)])
            stats = main(["jobs", "--port", str(server.port), "--stats"])
            return first, second, listing, stats

        try:
            return await loop.run_in_executor(None, cli_calls)
        finally:
            await server.close()
            await scheduler.close()

    first, second, listing, stats = asyncio.run(body())
    assert (first, second, listing, stats) == (0, 0, 0, 0)
    out = capsys.readouterr().out
    assert "cache=miss" in out
    assert "cache=hit" in out
    assert "1 hits" in out
