"""I/O round trips: xyz, LAMMPS data, table rendering."""

import io
import json

import numpy as np
import pytest

from repro.io.lammps_data import write_lammps_data
from repro.io.table_io import Table
from repro.io.xyz import read_xyz, write_xyz
from repro.md.boundary import Box
from repro.md.state import AtomsState


@pytest.fixture()
def state():
    rng = np.random.default_rng(0)
    return AtomsState(
        positions=rng.uniform(-5, 5, (8, 3)),
        velocities=rng.normal(size=(8, 3)),
        types=np.array([0, 0, 1, 1, 0, 1, 0, 0]),
        masses=np.array([63.5, 180.9]),
        box=Box(np.array([20.0, 20.0, 10.0]), periodic=[True, False, True]),
    )


class TestXyz:
    def test_roundtrip_positions_velocities(self, state):
        buf = io.StringIO()
        write_xyz(state, buf, symbols=["Cu", "Ta"])
        buf.seek(0)
        loaded = read_xyz(buf, masses=state.masses)
        assert np.allclose(loaded.positions, state.positions)
        assert np.allclose(loaded.velocities, state.velocities)
        assert np.array_equal(loaded.ids, state.ids)

    def test_roundtrip_periodicity(self, state):
        buf = io.StringIO()
        write_xyz(state, buf)
        buf.seek(0)
        loaded = read_xyz(buf)
        assert loaded.box.periodic.tolist() == [True, False, True]
        assert np.allclose(loaded.box.lengths, state.box.lengths)

    def test_roundtrip_types(self, state):
        buf = io.StringIO()
        write_xyz(state, buf, symbols=["Cu", "Ta"])
        buf.seek(0)
        loaded = read_xyz(buf)
        # species sorted alphabetically: Cu=0, Ta=1 (happens to match)
        assert np.array_equal(loaded.types, state.types)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("5\n"))

    def test_file_roundtrip(self, state, tmp_path):
        path = tmp_path / "frame.xyz"
        write_xyz(state, path)
        loaded = read_xyz(path)
        assert loaded.n_atoms == 8


class TestLammpsData:
    def test_header_counts(self, state):
        buf = io.StringIO()
        write_lammps_data(state, buf)
        text = buf.getvalue()
        assert "8 atoms" in text
        assert "2 atom types" in text
        assert "Velocities" in text

    def test_atom_lines_one_indexed(self, state):
        buf = io.StringIO()
        write_lammps_data(state, buf)
        atoms_block = buf.getvalue().split("Atoms # atomic")[1]
        first = atoms_block.strip().splitlines()[0].split()
        assert first[0] == "1"  # id 0 -> 1
        assert first[1] in ("1", "2")  # type 1-indexed

    def test_velocities_optional(self, state):
        buf = io.StringIO()
        write_lammps_data(state, buf, include_velocities=False)
        assert "Velocities" not in buf.getvalue()

    def test_box_bounds(self, state):
        buf = io.StringIO()
        write_lammps_data(state, buf)
        assert "xlo xhi" in buf.getvalue()


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["a", "bbbb"])
        t.add_row(1, 2.5)
        t.add_row(100000, 0.001)
        text = t.render()
        assert "demo" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_row_width_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_json_serialization(self, tmp_path):
        t = Table("demo", ["x"])
        t.add_row(3.14)
        p = tmp_path / "t.json"
        t.to_json(p)
        data = json.loads(p.read_text())
        assert data["title"] == "demo"
        assert data["rows"] == [[3.14]]

    def test_thousands_formatting(self):
        t = Table("demo", ["rate"])
        t.add_row(274016.0)
        assert "274,016" in t.render()
