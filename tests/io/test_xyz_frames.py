"""Multi-frame trajectory I/O."""

import io

import numpy as np
import pytest

from repro.io.xyz import read_xyz_frames, write_xyz
from repro.md.boundary import Box
from repro.md.state import AtomsState


def make_state(seed=0):
    rng = np.random.default_rng(seed)
    return AtomsState.from_positions(
        rng.uniform(0, 8, (5, 3)), Box.open([20, 20, 20])
    )


class TestFrames:
    def test_multi_frame_roundtrip(self):
        buf = io.StringIO()
        states = [make_state(k) for k in range(3)]
        for s in states:
            write_xyz(s, buf)
        buf.seek(0)
        frames = read_xyz_frames(buf)
        assert len(frames) == 3
        for loaded, orig in zip(frames, states):
            assert np.allclose(loaded.positions, orig.positions)

    def test_trajectory_evolution_preserved(self, ta_potential):
        """Write a real short trajectory and read it back in order."""
        from tests.conftest import small_slab_state
        from repro.md.simulation import Simulation
        state = small_slab_state("Ta", (3, 3, 2), temperature=200.0)
        sim = Simulation(state, ta_potential)
        buf = io.StringIO()
        for _ in range(3):
            sim.run(5)
            write_xyz(state, buf, append=True)
        buf.seek(0)
        frames = read_xyz_frames(buf)
        assert len(frames) == 3
        d01 = np.abs(frames[0].positions - frames[1].positions).max()
        assert d01 > 0  # motion between frames preserved

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="no frames"):
            read_xyz_frames(io.StringIO("\n\n"))

    def test_truncated_final_frame_rejected(self):
        buf = io.StringIO()
        write_xyz(make_state(), buf)
        text = buf.getvalue().splitlines()
        bad = "\n".join(text + ["5", "garbage header"])
        with pytest.raises(ValueError, match="file ends"):
            read_xyz_frames(io.StringIO(bad))

    def test_blank_lines_between_frames_tolerated(self):
        buf = io.StringIO()
        write_xyz(make_state(0), buf)
        buf.write("\n")
        write_xyz(make_state(1), buf)
        buf.seek(0)
        assert len(read_xyz_frames(buf)) == 2


class TestFacilityStrongScaling:
    def test_rate_flat_with_node_count(self):
        """Sec. VI-D outlook: wafer clusters buy capacity, not rate."""
        from repro.perfmodel.multiwafer import MultiWaferModel
        m = MultiWaferModel()
        sweep = m.facility_strong_scaling(
            "Ta", 40_000_000, 8, 88, 1.39, 3.65e-6, 274_016,
        )
        rates = [p.rate_steps_per_s for _, p in sweep]
        assert max(rates) / min(rates) < 1.05
        # subdomains shrink with node count
        interiors = [p.n_interior for _, p in sweep]
        assert interiors[0] > interiors[-1]
