"""Bicrystal grain-boundary construction."""

import numpy as np
import pytest
from scipy.spatial.distance import pdist

from repro.lattice.cells import BCC
from repro.lattice.grain_boundary import make_grain_boundary_slab, rotation_z


class TestRotation:
    def test_identity(self):
        assert np.allclose(rotation_z(0.0), np.eye(3))

    def test_preserves_z(self):
        r = rotation_z(0.3)
        v = np.array([1.0, 2.0, 3.0])
        assert (r @ v)[2] == pytest.approx(3.0)

    def test_orthogonal(self):
        r = rotation_z(1.1)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)


@pytest.fixture(scope="module")
def gb():
    return make_grain_boundary_slab(
        BCC, 3.304, (40.0, 40.0), 10.0, misorientation_deg=22.6
    )


class TestGrainBoundary:
    def test_inside_requested_extent(self, gb):
        assert np.all(np.abs(gb.positions[:, 0]) <= 20.0 + 1e-9)
        assert np.all(np.abs(gb.positions[:, 1]) <= 20.0 + 1e-9)
        assert np.all(np.abs(gb.positions[:, 2]) <= 5.0 + 1e-9)

    def test_two_grains_present(self, gb):
        lower = gb.positions[gb.positions[:, 1] < -5]
        upper = gb.positions[gb.positions[:, 1] > 5]
        assert len(lower) > 50 and len(upper) > 50

    def test_no_overlapping_atoms(self, gb):
        min_sep = pdist(gb.positions).min()
        assert min_sep > 0.7 * BCC.nn_distance(3.304) - 1e-9

    def test_grains_are_rotated_copies(self, gb):
        # atoms far from the boundary sit on a rotated perfect lattice:
        # their pairwise NN distance distribution matches the crystal's
        lower = gb.positions[gb.positions[:, 1] < -8]
        d = pdist(lower)
        nn = BCC.nn_distance(3.304)
        close = d[d < nn * 1.1]
        assert np.allclose(close, nn, atol=0.01)

    def test_density_reasonable(self, gb):
        # bicrystal density within 20% of bulk
        vol = 40.0 * 40.0 * 10.0
        bulk = 2 / 3.304**3
        assert gb.n_atoms / vol == pytest.approx(bulk, rel=0.2)

    def test_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            make_grain_boundary_slab(BCC, 3.3, (0.0, 10.0), 5.0)
