"""Crystal replication and ideal-shell tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.cells import BCC, FCC
from repro.lattice.crystals import replicate
from repro.lattice.neighbors_ideal import (
    coordination_within,
    lattice_sum,
    neighbor_shells,
)


class TestReplicate:
    def test_atom_count(self):
        c = replicate(FCC, 3.6, (3, 4, 5))
        assert c.n_atoms == 3 * 4 * 5 * 4

    def test_box_extent(self):
        c = replicate(BCC, 3.0, (2, 3, 4))
        assert np.allclose(c.box, [6.0, 9.0, 12.0])

    def test_positions_inside_box(self):
        c = replicate(FCC, 3.6, (3, 3, 3))
        assert np.all(c.positions >= 0)
        assert np.all(c.positions < c.box)

    def test_no_duplicate_positions(self):
        c = replicate(BCC, 3.0, (3, 3, 3))
        uniq = np.unique(np.round(c.positions, 9), axis=0)
        assert len(uniq) == c.n_atoms

    def test_origin_shift(self):
        c = replicate(FCC, 3.6, (2, 2, 2), origin=np.array([1.0, 2.0, 3.0]))
        assert np.allclose(c.positions.min(axis=0), [1.0, 2.0, 3.0])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            replicate(FCC, -1.0, (2, 2, 2))
        with pytest.raises(ValueError):
            replicate(FCC, 3.6, (0, 2, 2))

    @given(
        nx=st.integers(1, 4), ny=st.integers(1, 4), nz=st.integers(1, 4)
    )
    @settings(max_examples=20, deadline=None)
    def test_replication_count_property(self, nx, ny, nz):
        c = replicate(BCC, 2.5, (nx, ny, nz))
        assert c.n_atoms == 2 * nx * ny * nz


class TestShells:
    def test_fcc_first_shells(self):
        shells = neighbor_shells(FCC, 2.1)
        # 12, 6, 24, 12 at 1, sqrt2, sqrt3, 2 (in NN units)
        assert shells[0] == (pytest.approx(1.0), 12)
        assert shells[1][1] == 6
        assert shells[2][1] == 24
        assert shells[3][1] == 12

    def test_bcc_first_shells(self):
        shells = neighbor_shells(BCC, 1.7)
        assert shells[0] == (pytest.approx(1.0), 8)
        assert shells[1][1] == 6
        assert shells[2][1] == 12

    def test_paper_coordination_numbers(self):
        assert coordination_within(FCC, 1.94) == 42   # Cu
        assert coordination_within(BCC, 1.39) == 14   # Ta
        assert coordination_within(BCC, 2.02) == 58   # W (ideal lattice)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            neighbor_shells(FCC, 0.0)

    def test_lattice_sum_counts_neighbors(self):
        # summing 1 over the first FCC shell = 12
        nn = FCC.nn_distance(3.6)
        total = lattice_sum(FCC, lambda r: 1.0, nn * 1.1, 3.6)
        assert total == 12

    def test_lattice_sum_scale(self):
        # compressing the lattice pulls the second shell inside the cutoff
        nn = BCC.nn_distance(3.0)
        cutoff = nn * 1.1
        assert lattice_sum(BCC, lambda r: 1.0, cutoff, 3.0, scale=1.0) == 8
        assert lattice_sum(BCC, lambda r: 1.0, cutoff, 3.0, scale=0.9) == 14
