"""Bravais cell definitions."""

import math

import numpy as np
import pytest

from repro.lattice.cells import BCC, FCC, SC, BravaisCell, cell_by_name


class TestCells:
    def test_atoms_per_cell(self):
        assert FCC.atoms_per_cell == 4
        assert BCC.atoms_per_cell == 2
        assert SC.atoms_per_cell == 1

    def test_nn_distances(self):
        assert FCC.nn_distance(1.0) == pytest.approx(1 / math.sqrt(2))
        assert BCC.nn_distance(1.0) == pytest.approx(math.sqrt(3) / 2)
        assert SC.nn_distance(2.0) == pytest.approx(2.0)

    def test_atomic_volume(self):
        assert FCC.atomic_volume(3.615) == pytest.approx(3.615**3 / 4)
        assert BCC.atomic_volume(3.304) == pytest.approx(3.304**3 / 2)

    def test_number_density_inverse_of_volume(self):
        for cell in (FCC, BCC, SC):
            assert cell.number_density(2.0) * cell.atomic_volume(2.0) == (
                pytest.approx(1.0)
            )

    def test_lookup_by_name(self):
        assert cell_by_name("FCC") is FCC
        assert cell_by_name("bcc") is BCC
        with pytest.raises(ValueError, match="unknown structure"):
            cell_by_name("hcp")

    def test_rejects_bad_basis(self):
        with pytest.raises(ValueError):
            BravaisCell(name="bad", basis=np.array([[0.0, 0.0]]), nn_factor=1.0)
        with pytest.raises(ValueError):
            BravaisCell(
                name="bad", basis=np.array([[1.5, 0.0, 0.0]]), nn_factor=1.0
            )
