"""Thin-slab geometry tests."""

import numpy as np
import pytest

from repro.lattice.cells import BCC
from repro.lattice.slab import make_slab, slab_for_element
from repro.potentials.elements import ELEMENTS


class TestMakeSlab:
    def test_centered(self):
        s = make_slab(BCC, 3.3, (4, 4, 2))
        center = (s.positions.min(axis=0) + s.positions.max(axis=0)) / 2
        assert np.all(np.abs(center) < 3.3)

    def test_uncentered(self):
        s = make_slab(BCC, 3.3, (4, 4, 2), center=False)
        assert np.all(s.positions >= 0)

    def test_thin_geometry(self):
        s = make_slab(BCC, 3.3, (10, 10, 2))
        extent = np.ptp(s.positions, axis=0)
        assert extent[2] < extent[0] / 3


class TestSlabForElement:
    def test_full_scale_matches_table1(self):
        el = ELEMENTS["Ta"]
        s = slab_for_element(el)
        assert s.n_atoms == 801_792

    def test_scaled_preserves_thickness(self):
        el = ELEMENTS["Cu"]
        full = slab_for_element(el)
        small = slab_for_element(el, scale=0.1)
        assert np.ptp(small.positions[:, 2]) == pytest.approx(
            np.ptp(full.positions[:, 2])
        )
        assert small.n_atoms < full.n_atoms * 0.05

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            slab_for_element(ELEMENTS["Ta"], scale=1.5)

    def test_paper_slab_dimensions(self):
        # ~60nm x 60nm x 2nm (Sec. IV-B): in-plane extents of the same
        # order, z about 2 nm
        el = ELEMENTS["Ta"]
        s = slab_for_element(el)
        extent = np.ptp(s.positions, axis=0)
        assert 600 < extent[0] < 1000  # A
        assert 600 < extent[1] < 1000
        assert 15 < extent[2] < 25
