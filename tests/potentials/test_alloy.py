"""Binary alloy mixing + multi-type engine paths (W-Ta)."""

import numpy as np
import pytest

from repro.core.wse_md import WseMd
from repro.lattice.cells import BCC
from repro.lattice.crystals import replicate
from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.md.simulation import Simulation
from repro.md.state import AtomsState
from repro.md.thermostat import maxwell_boltzmann_velocities
from repro.potentials.alloy import mix_tables
from repro.potentials.base import PairTable
from repro.potentials.eam import EAMPotential
from repro.potentials.elements import ELEMENTS, make_element_tables


@pytest.fixture(scope="module")
def wta_tables():
    return mix_tables(make_element_tables("W"), make_element_tables("Ta"))


@pytest.fixture(scope="module")
def wta_potential(wta_tables):
    return EAMPotential(wta_tables)


def alloy_state(seed=0, temperature=0.0):
    """Random W/Ta solid solution on a BCC lattice at the mean a0."""
    a = 0.5 * (ELEMENTS["W"].lattice_constant + ELEMENTS["Ta"].lattice_constant)
    crystal = replicate(BCC, a, (8, 8, 3))
    rng = np.random.default_rng(seed)
    types = (rng.random(crystal.n_atoms) < 0.5).astype(np.int64)
    box = Box.open(crystal.box + 25.0)
    state = AtomsState(
        positions=crystal.positions - crystal.box / 2,
        velocities=np.zeros((crystal.n_atoms, 3)),
        types=types,
        masses=np.array([ELEMENTS["W"].mass, ELEMENTS["Ta"].mass]),
        box=box,
    )
    if temperature > 0:
        maxwell_boltzmann_velocities(state, temperature, rng)
    return state


class TestMixing:
    def test_two_types(self, wta_tables):
        assert wta_tables.n_types == 2
        assert (0, 1) in wta_tables.phi

    def test_pure_components_preserved(self, wta_tables):
        w = make_element_tables("W")
        r = np.linspace(2.0, w.cutoff * 0.95, 50)
        assert np.allclose(wta_tables.phi[(0, 0)](r), w.phi[(0, 0)](r),
                           atol=1e-6)
        assert np.allclose(wta_tables.rho[0](r), w.rho[0](r), atol=1e-8)

    def test_cross_pair_between_pure_pairs(self, wta_tables):
        """Johnson mixing interpolates the two like-pair interactions."""
        r = np.linspace(2.4, 3.6, 30)
        ab = wta_tables.phi[(0, 1)](r)
        aa = wta_tables.phi[(0, 0)](r)
        bb = wta_tables.phi[(1, 1)](r)
        lo = np.minimum(aa, bb)
        hi = np.maximum(aa, bb)
        # within the envelope up to the density-ratio weighting
        assert np.all(ab >= lo * 0.2 - 1e-9)
        assert np.all(ab <= hi * 5.0 + 1e-9)

    def test_cross_pair_vanishes_beyond_smaller_cutoff(self, wta_tables):
        r = np.array([wta_tables.meta["cross_cutoff"] + 0.1])
        # spline ringing at the truncation knot is allowed to be tiny
        assert abs(wta_tables.phi[(0, 1)](r)[0]) < 1e-6

    def test_rejects_multielement_inputs(self, wta_tables):
        with pytest.raises(ValueError, match="single-element"):
            mix_tables(wta_tables, make_element_tables("W"))


class TestAlloyPhysics:
    def test_forces_match_numerical_gradient(self, wta_potential):
        state = alloy_state()
        # perturb so forces are nonzero
        rng = np.random.default_rng(1)
        pos = state.positions + rng.normal(scale=0.05,
                                           size=state.positions.shape)

        def energy(p):
            i, j, rij, r = all_pairs(p, wta_potential.cutoff, state.box)
            return wta_potential.total_energy(
                len(p), PairTable(i=i, j=j, rij=rij, r=r), state.types
            )

        i, j, rij, r = all_pairs(pos, wta_potential.cutoff, state.box)
        _, forces = wta_potential.compute(
            len(pos), PairTable(i=i, j=j, rij=rij, r=r), state.types
        )
        eps = 1e-6
        for atom in (0, 17):
            for axis in range(3):
                p1, p2 = pos.copy(), pos.copy()
                p1[atom, axis] -= eps
                p2[atom, axis] += eps
                f_num = -(energy(p2) - energy(p1)) / (2 * eps)
                assert forces[atom, axis] == pytest.approx(
                    f_num, rel=1e-4, abs=1e-6
                )

    def test_alloy_is_bound(self, wta_potential):
        state = alloy_state()
        i, j, rij, r = all_pairs(state.positions, wta_potential.cutoff,
                                 state.box)
        e = wta_potential.total_energy(
            state.n_atoms, PairTable(i=i, j=j, rij=rij, r=r), state.types
        )
        # cohesive: between the two pure cohesive energies, roughly
        assert -9.5 < e / state.n_atoms < -5.0


class TestAlloyOnTheWafer:
    def test_multitype_lockstep_matches_reference(self, wta_potential):
        """The WseMd multi-type paths against the reference engine."""
        state = alloy_state(temperature=250.0, seed=3)
        wse = WseMd(state.copy(), wta_potential, dt_fs=2.0)
        ref = Simulation(state.copy(), wta_potential, dt_fs=2.0, skin=0.6)
        from repro.core.validate import compare_trajectories
        cmp = compare_trajectories(state, wse, ref, 15)
        assert cmp.max_position_error < 1e-10
        assert cmp.energy_error < 1e-8

    def test_multitype_force_symmetry_mode(self, wta_potential):
        state = alloy_state(temperature=250.0, seed=4)
        full = WseMd(state.copy(), wta_potential)
        half = WseMd(state.copy(), wta_potential, force_symmetry=True)
        full.step(5)
        half.step(5)
        a = full.gather_state()
        b = half.gather_state()
        assert np.abs(a.positions - b.positions).max() < 1e-10

    def test_types_travel_with_swapped_atoms(self, wta_potential):
        state = alloy_state(temperature=400.0, seed=5)
        wse = WseMd(state.copy(), wta_potential, swap_interval=5,
                    b_margin=2.0)
        wse.step(20)
        out = wse.gather_state()
        order = np.argsort(state.ids)
        assert np.array_equal(out.types, state.types[order])
