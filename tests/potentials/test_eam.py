"""EAM kernel tests: staging, forces vs numerical gradients, half lists."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.potentials.base import PairTable
from repro.potentials.eam import EAMPotential, EAMTables
from repro.potentials.elements import make_element_tables


def pair_table_for(positions, cutoff, box=None, half=False):
    box = box or Box.open(np.ptp(positions, axis=0) + 10 * cutoff)
    i, j, rij, r = all_pairs(positions, cutoff, box)
    if half:
        keep = i < j
        return PairTable(i=i[keep], j=j[keep], rij=rij[keep], r=r[keep], half=True)
    return PairTable(i=i, j=j, rij=rij, r=r, half=False)


@pytest.fixture(scope="module")
def ta_tables():
    return make_element_tables("Ta")


@pytest.fixture(scope="module")
def ta_pot(ta_tables):
    return EAMPotential(ta_tables)


class TestTables:
    def test_missing_phi_rejected(self, ta_tables):
        with pytest.raises(ValueError, match="missing phi"):
            EAMTables(rho=ta_tables.rho, embed=ta_tables.embed, phi={},
                      cutoff=ta_tables.cutoff)

    def test_mismatched_types_rejected(self, ta_tables):
        with pytest.raises(ValueError, match="embedding tables"):
            EAMTables(rho=ta_tables.rho, embed=[], phi=ta_tables.phi,
                      cutoff=ta_tables.cutoff)

    def test_phi_symmetric_lookup(self, ta_tables):
        assert ta_tables.phi_for(0, 0) is ta_tables.phi[(0, 0)]

    def test_sram_footprint_positive(self, ta_tables):
        assert ta_tables.sram_bytes() > 0


class TestDimerPhysics:
    """Two Ta atoms: everything can be computed by hand from the tables."""

    def test_energy_decomposition(self, ta_pot, ta_tables):
        r = 2.9
        pos = np.array([[0.0, 0.0, 0.0], [r, 0.0, 0.0]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        e, f = ta_pot.compute(2, pairs)
        rho = float(ta_tables.rho[0](np.array([r]))[0])
        f_embed = float(ta_tables.embed[0](np.array([rho]))[0])
        phi = float(ta_tables.phi[(0, 0)](np.array([r]))[0])
        assert e[0] == pytest.approx(f_embed + 0.5 * phi, rel=1e-10)
        assert e[1] == pytest.approx(e[0])

    def test_forces_equal_and_opposite(self, ta_pot, ta_tables):
        pos = np.array([[0.0, 0.0, 0.0], [2.9, 0.5, -0.3]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        _, f = ta_pot.compute(2, pairs)
        assert np.allclose(f[0], -f[1], atol=1e-12)

    def test_force_matches_numerical_gradient(self, ta_pot, ta_tables):
        pos = np.array([[0.0, 0.0, 0.0], [2.9, 0.0, 0.0]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        _, f = ta_pot.compute(2, pairs)
        eps = 1e-6
        energies = []
        for dx in (-eps, eps):
            p = pos.copy()
            p[1, 0] += dx
            pr = pair_table_for(p, ta_tables.cutoff)
            energies.append(ta_pot.total_energy(2, pr))
        f_num = -(energies[1] - energies[0]) / (2 * eps)
        assert f[1, 0] == pytest.approx(f_num, rel=1e-5)

    def test_beyond_cutoff_no_interaction(self, ta_pot, ta_tables):
        pos = np.array([[0.0, 0.0, 0.0], [ta_tables.cutoff + 0.1, 0.0, 0.0]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        assert pairs.n_pairs == 0


class TestClusterForces:
    def test_forces_match_numerical_gradient_random_cluster(self, ta_pot, ta_tables):
        rng = np.random.default_rng(3)
        # compressed-ish cluster with all pairs safely above the cap
        pos = rng.uniform(0, 6.0, size=(8, 3))
        from scipy.spatial.distance import pdist
        while pdist(pos).min() < 1.8:
            pos = rng.uniform(0, 6.0, size=(8, 3))
        pairs = pair_table_for(pos, ta_tables.cutoff)
        _, forces = ta_pot.compute(8, pairs)
        eps = 1e-6
        for atom in (0, 3, 7):
            for axis in range(3):
                e_pm = []
                for s in (-1, 1):
                    p = pos.copy()
                    p[atom, axis] += s * eps
                    e_pm.append(
                        ta_pot.total_energy(8, pair_table_for(p, ta_tables.cutoff))
                    )
                f_num = -(e_pm[1] - e_pm[0]) / (2 * eps)
                assert forces[atom, axis] == pytest.approx(
                    f_num, rel=1e-4, abs=1e-7
                )

    def test_newtons_third_law_total_force_zero(self, ta_pot, ta_tables):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 8.0, size=(20, 3)) * [1, 1, 0.4]
        pairs = pair_table_for(pos, ta_tables.cutoff)
        _, forces = ta_pot.compute(20, pairs)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-10)


class TestHalfList:
    def test_half_list_matches_full_list(self, ta_pot, ta_tables):
        rng = np.random.default_rng(11)
        pos = rng.uniform(0, 9.0, size=(15, 3))
        full = pair_table_for(pos, ta_tables.cutoff, half=False)
        half = pair_table_for(pos, ta_tables.cutoff, half=True)
        e_f, f_f = ta_pot.compute(15, full)
        e_h, f_h = ta_pot.compute(15, half)
        assert np.allclose(e_f, e_h, atol=1e-10)
        assert np.allclose(f_f, f_h, atol=1e-10)


class TestStages:
    def test_staged_equals_composed(self, ta_pot, ta_tables):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 7.0, size=(10, 3))
        pairs = pair_table_for(pos, ta_tables.cutoff)
        rho = ta_pot.accumulate_density(10, pairs)
        f_val, f_der = ta_pot.embed(rho)
        e_pair, forces = ta_pot.pair_energy_forces(10, pairs, f_der)
        e2, f2 = ta_pot.compute(10, pairs)
        assert np.allclose(e_pair + f_val, e2)
        assert np.allclose(forces, f2)

    def test_isolated_atom_zero_energy(self, ta_pot):
        pairs = PairTable(
            i=np.empty(0, int), j=np.empty(0, int),
            rij=np.empty((0, 3)), r=np.empty(0),
        )
        e, f = ta_pot.compute(1, pairs)
        assert e[0] == pytest.approx(0.0, abs=1e-8)
        assert np.allclose(f, 0.0)


class TestGuards:
    def test_overlapping_atoms_raise(self, ta_pot, ta_tables):
        pos = np.array([[0.0, 0.0, 0.0], [0.1, 0.0, 0.0]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        with pytest.raises(FloatingPointError, match="overlapping"):
            ta_pot.compute(2, pairs)

    def test_bad_type_index_rejected(self, ta_pot, ta_tables):
        pos = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        pairs = pair_table_for(pos, ta_tables.cutoff)
        with pytest.raises(ValueError, match="type out of range"):
            ta_pot.compute(2, pairs, types=np.array([0, 5]))

    def test_inconsistent_pair_table_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            PairTable(
                i=np.array([0]), j=np.array([1, 2]),
                rij=np.zeros((1, 3)), r=np.zeros(1),
            )
