"""Physical-symmetry property tests for the EAM kernels (hypothesis).

The potential energy must be invariant under rigid translations and
rotations; forces must transform as vectors.  These are the invariants
behind momentum/angular-momentum conservation and are checked against
the full kernel pipeline (neighbor search included).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.potentials.base import PairTable
from repro.potentials.elements import make_element_potential


def random_cluster(seed: int, n: int = 10):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 7.0, size=(n, 3))
    from scipy.spatial.distance import pdist
    tries = 0
    while pdist(pos).min() < 1.8:
        pos = rng.uniform(0, 7.0, size=(n, 3))
        tries += 1
        if tries > 200:
            # fall back to a stretched lattice arrangement
            g = np.stack(np.meshgrid(*[np.arange(3) * 2.5] * 3,
                                     indexing="ij"), axis=-1)
            return g.reshape(-1, 3)[:n].astype(float)
    return pos


def rotation_matrix(angles):
    ax, ay, az = angles
    cx, sx = np.cos(ax), np.sin(ax)
    cy, sy = np.cos(ay), np.sin(ay)
    cz, sz = np.cos(az), np.sin(az)
    rx = np.array([[1, 0, 0], [0, cx, -sx], [0, sx, cx]])
    ry = np.array([[cy, 0, sy], [0, 1, 0], [-sy, 0, cy]])
    rz = np.array([[cz, -sz, 0], [sz, cz, 0], [0, 0, 1]])
    return rz @ ry @ rx


def evaluate(pot, pos):
    box = Box.open(np.ptp(pos, axis=0) + 10 * pot.cutoff)
    i, j, rij, r = all_pairs(pos, pot.cutoff, box)
    return pot.compute(len(pos), PairTable(i=i, j=j, rij=rij, r=r))


@pytest.fixture(scope="module")
def pot():
    return make_element_potential("Ta")


class TestInvariance:
    @given(seed=st.integers(0, 500),
           shift=st.tuples(*[st.floats(-30, 30)] * 3))
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance(self, pot, seed, shift):
        pos = random_cluster(seed)
        e1, f1 = evaluate(pot, pos)
        e2, f2 = evaluate(pot, pos + np.asarray(shift))
        assert np.allclose(e1, e2, atol=1e-9)
        assert np.allclose(f1, f2, atol=1e-8)

    @given(seed=st.integers(0, 500),
           angles=st.tuples(*[st.floats(0, 6.28)] * 3))
    @settings(max_examples=25, deadline=None)
    def test_rotation_covariance(self, pot, seed, angles):
        pos = random_cluster(seed)
        rot = rotation_matrix(angles)
        e1, f1 = evaluate(pot, pos)
        e2, f2 = evaluate(pot, pos @ rot.T)
        assert np.allclose(np.sort(e1), np.sort(e2), atol=1e-9)
        assert np.allclose(f1 @ rot.T, f2, atol=1e-7)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_permutation_equivariance(self, pot, seed):
        pos = random_cluster(seed)
        rng = np.random.default_rng(seed + 1)
        perm = rng.permutation(len(pos))
        e1, f1 = evaluate(pot, pos)
        e2, f2 = evaluate(pot, pos[perm])
        assert np.allclose(e1[perm], e2, atol=1e-10)
        assert np.allclose(f1[perm], f2, atol=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_net_force_and_torque_vanish(self, pot, seed):
        pos = random_cluster(seed)
        _, f = evaluate(pot, pos)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)
        torque = np.cross(pos - pos.mean(axis=0), f).sum(axis=0)
        assert np.allclose(torque, 0.0, atol=1e-7)
