"""funcfl single-element reader tests (synthetic file)."""

import io

import numpy as np
import pytest

from repro.potentials.funcfl import _HARTREE_BOHR, read_funcfl


def synthetic_funcfl(n_rho=50, n_r=60, cutoff=4.5):
    """A small, well-formed funcfl file with known analytic content."""
    d_rho = 0.5
    d_r = cutoff / (n_r - 1)
    rho_grid = d_rho * np.arange(n_rho)
    r_grid = d_r * np.arange(n_r)
    f_vals = -2.0 * np.sqrt(rho_grid)          # F(rho) = -2 sqrt(rho)
    z_vals = 2.0 * np.exp(-1.5 * r_grid)        # Z(r)
    rho_vals = np.exp(-2.0 * r_grid)            # rho(r)
    out = ["synthetic funcfl for tests"]
    out.append("29 63.546 3.615 fcc")
    out.append(f"{n_rho} {d_rho} {n_r} {d_r} {cutoff}")
    vals = np.concatenate([f_vals, z_vals, rho_vals])
    for k in range(0, len(vals), 5):
        out.append(" ".join(f"{v:.12e}" for v in vals[k:k + 5]))
    return "\n".join(out), (d_rho, d_r, cutoff)


class TestReadFuncfl:
    def test_roundtrip_tables(self):
        text, (d_rho, d_r, cutoff) = synthetic_funcfl()
        tables = read_funcfl(io.StringIO(text))
        assert tables.n_types == 1
        assert tables.cutoff == pytest.approx(cutoff)
        # embedding reproduces -2 sqrt(rho) at the knots
        rho = np.array([4.0, 9.0])
        assert np.allclose(tables.embed[0](rho), -2.0 * np.sqrt(rho),
                           atol=1e-6)

    def test_pair_from_effective_charge(self):
        text, (_, d_r, _) = synthetic_funcfl()
        tables = read_funcfl(io.StringIO(text))
        r = np.array([10 * d_r])  # on a knot
        z = 2.0 * np.exp(-1.5 * r)
        expect = _HARTREE_BOHR * z**2 / r
        assert tables.phi[(0, 0)](r)[0] == pytest.approx(expect[0], rel=1e-9)

    def test_metadata(self):
        text, _ = synthetic_funcfl()
        tables = read_funcfl(io.StringIO(text))
        el = tables.meta["elements"][0]
        assert el["z"] == 29
        assert el["mass"] == pytest.approx(63.546)
        assert el["lattice"] == "fcc"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            read_funcfl(io.StringIO("just\nthree\nlines"))

    def test_short_table_rejected(self):
        text, _ = synthetic_funcfl()
        cut = "\n".join(text.splitlines()[:-4])
        with pytest.raises(ValueError, match="expected"):
            read_funcfl(io.StringIO(cut))

    def test_malformed_header_rejected(self):
        text, _ = synthetic_funcfl()
        lines = text.splitlines()
        lines[1] = "29 63.5"
        with pytest.raises(ValueError, match="element header"):
            read_funcfl(io.StringIO("\n".join(lines)))

    def test_potential_usable_in_engine(self):
        """A funcfl-loaded potential drives the reference MD engine."""
        from repro.md.boundary import Box
        from repro.md.simulation import Simulation
        from repro.md.state import AtomsState
        from repro.potentials.eam import EAMPotential

        text, _ = synthetic_funcfl()
        pot = EAMPotential(read_funcfl(io.StringIO(text)))
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 8, (20, 3))
        from scipy.spatial.distance import pdist
        while pdist(pos).min() < 1.5:
            pos = rng.uniform(0, 8, (20, 3))
        state = AtomsState.from_positions(pos, Box.open([30, 30, 30]),
                                          mass=63.546)
        sim = Simulation(state, pot, dt_fs=1.0)
        sim.run(5)
        assert np.all(np.isfinite(state.positions))
