"""Half-pair vs directed-pair EAM agreement (property-based).

The fused half-pair path (:meth:`EAMPotential._compute_half_fused`) and
the staged directed path are independent implementations of the same
physics; on matching pair tables they must agree to near machine
precision.  This pins the Force Symmetry optimization (paper Sec. VI-A):
halving the pair list may reorder floating-point sums but must not
change the model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList
from repro.potentials.alloy import mix_tables
from repro.potentials.eam import EAMPotential
from repro.potentials.elements import make_element_tables


@pytest.fixture(scope="module")
def wta_potential():
    return EAMPotential(
        mix_tables(make_element_tables("W"), make_element_tables("Ta"))
    )


def liquid_like(seed, n, spread, min_sep=1.8):
    """Random positions with a hard floor on pair distance.

    Rejection-free: start from a jittered grid so the configuration is
    disordered but never inside the steep core where F'/phi' explode.
    """
    rng = np.random.default_rng(seed)
    side = int(np.ceil(n ** (1 / 3)))
    grid = np.stack(np.meshgrid(*[np.arange(side)] * 3, indexing="ij"),
                    axis=-1).reshape(-1, 3)[:n]
    pos = grid * spread + rng.uniform(-0.3, 0.3, size=(n, 3)) * spread
    return pos - pos.mean(axis=0)


def both_paths(potential, positions, types=None):
    n = len(positions)
    box = Box.open(np.ptp(positions, axis=0) + 4 * potential.cutoff)
    half = NeighborList(box, potential.cutoff, skin=0.4).pairs(positions)
    assert half.half
    e_half, f_half = potential.compute(n, half, types)
    e_dir, f_dir = potential.compute(n, half.directed(), types)
    return (e_half, f_half), (e_dir, f_dir)


class TestSingleType:
    @given(seed=st.integers(0, 10_000), n=st.integers(20, 120))
    @settings(max_examples=25, deadline=None)
    def test_energy_and_forces_agree(self, ta_potential, seed, n):
        pos = liquid_like(seed, n, spread=3.1)
        (e_h, f_h), (e_d, f_d) = both_paths(ta_potential, pos)
        scale = max(1.0, float(np.max(np.abs(e_d))))
        assert np.allclose(e_h, e_d, atol=1e-12 * scale)
        fscale = max(1.0, float(np.max(np.abs(f_d))))
        assert np.allclose(f_h, f_d, atol=1e-12 * fscale)

    def test_total_energy_identical_to_tolerance(self, ta_potential):
        pos = liquid_like(3, 80, spread=3.3)
        (e_h, f_h), (e_d, _) = both_paths(ta_potential, pos)
        assert float(np.sum(e_h)) == pytest.approx(float(np.sum(e_d)),
                                                   abs=1e-10)
        # isolated cluster: forces sum to ~zero (Newton's third law)
        assert np.allclose(f_h.sum(axis=0), 0.0, atol=1e-9)


class TestMultiType:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_alloy_agrees(self, wta_potential, seed):
        rng = np.random.default_rng(seed)
        pos = liquid_like(seed, 60, spread=3.2)
        types = rng.integers(0, 2, size=60)
        (e_h, f_h), (e_d, f_d) = both_paths(wta_potential, pos, types)
        scale = max(1.0, float(np.max(np.abs(e_d))))
        assert np.allclose(e_h, e_d, atol=1e-12 * scale)
        fscale = max(1.0, float(np.max(np.abs(f_d))))
        assert np.allclose(f_h, f_d, atol=1e-12 * fscale)

    def test_unordered_phi_symmetric(self, wta_potential):
        # type pattern (0,1) vs (1,0) across the same geometry: same energy
        pos = np.array([[0.0, 0.0, 0.0], [2.6, 0.0, 0.0]])
        box = Box.open([40.0, 40.0, 40.0])
        pairs = NeighborList(box, wta_potential.cutoff).pairs(pos)
        e01, _ = wta_potential.compute(2, pairs, np.array([0, 1]))
        e10, _ = wta_potential.compute(2, pairs, np.array([1, 0]))
        assert float(np.sum(e01)) == pytest.approx(float(np.sum(e10)),
                                                   abs=1e-12)
