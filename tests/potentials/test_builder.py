"""Rose-EOS EAM construction: properties guaranteed by construction."""

import numpy as np
import pytest

from repro.lattice.cells import BCC, FCC
from repro.lattice.neighbors_ideal import lattice_sum
from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.potentials.base import PairTable
from repro.potentials.builder import RoseEAMSpec, build_rose_eam, smootherstep_cut
from repro.potentials.eam import EAMPotential
from repro.potentials.elements import ELEMENTS, make_element_tables
from repro.potentials.rose import RoseEOS


class TestSmootherstep:
    def test_one_below_start(self):
        assert smootherstep_cut(np.array([0.5]), 1.0, 2.0)[0] == 1.0

    def test_zero_at_cutoff(self):
        assert smootherstep_cut(np.array([2.0, 3.0]), 1.0, 2.0).tolist() == [0, 0]

    def test_monotone_decreasing(self):
        r = np.linspace(1.0, 2.0, 100)
        v = smootherstep_cut(r, 1.0, 2.0)
        assert np.all(np.diff(v) <= 1e-12)

    def test_derivative_vanishes_at_ends(self):
        eps = 1e-6
        for x in (1.0, 2.0):
            d = (
                smootherstep_cut(np.array([x + eps]), 1.0, 2.0)[0]
                - smootherstep_cut(np.array([max(x - eps, 1.0)]), 1.0, 2.0)[0]
            ) / (2 * eps)
            assert abs(d) < 1e-4

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            smootherstep_cut(np.array([1.0]), 2.0, 1.0)


class TestRoseEOS:
    def test_minimum_at_equilibrium(self):
        eos = RoseEOS(cohesive_energy=3.54, bulk_modulus=0.86, atomic_volume=11.8)
        assert eos.energy(np.array([1.0]))[0] == pytest.approx(-3.54)
        assert eos.energy_derivative(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_curvature_equals_9_b_omega(self):
        eos = RoseEOS(cohesive_energy=3.54, bulk_modulus=0.86, atomic_volume=11.8)
        assert eos.curvature_check() == pytest.approx(9 * 0.86 * 11.8)

    def test_energy_approaches_zero_at_large_separation(self):
        eos = RoseEOS(cohesive_energy=8.1, bulk_modulus=1.2, atomic_volume=18.0)
        assert abs(eos.energy(np.array([3.0]))[0]) < 0.05 * 8.1

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            RoseEOS(cohesive_energy=-1.0, bulk_modulus=1.0, atomic_volume=1.0)


def bulk_energy_per_atom(symbol: str, scale: float = 1.0) -> float:
    """Bulk cohesive energy at a uniform lattice scale, via lattice sums."""
    el = ELEMENTS[symbol]
    tables = make_element_tables(symbol)
    pot = EAMPotential(tables)
    rho = lattice_sum(
        el.cell, lambda r: float(tables.rho[0](np.array([r]))[0]),
        tables.cutoff, el.lattice_constant, scale=scale,
    )
    pair = 0.5 * lattice_sum(
        el.cell, lambda r: float(tables.phi[(0, 0)](np.array([r]))[0]),
        tables.cutoff, el.lattice_constant, scale=scale,
    )
    embed = float(tables.embed[0](np.array([rho]))[0])
    return pair + embed


class TestConstructedPotentials:
    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_cohesive_energy_by_construction(self, symbol):
        e = bulk_energy_per_atom(symbol)
        assert e == pytest.approx(-ELEMENTS[symbol].cohesive_energy, abs=2e-3)

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_equilibrium_is_energy_minimum(self, symbol):
        e0 = bulk_energy_per_atom(symbol, 1.0)
        for s in (0.98, 1.02):
            assert bulk_energy_per_atom(symbol, s) > e0

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_bulk_modulus_from_curvature(self, symbol):
        el = ELEMENTS[symbol]
        h = 0.004
        e = [bulk_energy_per_atom(symbol, 1.0 + k * h) for k in (-1, 0, 1)]
        d2 = (e[0] - 2 * e[1] + e[2]) / h**2
        b_measured = d2 / (9.0 * el.cell.atomic_volume(el.lattice_constant))
        assert b_measured == pytest.approx(el.bulk_modulus, rel=0.05)

    @pytest.mark.parametrize("symbol", ["Cu", "W", "Ta"])
    def test_energy_follows_rose_eos_along_path(self, symbol):
        el = ELEMENTS[symbol]
        eos = RoseEOS(
            cohesive_energy=el.cohesive_energy,
            bulk_modulus=el.bulk_modulus,
            atomic_volume=el.cell.atomic_volume(el.lattice_constant),
        )
        for s in (0.85, 0.95, 1.05, 1.15):
            e = bulk_energy_per_atom(symbol, s)
            assert e == pytest.approx(float(eos.energy(np.array([s]))[0]), abs=0.02)

    def test_embedding_zero_at_zero_density(self):
        tables = make_element_tables("Ta")
        v, _ = tables.embed[0].evaluate(np.array([0.0]))
        assert abs(v[0]) < 1e-6

    def test_cutoff_must_reach_first_shell(self):
        with pytest.raises(ValueError, match="nearest"):
            RoseEAMSpec(
                cell=FCC, lattice_constant=3.6, cohesive_energy=3.5,
                bulk_modulus=0.8, cutoff=2.0,
            )

    def test_bcc_crystal_forces_vanish(self, ta_potential):
        """Perfect bulk crystal at equilibrium: zero forces."""
        from repro.lattice.crystals import replicate
        el = ELEMENTS["Ta"]
        crystal = replicate(BCC, el.lattice_constant, (4, 4, 4))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        i, j, rij, r = all_pairs(crystal.positions, ta_potential.cutoff, box)
        pairs = PairTable(i=i, j=j, rij=rij, r=r)
        _, forces = ta_potential.compute(crystal.n_atoms, pairs)
        assert np.max(np.abs(forces)) < 1e-10
