"""Lennard-Jones baseline potential tests."""

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.cell_list import all_pairs
from repro.potentials.base import PairTable
from repro.potentials.lennard_jones import LennardJones


def lj_pairs(positions, pot):
    box = Box.open(np.ptp(positions, axis=0) + 10 * pot.cutoff)
    i, j, rij, r = all_pairs(positions, pot.cutoff, box)
    return PairTable(i=i, j=j, rij=rij, r=r)


class TestLennardJones:
    def test_minimum_at_r_min(self):
        lj = LennardJones()
        r_min = 2 ** (1 / 6)
        assert lj.pair_force_scalar(np.array([r_min]))[0] == pytest.approx(
            0.0, abs=1e-12
        )

    def test_energy_shift_makes_cutoff_continuous(self):
        lj = LennardJones(cutoff=2.5)
        e = lj.pair_energy(np.array([2.5 - 1e-9]))
        assert abs(e[0]) < 1e-6

    def test_repulsive_inside_minimum(self):
        lj = LennardJones()
        s = lj.pair_force_scalar(np.array([0.9]))
        assert s[0] < 0  # dU/dr < 0: force pushes atoms apart

    def test_dimer_forces_match_gradient(self):
        lj = LennardJones()
        pos = np.array([[0.0, 0.0, 0.0], [1.3, 0.2, -0.1]])
        _, f = lj.compute(2, lj_pairs(pos, lj))
        eps = 1e-7
        for axis in range(3):
            e_pm = []
            for s in (-1, 1):
                p = pos.copy()
                p[1, axis] += s * eps
                e, _ = lj.compute(2, lj_pairs(p, lj))
                e_pm.append(e.sum())
            assert f[1, axis] == pytest.approx(
                -(e_pm[1] - e_pm[0]) / (2 * eps), rel=1e-4, abs=1e-8
            )

    def test_half_list_equivalence(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 4.0, size=(12, 3))
        lj = LennardJones(cap=None)
        full = lj_pairs(pos, lj)
        keep = full.i < full.j
        half = PairTable(i=full.i[keep], j=full.j[keep],
                         rij=full.rij[keep], r=full.r[keep], half=True)
        e_f, f_f = lj.compute(12, full)
        e_h, f_h = lj.compute(12, half)
        assert np.allclose(e_f, e_h)
        assert np.allclose(f_f, f_h)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=-1.0)
        with pytest.raises(ValueError):
            LennardJones(cutoff=0.5, sigma=1.0)

    def test_fcc_lattice_is_bound(self):
        """An FCC LJ crystal near its known optimum has negative energy."""
        from repro.lattice.cells import FCC
        from repro.lattice.crystals import replicate
        lj = LennardJones(cutoff=3.0)
        a = 1.54  # near LJ-FCC equilibrium (~1.542 sigma at rc=3)
        crystal = replicate(FCC, a, (4, 4, 4))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        i, j, rij, r = all_pairs(crystal.positions, lj.cutoff, box)
        pairs = PairTable(i=i, j=j, rij=rij, r=r)
        e, f = lj.compute(crystal.n_atoms, pairs)
        assert e.sum() / crystal.n_atoms < -5.0  # cohesive LJ fcc ~ -8 eps
        assert np.max(np.abs(f)) < 1e-8
