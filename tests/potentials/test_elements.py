"""Element data: paper-facing constants (Table I / Table VI)."""

import pytest

from repro.lattice.neighbors_ideal import coordination_within
from repro.potentials.elements import ELEMENTS, make_element_potential


class TestPaperConstants:
    def test_benchmark_atom_counts(self):
        # Table I: all three benchmark slabs have 801,792 atoms
        for el in ELEMENTS.values():
            assert el.n_atoms_table1 == 801_792

    @pytest.mark.parametrize(
        "symbol,candidates", [("Cu", 224), ("W", 224), ("Ta", 80)]
    )
    def test_candidate_counts(self, symbol, candidates):
        assert ELEMENTS[symbol].candidates == candidates

    @pytest.mark.parametrize(
        "symbol,expected",
        [("Cu", 42), ("Ta", 14), ("W", 58)],
    )
    def test_bulk_coordination_matches_cutoff(self, symbol, expected):
        # Cu 42 and Ta 14 match Table I exactly; W's ideal-lattice count
        # is 58 against the paper's thermally averaged 59.
        el = ELEMENTS[symbol]
        assert coordination_within(el.cell, el.cutoff_nn) == expected

    def test_cutoffs_in_angstroms(self):
        assert ELEMENTS["Cu"].cutoff == pytest.approx(4.96, abs=0.02)
        assert ELEMENTS["Ta"].cutoff == pytest.approx(3.98, abs=0.02)
        assert ELEMENTS["W"].cutoff == pytest.approx(5.54, abs=0.02)

    def test_structures(self):
        assert ELEMENTS["Cu"].cell.name == "fcc"
        assert ELEMENTS["W"].cell.name == "bcc"
        assert ELEMENTS["Ta"].cell.name == "bcc"

    def test_unknown_element_rejected(self):
        from repro.potentials.elements import make_element_tables
        with pytest.raises(ValueError, match="unknown element"):
            make_element_tables("Xx")

    def test_potentials_cached(self):
        a = make_element_potential("Ta")
        b = make_element_potential("Ta")
        assert a.tables is b.tables

    def test_cutoff_below_candidate_reach(self):
        # the (2b+1) neighborhood must be able to span the cutoff given
        # ~1 atom per core: candidates >= bulk coordination
        for el in ELEMENTS.values():
            coord = coordination_within(el.cell, el.cutoff_nn)
            assert el.candidates >= coord
