"""setfl round-trip: our potentials survive serialization."""

import io

import numpy as np
import pytest

from repro.potentials.eam import EAMPotential
from repro.potentials.elements import ELEMENTS, make_element_tables
from repro.potentials.setfl import read_setfl, write_setfl


@pytest.fixture(scope="module")
def roundtripped():
    tables = make_element_tables("Ta")
    buf = io.StringIO()
    write_setfl(tables, buf, names=["Ta"], masses=[ELEMENTS["Ta"].mass],
                atomic_numbers=[73], n_rho=3000, n_r=3000)
    buf.seek(0)
    return tables, read_setfl(buf)


class TestRoundTrip:
    def test_cutoff_preserved(self, roundtripped):
        orig, loaded = roundtripped
        assert loaded.cutoff == pytest.approx(orig.cutoff, rel=1e-9)

    def test_metadata(self, roundtripped):
        _, loaded = roundtripped
        assert loaded.meta["names"] == ["Ta"]
        assert loaded.meta["elements"][0]["mass"] == pytest.approx(180.9479)

    def test_density_tables_agree(self, roundtripped):
        orig, loaded = roundtripped
        r = np.linspace(1.5, orig.cutoff * 0.98, 200)
        assert np.allclose(orig.rho[0](r), loaded.rho[0](r), atol=1e-5)

    def test_embedding_tables_agree(self, roundtripped):
        orig, loaded = roundtripped
        rho = np.linspace(0.1, orig.embed[0].x_max * 0.9, 200)
        assert np.allclose(orig.embed[0](rho), loaded.embed[0](rho), atol=1e-3)

    def test_pair_tables_agree(self, roundtripped):
        orig, loaded = roundtripped
        r = np.linspace(1.5, orig.cutoff * 0.98, 200)
        assert np.allclose(
            orig.phi[(0, 0)](r), loaded.phi[(0, 0)](r), atol=1e-4
        )

    def test_dimer_energy_agrees(self, roundtripped):
        orig, loaded = roundtripped
        from repro.md.boundary import Box
        from repro.md.cell_list import all_pairs
        from repro.potentials.base import PairTable
        pos = np.array([[0.0, 0.0, 0.0], [2.9, 0.0, 0.0]])
        box = Box.open(np.array([50.0, 50.0, 50.0]))
        for tables in (orig, loaded):
            pot = EAMPotential(tables)
            i, j, rij, r = all_pairs(pos, tables.cutoff, box)
            e = pot.total_energy(2, PairTable(i=i, j=j, rij=rij, r=r))
            if tables is orig:
                e_orig = e
        assert e == pytest.approx(e_orig, abs=1e-4)


class TestFormatErrors:
    def test_truncated_file_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            read_setfl(io.StringIO("one\ntwo\n"))

    def test_wrong_element_count_rejected(self):
        text = "c\nc\nc\n2 OnlyOne\n100 0.1 100 0.01 5.0\n0 0\n"
        with pytest.raises(ValueError, match="declares"):
            read_setfl(io.StringIO(text))

    def test_short_data_rejected(self):
        text = "c\nc\nc\n1 X\n10 0.1 10 0.01 5.0\n1 1.0 3.0 fcc\n1.0 2.0\n"
        with pytest.raises(ValueError, match="ran out of data"):
            read_setfl(io.StringIO(text))

    def test_mismatched_writer_args_rejected(self):
        tables = make_element_tables("Ta")
        with pytest.raises(ValueError, match="must match"):
            write_setfl(tables, io.StringIO(), names=["A", "B"])
