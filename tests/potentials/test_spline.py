"""Spline table unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potentials.spline import (
    UniformCubicSpline,
    natural_cubic_second_derivatives,
)


class TestConstruction:
    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            UniformCubicSpline(0.0, 0.0, np.array([1.0, 2.0]))

    def test_rejects_single_knot(self):
        with pytest.raises(ValueError):
            UniformCubicSpline(0.0, 1.0, np.array([1.0]))

    def test_rejects_unknown_extrapolation(self):
        with pytest.raises(ValueError):
            UniformCubicSpline(0.0, 1.0, np.zeros(4), extrapolate_low="nope")

    def test_x_max(self):
        s = UniformCubicSpline(1.0, 0.5, np.zeros(5))
        assert s.x_max == pytest.approx(3.0)
        assert np.allclose(s.knots(), [1.0, 1.5, 2.0, 2.5, 3.0])


class TestExactness:
    def test_interpolates_knots_exactly(self):
        xs = np.linspace(0, 5, 11)
        ys = np.sin(xs)
        s = UniformCubicSpline(0.0, 0.5, ys, zero_above=False)
        vals, _ = s.evaluate(xs)
        assert np.allclose(vals, ys, atol=1e-12)

    def test_linear_function_reproduced_exactly(self):
        # natural cubic splines are exact on linear data
        xs = np.linspace(0, 4, 9)
        s = UniformCubicSpline(0.0, 0.5, 3.0 * xs + 1.0, zero_above=False)
        q = np.linspace(0.0, 4.0, 57)
        vals, ders = s.evaluate(q)
        assert np.allclose(vals, 3.0 * q + 1.0, atol=1e-10)
        assert np.allclose(ders, 3.0, atol=1e-10)

    def test_smooth_function_accuracy(self):
        s = UniformCubicSpline.from_function(
            np.exp, 0.0, 2.0, 200, zero_above=False
        )
        q = np.linspace(0.0, 2.0, 501)
        vals, ders = s.evaluate(q)
        # natural-BC end error dominates both bounds
        assert np.max(np.abs(vals - np.exp(q))) < 1e-4
        assert np.max(np.abs(ders - np.exp(q))) < 5e-2
        # interior accuracy is much tighter
        interior = (q > 0.2) & (q < 1.8)
        assert np.max(np.abs(vals[interior] - np.exp(q[interior]))) < 1e-7

    def test_derivative_consistent_with_finite_difference(self):
        s = UniformCubicSpline.from_function(
            lambda x: np.cos(2 * x), 0.0, 3.0, 100, zero_above=False
        )
        q = np.linspace(0.1, 2.9, 37)
        _, der = s.evaluate(q)
        eps = 1e-6
        fd = (s(q + eps) - s(q - eps)) / (2 * eps)
        assert np.allclose(der, fd, atol=1e-5)


class TestBoundaries:
    def test_zero_above_cutoff(self):
        s = UniformCubicSpline.from_function(np.exp, 0.0, 1.0, 10, zero_above=True)
        v, d = s.evaluate(np.array([1.0, 1.5, 100.0]))
        assert np.all(v == 0.0)
        assert np.all(d == 0.0)

    def test_clamp_above_keeps_last_value(self):
        s = UniformCubicSpline(0.0, 1.0, np.array([1.0, 2.0, 5.0]), zero_above=False)
        v, d = s.evaluate(np.array([7.0]))
        assert v[0] == pytest.approx(5.0)
        assert d[0] == 0.0

    def test_linear_extrapolation_below(self):
        s = UniformCubicSpline(
            1.0, 0.5, np.array([2.0, 3.0, 4.0]), extrapolate_low="linear",
            zero_above=False,
        )
        v0, d0 = s.evaluate(np.array([1.0]))
        v, d = s.evaluate(np.array([0.5]))
        # continues with the boundary polynomial's slope
        assert v[0] == pytest.approx(v0[0] - 0.5 * d0[0], rel=0.2)

    def test_error_below_raises(self):
        s = UniformCubicSpline(
            1.0, 0.5, np.zeros(3), extrapolate_low="error"
        )
        with pytest.raises(ValueError, match="below first knot"):
            s.evaluate(np.array([0.0]))

    def test_scalar_evaluation(self):
        s = UniformCubicSpline(0.0, 1.0, np.array([0.0, 1.0, 0.0]),
                               zero_above=False)
        v, d = s.evaluate(1.0)
        assert np.isscalar(v) or v.ndim == 0
        assert v == pytest.approx(1.0)


class TestEdgeCases:
    """Knot boundaries, x_max, scalars — across extrapolation modes."""

    @pytest.mark.parametrize("low", ["clamp", "linear"])
    def test_exact_knot_hits_are_interpolated(self, low):
        ys = np.array([1.0, 4.0, 2.0, 7.0, 3.0])
        s = UniformCubicSpline(2.0, 0.5, ys, extrapolate_low=low,
                               zero_above=False)
        v, _ = s.evaluate(s.knots())
        assert np.allclose(v, ys, atol=1e-12)

    def test_x_max_exactly_returns_last_knot(self):
        ys = np.array([0.0, 1.0, 4.0])
        s = UniformCubicSpline(0.0, 1.0, ys, zero_above=False)
        v, _ = s.evaluate(np.array([s.x_max]))
        assert v[0] == pytest.approx(4.0, abs=1e-12)

    def test_x_max_exactly_with_zero_above(self):
        # zero_above cuts at >= x_max (the cutoff itself contributes 0)
        s = UniformCubicSpline(0.0, 1.0, np.array([0.0, 1.0, 4.0]),
                               zero_above=True)
        v, d = s.evaluate(np.array([s.x_max]))
        assert v[0] == 0.0
        assert d[0] == 0.0

    def test_first_knot_clamp_derivative_is_boundary_slope(self):
        # clamp mode at x0 must report the boundary polynomial's slope,
        # not zero: forces at the inner table edge stay continuous
        s = UniformCubicSpline(1.0, 0.5, np.array([5.0, 3.0, 2.0, 1.5]),
                               extrapolate_low="clamp", zero_above=False)
        _, d_at = s.evaluate(np.array([1.0]))
        eps = 1e-7
        _, d_in = s.evaluate(np.array([1.0 + eps]))
        assert d_at[0] == pytest.approx(d_in[0], abs=1e-5)
        assert d_at[0] != 0.0

    def test_below_first_knot_clamp_freezes_value(self):
        s = UniformCubicSpline(1.0, 0.5, np.array([5.0, 3.0, 2.0]),
                               extrapolate_low="clamp", zero_above=False)
        v, _ = s.evaluate(np.array([0.2, 0.9]))
        assert np.allclose(v, 5.0)

    def test_linear_mode_continues_boundary_polynomial(self):
        # "linear" continues the first segment's cubic below x0 (negative
        # local offset) — value and derivative stay C1 through the knot
        s = UniformCubicSpline(1.0, 0.5, np.array([2.0, 3.0, 4.5]),
                               extrapolate_low="linear", zero_above=False)
        xs = np.array([0.2, 0.5, 0.8])
        v, d = s.evaluate(xs)
        dx = xs - 1.0
        c0, c1, c2, c3 = s.coeffs[0]
        assert np.allclose(v, c0 + dx * (c1 + dx * (c2 + dx * c3)),
                           atol=1e-12)
        assert np.allclose(d, c1 + 2 * c2 * dx + 3 * c3 * dx * dx,
                           atol=1e-12)

    @pytest.mark.parametrize("x,mode", [(0.0, "clamp"), (0.0, "linear"),
                                        (1.0, "clamp"), (2.0, "clamp"),
                                        (9.0, "clamp")])
    def test_scalar_input_returns_scalar_everywhere(self, x, mode):
        s = UniformCubicSpline(1.0, 0.5, np.arange(5, dtype=float),
                               extrapolate_low=mode)
        v, d = s.evaluate(x)
        assert np.ndim(v) == 0
        assert np.ndim(d) == 0

    def test_scalar_error_mode_raises_below(self):
        s = UniformCubicSpline(1.0, 0.5, np.zeros(3),
                               extrapolate_low="error")
        with pytest.raises(ValueError, match="below first knot"):
            s.evaluate(0.5)

    def test_packed_coefficients_shape_and_layout(self):
        # the kernel layer consumes coeffs[(nseg, 4)] = (c0, c1, c2, c3);
        # row k evaluated at dx=0 must give the knot value and slope
        ys = np.sin(np.linspace(0, 3, 12))
        s = UniformCubicSpline(0.0, 3 / 11, ys, zero_above=False)
        assert s.coeffs.shape == (11, 4)
        assert s.coeffs.flags["C_CONTIGUOUS"]
        assert np.allclose(s.coeffs[:, 0], ys[:-1], atol=1e-12)
        v, d = s.evaluate(s.knots()[:-1])
        assert np.allclose(s.coeffs[:, 1], d, atol=1e-12)


class TestSecondDerivatives:
    def test_natural_boundary_conditions(self):
        m = natural_cubic_second_derivatives(np.sin(np.linspace(0, 3, 20)), 3 / 19)
        assert m[0] == 0.0
        assert m[-1] == 0.0

    def test_two_knots_all_zero(self):
        assert np.all(natural_cubic_second_derivatives(np.array([1.0, 5.0]), 1.0) == 0)

    def test_rejects_single_knot(self):
        with pytest.raises(ValueError):
            natural_cubic_second_derivatives(np.array([1.0]), 1.0)


class TestProperties:
    @given(
        coeffs=st.tuples(
            st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)
        ),
        n=st.integers(8, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_quadratics_interpolated_within_tolerance(self, coeffs, n):
        a, b, c = coeffs
        fn = lambda x: a * x * x + b * x + c
        s = UniformCubicSpline.from_function(fn, 0.0, 2.0, n, zero_above=False)
        q = np.linspace(0.0, 2.0, 101)
        vals, _ = s.evaluate(q)
        scale = max(1.0, abs(a), abs(b), abs(c))
        # natural BCs perturb quadratics near the ends only
        interior = (q > 0.3) & (q < 1.7)
        assert np.max(np.abs(vals[interior] - fn(q[interior]))) < 0.05 * scale

    @given(n=st.integers(4, 50), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_c1_continuity_at_knots(self, n, seed):
        rng = np.random.default_rng(seed)
        ys = rng.normal(size=n)
        s = UniformCubicSpline(0.0, 1.0, ys, zero_above=False)
        eps = 1e-8
        interior_knots = np.arange(1, n - 1, dtype=np.float64)
        if len(interior_knots) == 0:
            return
        _, d_left = s.evaluate(interior_knots - eps)
        _, d_right = s.evaluate(interior_knots + eps)
        assert np.allclose(d_left, d_right, atol=1e-5)

    @given(n=st.integers(4, 40))
    @settings(max_examples=20, deadline=None)
    def test_segment_indices_in_range(self, n):
        s = UniformCubicSpline(0.0, 0.25, np.zeros(n))
        x = np.linspace(-1.0, n, 200)
        k, dx = s.segment(x)
        assert k.min() >= 0
        assert k.max() <= n - 2


class TestSram:
    def test_nbytes(self):
        s = UniformCubicSpline(0.0, 1.0, np.zeros(65))
        # 64 segments x 4 coefficients x 4 bytes
        assert s.nbytes() == 64 * 4 * 4
