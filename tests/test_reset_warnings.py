"""The warn-once caches: reset hooks and fork inheritance.

The kernel and parallel layers warn once per degradation for the life
of the process.  That cache is plain module state, so it survives
``fork`` — a worker (or a served job) inheriting a populated cache
never hears about degradations that predate it.  ``reset_warnings()``
re-arms the caches; the serve scheduler calls it before every job.
"""

import multiprocessing
import sys
import warnings

import pytest

from repro import kernels, parallel
from repro.parallel import domains


class TestKernelReset:
    def test_clears_fallback_cache(self):
        kernels._warned_fallbacks.add("probe:test")
        kernels.reset_warnings()
        assert kernels._warned_fallbacks == set()

    def test_rearms_the_warning(self):
        previous = kernels.active_backend_name()
        kernels.reset_warnings()
        try:
            with warnings.catch_warnings(record=True) as first:
                warnings.simplefilter("always")
                kernels.set_backend("no-such-backend-xyz")
            assert len(first) == 1
            # cached: silent the second time
            with warnings.catch_warnings(record=True) as second:
                warnings.simplefilter("always")
                kernels.set_backend("no-such-backend-xyz")
            assert len(second) == 0
            # reset: audible again
            kernels.reset_warnings()
            with warnings.catch_warnings(record=True) as third:
                warnings.simplefilter("always")
                kernels.set_backend("no-such-backend-xyz")
            assert len(third) == 1
        finally:
            kernels.reset_warnings()
            kernels.set_backend(previous)


class TestParallelReset:
    def test_clears_both_caches(self):
        parallel._warned_reasons.add("probe reason")
        domains._warned_degenerate.add(("x", 9, 1))
        parallel.reset_warnings()
        assert parallel._warned_reasons == set()
        assert domains._warned_degenerate == set()


def _forked_child(queue) -> None:
    """Runs in the fork: report the inherited cache, reset, re-check."""
    inherited = set(kernels._warned_fallbacks)
    kernels.reset_warnings()
    parallel.reset_warnings()
    queue.put({
        "inherited": sorted(inherited),
        "after_reset": sorted(kernels._warned_fallbacks),
    })


@pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)
def test_fork_inherits_cache_and_reset_clears_it():
    """A forked worker inherits the parent's warn-once cache (the bug
    surface) and reset_warnings() gives it a clean slate."""
    marker = "fork-probe:backend"
    kernels._warned_fallbacks.add(marker)
    try:
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        child = ctx.Process(target=_forked_child, args=(queue,))
        child.start()
        report = queue.get()
        child.join(timeout=30)
        assert child.exitcode == 0
        assert marker in report["inherited"]
        assert report["after_reset"] == []
        # the parent's cache is untouched by the child's reset
        assert marker in kernels._warned_fallbacks
    finally:
        kernels._warned_fallbacks.discard(marker)
