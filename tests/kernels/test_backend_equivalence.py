"""Cross-backend kernel equivalence: every backend vs the numpy oracle.

Property-style random inputs, parametrized over every backend the host
can import x every function of the widened kernel interface.  The gate
is 1e-9 relative everywhere; the scatter-add accumulators and the
force+integrate fold are additionally asserted **bitwise**, because
their scalar operation sequence provably matches across backends (no
reassociation, no FMA contraction — see the numba module docstring).

On hosts without numba the suite still runs over numpy + parallel (the
parallel module re-exports the numpy kernels, so it doubles as a check
that the re-export list stays complete); CI's numba leg runs the same
file with the JIT tier installed.
"""

import numpy as np
import pytest

from repro.constants import MVV2E
from repro.kernels import (
    DEFAULT_BACKEND,
    KERNEL_FUNCTIONS,
    active_backend,
    available_backends,
    set_backend,
    warmup_backend,
)
from repro.potentials.spline import SplineGroup, UniformCubicSpline

#: Functions whose outputs must match numpy bit for bit.
BITWISE = ("accumulate_scalar", "accumulate_vec3", "force_integrate")

SEEDS = (0, 1, 2, 3)


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    set_backend(DEFAULT_BACKEND)


def _bank(rng, n_members, *, clamp_low=False, zero_above=True):
    """A packed spline bank with randomized knots per member."""
    members = []
    for m in range(n_members):
        y = rng.normal(size=int(rng.integers(6, 14)))
        members.append(
            UniformCubicSpline(
                0.4 + 0.05 * m,
                0.25 + 0.05 * m,
                y,
                extrapolate_low="clamp" if clamp_low else "linear",
                zero_above=zero_above,
            )
        )
    return SplineGroup(members).bank()


def _spline_eval_inputs(rng):
    n_seg = 11
    coeffs = rng.normal(size=(n_seg, 4))
    k = rng.integers(0, n_seg, size=150)
    dx = rng.uniform(0.0, 0.4, size=150)
    return (coeffs, k, dx), {}


def _accumulate_scalar_inputs(rng):
    idx = rng.integers(0, 12, size=400)
    w = rng.normal(size=400)
    return (idx, w, 12), {}


def _accumulate_vec3_inputs(rng):
    idx = rng.integers(0, 9, size=250)
    vec = rng.normal(size=(250, 3))
    return (idx, vec, 9), {}


def _grouped_spline_eval_inputs(rng):
    n_members = int(rng.integers(1, 4))
    bank = _bank(
        rng,
        n_members,
        clamp_low=bool(rng.integers(0, 2)),
        zero_above=bool(rng.integers(0, 2)),
    )
    # below the first knot, interior and beyond the last knot all in
    # one batch, so every boundary branch is exercised
    x = rng.uniform(0.0, 5.0, size=300)
    member = rng.integers(0, n_members, size=300)
    return (bank, x, member), {}


def _neighbor_prefilter_inputs(rng):
    n = 30
    lengths = rng.uniform(4.0, 8.0, size=3)
    positions = rng.uniform(-1.0, 1.0, size=(n, 3)) * lengths * 0.8
    i, j = np.triu_indices(n, k=1)
    sel = rng.random(len(i)) < 0.6
    periodic = rng.integers(0, 2, size=3).astype(bool)
    return (
        positions,
        i[sel],
        j[sel],
        lengths,
        periodic,
        float(rng.uniform(2.0, 4.0)),
    ), {
        "inclusive": bool(rng.integers(0, 2)),
        "compute_r": bool(rng.integers(0, 2)),
    }


def _half_pairs(rng, n_atoms, p):
    i = rng.integers(0, n_atoms - 1, size=p)
    j = (i + 1 + rng.integers(0, n_atoms - 1, size=p)) % n_atoms
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    return lo, hi


def _fused_density_pass_inputs(rng):
    n_atoms = 25
    p = 180
    n_members = int(rng.integers(1, 4))
    bank = _bank(rng, n_members)
    i, j = _half_pairs(rng, n_atoms, p)
    r = rng.uniform(0.2, 4.5, size=p)
    if n_members == 1:
        ti = tj = np.empty(0, dtype=np.int64)  # ignored by contract
    else:
        types = rng.integers(0, n_members, size=n_atoms)
        ti, tj = types[i], types[j]
    return (i, j, r, ti, tj, bank, n_atoms), {}


def _fused_force_pass_inputs(rng):
    n_atoms = 25
    p = 180
    n_members = int(rng.integers(1, 4))
    bank = _bank(rng, n_members)
    i, j = _half_pairs(rng, n_atoms, p)
    rij = rng.normal(size=(p, 3)) + 0.5  # bounded away from zero length
    r = np.sqrt(np.einsum("ij,ij->i", rij, rij))
    f_der = rng.normal(size=n_atoms)
    d_ji = rng.normal(size=p)
    d_ij = rng.normal(size=p)
    member = rng.integers(0, n_members, size=p)
    return (i, j, rij, r, f_der, d_ji, d_ij, bank, member, n_atoms), {}


def _force_integrate_inputs(rng):
    n = 40
    positions = rng.normal(size=(n, 3)) * 5.0
    velocities = rng.normal(size=(n, 3)) * 0.01
    forces = rng.normal(size=(n, 3))
    masses = rng.uniform(50.0, 200.0, size=n)
    return (positions, velocities, forces, masses, 0.002, MVV2E), {}


_INPUTS = {
    "spline_eval": _spline_eval_inputs,
    "accumulate_scalar": _accumulate_scalar_inputs,
    "accumulate_vec3": _accumulate_vec3_inputs,
    "grouped_spline_eval": _grouped_spline_eval_inputs,
    "neighbor_prefilter": _neighbor_prefilter_inputs,
    "fused_density_pass": _fused_density_pass_inputs,
    "fused_force_pass": _fused_force_pass_inputs,
    "force_integrate": _force_integrate_inputs,
}


def _call(fn_name, args, kwargs):
    """Invoke on the active backend; normalize output to a tuple.

    ``force_integrate`` mutates in place, so its observable output is
    the mutated position/velocity arrays (called on private copies).
    """
    fn = getattr(active_backend(), fn_name)
    if fn_name == "force_integrate":
        positions, velocities, *rest = args
        positions = positions.copy()
        velocities = velocities.copy()
        fn(positions, velocities, *rest, **kwargs)
        return positions, velocities
    out = fn(*args, **kwargs)
    return out if isinstance(out, tuple) else (out,)


def test_generators_cover_interface():
    assert set(_INPUTS) == set(KERNEL_FUNCTIONS)


class TestKernelEquivalence:
    @pytest.fixture(params=sorted(set(available_backends())))
    def backend_name(self, request):
        return request.param

    @pytest.mark.parametrize("fn_name", sorted(KERNEL_FUNCTIONS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_numpy(self, backend_name, fn_name, seed):
        args, kwargs = _INPUTS[fn_name](np.random.default_rng(seed))
        set_backend("numpy")
        expect = _call(fn_name, args, kwargs)
        set_backend(backend_name)
        warmup_backend()
        got = _call(fn_name, args, kwargs)
        assert len(got) == len(expect)
        for g, e in zip(got, expect):
            g = np.asarray(g)
            e = np.asarray(e)
            assert g.shape == e.shape
            assert g.dtype == e.dtype
            if fn_name in BITWISE:
                assert np.array_equal(g, e), (
                    f"{backend_name}.{fn_name} not bitwise vs numpy"
                )
            else:
                assert np.allclose(g, e, rtol=1e-9, atol=1e-12), (
                    f"{backend_name}.{fn_name} off by "
                    f"{np.max(np.abs(g - e))}"
                )

    def test_fused_force_pass_raises_on_coincident_atoms(self, backend_name):
        """Every backend surfaces r=0 as FloatingPointError, like the
        serial numpy pass (the pair-distance cap depends on it)."""
        rng = np.random.default_rng(7)
        args, kwargs = _fused_force_pass_inputs(rng)
        i, j, rij, r, *rest = args
        r = r.copy()
        r[3] = 0.0
        set_backend(backend_name)
        warmup_backend()
        with np.errstate(invalid="raise", divide="raise"):
            with pytest.raises(FloatingPointError):
                _call(
                    "fused_force_pass", (i, j, rij, r, *rest), kwargs
                )


class TestEamEquivalence:
    """Whole-potential agreement on the paper's Ta/Cu/W tables."""

    @pytest.fixture(params=sorted(set(available_backends())))
    def backend_name(self, request):
        return request.param

    @pytest.mark.parametrize("element", ["Ta", "Cu", "W"])
    def test_forces_and_energy_match_numpy(self, backend_name, element):
        from repro.runtime import RunSpec, build_engine

        def _run(backend):
            set_backend(backend)
            warmup_backend()
            engine = build_engine(
                RunSpec(
                    element=element,
                    reps=(3, 3, 2),
                    steps=3,
                    temperature=120.0,
                    engine="reference",
                )
            )
            try:
                engine.step(3)
                return engine.total_energy(), engine.state.positions.copy()
            finally:
                engine.close()

        e_ref, pos_ref = _run("numpy")
        e_got, pos_got = _run(backend_name)
        rel = abs(e_got - e_ref) / max(abs(e_ref), 1e-300)
        assert rel <= 1e-9
        assert np.allclose(pos_got, pos_ref, rtol=1e-9, atol=1e-9)
