"""Backend registry + numpy kernel correctness tests."""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import (
    CORE_KERNEL_FUNCTIONS,
    DEFAULT_BACKEND,
    ENV_VAR,
    FUSED_KERNEL_FUNCTIONS,
    KERNEL_FUNCTIONS,
    active_backend,
    active_backend_name,
    available_backends,
    backend_status,
    register_backend,
    set_backend,
    warmup_backend,
)
from repro.kernels import numpy_backend


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the process-wide registry back on numpy."""
    yield
    set_backend(DEFAULT_BACKEND)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_default_active(self):
        set_backend(DEFAULT_BACKEND)
        assert active_backend_name() == "numpy"
        assert active_backend() is numpy_backend

    def test_unknown_backend_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            name = set_backend("no-such-backend")
        assert name == "numpy"
        assert active_backend_name() == "numpy"

    def test_numba_degrades_gracefully_when_missing(self):
        # container may or may not have numba; either way this must
        # activate *some* working backend without raising
        if "numba" in available_backends():
            assert set_backend("numba") == "numba"
        else:
            with pytest.warns(RuntimeWarning):
                assert set_backend("numba") == "numpy"
            assert "numba" in backend_status()
            assert backend_status()["numba"] != "ok"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        monkeypatch.setattr(kernels, "_active", None)
        monkeypatch.setattr(kernels, "_active_name", None)
        assert active_backend_name() == "numpy"

    def test_incomplete_backend_rejected(self):
        class Partial:
            def spline_eval(self):  # pragma: no cover - never called
                pass

        register_backend("partial", lambda: Partial())
        try:
            with pytest.raises(TypeError, match="missing kernels"):
                set_backend("partial")
        finally:
            kernels._loaders.pop("partial", None)

    def test_status_reports_ok_for_numpy(self):
        assert backend_status()["numpy"] == "ok"

    def test_interface_is_two_tiered(self):
        assert set(KERNEL_FUNCTIONS) == (
            set(CORE_KERNEL_FUNCTIONS) | set(FUSED_KERNEL_FUNCTIONS)
        )
        assert not set(CORE_KERNEL_FUNCTIONS) & set(FUSED_KERNEL_FUNCTIONS)

    def test_core_only_backend_degrades_per_function(self):
        """A backend with just the core tier keeps working when the
        interface widens: missing fused kernels are filled from numpy,
        announced by exactly one warning naming them."""
        import warnings as _warnings

        class CoreOnly:
            spline_eval = staticmethod(numpy_backend.spline_eval)
            accumulate_scalar = staticmethod(numpy_backend.accumulate_scalar)
            accumulate_vec3 = staticmethod(numpy_backend.accumulate_vec3)

        register_backend("core-only-probe", lambda: CoreOnly())
        try:
            with pytest.warns(RuntimeWarning) as caught:
                assert set_backend("core-only-probe") == "core-only-probe"
            runtime = [w for w in caught
                       if issubclass(w.category, RuntimeWarning)]
            assert len(runtime) == 1
            msg = str(runtime[0].message)
            for fn in FUSED_KERNEL_FUNCTIONS:
                assert fn in msg
            backend = active_backend()
            assert backend.missing_kernels == tuple(
                f for f in FUSED_KERNEL_FUNCTIONS if f in msg
            )
            for fn in KERNEL_FUNCTIONS:
                assert callable(getattr(backend, fn))
            # the numpy fill is the real numpy implementation
            assert backend.fused_density_pass \
                is numpy_backend.fused_density_pass
            # re-activating must not warn again (once per process)
            with _warnings.catch_warnings(record=True) as again:
                _warnings.simplefilter("always")
                set_backend(DEFAULT_BACKEND)
                set_backend("core-only-probe")
            assert [w for w in again
                    if issubclass(w.category, RuntimeWarning)] == []
        finally:
            kernels._loaders.pop("core-only-probe", None)
            kernels._resolved.pop("core-only-probe", None)
            kernels._warned_fallbacks.discard("core-only-probe:partial")

    def test_warmup_returns_float_and_caches(self):
        set_backend(DEFAULT_BACKEND)
        kernels._warmups.pop("numpy", None)
        first = warmup_backend()
        assert isinstance(first, float)
        assert first == 0.0  # numpy has no warmup hook
        assert warmup_backend("numpy") == first

    def test_warmup_runs_hook_once(self):
        calls = []

        class Hooked:
            spline_eval = staticmethod(numpy_backend.spline_eval)
            accumulate_scalar = staticmethod(numpy_backend.accumulate_scalar)
            accumulate_vec3 = staticmethod(numpy_backend.accumulate_vec3)
            for _fn in FUSED_KERNEL_FUNCTIONS:
                locals()[_fn] = staticmethod(getattr(numpy_backend, _fn))
            del _fn

            @staticmethod
            def warmup():
                calls.append(1)

        register_backend("hooked-probe", lambda: Hooked())
        try:
            t1 = warmup_backend("hooked-probe")
            t2 = warmup_backend("hooked-probe")
            assert calls == [1]
            assert t1 == t2 >= 0.0
        finally:
            kernels._loaders.pop("hooked-probe", None)
            kernels._resolved.pop("hooked-probe", None)
            kernels._warmups.pop("hooked-probe", None)

    def test_fallback_warns_once_per_name(self):
        # a campaign calling set_backend per run must not spam warnings;
        # the name here is unique to this test so the first call is
        # guaranteed to be this process's first warning for it
        import warnings as _warnings

        with pytest.warns(RuntimeWarning, match="falling back"):
            assert set_backend("warn-dedupe-probe") == "numpy"
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            assert set_backend("warn-dedupe-probe") == "numpy"
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] \
            == []


def _random_spline_inputs(seed, n_points=200, n_seg=17):
    rng = np.random.default_rng(seed)
    coeffs = rng.normal(size=(n_seg, 4))
    k = rng.integers(0, n_seg, size=n_points)
    dx = rng.uniform(0.0, 0.5, size=n_points)
    return coeffs, k, dx


class TestKernelContracts:
    """Every available backend must agree with the literal definition."""

    @pytest.fixture(params=sorted(set(available_backends())))
    def backend(self, request):
        return set_backend(request.param) and active_backend()

    def test_interface_complete(self, backend):
        for fn in KERNEL_FUNCTIONS:
            assert callable(getattr(backend, fn))

    def test_spline_eval_matches_horner(self, backend):
        coeffs, k, dx = _random_spline_inputs(0)
        val, der = backend.spline_eval(coeffs, k, dx)
        c = coeffs[k]
        expect_v = c[:, 0] + dx * (c[:, 1] + dx * (c[:, 2] + dx * c[:, 3]))
        expect_d = c[:, 1] + 2.0 * c[:, 2] * dx + 3.0 * c[:, 3] * dx * dx
        assert np.allclose(val, expect_v, rtol=1e-14, atol=1e-14)
        assert np.allclose(der, expect_d, rtol=1e-13, atol=1e-13)

    def test_spline_eval_empty(self, backend):
        coeffs = np.zeros((3, 4))
        val, der = backend.spline_eval(
            coeffs, np.array([], dtype=np.int64), np.array([])
        )
        assert len(val) == 0 and len(der) == 0

    def test_accumulate_scalar_is_scatter_add(self, backend):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 10, size=300)
        w = rng.normal(size=300)
        out = backend.accumulate_scalar(idx, w, 10)
        expect = np.zeros(10)
        np.add.at(expect, idx, w)
        assert out.shape == (10,)
        assert np.allclose(out, expect, atol=1e-12)

    def test_accumulate_scalar_handles_untouched_bins(self, backend):
        out = backend.accumulate_scalar(np.array([2]), np.array([1.5]), 5)
        assert out.tolist() == [0.0, 0.0, 1.5, 0.0, 0.0]

    def test_accumulate_vec3_is_scatter_add(self, backend):
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 7, size=120)
        vec = rng.normal(size=(120, 3))
        out = backend.accumulate_vec3(idx, vec, 7)
        expect = np.zeros((7, 3))
        np.add.at(expect, idx, vec)
        assert out.shape == (7, 3)
        assert np.allclose(out, expect, atol=1e-12)

    def test_accumulate_empty(self, backend):
        empty_i = np.array([], dtype=np.int64)
        assert backend.accumulate_scalar(empty_i, np.array([]), 4).shape == (4,)
        out = backend.accumulate_vec3(empty_i, np.zeros((0, 3)), 4)
        assert out.shape == (4, 3)
        assert np.all(out == 0.0)

    def _prefilter_inputs(self, seed=5):
        rng = np.random.default_rng(seed)
        n = 40
        positions = rng.uniform(0.0, 6.0, size=(n, 3))
        i, j = np.triu_indices(n, k=1)
        sel = rng.random(len(i)) < 0.5
        lengths = np.ones(3)
        periodic = np.zeros(3, dtype=bool)
        return positions, i[sel], j[sel], lengths, periodic

    def test_neighbor_prefilter_assume_inside_is_bitwise(self, backend):
        """When the caller's all-inside proof holds, the fast path is
        a pure work cut: identical indices, geometry and distances,
        bit for bit, under both compute_r arms."""
        positions, i, j, lengths, periodic = self._prefilter_inputs()
        d = positions[j] - positions[i]
        rmax = float(np.sqrt((d * d).sum(axis=1)).max()) * 1.001
        for compute_r in (True, False):
            plain = backend.neighbor_prefilter(
                positions, i, j, lengths, periodic, rmax,
                inclusive=False, compute_r=compute_r,
            )
            fast = backend.neighbor_prefilter(
                positions, i, j, lengths, periodic, rmax,
                inclusive=False, compute_r=compute_r, assume_inside=True,
            )
            for a, b in zip(plain, fast):
                assert np.array_equal(a, b)

    def test_neighbor_prefilter_assume_inside_trusts_the_caller(
        self, backend
    ):
        """The proof is load-bearing: with the flag set the predicate
        is never evaluated, so a candidate beyond rmax is emitted
        anyway.  Pins the contract so no backend quietly re-filters."""
        positions, i, j, lengths, periodic = self._prefilter_inputs()
        d = positions[j] - positions[i]
        r = np.sqrt((d * d).sum(axis=1))
        rmax = float(np.median(r))  # half the candidates are outside
        out = backend.neighbor_prefilter(
            positions, i, j, lengths, periodic, rmax,
            inclusive=False, compute_r=True, assume_inside=True,
        )
        assert len(out[0]) == len(i)
        assert np.any(out[3] >= rmax)
