"""Analysis utilities: displacement tracking, RDF, MSD."""

import numpy as np
import pytest

from repro.analysis.displacement import DisplacementTracker
from repro.analysis.msd import MsdTracker
from repro.analysis.rdf import radial_distribution
from repro.lattice.cells import FCC
from repro.lattice.crystals import replicate
from repro.md.boundary import Box


class TestDisplacementTracker:
    def test_max_xy_ignores_z(self):
        ref = np.zeros((3, 3))
        t = DisplacementTracker(ref)
        moved = ref.copy()
        moved[1] = [0.5, -2.0, 100.0]
        assert t.max_xy_norm(moved) == pytest.approx(2.0)

    def test_series_accumulates(self):
        ref = np.zeros((2, 3))
        t = DisplacementTracker(ref)
        t.record(0.0, ref)
        t.record(1.0, ref + [1.0, 0, 0])
        times, vals = t.series()
        assert times.tolist() == [0.0, 1.0]
        assert vals.tolist() == [0.0, 1.0]

    def test_shape_mismatch_rejected(self):
        t = DisplacementTracker(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            t.max_xy_norm(np.zeros((4, 3)))

    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            DisplacementTracker(np.zeros((3, 2)))


class TestRdf:
    def test_fcc_peak_at_nn_distance(self):
        a = 3.615
        crystal = replicate(FCC, a, (5, 5, 5))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        r, g = radial_distribution(crystal.positions, box, r_max=5.0,
                                   n_bins=100)
        nn = a / np.sqrt(2)
        peak_r = r[np.argmax(g)]
        assert peak_r == pytest.approx(nn, abs=0.1)

    def test_no_pairs_below_nn(self):
        a = 3.615
        crystal = replicate(FCC, a, (4, 4, 4))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        r, g = radial_distribution(crystal.positions, box, r_max=5.0)
        nn = a / np.sqrt(2)
        assert np.all(g[r < nn * 0.9] == 0)

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((1, 3)), Box.open([5, 5, 5]), 2.0)


class TestMsd:
    def test_linear_growth_gives_diffusion_coefficient(self):
        rng = np.random.default_rng(0)
        n = 200
        ref = np.zeros((n, 3))
        t = MsdTracker(ref)
        # synthetic Brownian motion: MSD = 6 D t with D = 0.5
        d_true = 0.5
        pos = ref.copy()
        for step in range(1, 50):
            pos = pos + rng.normal(scale=np.sqrt(2 * d_true * 0.1), size=(n, 3))
            t.record(step * 0.1, pos)
        d_est = t.diffusion_coefficient()
        assert d_est == pytest.approx(d_true, rel=0.25)

    def test_static_system_zero_msd(self):
        ref = np.random.default_rng(1).normal(size=(10, 3))
        t = MsdTracker(ref)
        assert t.record(1.0, ref) == 0.0

    def test_needs_two_samples(self):
        t = MsdTracker(np.zeros((5, 3)))
        t.record(0.0, np.zeros((5, 3)))
        with pytest.raises(RuntimeError):
            t.diffusion_coefficient()

    def test_distinct_times_required(self):
        t = MsdTracker(np.zeros((5, 3)))
        t.record(1.0, np.zeros((5, 3)))
        t.record(1.0, np.ones((5, 3)))
        with pytest.raises(RuntimeError):
            t.diffusion_coefficient()
