"""Common Neighbor Analysis tests."""

import numpy as np
import pytest

from repro.analysis.cna import (
    StructureType,
    cna_signatures,
    common_neighbor_analysis,
)
from repro.lattice.cells import BCC, FCC
from repro.lattice.crystals import replicate
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.md.boundary import Box


def bulk(cell, a, reps=(4, 4, 4)):
    c = replicate(cell, a, reps)
    box = Box(c.box, periodic=[True] * 3, origin=np.zeros(3))
    return c.positions, box


class TestPerfectCrystals:
    def test_fcc_classified(self):
        a = 3.615
        pos, box = bulk(FCC, a)
        kinds = common_neighbor_analysis(pos, box, cutoff=a / np.sqrt(2) * 1.2)
        assert np.all(kinds == StructureType.FCC)

    def test_bcc_classified(self):
        a = 3.304
        pos, box = bulk(BCC, a)
        # include the 2nd shell: cutoff between a and a*sqrt(2)
        kinds = common_neighbor_analysis(pos, box, cutoff=a * 1.2)
        assert np.all(kinds == StructureType.BCC)

    def test_fcc_signatures_are_421(self):
        a = 3.615
        pos, box = bulk(FCC, a, (3, 3, 3))
        sigs = cna_signatures(pos, box, cutoff=a / np.sqrt(2) * 1.2)
        assert sigs[0] == [(4, 2, 1)] * 12

    def test_bcc_signatures_mix_444_and_666(self):
        a = 3.0
        pos, box = bulk(BCC, a, (5, 5, 5))
        sigs = cna_signatures(pos, box, cutoff=a * 1.2)
        counts = {}
        for s in sigs[0]:
            counts[s] = counts.get(s, 0) + 1
        assert counts == {(4, 4, 4): 6, (6, 6, 6): 8}

    def test_thermal_noise_tolerated(self):
        a = 3.304
        pos, box = bulk(BCC, a, (4, 4, 4))
        rng = np.random.default_rng(0)
        noisy = pos + rng.normal(scale=0.06, size=pos.shape)
        kinds = common_neighbor_analysis(noisy, box, cutoff=a * 1.2)
        assert (kinds == StructureType.BCC).mean() > 0.9


class TestDefective:
    def test_random_gas_is_other(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 12, (60, 3))
        box = Box.open([30, 30, 30])
        kinds = common_neighbor_analysis(pos, box, cutoff=3.5)
        assert np.all(kinds == StructureType.OTHER)

    def test_grain_boundary_atoms_are_other(self):
        """Fig. 2: boundary atoms (white) against bulk grains."""
        a = 3.304
        gb = make_grain_boundary_slab(
            BCC, a, extent_xy=(36.0, 36.0), thickness_z=4 * a,
            misorientation_deg=22.6,
        )
        box = Box.open(gb.box + 20.0)
        kinds = common_neighbor_analysis(gb.positions, box, cutoff=a * 1.2)
        y = gb.positions[:, 1]
        z = np.abs(gb.positions[:, 2])
        x = np.abs(gb.positions[:, 0])
        interior = (z < a) & (x < 12.0)  # away from free surfaces
        near = interior & (np.abs(y) < 2.5)
        far = interior & (np.abs(y) > 8.0) & (np.abs(y) < 14.0)
        frac_bcc_far = (kinds[far] == StructureType.BCC).mean()
        frac_bcc_near = (kinds[near] == StructureType.BCC).mean()
        # grain interiors mostly crystalline (z-surface proximity costs
        # some); the boundary band is overwhelmingly OTHER
        assert frac_bcc_far > 0.6
        assert frac_bcc_near < frac_bcc_far - 0.3
