"""Centro-symmetry classification (Fig. 2's grain-boundary coloring)."""

import numpy as np
import pytest

from repro.analysis.centrosymmetry import (
    centrosymmetry,
    classify_boundary_atoms,
)
from repro.lattice.cells import BCC, FCC
from repro.lattice.crystals import replicate
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.md.boundary import Box


class TestBulkCrystals:
    def test_perfect_bcc_is_centrosymmetric(self):
        crystal = replicate(BCC, 3.3, (4, 4, 4))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        csp = centrosymmetry(crystal.positions, box, n_neighbors=8,
                             cutoff=3.2)
        assert np.max(csp) < 1e-9

    def test_perfect_fcc_is_centrosymmetric(self):
        crystal = replicate(FCC, 3.615, (4, 4, 4))
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        csp = centrosymmetry(crystal.positions, box, n_neighbors=12,
                             cutoff=3.0)
        assert np.max(csp) < 1e-9

    def test_thermal_noise_stays_below_threshold(self):
        rng = np.random.default_rng(0)
        crystal = replicate(BCC, 3.3, (4, 4, 4))
        pos = crystal.positions + rng.normal(scale=0.05, size=crystal.positions.shape)
        box = Box(crystal.box, periodic=[True] * 3, origin=np.zeros(3))
        csp = centrosymmetry(pos, box, n_neighbors=8, cutoff=3.2)
        assert np.median(csp) < 1.0

    def test_surface_atoms_flagged(self):
        crystal = replicate(BCC, 3.3, (4, 4, 2))
        box = Box.open(crystal.box + 20.0)
        pos = crystal.positions - crystal.box / 2
        flags = classify_boundary_atoms(pos, box, n_neighbors=8, cutoff=3.2)
        # top/bottom layers are surfaces: many flagged atoms
        assert flags.mean() > 0.3

    def test_odd_neighbor_count_rejected(self):
        with pytest.raises(ValueError):
            centrosymmetry(np.zeros((4, 3)), Box.open([5, 5, 5]),
                           n_neighbors=7)


class TestGrainBoundary:
    def test_boundary_atoms_identified(self):
        gb = make_grain_boundary_slab(
            BCC, 3.3, extent_xy=(40.0, 40.0), thickness_z=10.0,
            misorientation_deg=22.6,
        )
        box = Box.open(gb.box + 20.0)
        flags = classify_boundary_atoms(gb.positions, box, n_neighbors=8,
                                        threshold=1.0, cutoff=3.2)
        y = gb.positions[:, 1]
        z = gb.positions[:, 2]
        mid_plane = np.abs(z) < 2.0  # avoid the slab's free z surfaces
        near = mid_plane & (np.abs(y) < 3.0)
        far = mid_plane & (np.abs(y) > 12.0)
        # the boundary band is far richer in defective atoms than the
        # grain interiors (Fig. 2's white coloring)
        assert flags[near].mean() > flags[far].mean() + 0.3
