"""Benchmark harness unit + smoke tests (``repro.bench`` / CLI)."""

import json

import pytest

from repro.bench import (
    CASES,
    QUICK_REPS,
    SEED_BASELINE,
    BenchResult,
    attach_multiwafer,
    baseline_for_case,
    compare_to_baseline,
    cross_backend_notes,
    latest_results,
    multiwafer_comparison,
    run_bench,
    run_case,
    write_report,
)
from repro.cli import main


def fake_result(name="ref-Ta", steps_per_s=10.0):
    return BenchResult(
        name=name, engine="reference", element="Ta", n_atoms=100,
        steps=5, wall_s=5 / steps_per_s, steps_per_s=steps_per_s,
    )


#: Cases that postdate the seed tree: backend-pinned sweeps and the
#: lockstep scaling cases (the record-based seed engine could not run
#: them at all) — there is no pre-kernel-layer number to compare against.
POST_SEED_CASES = {"wse-Ta-100k", "wse-Ta-800k"}


class TestCaseTable:
    def test_every_case_has_quick_reps_and_seed_numbers(self):
        for case in CASES:
            if case.backend is not None or case.name in POST_SEED_CASES:
                assert case.name not in SEED_BASELINE
            else:
                assert set(SEED_BASELINE[case.name]) == {"full", "quick"}
            # a case absent from QUICK_REPS is full-mode only; today
            # that is exactly the paper-scale slab
            if case.name not in QUICK_REPS:
                assert case.name == "wse-Ta-800k"

    def test_paper_scale_case_geometry(self):
        # the headline workload: 801,792 Ta atoms (256 x 261 x 6 BCC)
        big = next(c for c in CASES if c.name == "wse-Ta-800k")
        assert big.engine == "wse"
        nx, ny, nz = big.reps
        assert 2 * nx * ny * nz == 801_792
        assert big.steps[0] >= 3
        scale = next(c for c in CASES if c.name == "wse-Ta-100k")
        assert 2 * scale.reps[0] * scale.reps[1] * scale.reps[2] >= 100_000
        qx, qy, qz = QUICK_REPS["wse-Ta-100k"]
        assert 2 * qx * qy * qz >= 10_000  # the >=10k-atom CI regime

    def test_parallel_worker_sweep_present(self):
        sweep = {c.name: c for c in CASES if c.backend == "parallel"}
        assert set(sweep) == {"par-Ta-w1", "par-Ta-w2", "par-Ta-w4",
                              "par-Ta-4x1"}
        assert [sweep[f"par-Ta-w{w}"].workers for w in (1, 2, 4)] == [1, 2, 4]
        # the acceptance workload: same slab as ref-Ta
        assert all(c.reps == (20, 20, 20) for c in sweep.values())

    def test_1d_column_sibling_case_present(self):
        # the Table VI hook: par-Ta-w4 defaults to the near-square 2x2
        # grid, and this explicit 4x1 column case is the same-worker-
        # count 1D sibling used as the measured single-wafer stand-in
        case = next(c for c in CASES if c.name == "par-Ta-4x1")
        assert case.topology == (4, 1)
        assert not case.workers  # sized by the topology, not a pool count
        assert case.seed_key == "ref-Ta"
        w4 = next(c for c in CASES if c.name == "par-Ta-w4")
        assert w4.workers == 4 and w4.topology is None

    def test_acceptance_workload_present(self):
        # the 2x-vs-seed criterion is defined on the full Ta slab
        ta = next(c for c in CASES if c.name == "ref-Ta")
        assert ta.reps == (20, 20, 20)
        assert SEED_BASELINE["ref-Ta"]["full"] == pytest.approx(4.875)

    def test_numba_case_mirrors_acceptance_workload(self):
        # the JIT tier is timed on the very same slab the 2x criterion
        # names, gating against ref-Ta's seed rate via seed_key
        nb = next(c for c in CASES if c.name == "numba-Ta")
        ta = next(c for c in CASES if c.name == "ref-Ta")
        assert nb.backend == "numba"
        assert nb.reps == ta.reps and nb.steps == ta.steps
        assert nb.seed_key == "ref-Ta"
        assert QUICK_REPS["numba-Ta"] == QUICK_REPS["ref-Ta"]

    def test_backend_variants_share_serial_seed_key(self):
        for case in CASES:
            if case.backend is not None and case.engine == "reference":
                assert case.seed_key == "ref-Ta", case.name
            else:
                assert case.seed_key is None, case.name


class TestCompare:
    def test_within_allowance_passes(self):
        baseline = {"results": [fake_result(steps_per_s=10.0).to_json()]}
        assert compare_to_baseline(
            [fake_result(steps_per_s=8.0)], baseline, max_drop=0.30
        ) == ([], [])

    def test_regression_reported(self):
        baseline = {"results": [fake_result(steps_per_s=10.0).to_json()]}
        failures, notes = compare_to_baseline(
            [fake_result(steps_per_s=5.0)], baseline, max_drop=0.30
        )
        assert len(failures) == 1
        assert "ref-Ta" in failures[0]
        assert notes == []

    def test_unknown_cases_noted_not_failed(self):
        # a case with no baseline anywhere must be surfaced distinctly
        # (a note), never silently skipped and never a failure
        baseline = {"results": [fake_result(name="other").to_json()]}
        failures, notes = compare_to_baseline(
            [fake_result(steps_per_s=0.001)], baseline, max_drop=0.30
        )
        assert failures == []
        assert len(notes) == 1
        assert "ref-Ta" in notes[0] and "no baseline" in notes[0]

    def test_gate_reads_latest_history_entry(self):
        # v2 baseline: the gate must compare against the newest run
        # that timed the case
        baseline = {
            "schema": "repro-bench/2",
            "history": [
                {"results": [fake_result(steps_per_s=1000.0).to_json()]},
                {"results": [fake_result(steps_per_s=10.0).to_json()]},
            ],
        }
        assert compare_to_baseline(
            [fake_result(steps_per_s=9.0)], baseline, max_drop=0.30
        ) == ([], [])
        failures, _ = compare_to_baseline(
            [fake_result(steps_per_s=5.0)], baseline, max_drop=0.30
        )
        assert len(failures) == 1

    def test_gate_walks_history_for_missing_case(self):
        # the newest entry lacks the case (selective run): the gate
        # must fall back to the case's own latest prior number
        baseline = {
            "schema": "repro-bench/2",
            "history": [
                {"results": [fake_result(steps_per_s=10.0).to_json()]},
                {"results": [fake_result(name="other").to_json()]},
            ],
        }
        failures, notes = compare_to_baseline(
            [fake_result(steps_per_s=5.0)], baseline, max_drop=0.30
        )
        assert len(failures) == 1 and notes == []
        assert compare_to_baseline(
            [fake_result(steps_per_s=9.0)], baseline, max_drop=0.30
        ) == ([], [])

    def test_gate_respects_mode(self):
        # quick runs never gate against full-mode history entries
        baseline = {
            "schema": "repro-bench/2",
            "history": [
                {"mode": "full",
                 "results": [fake_result(steps_per_s=1000.0).to_json()]},
            ],
        }
        failures, notes = compare_to_baseline(
            [fake_result(steps_per_s=5.0)], baseline,
            max_drop=0.30, mode="quick",
        )
        assert failures == []
        assert len(notes) == 1

    def test_null_seed_entries_still_gate(self):
        # par-*/wse-* cases carry seed_steps_per_s: null — the gate
        # must still compare their measured steps/s history
        result = fake_result(name="par-Ta-w2", steps_per_s=10.0)
        assert result.seed_steps_per_s is None
        baseline = {"results": [result.to_json()]}
        failures, notes = compare_to_baseline(
            [fake_result(name="par-Ta-w2", steps_per_s=5.0)],
            baseline, max_drop=0.30,
        )
        assert len(failures) == 1 and notes == []

    def test_speedup_vs_seed(self):
        r = fake_result(steps_per_s=10.0)
        assert r.speedup_vs_seed is None
        r.seed_steps_per_s = 4.0
        assert r.speedup_vs_seed == pytest.approx(2.5)


#: One result row in the exact shape the pre-backend-pinning harness
#: wrote (BENCH_kernels.json history[0], verbatim keys): no
#: ``kernel_backend``, no ``workers``, no layout fields.
LEGACY_ROW = {
    "name": "ref-Ta",
    "engine": "reference",
    "element": "Ta",
    "n_atoms": 16000,
    "steps": 10,
    "wall_s": 0.834,
    "steps_per_s": 11.991,
    "seed_steps_per_s": 4.875,
    "speedup_vs_seed": 2.46,
    "pairs_per_step": 104919.0,
    "neighbor_rebuilds": 0,
    "time_neighbor_s": 0.6476,
    "time_force_s": 0.1734,
    "time_integrate_s": 0.0041,
}


class TestLegacySchemaNormalization:
    """Pre-backend-pinning history rows normalize on read.

    Entries written before the kernel layer existed carry neither
    ``kernel_backend`` nor ``workers``; every read path must fill the
    defaults (``numpy``/``None`` — what those runs actually were) so
    baseline walks and trajectory tooling can key on the fields
    without per-row guards.
    """

    def _legacy_report(self):
        return {
            "schema": "repro-bench/2",
            "history": [
                {
                    "created_unix": 1785967198.6,
                    "mode": "full",
                    "backend": "numpy",
                    "numpy_version": "2.4.6",
                    "results": [dict(LEGACY_ROW)],
                }
            ],
        }

    def test_baseline_walk_fills_defaults(self):
        row = baseline_for_case(self._legacy_report(), "ref-Ta")
        assert row is not None
        assert row["kernel_backend"] == "numpy"
        assert row["workers"] is None
        assert row["steps_per_s"] == 11.991

    def test_latest_results_fills_defaults(self):
        for row in latest_results(self._legacy_report()):
            assert row["kernel_backend"] == "numpy"
            assert row["workers"] is None

    def test_v1_single_run_report_also_normalizes(self):
        v1 = {"results": [dict(LEGACY_ROW)]}
        assert baseline_for_case(v1, "ref-Ta")["kernel_backend"] == "numpy"
        assert latest_results(v1)[0]["workers"] is None

    def test_modern_rows_pass_through_untouched(self):
        modern = dict(LEGACY_ROW, kernel_backend="parallel", workers=4)
        report = {"results": [modern]}
        row = baseline_for_case(report, "ref-Ta")
        assert row["kernel_backend"] == "parallel"
        assert row["workers"] == 4

    def test_normalization_never_mutates_the_report(self):
        report = self._legacy_report()
        baseline_for_case(report, "ref-Ta")
        latest_results(report)
        assert "kernel_backend" not in report["history"][0]["results"][0]

    def test_real_on_disk_history_walks_clean(self):
        # the actual shipped BENCH_kernels.json: every row reachable by
        # a baseline walk must come back schema-complete
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
        report = json.loads(path.read_text())
        for entry in report["history"]:
            for r in entry.get("results", []):
                hit = baseline_for_case(report, r["name"])
                if hit is not None:
                    assert "kernel_backend" in hit
                    assert "workers" in hit


class TestCrossBackendNotes:
    def test_sibling_from_same_run(self):
        results = [
            fake_result(name="ref-Ta", steps_per_s=10.0),
            fake_result(name="par-Ta-w2", steps_per_s=25.0),
        ]
        notes = cross_backend_notes(results)
        assert len(notes) == 1
        assert "par-Ta-w2" in notes[0] and "2.50x" in notes[0]
        assert "this run" in notes[0]

    def test_sibling_from_baseline_history(self):
        baseline = {
            "schema": "repro-bench/2",
            "history": [
                {"mode": "quick",
                 "results": [fake_result(steps_per_s=5.0).to_json()]},
            ],
        }
        notes = cross_backend_notes(
            [fake_result(name="numba-Ta", steps_per_s=20.0)],
            baseline, mode="quick",
        )
        assert len(notes) == 1
        assert "numba-Ta" in notes[0] and "4.00x" in notes[0]
        assert "baseline history" in notes[0]

    def test_missing_sibling_is_noted_not_silent(self):
        notes = cross_backend_notes(
            [fake_result(name="numba-Ta", steps_per_s=20.0)]
        )
        assert len(notes) == 1
        assert "no ref-Ta timing" in notes[0]

    def test_serial_cases_yield_no_notes(self):
        assert cross_backend_notes([fake_result(name="ref-Ta")]) == []


def fake_2d_result(steps_per_s=20.0):
    return BenchResult(
        name="par-Ta-w4", engine="reference", element="Ta",
        n_atoms=512, steps=10, wall_s=10 / steps_per_s,
        steps_per_s=steps_per_s,
        extra={"topology": [2, 2], "transport": "shared",
               "reps": [8, 8, 4]},
    )


class TestMultiwafer:
    def test_comparison_shape(self):
        comp = multiwafer_comparison(fake_2d_result(), 22.0, "par-Ta-4x1")
        assert comp["model"]["k_steps"] >= 1
        assert comp["model"]["n_ghost"] > 0
        assert 0 < comp["model"]["fraction_of_single_wafer"] <= 1.0
        measured = comp["measured"]
        assert measured["single_wafer_case"] == "par-Ta-4x1"
        assert measured["fraction_of_single_wafer"] == pytest.approx(
            20.0 / 22.0, rel=1e-3
        )

    def test_attach_uses_sibling_from_same_run(self):
        r2d = fake_2d_result()
        sibling = fake_result(name="par-Ta-4x1", steps_per_s=25.0)
        notes = attach_multiwafer([sibling, r2d])
        assert len(notes) == 1
        assert "par-Ta-w4" in notes[0] and "Table-VI" in notes[0]
        assert "multiwafer" in r2d.extra
        assert "multiwafer" not in sibling.extra

    def test_attach_falls_back_to_baseline_history(self):
        r2d = fake_2d_result()
        baseline = {
            "schema": "repro-bench/2",
            "history": [
                {"mode": "quick", "results": [
                    fake_result(name="par-Ta-4x1", steps_per_s=40.0)
                    .to_json()
                ]},
            ],
        }
        notes = attach_multiwafer([r2d], baseline, mode="quick")
        assert len(notes) == 1
        assert r2d.extra["multiwafer"]["measured"][
            "single_wafer_steps_per_s"] == 40.0

    def test_missing_sibling_is_noted_not_silent(self):
        r2d = fake_2d_result()
        notes = attach_multiwafer([r2d])
        assert len(notes) == 1
        assert "skipped" in notes[0]
        assert "multiwafer" not in r2d.extra

    def test_1d_results_left_alone(self):
        assert attach_multiwafer(
            [fake_result(name="par-Ta-w2", steps_per_s=10.0)]
        ) == []

    def test_layout_lands_in_history_entry(self, tmp_path):
        # satellite acceptance: every history entry records the layout
        path = tmp_path / "bench.json"
        write_report(str(path), [fake_2d_result()], quick=True,
                     backend="parallel")
        entry = json.loads(path.read_text())["history"][-1]["results"][0]
        assert entry["topology"] == [2, 2]
        assert entry["transport"] == "shared"


class TestExecution:
    def test_run_case_quick_wse(self):
        case = next(c for c in CASES if c.name == "wse-Ta")
        result = run_case(case, quick=True, steps=2)
        assert result.steps == 2
        assert result.steps_per_s > 0
        assert result.n_atoms == 100  # (5, 5, 2) BCC thin slab
        assert result.seed_steps_per_s == SEED_BASELINE["wse-Ta"]["quick"]

    def test_run_case_quick_reference_collects_stats(self):
        case = next(c for c in CASES if c.name == "ref-Ta")
        result = run_case(case, quick=True, steps=2)
        assert result.extra["pairs_per_step"] > 0
        # stats are reset after warmup: rebuilds may be 0 in steady state
        assert result.extra["neighbor_rebuilds"] >= 0
        assert result.extra["time_force_s"] > 0

    def test_run_case_records_backend_and_warmup(self):
        case = next(c for c in CASES if c.name == "ref-Ta")
        result = run_case(case, quick=True, steps=2)
        entry = result.to_json()
        assert entry["kernel_backend"] == "numpy"
        assert entry["jit_warmup_s"] == 0.0  # numpy has no JIT to warm

    def test_run_bench_skips_unavailable_pinned_backend(self, monkeypatch):
        import repro.kernels as kernels

        monkeypatch.setattr(kernels, "available_backends", lambda: ["numpy"])
        lines = []
        results = run_bench(
            quick=True, steps=2, elements=["Cu"],
            engines=["reference"], progress=lines.append,
        )
        assert [r.name for r in results] == ["ref-Cu"]
        skip = [ln for ln in lines if "unavailable" in ln]
        # Ta-only here, so the Cu selection exercises no pinned case;
        # re-run with Ta to see the skips
        assert skip == []
        lines.clear()
        results = run_bench(
            quick=True, steps=2, elements=["Ta"],
            engines=["reference"], progress=lines.append,
        )
        assert [r.name for r in results] == ["ref-Ta"]
        skipped = {ln.split(":")[0].strip() for ln in lines
                   if "unavailable" in ln}
        assert skipped == {"par-Ta-w1", "par-Ta-w2", "par-Ta-w4",
                           "par-Ta-4x1", "numba-Ta"}

    def test_write_report_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        report = write_report(
            str(path), [fake_result()], quick=True, backend="numpy"
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == report
        assert on_disk["schema"] == "repro-bench/2"
        entry = on_disk["history"][-1]
        assert entry["mode"] == "quick"
        assert entry["results"][0]["name"] == "ref-Ta"
        assert latest_results(on_disk)[0]["name"] == "ref-Ta"

    def test_write_report_appends_history(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(str(path), [fake_result(steps_per_s=10.0)],
                     quick=True, backend="numpy")
        report = write_report(str(path), [fake_result(steps_per_s=20.0)],
                              quick=True, backend="numpy")
        assert len(report["history"]) == 2
        assert latest_results(report)[0]["steps_per_s"] == 20.0

    def test_write_report_wraps_v1_file(self, tmp_path):
        path = tmp_path / "bench.json"
        v1 = {
            "schema": "repro-bench/1",
            "created_unix": 1.0,
            "mode": "full",
            "backend": "numpy",
            "numpy_version": "0",
            "results": [fake_result(steps_per_s=3.0).to_json()],
        }
        path.write_text(json.dumps(v1))
        report = write_report(str(path), [fake_result(steps_per_s=4.0)],
                              quick=True, backend="numpy")
        assert len(report["history"]) == 2
        assert report["history"][0]["results"][0]["steps_per_s"] == 3.0
        assert latest_results(report)[0]["steps_per_s"] == 4.0

    def test_write_report_survives_corrupt_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        report = write_report(str(path), [fake_result()],
                              quick=True, backend="numpy")
        assert len(report["history"]) == 1


class TestCli:
    def test_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernels.json"
        rc = main(["bench", "--quick", "--steps", "2",
                   "--engines", "wse", "--out", str(out)])
        assert rc == 0
        assert "steps/s" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-bench/2"
        assert report["history"][-1]["mode"] == "quick"
        assert [r["name"] for r in latest_results(report)] == [
            "wse-Ta", "wse-Ta-100k",  # wse-Ta-800k is full-mode only
        ]

    def test_bench_gates_against_baseline(self, tmp_path, capsys):
        out = tmp_path / "a.json"
        assert main(["bench", "--quick", "--steps", "2", "--engines", "wse",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        # inflate the baseline so the rerun must trip the gate
        report = json.loads(out.read_text())
        for r in latest_results(report):
            r["steps_per_s"] *= 100
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(report))
        rc = main(["bench", "--quick", "--steps", "2", "--engines", "wse",
                   "--out", str(tmp_path / "b.json"),
                   "--baseline", str(inflated)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_empty_selection_errors(self, tmp_path, capsys):
        rc = main(["bench", "--quick", "--elements", "Cu",
                   "--engines", "wse",
                   "--out", str(tmp_path / "x.json")])
        assert rc == 2

    def test_bench_pinned_unavailable_backend_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        # a pinned backend that cannot import must refuse to bench the
        # numpy fallback: exit 2 with a one-line diagnostic, so a CI
        # backend leg can never silently time the wrong kernels
        import repro.kernels as kernels

        monkeypatch.setattr(
            kernels, "available_backends", lambda: ["numpy", "parallel"]
        )
        monkeypatch.setattr(
            kernels, "backend_status",
            lambda: {"numba": "No module named 'numba'"},
        )
        out = tmp_path / "x.json"
        rc = main(["bench", "--quick", "--backend", "numba",
                   "--out", str(out)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "numba" in err and "unavailable" in err
        assert not out.exists()  # nothing was benched, nothing written

    def test_bench_available_pinned_backend_proceeds(
        self, tmp_path, capsys
    ):
        # the pre-check must not reject a backend that imports fine
        out = tmp_path / "x.json"
        rc = main(["bench", "--quick", "--steps", "2", "--engines", "wse",
                   "--backend", "numpy", "--out", str(out)])
        assert rc == 0

    def test_run_reference_prints_loop_stats(self, capsys):
        rc = main(["run", "--engine", "reference", "--reps", "4", "4", "2",
                   "--steps", "5", "--backend", "numpy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loop stats" in out
        assert "pairs/step" in out
        assert "numpy kernels" in out
