"""End-to-end integration tests: the paper's headline facts.

These tie the whole stack together — lattice generation, mapping, the
lockstep machine, cycle model and baselines — and assert the numbers the
paper leads with.
"""

import numpy as np
import pytest

import repro
from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
from repro.core import CycleCostModel
from repro.perfmodel.linear import PAPER_TABLE2, fit_linear_model
from repro.potentials.elements import ELEMENTS


class TestHeadlineNumbers:
    def test_179x_speedup_over_frontier(self):
        """Abstract: 179-fold improvement vs the GPU exascale platform."""
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        wse = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        gpu, _ = FRONTIER_MODELS["Ta"].best_rate(801_792)
        assert wse / gpu == pytest.approx(179, rel=0.05)

    def test_55x_speedup_over_quartz(self):
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        wse = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        cpu, _ = QUARTZ_MODELS["Ta"].best_rate(801_792)
        assert wse / cpu == pytest.approx(55, rel=0.07)

    def test_rate_exceeds_270k_for_800k_atoms(self):
        """Abstract: over 270,000 timesteps/s for problems up to 800k atoms."""
        model = CycleCostModel()
        el = ELEMENTS["Ta"]
        assert model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        ) > 270_000

    @pytest.mark.parametrize(
        "symbol,gpu_x,cpu_x", [("Cu", 109, 34), ("W", 96, 26)]
    )
    def test_other_elements_speedups(self, symbol, gpu_x, cpu_x):
        model = CycleCostModel()
        el = ELEMENTS[symbol]
        wse = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        gpu, _ = FRONTIER_MODELS[symbol].best_rate(801_792)
        cpu, _ = QUARTZ_MODELS[symbol].best_rate(801_792)
        assert wse / gpu == pytest.approx(gpu_x, rel=0.08)
        assert wse / cpu == pytest.approx(cpu_x, rel=0.10)


class TestSimulatedSweepRegression:
    def test_lockstep_sweep_recovers_linear_model(self, ta_potential):
        """E2 in miniature: fit (A, B, C) from lockstep measurements."""
        from repro.core.cycle_model import CycleCostModel
        model = CycleCostModel()
        nc, ni, t_ns = [], [], []
        rng = np.random.default_rng(0)
        for b in (2, 3, 4, 5, 6, 7, 8):
            for frac in (0.1, 0.3, 0.5, 0.8):
                cand = (2 * b + 1) ** 2 - 1
                inter = max(1, int(frac * cand))
                nc.append(cand)
                ni.append(inter)
                t_ns.append(
                    model.step_cycles(cand, inter, b) * model.machine.cycle_ns
                )
        fit = fit_linear_model(np.array(nc), np.array(ni), np.array(t_ns))
        # Table II: A=26.6, B=71.4, C=574, r^2=0.9998
        assert fit.a_candidate == pytest.approx(26.6, rel=0.05)
        assert fit.b_interaction == pytest.approx(71.4, rel=0.03)
        assert fit.c_fixed == pytest.approx(574.0, rel=0.15)
        assert fit.r_squared > 0.999


class TestQuickstartApi:
    def test_wse_quickstart(self):
        sim = repro.quick_wse_simulation("Ta", reps=(5, 5, 2),
                                         temperature=290.0)
        sim.step(5)
        assert sim.measured_rate() > 50_000

    def test_reference_quickstart(self):
        sim = repro.quick_reference_simulation("Ta", reps=(4, 4, 2),
                                               temperature=290.0)
        sim.run(5)
        assert sim.step_count == 5

    def test_both_engines_agree(self):
        wse = repro.quick_wse_simulation("Cu", reps=(4, 4, 2),
                                         temperature=150.0, seed=5)
        ref = repro.quick_reference_simulation("Cu", reps=(4, 4, 2),
                                               temperature=150.0, seed=5)
        wse.step(10)
        ref.run(10)
        out = wse.gather_state()
        assert np.allclose(out.positions, ref.state.positions, atol=1e-10)


class TestWeakScalingInvariant:
    def test_per_tile_cycles_independent_of_system_size(self, ta_potential):
        """Fig. 8's mechanism: tiles do identical work at any scale."""
        rates = []
        for reps in ((4, 4, 2), (8, 8, 2)):
            sim = repro.quick_wse_simulation("Ta", reps=reps, temperature=0.0)
            sim.step(1)
            rates.append(sim.measured_rate())
        # within a few percent despite 4x the atoms (b may differ by edge
        # effects; the paper reports < 1% on uniform workloads)
        assert rates[1] == pytest.approx(rates[0], rel=0.15)
