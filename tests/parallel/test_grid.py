"""2D domain-grid invariants: axis planning, tiling, seam ownership.

Property-based in spirit: the seam suite sweeps random point clouds and
several topologies and asserts the two decomposition theorems the
pipeline's correctness rests on — every undirected candidate pair is
kept by *exactly one* tile, and the union over tiles is the serial
:class:`~repro.md.neighbor_list.NeighborList` candidate set.  All
single-process, like ``test_domains.py``.
"""

import warnings

import numpy as np
import pytest

from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList
from repro.parallel import domains
from repro.parallel.domains import (
    DomainGrid,
    build_shard_pairs,
    build_tile_pairs,
    plan_axis,
    plan_columns,
    plan_grid,
)
from tests.conftest import small_slab_state

TOPOLOGIES = [(1, 1), (2, 1), (1, 3), (2, 2), (3, 2), (4, 4)]


def _pair_set(i, j):
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    return set(zip(lo.tolist(), hi.tolist()))


def _random_cloud(seed, n=300, span=(18.0, 12.0, 6.0)):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 1.0, size=(n, 3)) * np.asarray(span)
    box = Box.open(np.asarray(span) + 10.0)
    return positions, box


def _serial_candidates(positions, box, reach):
    nl = NeighborList(box, reach - 0.5, 0.5)
    nl.rebuild(positions)
    return _pair_set(nl._cand_i, nl._cand_j)


class TestPlanAxisDegenerate:
    """Satellite regression: n_parts > available cell columns."""

    def setup_method(self):
        domains._warned_degenerate.clear()

    def test_caps_and_warns_once(self):
        x = np.full(50, 2.5)  # one cell column, however wide the cells
        with pytest.warns(RuntimeWarning, match="capping"):
            edges = plan_axis(x, 4, cell_width=3.0)
        # warned once per (axis, requested, available) shape
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            edges2 = plan_axis(x, 4, cell_width=3.0)
        np.testing.assert_array_equal(edges, edges2)
        # a different shape warns again
        with pytest.warns(RuntimeWarning):
            plan_axis(x, 5, cell_width=3.0)

    def test_capped_edges_still_partition(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 4.0, size=200)  # ~2 columns at width 2
        with pytest.warns(RuntimeWarning):
            edges = plan_axis(x, 8, cell_width=2.0)
        assert edges.shape == (9,)
        assert np.all(edges[:-1] <= edges[1:])  # inf-safe monotonicity
        owner = np.searchsorted(edges, x, side="right") - 1
        counts = np.bincount(owner, minlength=8)
        assert counts.sum() == len(x)
        # trailing shards beyond the cap are empty, earlier ones are not
        assert counts[0] > 0 and np.all(counts[2:] == 0)

    def test_plan_columns_inherits_the_cap(self):
        with pytest.warns(RuntimeWarning, match="x-axis"):
            plan_columns(np.full(10, 1.0), 3, cell_width=5.0)

    def test_adequate_columns_do_not_warn(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.0, 40.0, size=500)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan_axis(x, 4, cell_width=2.0)


class TestDomainGrid:
    def test_tiles_partition_every_atom(self):
        positions, _ = _random_cloud(5)
        for px, py in TOPOLOGIES:
            grid = plan_grid(positions, px, py, cell_width=3.0)
            owner = grid.owner_of(positions)
            assert owner.min() >= 0 and owner.max() < grid.n_tiles
            # owner_of agrees with the per-tile rectangle masks
            counts = np.bincount(owner, minlength=grid.n_tiles)
            for tile in range(grid.n_tiles):
                xlo, xhi, ylo, yhi = grid.tile_bounds(tile)
                x, y = positions[:, 0], positions[:, 1]
                in_rect = (x >= xlo) & (x < xhi) & (y >= ylo) & (y < yhi)
                assert counts[tile] == int(np.count_nonzero(in_rect))

    def test_tile_coords_round_trip(self):
        positions, _ = _random_cloud(6)
        grid = plan_grid(positions, 3, 2, cell_width=3.0)
        seen = set()
        for tile in range(grid.n_tiles):
            ix, iy = grid.tile_coords(tile)
            assert 0 <= ix < 3 and 0 <= iy < 2
            seen.add((ix, iy))
        assert len(seen) == grid.n_tiles

    def test_balanced_counts_on_uniform_cloud(self):
        positions, _ = _random_cloud(7, n=4000, span=(40.0, 40.0, 4.0))
        grid = plan_grid(positions, 2, 2, cell_width=2.0)
        counts = np.bincount(grid.owner_of(positions), minlength=4)
        assert counts.max() <= 1.5 * len(positions) / 4

    def test_rejects_bad_shapes(self):
        inf = np.array([-np.inf, np.inf])
        with pytest.raises(ValueError, match="1x1"):
            DomainGrid(px=0, py=1, x_edges=inf, y_edges=inf)
        with pytest.raises(ValueError, match="px"):
            DomainGrid(px=2, py=1, x_edges=inf, y_edges=inf)


class TestSeamRule:
    """The decomposition theorems, swept over random configurations."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_each_pair_kept_exactly_once_and_union_is_serial(
        self, seed, topology
    ):
        positions, box = _random_cloud(seed)
        reach = 3.0
        px, py = topology
        grid = plan_grid(positions, px, py, cell_width=reach)
        serial = _serial_candidates(positions, box, reach)
        union: set = set()
        total = 0
        for tile in range(grid.n_tiles):
            sp = build_tile_pairs(
                positions, grid, tile, box=box, reach=reach
            )
            total += sp.n_candidates
            union |= _pair_set(sp.gi, sp.gj)
        assert total == len(union)  # no tile overlap
        assert union == serial

    @pytest.mark.parametrize("topology", [(2, 2), (3, 2)])
    def test_owned_counts_partition_atoms(self, topology):
        positions, box = _random_cloud(9)
        px, py = topology
        grid = plan_grid(positions, px, py, cell_width=3.0)
        owned = [
            build_tile_pairs(
                positions, grid, t, box=box, reach=3.0
            ).n_owned
            for t in range(grid.n_tiles)
        ]
        assert sum(owned) == len(positions)

    def test_physical_slab_2x2_matches_serial(self, ta_potential):
        state = small_slab_state("Ta", (5, 5, 2), temperature=400.0)
        reach = ta_potential.cutoff + 0.5
        grid = plan_grid(state.positions, 2, 2, reach)
        nl = NeighborList(state.box, ta_potential.cutoff, 0.5)
        nl.rebuild(state.positions)
        serial = _pair_set(nl._cand_i, nl._cand_j)
        union: set = set()
        for tile in range(4):
            sp = build_tile_pairs(
                state.positions, grid, tile, box=state.box, reach=reach
            )
            union |= _pair_set(sp.gi, sp.gj)
        assert union == serial

    def test_seam_rule_survives_unbalanced_edges(self):
        # the ownership theorem must not depend on balanced planning:
        # hand the tiles a deliberately lopsided grid
        positions, box = _random_cloud(12)
        grid = DomainGrid(
            px=2, py=2,
            x_edges=np.array([-np.inf, 2.0, np.inf]),
            y_edges=np.array([-np.inf, 9.5, np.inf]),
        )
        serial = _serial_candidates(positions, box, 3.0)
        union: set = set()
        total = 0
        for tile in range(4):
            sp = build_tile_pairs(positions, grid, tile, box=box, reach=3.0)
            total += sp.n_candidates
            union |= _pair_set(sp.gi, sp.gj)
        assert total == len(union)
        assert union == serial


class TestColumnCompatibility:
    def test_build_shard_pairs_is_the_px_by_1_special_case(self):
        positions, box = _random_cloud(20)
        edges = plan_columns(positions[:, 0], 3, 3.0)
        grid = DomainGrid(
            px=3, py=1, x_edges=edges,
            y_edges=np.array([-np.inf, np.inf]),
        )
        for k in range(3):
            a = build_shard_pairs(positions, edges, k, box=box, reach=3.0)
            b = build_tile_pairs(positions, grid, k, box=box, reach=3.0)
            np.testing.assert_array_equal(a.gi, b.gi)
            np.testing.assert_array_equal(a.gj, b.gj)
            assert a.n_owned == b.n_owned
