"""SharedArena: layout, zero-fill, and teardown semantics."""

import numpy as np
import pytest

from repro.parallel.shm import SharedArena


@pytest.fixture()
def arena():
    a = SharedArena(
        {
            "positions": ((7, 3), np.float64),
            "types": ((7,), np.int64),
            "rho": ((2, 7), np.float64),
        }
    )
    yield a
    a.close()


class TestSharedArena:
    def test_shapes_dtypes_and_zero_fill(self, arena):
        assert arena["positions"].shape == (7, 3)
        assert arena["positions"].dtype == np.float64
        assert arena["types"].dtype == np.int64
        for name in ("positions", "types", "rho"):
            assert not arena[name].flags["OWNDATA"]
            assert np.all(arena[name] == 0)

    def test_views_alias_one_segment(self, arena):
        arena["positions"][:] = 1.5
        arena["rho"][1, :] = 2.5
        # distinct arrays never overlap despite sharing the block
        assert np.all(arena["types"] == 0)
        assert np.all(arena["positions"] == 1.5)

    def test_arrays_mapping_is_complete(self, arena):
        assert set(arena.arrays) == {"positions", "types", "rho"}

    def test_close_is_idempotent(self):
        a = SharedArena({"x": ((3,), np.float64)})
        a.close()
        a.close()
