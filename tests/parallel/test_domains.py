"""Decomposition invariants: column planning and shard pair ownership.

All single-process — the worker processes call the exact same array
logic, so pinning it here covers the sharded pipeline's correctness
core without any multiprocessing in the loop.
"""

import numpy as np
import pytest

from repro.md.neighbor_list import NeighborList
from repro.parallel.domains import (
    ShardPairs,
    build_shard_pairs,
    plan_columns,
    split_interior_boundary,
)
from tests.conftest import small_slab_state


def _pair_set(i, j):
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    return set(zip(lo.tolist(), hi.tolist()))


class TestPlanColumns:
    def test_edges_partition_the_line(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-5.0, 20.0, size=400)
        for w in (1, 2, 4, 7):
            edges = plan_columns(x, w, cell_width=2.0)
            assert edges.shape == (w + 1,)
            assert edges[0] == -np.inf and edges[-1] == np.inf
            assert np.all(np.diff(edges) >= 0)
            owner = np.searchsorted(edges, x, side="right") - 1
            assert owner.min() >= 0 and owner.max() <= w - 1

    def test_counts_roughly_balanced_on_uniform_data(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(0.0, 40.0, size=2000)
        edges = plan_columns(x, 4, cell_width=1.0)
        counts = np.histogram(x, bins=edges)[0]
        assert counts.sum() == len(x)
        # column granularity limits balance; uniform data stays close
        assert counts.max() <= 1.5 * len(x) / 4

    def test_single_shard_owns_everything(self):
        edges = plan_columns(np.array([0.0, 1.0, 2.0]), 1, cell_width=1.0)
        assert list(edges) == [-np.inf, np.inf]

    def test_empty_input(self):
        edges = plan_columns(np.empty(0), 3, cell_width=1.0)
        assert edges[0] == -np.inf and np.all(np.isinf(edges[1:]))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            plan_columns(np.array([0.0]), 0, cell_width=1.0)

    def test_crowded_column_duplicates_edge_not_atoms(self):
        # all atoms in one cell column: interior edges collapse, shards
        # beyond the first go empty, nothing is double-owned
        x = np.full(100, 3.14)
        edges = plan_columns(x, 4, cell_width=1.0)
        owner = np.searchsorted(edges, x, side="right") - 1
        assert len(np.unique(owner)) == 1


class TestBuildShardPairs:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_shard_union_is_the_serial_candidate_set(
        self, ta_potential, n_shards
    ):
        state = small_slab_state("Ta", (5, 5, 2), temperature=400.0)
        cutoff, skin = ta_potential.cutoff, 0.5
        nl = NeighborList(state.box, cutoff, skin)
        nl.rebuild(state.positions)
        serial = _pair_set(nl._cand_i, nl._cand_j)

        edges = plan_columns(
            state.positions[:, 0], n_shards, cutoff + skin
        )
        sharded: set = set()
        total = 0
        for k in range(n_shards):
            sp = build_shard_pairs(
                state.positions, edges, k,
                box=state.box, reach=cutoff + skin,
            )
            total += sp.n_candidates
            sharded |= _pair_set(sp.gi, sp.gj)
        # exactly-once: no shard overlap (union size == summed sizes)
        assert total == len(sharded)
        assert sharded == serial

    def test_owned_counts_partition_atoms(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=300.0)
        reach = ta_potential.cutoff + 0.5
        edges = plan_columns(state.positions[:, 0], 3, reach)
        owned = [
            build_shard_pairs(
                state.positions, edges, k, box=state.box, reach=reach
            ).n_owned
            for k in range(3)
        ]
        assert sum(owned) == state.n_atoms

    def test_pairs_filters_to_cutoff(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2), temperature=300.0)
        cutoff = ta_potential.cutoff
        reach = cutoff + 0.5
        edges = plan_columns(state.positions[:, 0], 2, reach)
        for k in range(2):
            sp = build_shard_pairs(
                state.positions, edges, k, box=state.box, reach=reach
            )
            table = sp.pairs(state.positions, cutoff)
            assert table.half
            assert np.all(table.r < cutoff)
            np.testing.assert_allclose(
                table.r,
                np.linalg.norm(
                    state.positions[table.j] - state.positions[table.i],
                    axis=1,
                ),
            )


class TestCrossStepCuts:
    """The displacement-bound filter cuts are invisible in the output.

    ``pairs(positions, cutoff, max_disp)`` may skip the strict mask
    entirely (all-inside) or pre-mask provably out-of-range candidates
    — both must emit the bit-identical PairTable of the plain strict
    filter, for any valid bound.
    """

    def _shard(self, ta_potential, reps=(5, 5, 2)):
        state = small_slab_state("Ta", reps, temperature=400.0)
        reach = ta_potential.cutoff + 0.5
        edges = plan_columns(state.positions[:, 0], 1, reach)
        sp = build_shard_pairs(
            state.positions, edges, 0, box=state.box, reach=reach
        )
        return state, sp

    def _assert_tables_equal(self, a, b):
        assert np.array_equal(a.i, b.i)
        assert np.array_equal(a.j, b.j)
        assert np.array_equal(a.rij, b.rij)
        assert np.array_equal(a.r, b.r)

    def test_all_inside_bound_emits_identical_bits(self, ta_potential):
        state, sp = self._shard(ta_potential)
        cutoff = ta_potential.cutoff
        # a crystalline slab's populated shells all sit inside the
        # cutoff, so a sub-threshold bound proves all-inside
        margin = cutoff - sp.r_build_max()
        assert margin > 0  # the workload the fast path was built for
        bound = 0.49 * margin
        plain = sp.pairs(state.positions, cutoff)
        fast = sp.pairs(state.positions, cutoff, max_disp=bound)
        assert len(fast.i) == sp.n_candidates  # the mask was skipped
        self._assert_tables_equal(plain, fast)

    def test_premask_bound_emits_identical_bits(self, ta_potential):
        state, sp = self._shard(ta_potential)
        # shrink the effective cutoff below the candidate shells so
        # the pre-mask arm (not all-inside) engages and actually cuts
        cutoff = 0.8 * float(np.median(sp.r_build))
        assert sp.premask_can_cut(cutoff)
        plain = sp.pairs(state.positions, cutoff)
        masked = sp.pairs(state.positions, cutoff, max_disp=0.0)
        self._assert_tables_equal(plain, masked)

    def test_bound_none_is_the_plain_filter(self, ta_potential):
        state, sp = self._shard(ta_potential)
        a = sp.pairs(state.positions, ta_potential.cutoff)
        b = sp.pairs(state.positions, ta_potential.cutoff, max_disp=None)
        self._assert_tables_equal(a, b)


class TestInteriorBoundarySplit:
    """The interior/boundary pair partition behind the overlap protocol.

    Interior pairs touch only owned atoms (computable before any halo
    data arrives); boundary pairs touch at least one ghost.  The split
    must be exact and lossless — every candidate lands in exactly one
    class, with its ``r_build`` record riding along — because the
    worker sums the two passes back together and the result must match
    the unsplit pass bit for bit.
    """

    def _shard_with_ghosts(self, ta_potential, reps=(5, 5, 2)):
        state = small_slab_state("Ta", reps, temperature=400.0)
        reach = ta_potential.cutoff + 0.5
        edges = plan_columns(state.positions[:, 0], 2, reach)
        sp = build_shard_pairs(
            state.positions, edges, 0, box=state.box, reach=reach
        )
        owned = np.zeros(state.n_atoms, dtype=bool)
        x = state.positions[:, 0]
        owned[(x >= edges[0]) & (x < edges[1])] = True
        return sp, owned

    def test_split_is_an_exact_partition(self, ta_potential):
        sp, owned = self._shard_with_ghosts(ta_potential)
        inside, seam = split_interior_boundary(sp, owned)
        assert inside.n_candidates + seam.n_candidates == sp.n_candidates
        assert seam.n_candidates > 0  # a 2-column shard has a seam
        assert inside.n_candidates > 0
        split = _pair_set(
            np.concatenate([inside.gi, seam.gi]),
            np.concatenate([inside.gj, seam.gj]),
        )
        assert split == _pair_set(sp.gi, sp.gj)

    def test_classes_honor_the_ownership_rule(self, ta_potential):
        sp, owned = self._shard_with_ghosts(ta_potential)
        inside, seam = split_interior_boundary(sp, owned)
        assert np.all(owned[inside.gi] & owned[inside.gj])
        assert not np.any(owned[seam.gi] & owned[seam.gj])

    def test_r_build_rides_the_split(self, ta_potential):
        sp, owned = self._shard_with_ghosts(ta_potential)
        assert sp.r_build is not None
        inside, seam = split_interior_boundary(sp, owned)
        mask = owned[sp.gi] & owned[sp.gj]
        assert np.array_equal(inside.r_build, sp.r_build[mask])
        assert np.array_equal(seam.r_build, sp.r_build[~mask])

    def test_all_owned_yields_empty_boundary(self, ta_potential):
        sp, owned = self._shard_with_ghosts(ta_potential)
        everything = np.ones_like(owned)
        inside, seam = split_interior_boundary(sp, everything)
        assert inside.n_candidates == sp.n_candidates
        assert seam.n_candidates == 0
        assert np.array_equal(inside.gi, sp.gi)
        assert np.array_equal(inside.gj, sp.gj)

    def test_split_without_r_build(self, ta_potential):
        sp, owned = self._shard_with_ghosts(ta_potential)
        bare = ShardPairs(sp.gi, sp.gj, sp.n_local, sp.n_owned)
        inside, seam = split_interior_boundary(bare, owned)
        assert inside.r_build is None and seam.r_build is None
        assert inside.n_candidates + seam.n_candidates == bare.n_candidates
