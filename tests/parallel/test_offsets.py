"""Offset-dispatch pool tests: reproducibility contract + lifecycle."""

import numpy as np
import pytest

from repro.core.wse_md import WseMd
from repro.parallel.offsets import WseOffsetPool, split_offsets
from repro.parallel.pool import fork_available
from tests.conftest import small_slab_state

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestSplitOffsets:
    def test_order_preserved_and_contiguous(self):
        offsets = [(i, i + 1) for i in range(7)]
        parts = split_offsets(offsets, 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sum(parts, []) == offsets

    def test_single_worker_owns_everything(self):
        offsets = [(0, 1), (1, 0)]
        assert split_offsets(offsets, 1) == [offsets]

    def test_more_workers_than_offsets(self):
        parts = split_offsets([(0, 1)], 3)
        assert parts == [[(0, 1)], [], []]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="worker"):
            split_offsets([(0, 1)], 0)


def _run(ta_potential, workers, *, force_symmetry=False, steps=6):
    sim = WseMd(
        small_slab_state(reps=(4, 4, 2)),
        ta_potential,
        dt_fs=2.0,
        swap_interval=3,
        workers=workers,
        force_symmetry=force_symmetry,
    )
    try:
        energy = sim.compute_energy()
        sim.step(steps)
        return energy, sim.gather_state()
    finally:
        sim.close()


@needs_fork
class TestOffsetPool:
    @pytest.mark.parametrize("force_symmetry", [False, True])
    def test_one_worker_matches_serial_bitwise(
        self, ta_potential, force_symmetry
    ):
        e_ser, s_ser = _run(ta_potential, 0, force_symmetry=force_symmetry)
        e_w1, s_w1 = _run(ta_potential, 1, force_symmetry=force_symmetry)
        assert e_w1 == e_ser
        assert np.array_equal(s_w1.positions, s_ser.positions)
        assert np.array_equal(s_w1.velocities, s_ser.velocities)
        assert np.array_equal(s_w1.ids, s_ser.ids)

    def test_two_workers_reproducible_and_accurate(self, ta_potential):
        e_a, s_a = _run(ta_potential, 2)
        e_b, s_b = _run(ta_potential, 2)
        # bitwise-reproducible per worker count...
        assert e_a == e_b
        assert np.array_equal(s_a.positions, s_b.positions)
        assert np.array_equal(s_a.velocities, s_b.velocities)
        # ...and physically the serial trajectory (reduction order is
        # the only difference, so agreement is to roundoff)
        e_ser, s_ser = _run(ta_potential, 0)
        assert e_a == pytest.approx(e_ser, rel=1e-12)
        np.testing.assert_allclose(
            s_a.positions, s_ser.positions, atol=1e-12
        )

    def test_pool_spawned_lazily_and_closed(self, ta_potential):
        sim = WseMd(
            small_slab_state(reps=(4, 4, 2)), ta_potential, workers=2
        )
        assert sim._pool is None  # nothing forked until the first sweep
        sim.step(1)
        assert sim._pool is not None
        assert sim._pool.n_workers == 2
        sim.close()
        assert sim._pool is None
        sim.close()  # idempotent

    def test_direct_pool_density_matches_serial(self, ta_potential):
        from repro.core.streaming import StreamingSweeps

        sim = WseMd(small_slab_state(reps=(4, 4, 2)), ta_potential)
        offsets = sim._pass_offsets
        kw = dict(
            nx=sim.grid.nx, ny=sim.grid.ny, dtype=sim.dtype,
            lengths=sim.box.lengths, periodic=sim.box.periodic,
            cutoff=sim.potential.cutoff, tables=sim.potential.tables,
            offsets=offsets,
        )
        serial = StreamingSweeps(**kw)
        pool = WseOffsetPool(n_workers=3, **kw)
        try:
            shape = (sim.grid.nx, sim.grid.ny)
            rho_s = np.zeros(shape)
            rho_p = np.zeros(shape)
            cand_s = np.zeros(shape, dtype=np.int64)
            cand_p = np.zeros(shape, dtype=np.int64)
            int_s = np.zeros(shape, dtype=np.int64)
            int_p = np.zeros(shape, dtype=np.int64)
            serial.density(sim.pos, sim.occ, sim.typ, rho_s, cand_s, int_s)
            pool.density(sim.pos, sim.occ, sim.typ, rho_p, cand_p, int_p)
            # integer work counts are order-independent -> exactly equal
            assert np.array_equal(cand_p, cand_s)
            assert np.array_equal(int_p, int_s)
            np.testing.assert_allclose(rho_p, rho_s, rtol=1e-14)
        finally:
            pool.close()


def test_fork_unavailable_falls_back_serial(ta_potential, monkeypatch):
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod, "fork_available", lambda: False)
    sim = WseMd(
        small_slab_state(reps=(4, 4, 2)), ta_potential, workers=2
    )
    with pytest.warns(RuntimeWarning, match="fork"):
        sim.step(1)
    assert sim._pool is None  # serial sweeps carried the step
    sim.step(1)  # warns once, then stays silently serial
    sim.close()
