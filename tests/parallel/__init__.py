"""Tests for the shared-memory domain-sharded execution layer."""
