"""Sparse-halo byte accounting and the topology x transport matrix.

The acceptance bars pinned here: a steady 2x2 step moves strictly
fewer bytes than the full-broadcast protocol it replaced, the excess
over the owned-row minimum is *exactly* the ghost (boundary) rows —
so the traffic scales with boundary-atom count, and sub-linearly when
the slab doubles — and trajectories agree with the serial path across
every {1x2, 2x2, 4x1} x {shared, socket, inline} pairing, bitwise
across transports for a fixed topology.  The overlapped halo protocol
adds two bars of its own: overlap-on trajectories are *bitwise* equal
to the blocking ``REPRO_PARALLEL_NO_OVERLAP=1`` control across the
full matrix (publication scheduling may never change arithmetic), and
steady steps reuse their grow-only staging buffers instead of
allocating fresh packs.  The skin-trigger property rides along:
rebuilding every step (``REPRO_PARALLEL_NO_REUSE``) reproduces the
lazy-reuse trajectory to seam-reduction tolerance.
"""

import warnings

import numpy as np
import pytest

from repro.kernels import active_backend_name, set_backend
from repro.parallel import ShardedForcePipeline
from repro.parallel.pipeline import _ROW_BYTES
from repro.parallel.pool import fork_available
from repro.runtime import RunSpec, build_engine
from tests.conftest import small_slab_state

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel backend requires fork"
)

#: Bytes per atom row crossing the transport in one steady step:
#: positions and f_der scatter in, rho / epair / forces gather out.
_STEP_CHANNELS = ("positions", "f_der", "rho", "epair", "forces")
_STEP_ROW_BYTES = sum(_ROW_BYTES[c] for c in _STEP_CHANNELS)


@pytest.fixture(autouse=True)
def _restore_backend(monkeypatch):
    # byte accounting and the lazy trajectory arms assume reuse is on;
    # the CI no-reuse control leg exports the env var suite-wide
    monkeypatch.delenv("REPRO_PARALLEL_NO_REUSE", raising=False)
    base = active_backend_name()
    yield
    set_backend(base)


def _steady_step_bytes(reps, topology=(2, 2), transport="inline"):
    """(n_atoms, ghost_atoms, sent+recv bytes of one steady step)."""
    from repro.potentials.elements import make_element_potential

    state = small_slab_state("Ta", reps, temperature=350.0)
    pot = make_element_potential("Ta")
    with warnings.catch_warnings():
        # tiny slabs trip the (correct) halo-dominated advisory
        warnings.simplefilter("ignore", RuntimeWarning)
        pipe = ShardedForcePipeline(
            state, pot, topology=topology, transport=transport
        )
        try:
            pipe.compute(state.positions)  # rebuild step
            sent0, recv0 = pipe.halo_bytes
            pipe.compute(state.positions)  # steady step: reuse round
            sent1, recv1 = pipe.halo_bytes
            return (
                state.n_atoms,
                pipe.ghost_atoms,
                (sent1 - sent0) + (recv1 - recv0),
            )
        finally:
            pipe.close()


class TestHaloBytes:
    @pytest.mark.parametrize("transport", ("inline", "socket"))
    def test_steady_2x2_step_below_full_broadcast(self, transport):
        """Sparse packs beat the PR-7 full-broadcast volume strictly.

        The broadcast protocol shipped every per-step channel whole to
        every worker: ``n_atoms x row_bytes x n_workers`` per channel.
        Sparse packs carry one row per *local* (owned + ghost) atom
        instead, and ghosts never replicate the whole system.  The
        socket arm is the CI distributed leg's byte gate — a volume
        assertion, deliberately not a wall-clock one.
        """
        n, ghost, sparse = _steady_step_bytes((8, 8, 2), transport=transport)
        broadcast = n * 4 * _STEP_ROW_BYTES
        assert sparse < broadcast
        # comfortably below, not within rounding of it
        assert sparse <= 0.6 * broadcast

    def test_steady_step_excess_is_exactly_ghost_rows(self):
        """Per-step bytes = (owned + ghost) rows: boundary-scaled.

        Pins the accounting to *actual* sparse pack sizes — the excess
        over the ``n_atoms`` minimum is precisely the ghost-row count
        the decomposition reports, so halo traffic provably scales
        with boundary atoms, not system size.
        """
        n, ghost, sparse = _steady_step_bytes((8, 8, 2))
        assert ghost > 0
        assert sparse == (n + ghost) * _STEP_ROW_BYTES

    @pytest.mark.parametrize("transport", ("inline", "shared"))
    def test_steady_steps_reuse_staging_buffers(self, transport):
        """Steady rounds allocate no new pack staging (grow-only scratch).

        After the first steady step has sized every staging buffer, the
        transport's ``_PackStage`` and the pipeline's reduction scratch
        must be the *same arrays* for every later step — id lists only
        change on a rebuild, so per-step allocation would be pure churn.
        """
        from repro.potentials.elements import make_element_potential

        state = small_slab_state("Ta", (8, 8, 2), temperature=350.0)
        pot = make_element_potential("Ta")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pipe = ShardedForcePipeline(
                state, pot, topology=(2, 2), transport=transport
            )
        def staging():
            tr = pipe.transport
            if hasattr(tr, "_stage"):  # shared/socket: _PackStage scratch
                return tr._stage._bufs
            # inline: pre-sized per-rank input buffers are the staging
            return {
                (k, name): buf
                for k, bufs in enumerate(tr._buffers)
                for name, buf in bufs.items()
            }

        try:
            pipe.compute(state.positions)  # rebuild: sizes everything
            pipe.compute(state.positions)  # first steady round
            scratch = pipe._concat
            snap_stage = {k: id(v) for k, v in staging().items()}
            snap_scratch = {k: id(v) for k, v in scratch.items()}
            assert snap_stage  # the staging path actually engaged
            for _ in range(3):
                pipe.compute(state.positions)
            assert {k: id(v) for k, v in staging().items()} == snap_stage
            assert {k: id(v) for k, v in scratch.items()} == snap_scratch
        finally:
            pipe.close()

    def test_ghost_rows_grow_sublinearly_with_doubled_slab(self):
        """Doubling the slab grows ghosts by strictly less than 2x.

        Ghost rows live on tile boundary *area*; doubling one in-plane
        axis doubles the atom count but only the seams parallel to
        that axis, so the ghost count must grow — and grow sub-linearly.
        """
        n_a, ghost_a, _ = _steady_step_bytes((4, 4, 2))
        n_b, ghost_b, _ = _steady_step_bytes((8, 4, 2))
        assert n_b == 2 * n_a
        assert ghost_a < ghost_b < 2 * ghost_a


def _run_trajectory(steps=5, seed=3, **spec_kwargs):
    spec = RunSpec(
        element="Ta", reps=(4, 4, 2), steps=steps, seed=seed,
        **spec_kwargs,
    )
    engine = build_engine(spec)
    try:
        engine.step(steps)
        n_builds = None
        if engine.sim._pipeline is not None:
            n_builds = engine.sim._pipeline.n_builds
        return (
            engine.state.positions.copy(),
            engine.total_energy(),
            n_builds,
        )
    finally:
        engine.close()


TOPOLOGIES = ((1, 2), (2, 2), (4, 1))
MATRIX_TRANSPORTS = ("shared", "socket", "inline")


class TestTrajectoryMatrix:
    @pytest.mark.parametrize(
        "topology", TOPOLOGIES, ids=lambda t: f"{t[0]}x{t[1]}"
    )
    def test_every_transport_matches_serial_bitwise_across(self, topology):
        """{topology} x {shared, socket, inline} vs the serial path.

        Physics agrees with serial to seam-reduction tolerance for
        every pairing, and for a fixed topology the three transports
        produce the bitwise-identical trajectory (same pack layout,
        same fixed-order reduction — the carrier cannot matter).
        """
        pos_ref, e_ref, _ = _run_trajectory()
        first = None
        for transport in MATRIX_TRANSPORTS:
            pos, e, _ = _run_trajectory(
                backend="parallel", topology=topology, transport=transport
            )
            assert abs(e - e_ref) / abs(e_ref) <= 1e-9, transport
            assert np.max(np.abs(pos - pos_ref)) < 1e-10, transport
            if first is None:
                first = (pos, e)
            else:
                assert np.array_equal(pos, first[0]), transport
                assert e == first[1], transport


class TestOverlapEquivalence:
    @pytest.mark.parametrize(
        "topology", TOPOLOGIES, ids=lambda t: f"{t[0]}x{t[1]}"
    )
    @pytest.mark.parametrize("transport", MATRIX_TRANSPORTS)
    def test_overlap_on_matches_blocking_control_bitwise(
        self, topology, transport, monkeypatch
    ):
        """Overlap-on == REPRO_PARALLEL_NO_OVERLAP=1, bit for bit.

        The overlapped protocol changes only *when* ghost packs travel
        relative to the interior kernel pass — never which rows a
        worker reads before each pass, nor the fixed interior+boundary
        merge order.  So the escape hatch must reproduce the default
        trajectory exactly, making it a safe bisection control.
        """
        monkeypatch.delenv("REPRO_PARALLEL_NO_OVERLAP", raising=False)
        pos_on, e_on, _ = _run_trajectory(
            backend="parallel", topology=topology, transport=transport
        )
        monkeypatch.setenv("REPRO_PARALLEL_NO_OVERLAP", "1")
        pos_off, e_off, _ = _run_trajectory(
            backend="parallel", topology=topology, transport=transport
        )
        assert np.array_equal(pos_on, pos_off)
        assert e_on == e_off


class TestSkinTriggerProperty:
    def test_forced_rebuild_reproduces_lazy_reuse(self, monkeypatch):
        """Rebuild-every-step vs skin-triggered reuse: same physics.

        Candidate reuse is a pure work-avoidance: the strict filter
        emits the identical pair set either way, so disabling reuse
        (the ``REPRO_PARALLEL_NO_REUSE`` control) must reproduce the
        lazy trajectory.  Each forced step replans the grid, which
        reorders the seam reduction — so the bar is the cross-topology
        tolerance, not bitwise.  n_builds pins that the control and
        the trigger actually took different paths.
        """
        import repro.parallel as par

        steps = 8
        # the lazy arm must actually reuse, even when the suite runs
        # under REPRO_PARALLEL_NO_REUSE=1 (the CI control leg)
        monkeypatch.delenv("REPRO_PARALLEL_NO_REUSE", raising=False)
        pos_lazy, e_lazy, nb_lazy = _run_trajectory(
            steps=steps, backend="parallel", topology=(2, 2),
            transport="inline",
        )
        assert nb_lazy < steps  # the skin trigger actually reused
        monkeypatch.setenv("REPRO_PARALLEL_NO_REUSE", "1")
        par._warned_reasons.discard("no_reuse")
        with pytest.warns(RuntimeWarning, match="no_reuse|rebuilding"):
            pos_forced, e_forced, nb_forced = _run_trajectory(
                steps=steps, backend="parallel", topology=(2, 2),
                transport="inline",
            )
        assert nb_forced == steps  # a rebuild every step, as commanded
        assert abs(e_forced - e_lazy) / abs(e_lazy) <= 1e-9
        assert np.max(np.abs(pos_forced - pos_lazy)) < 1e-10
