"""Transport layer: socket parity, 2D topology runs, teardown robustness.

The acceptance bars pinned here: a 2x2 run matches the serial path to
<= 1e-9 (and is bitwise-reproducible for a fixed topology+transport),
an identical spec produces the *bitwise identical* trajectory under
both transports, and teardown never hangs — dead workers, double
closes, and post-mortem commands all surface cleanly.
"""

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.kernels import active_backend_name, set_backend
from repro.md.simulation import Simulation
from repro.parallel import ShardedForcePipeline
from repro.parallel.pool import WorkerPool, fork_available
from repro.parallel.transport import (
    TRANSPORTS,
    SocketTransport,
    make_transport,
)
from repro.runtime import RunSpec, SpecError, build_engine
from tests.conftest import small_slab_state

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel backend requires fork"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    base = active_backend_name()
    yield
    set_backend(base)


def _serial_reference(potential, reps=(4, 4, 2), temperature=350.0):
    set_backend("numpy")
    state = small_slab_state("Ta", reps, temperature=temperature)
    sim = Simulation(state, potential, dt_fs=2.0)
    energies, forces = sim.compute_forces()
    return state, energies, forces


def _pipeline_forces(state, potential, **kwargs):
    pipe = ShardedForcePipeline(state, potential, **kwargs)
    try:
        e, f, info = pipe.compute(state.positions)
        halo = pipe.halo_bytes
    finally:
        pipe.close()
    return e, f, info, halo


class TestSocketParity:
    def test_socket_matches_numpy(self, ta_potential):
        state, e_ref, f_ref = _serial_reference(ta_potential)
        e, f, info, _ = _pipeline_forces(
            state, ta_potential, workers=2, transport="socket"
        )
        assert info["pairs"] > 0
        rel = abs(e.sum() - e_ref.sum()) / abs(e_ref.sum())
        assert rel <= 1e-9
        scale = np.max(np.abs(f_ref))
        assert np.max(np.abs(f - f_ref)) <= 1e-9 * scale

    def test_socket_is_bitwise_identical_to_shared(self, ta_potential):
        state, _, _ = _serial_reference(ta_potential)
        e_shm, f_shm, _, halo_shm = _pipeline_forces(
            state, ta_potential, topology=(2, 2), transport="shared"
        )
        e_sock, f_sock, _, halo_sock = _pipeline_forces(
            state, ta_potential, topology=(2, 2), transport="socket"
        )
        # pickling preserves float64 bits and both transports fill the
        # same slot layout, so the fixed-order reduction agrees exactly
        assert np.array_equal(e_shm, e_sock)
        assert np.array_equal(f_shm, f_sock)
        # the logical byte-accounting rule makes the halo numbers
        # comparable across transports
        assert halo_shm == halo_sock
        assert halo_shm[0] > 0 and halo_shm[1] > 0

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="carrier-pigeon"):
            make_transport("carrier-pigeon", 1, {}, {}, {})
        assert TRANSPORTS == ("shared", "socket", "inline")


class Test2DTopology:
    def test_2x2_matches_numpy(self, ta_potential):
        state, e_ref, f_ref = _serial_reference(ta_potential)
        e, f, info, _ = _pipeline_forces(
            state, ta_potential, topology=(2, 2)
        )
        assert info["pairs"] > 0
        rel = abs(e.sum() - e_ref.sum()) / abs(e_ref.sum())
        assert rel <= 1e-9
        scale = np.max(np.abs(f_ref))
        assert np.max(np.abs(f - f_ref)) <= 1e-9 * scale

    def test_topology_conflicts_rejected(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        with pytest.raises(ValueError, match="conflicts"):
            ShardedForcePipeline(
                state, ta_potential, workers=3, topology=(2, 2)
            )
        with pytest.raises(ValueError, match="1x1"):
            ShardedForcePipeline(state, ta_potential, topology=(0, 2))


def _run_trajectory(steps=5, seed=3, **spec_kwargs):
    spec = RunSpec(
        element="Ta", reps=(4, 4, 2), steps=steps, seed=seed,
        backend="parallel", **spec_kwargs,
    )
    engine = build_engine(spec)
    try:
        engine.step(steps)
        return (
            engine.state.positions.copy(),
            engine.state.velocities.copy(),
            engine.total_energy(),
        )
    finally:
        engine.close()


class TestTrajectoryReproducibility:
    def test_2x2_bitwise_reproducible(self):
        pos_a, vel_a, e_a = _run_trajectory(topology=(2, 2))
        pos_b, vel_b, e_b = _run_trajectory(topology=(2, 2))
        assert np.array_equal(pos_a, pos_b)
        assert np.array_equal(vel_a, vel_b)
        assert e_a == e_b

    def test_identical_spec_identical_under_both_transports(self):
        pos_shm, vel_shm, e_shm = _run_trajectory(
            topology=(2, 2), transport="shared"
        )
        pos_sock, vel_sock, e_sock = _run_trajectory(
            topology=(2, 2), transport="socket"
        )
        assert np.array_equal(pos_shm, pos_sock)
        assert np.array_equal(vel_shm, vel_sock)
        assert e_shm == e_sock

    def test_2x2_energy_matches_1d_layout(self):
        _, _, e_2d = _run_trajectory(topology=(2, 2))
        _, _, e_1d = _run_trajectory(workers=4)
        assert abs(e_2d - e_1d) / abs(e_1d) <= 1e-9


class TestSpecFields:
    def test_topology_string_normalized(self):
        spec = RunSpec(element="Ta", backend="parallel", topology="2x3")
        assert spec.topology == (2, 3)
        assert spec.to_dict()["topology"] == [2, 3]

    def test_topology_tuple_accepted(self):
        spec = RunSpec(element="Ta", backend="parallel", topology=(4, 1))
        assert spec.topology == (4, 1)

    def test_bad_topology_rejected(self):
        for bad in ("2x", "axb", (0, 2), (1, 2, 3)):
            with pytest.raises(SpecError, match="topology"):
                RunSpec(element="Ta", backend="parallel", topology=bad)

    def test_workers_topology_conflict_rejected(self):
        with pytest.raises(SpecError, match="conflict"):
            RunSpec(
                element="Ta", backend="parallel",
                workers=3, topology=(2, 2),
            )

    def test_bad_transport_rejected(self):
        with pytest.raises(SpecError, match="transport"):
            RunSpec(element="Ta", backend="parallel", transport="udp")

    def test_layout_is_not_physics(self):
        a = RunSpec(element="Ta")
        b = RunSpec(
            element="Ta", backend="parallel",
            topology=(2, 2), transport="socket",
        )
        assert a.spec_hash() == b.spec_hash()

    def test_round_trip_through_dict(self):
        spec = RunSpec(
            element="Ta", backend="parallel",
            topology="2x2", transport="socket",
        )
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.topology == (2, 2)
        assert again.transport == "socket"


class TestTeardownRobustness:
    def test_pool_close_survives_dead_worker(self):
        def _main(conn, wid, shared, cfg):
            while True:
                msg = conn.recv()
                if msg[0] == "stop":
                    break
                conn.send(("ok", 0, 0.0))

        pool = WorkerPool(2, {}, {}, main=_main, name="repro-test")
        victim = pool._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        t0 = time.perf_counter()
        pool.close()  # must not hang or raise
        assert time.perf_counter() - t0 < 10.0
        pool.close()  # idempotent
        assert pool.n_workers == 0

    def test_pool_command_reports_dead_worker(self):
        def _main(conn, wid, shared, cfg):
            while True:
                msg = conn.recv()
                if msg[0] == "stop":
                    break
                conn.send(("ok", 0, 0.0))

        pool = WorkerPool(2, {}, {}, main=_main, name="repro-test")
        try:
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            pool._procs[1].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died"):
                for _ in range(5):  # pipe buffering may delay detection
                    pool.command(("ping",))
                    time.sleep(0.05)
        finally:
            pool.close()

    def test_pipeline_close_is_idempotent(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        pipe = ShardedForcePipeline(state, ta_potential, workers=2)
        pipe.compute(state.positions)
        pipe.close()
        pipe.close()  # second close is a no-op, not an error

    def test_socket_transport_close_is_idempotent(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        pipe = ShardedForcePipeline(
            state, ta_potential, workers=2, transport="socket"
        )
        pipe.compute(state.positions)
        tp = pipe.transport
        assert isinstance(tp, SocketTransport)
        tp.close()
        tp.close()
        pipe.close()

    def test_simulation_close_reaps_socket_workers(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        set_backend("parallel")
        sim = Simulation(
            state, ta_potential, workers=2, transport="socket"
        )
        sim.run(1)
        procs = list(sim._pipeline.transport._procs)
        sim.close()
        assert all(not p.is_alive() for p in procs)


class TestTelemetry:
    def test_engine_reports_layout_and_halo(self):
        spec = RunSpec(
            element="Ta", reps=(4, 4, 2), steps=3,
            backend="parallel", topology=(2, 2), transport="socket",
        )
        engine = build_engine(spec)
        try:
            engine.step(3)
            telemetry = engine.telemetry()
        finally:
            engine.close()
        c = telemetry.counters
        assert c["topology"] == [2, 2]
        assert c["transport"] == "socket"
        assert c["halo_bytes_sent"] > 0
        assert c["halo_bytes_recv"] > 0
        assert c["halo_seconds"] >= 0.0

    def test_halo_exchange_traced_as_child_span(self, ta_potential):
        from repro.obs import Tracer, required_phases

        state = small_slab_state("Ta", (4, 4, 2))
        set_backend("parallel")
        tracer = Tracer()
        sim = Simulation(
            state, ta_potential, tracer=tracer, topology=(2, 2)
        )
        try:
            sim.run(2)
        finally:
            sim.close()
        totals = tracer.phase_totals()
        required = required_phases("reference", sharded=True)
        assert "halo_exchange" in required
        for phase in required:
            assert phase in totals

    def test_required_phases_serial_fallback_has_no_halo(self):
        from repro.obs import required_phases

        assert "halo_exchange" not in required_phases("reference")
        assert "halo_exchange" not in required_phases(
            "wse", swap_interval=0, sharded=True
        )


class TestEnvDefault:
    def test_env_var_selects_transport(self, ta_potential, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "socket")
        state = small_slab_state("Ta", (4, 4, 2))
        pipe = ShardedForcePipeline(state, ta_potential, workers=2)
        try:
            assert pipe.transport_kind == "socket"
        finally:
            pipe.close()

    def test_explicit_argument_wins(self, ta_potential, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "socket")
        state = small_slab_state("Ta", (4, 4, 2))
        pipe = ShardedForcePipeline(
            state, ta_potential, workers=2, transport="shared"
        )
        try:
            assert pipe.transport_kind == "shared"
        finally:
            pipe.close()


class TestAutoSelection:
    """``transport="auto"`` resolution against the host's core budget.

    The policy under test: the forked tier only pays off with spare
    cores, so auto picks inline when cpus < workers (warning once per
    shape) or when there is a single worker (silently); otherwise it
    picks shared.  ``os.cpu_count() -> None`` — a real possibility the
    docs allow — must resolve like a 1-CPU host, never crash.
    """

    @staticmethod
    def _resolve(monkeypatch, cpus, workers):
        import repro.parallel as par
        from repro.parallel.transport import resolve_transport

        # force the os.cpu_count() fallback path (including None) by
        # removing the affinity API resolve_transport prefers
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: cpus)
        par.reset_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kind = resolve_transport("auto", workers, {})
        return kind, [str(w.message) for w in caught]

    @pytest.mark.parametrize(
        "cpus,workers,expected",
        [
            (None, 2, "inline"),  # unknown core count == 1-CPU host
            (1, 2, "inline"),
            (1, 4, "inline"),
            (2, 4, "inline"),
            (4, 4, "shared"),
            (8, 2, "shared"),
        ],
    )
    def test_core_budget_picks_tier(
        self, monkeypatch, cpus, workers, expected
    ):
        kind, messages = self._resolve(monkeypatch, cpus, workers)
        assert kind == expected
        if expected == "inline":
            assert len(messages) == 1
            assert "picked the inline tier" in messages[0]
            assert f"{workers} workers" in messages[0]
        else:
            assert messages == []

    @pytest.mark.parametrize("cpus", [None, 1, 8])
    def test_single_worker_is_silently_inline(self, monkeypatch, cpus):
        kind, messages = self._resolve(monkeypatch, cpus, 1)
        assert kind == "inline"
        assert messages == []

    def test_starved_pick_warns_once_per_shape(self, monkeypatch):
        import repro.parallel as par
        from repro.parallel.transport import resolve_transport

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        par.reset_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_transport("auto", 2, {})
            resolve_transport("auto", 2, {})  # same shape: no re-warn
            resolve_transport("auto", 4, {})  # new shape: warns again
        assert len(caught) == 2

    def test_inner_backend_forces_shared(self, monkeypatch):
        from repro.parallel.transport import resolve_transport

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        kind = resolve_transport("auto", 2, {"inner_backend": "numba"})
        assert kind == "shared"

    def test_explicit_kind_passes_through(self, monkeypatch):
        from repro.parallel.transport import resolve_transport

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_transport("socket", 8, {}) == "socket"
