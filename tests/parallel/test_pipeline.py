"""End-to-end pipeline correctness: parity with numpy, reproducibility,
backend gating, telemetry.

The acceptance bar these tests pin: the parallel backend agrees with
the serial numpy path on energies to <= 1e-9 relative for 1/2/4
workers, trajectories are bitwise-reproducible for a fixed worker
count and seed, and unsupported workloads fall back (once-warned) to
the serial path instead of failing.
"""

import warnings

import numpy as np
import pytest

import repro.parallel as par
from repro.kernels import active_backend_name, set_backend
from repro.md.simulation import Simulation
from repro.parallel import ShardedForcePipeline, unsupported_reason
from repro.parallel.pool import fork_available
from repro.runtime import RunSpec, SpecError, build_engine
from tests.conftest import bulk_state, small_slab_state

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel backend requires fork"
)

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(autouse=True)
def _restore_backend():
    base = active_backend_name()
    yield
    set_backend(base)


def _serial_reference(potential, reps=(4, 4, 2), temperature=350.0):
    set_backend("numpy")
    state = small_slab_state("Ta", reps, temperature=temperature)
    sim = Simulation(state, potential, dt_fs=2.0)
    energies, forces = sim.compute_forces()
    return state, energies, forces


class TestForceParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_energies_and_forces_match_numpy(self, ta_potential, workers):
        state, e_ref, f_ref = _serial_reference(ta_potential)
        pipe = ShardedForcePipeline(state, ta_potential, workers=workers)
        try:
            e_par, f_par, info = pipe.compute(state.positions)
        finally:
            pipe.close()
        assert info["pairs"] > 0
        rel = abs(e_par.sum() - e_ref.sum()) / abs(e_ref.sum())
        assert rel <= 1e-9
        scale = np.max(np.abs(f_ref))
        assert np.max(np.abs(f_par - f_ref)) <= 1e-9 * scale

    def test_single_worker_is_bitwise_serial(self, ta_potential):
        state, e_ref, f_ref = _serial_reference(ta_potential)
        pipe = ShardedForcePipeline(state, ta_potential, workers=1)
        try:
            e_par, f_par, _ = pipe.compute(state.positions)
        finally:
            pipe.close()
        # one shard owns every pair: identical operation order, so the
        # results are the serial ones bit for bit
        assert np.array_equal(e_par, e_ref)
        assert np.array_equal(f_par, f_ref)

    def test_pair_count_matches_serial(self, ta_potential):
        state, _, _ = _serial_reference(ta_potential)
        set_backend("numpy")
        serial = Simulation(state, ta_potential)
        serial.compute_forces()
        pipe = ShardedForcePipeline(state, ta_potential, workers=3)
        try:
            _, _, info = pipe.compute(state.positions)
        finally:
            pipe.close()
        assert info["pairs"] == serial.stats.pairs_last


def _run_trajectory(workers: int, steps: int = 5, seed: int = 3):
    spec = RunSpec(
        element="Ta", reps=(4, 4, 2), steps=steps, seed=seed,
        backend="parallel", workers=workers,
    )
    engine = build_engine(spec)
    try:
        engine.step(steps)
        return (
            engine.state.positions.copy(),
            engine.state.velocities.copy(),
            engine.total_energy(),
        )
    finally:
        engine.close()


class TestReproducibility:
    def test_bitwise_reproducible_for_fixed_workers_and_seed(self):
        pos_a, vel_a, e_a = _run_trajectory(workers=2)
        pos_b, vel_b, e_b = _run_trajectory(workers=2)
        assert np.array_equal(pos_a, pos_b)
        assert np.array_equal(vel_a, vel_b)
        assert e_a == e_b

    def test_energy_independent_of_worker_count(self):
        energies = {}
        positions = {}
        for w in WORKER_COUNTS:
            positions[w], _, energies[w] = _run_trajectory(workers=w)
        e1 = energies[1]
        for w in WORKER_COUNTS[1:]:
            assert abs(energies[w] - e1) / abs(e1) <= 1e-9
            assert np.max(np.abs(positions[w] - positions[1])) < 1e-10


class TestGating:
    def test_periodic_box_is_unsupported(self, ta_potential):
        state = bulk_state("Ta", (3, 3, 3))
        reason = unsupported_reason(state.box, ta_potential)
        assert reason is not None and "periodic" in reason

    def test_open_slab_is_supported(self, ta_potential):
        state = small_slab_state("Ta", (4, 4, 2))
        assert unsupported_reason(state.box, ta_potential) is None

    def test_fallback_warns_once_and_stays_correct(self, ta_potential):
        state = bulk_state("Ta", (3, 3, 3), temperature=200.0)
        par._warned_reasons.clear()
        set_backend("parallel")
        with pytest.warns(RuntimeWarning, match="periodic"):
            sim = Simulation(state, ta_potential)
            e_fallback = sim.potential_energy()
        assert sim._pipeline is None
        # second construction: same reason, no second warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Simulation(state, ta_potential).compute_forces()
        set_backend("numpy")
        e_serial = Simulation(state, ta_potential).potential_energy()
        assert e_fallback == e_serial

    def test_spec_rejects_negative_workers(self):
        with pytest.raises(SpecError, match="workers"):
            RunSpec(element="Ta", workers=-1)

    def test_workers_is_not_a_physics_field(self):
        a = RunSpec(element="Ta", workers=0)
        b = RunSpec(element="Ta", workers=4, backend="parallel")
        assert a.spec_hash() == b.spec_hash()


class TestTelemetry:
    def test_engine_reports_workers_and_shard_seconds(self):
        spec = RunSpec(
            element="Ta", reps=(4, 4, 2), steps=3,
            backend="parallel", workers=2,
        )
        engine = build_engine(spec)
        try:
            engine.step(3)
            telemetry = engine.telemetry()
        finally:
            engine.close()
        assert telemetry.counters["workers"] == 2
        shard = telemetry.counters["shard_seconds"]
        assert set(shard) == {"neighbor", "density", "force"}
        assert all(len(v) == 2 for v in shard.values())

    def test_pool_spawn_traced_as_its_own_phase(self, ta_potential):
        from repro.obs import Tracer

        state = small_slab_state("Ta", (4, 4, 2))
        set_backend("parallel")
        tracer = Tracer()
        sim = Simulation(state, ta_potential, tracer=tracer, workers=2)
        try:
            sim.run(2)
        finally:
            sim.close()
        totals = tracer.phase_totals()
        assert "parallel.pool" in totals
        for phase in ("neighbor", "density", "embedding", "pair_force"):
            assert phase in totals

    def test_overlap_telemetry_and_spans(self, monkeypatch):
        from repro.obs import Tracer

        monkeypatch.delenv("REPRO_PARALLEL_NO_OVERLAP", raising=False)
        spec = RunSpec(
            element="Ta", reps=(4, 4, 2), steps=4,
            backend="parallel", workers=2,
        )
        engine = build_engine(spec, tracer=Tracer())
        try:
            engine.step(4)
            telemetry = engine.telemetry()
            totals = engine.tracer.phase_totals()
        finally:
            engine.close()
        c = telemetry.counters
        assert c["overlap_on"] is True
        assert c["overlap_seconds"] >= 0.0
        assert c["halo_wait_seconds"] >= 0.0
        assert 0.0 <= c["overlap_efficiency"] <= 1.0
        assert "parallel.overlap" in totals
        assert "parallel.halo_wait" in totals

    def test_no_overlap_control_reports_blocking(self, monkeypatch):
        from repro.obs import Tracer

        monkeypatch.setenv("REPRO_PARALLEL_NO_OVERLAP", "1")
        spec = RunSpec(
            element="Ta", reps=(4, 4, 2), steps=3,
            backend="parallel", workers=2,
        )
        engine = build_engine(spec, tracer=Tracer())
        try:
            engine.step(3)
            telemetry = engine.telemetry()
            totals = engine.tracer.phase_totals()
        finally:
            engine.close()
        c = telemetry.counters
        assert c["overlap_on"] is False
        assert c["overlap_efficiency"] == 0.0
        assert "parallel.overlap" not in totals
        assert "parallel.halo_wait" not in totals
