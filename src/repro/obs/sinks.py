"""Trace sinks: where closed spans go.

* :class:`ListSink` — in-memory collection (tests, ad-hoc analysis).
* :class:`JsonlSink` — one JSON object per line.  A ``static`` dict
  (engine name, run id, ...) is merged into every record, so several
  tracers can share one file and stay distinguishable.  Meta lines
  (``{"type": "meta", ...}``) describe the producing run.
* :func:`read_trace` — parse a JSONL trace back into dicts (the CI
  smoke check and tests use it).
* :func:`render_phase_table` — the end-of-run summary table.
"""

from __future__ import annotations

import json

from repro.io.table_io import Table
from repro.obs.tracer import Span

__all__ = ["ListSink", "JsonlSink", "read_trace", "render_phase_table"]


class ListSink:
    """Collects spans in memory."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes one JSON line per span (plus optional meta lines).

    Parameters
    ----------
    target:
        A path (opened in write mode) or an already-open text file
        object (shared by several sinks; not closed by this sink).
    static:
        Key/value pairs merged into every emitted record.
    """

    def __init__(self, target, static: dict | None = None) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w")
            self._owns = True
        self.static = dict(static) if static else {}

    def write_meta(self, **fields) -> None:
        """Emit a ``{"type": "meta", ...}`` header line."""
        record = {"type": "meta", **self.static, **fields}
        self._fh.write(json.dumps(record) + "\n")

    def emit(self, span: Span) -> None:
        record = span.as_dict()
        record.update(self.static)
        self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file into a list of record dicts.

    Raises ``ValueError`` with the offending line number if any line is
    not valid JSON — the trace either parses completely or loudly not.
    """
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: line {lineno} is not valid JSON: {exc}"
                ) from exc
    return records


def render_phase_table(
    title: str, phase_seconds: dict[str, float], wall_s: float
) -> str:
    """Aligned per-phase breakdown (time, share of wall) plus coverage."""
    table = Table(title, ["phase", "time (s)", "share"])
    accounted = 0.0
    for name, seconds in sorted(
        phase_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = seconds / wall_s if wall_s > 0 else 0.0
        table.add_row(name, f"{seconds:.4f}", f"{100.0 * share:.1f}%")
        accounted += seconds
    coverage = accounted / wall_s if wall_s > 0 else 0.0
    table.add_row("(total)", f"{accounted:.4f}", f"{100.0 * coverage:.1f}%")
    return table.render()
