"""Run a spec under tracing and reduce it to a phase breakdown.

This is the engine room of the ``repro profile`` CLI command and the CI
observability smoke: build each requested engine from the *same*
physics spec, attach a :class:`~repro.obs.tracer.Tracer` (optionally
feeding a shared JSONL trace file), run it, and reduce the result to an
:class:`EngineProfile` — per-phase wall seconds, coverage against the
engine's measured wall time, and, for the lockstep machine, the paper's
Table II (A, B, C) constants fitted from the traced per-tile cycle
counts and compared against the cycle model's calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import required_phases
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer
from repro.perfmodel.linear import LinearStepModel, fit_linear_model

__all__ = [
    "EngineProfile",
    "profile_spec",
    "fit_traced_linear",
    "expected_linear_constants",
]


@dataclass(frozen=True)
class EngineProfile:
    """One engine's traced run, reduced.

    Attributes
    ----------
    engine:
        ``"reference"`` or ``"wse"``.
    steps:
        Timesteps executed.
    wall_s:
        Engine wall time (host seconds inside ``Engine.step``).
    phase_seconds:
        Per-phase self-time seconds from the tracer (sums to the traced
        total; includes extra spans beyond the taxonomy).
    coverage:
        Traced seconds / ``wall_s`` — how much of the engine's wall
        time the spans account for (the profile check wants >= 0.95).
    missing_phases:
        Required taxonomy phases the run failed to emit (empty on a
        healthy run).
    counters:
        Engine-shaped work counters from its telemetry.
    fit:
        Table II constants regressed from the traced per-tile cycles
        (lockstep engine only; ``None`` elsewhere or if degenerate).
    fit_expected:
        The cycle model's calibration targets for the same constants
        (ns), keyed ``a_candidate`` / ``b_interaction`` / ``c_fixed``.
    """

    engine: str
    steps: int
    wall_s: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    coverage: float = 0.0
    missing_phases: tuple[str, ...] = ()
    counters: dict = field(default_factory=dict)
    fit: LinearStepModel | None = None
    fit_expected: dict[str, float] | None = None

    def fit_rel_errors(self) -> dict[str, float] | None:
        """Relative error of each fitted constant vs its target."""
        if self.fit is None or self.fit_expected is None:
            return None
        fitted = {
            "a_candidate": self.fit.a_candidate,
            "b_interaction": self.fit.b_interaction,
            "c_fixed": self.fit.c_fixed,
        }
        return {
            k: abs(fitted[k] - v) / v if v else abs(fitted[k])
            for k, v in self.fit_expected.items()
        }


def fit_traced_linear(sim) -> LinearStepModel | None:
    """Fit Table II's constants from a :class:`WseMd`'s cycle trace.

    Every (tile, step) sample is one regression row: the tile's cycle
    count (converted to ns at the machine clock) against the candidate
    and interaction counts the step charged it for.  Empty tiles anchor
    the intercept with (0, 0, C) rows.  Returns ``None`` when the trace
    carries no work counts or the sweep is degenerate.
    """
    try:
        cycles, cand, inter = sim.trace.count_samples()
    except RuntimeError:
        return None
    t_ns = cycles * sim.cost_model.machine.cycle_ns
    try:
        return fit_linear_model(cand.ravel(), inter.ravel(), t_ns.ravel())
    except ValueError:
        return None


def expected_linear_constants(sim) -> dict[str, float]:
    """The cycle model's calibration targets for (A, B, C), in ns."""
    model = sim.cost_model
    ns = model.machine.cycle_ns
    pbc = sim.pbc_inplane
    return {
        "a_candidate": model.candidate_cycles(pbc=pbc) * ns,
        "b_interaction": model.interaction_cycles() * ns,
        "c_fixed": (
            model.exchange_cycles(sim.b, pbc=pbc) + model.fixed_cycles()
        )
        * ns,
    }


def profile_spec(
    spec,
    *,
    engines=("reference", "wse"),
    trace_path=None,
    steps: int | None = None,
) -> dict[str, EngineProfile]:
    """Profile ``spec`` on each engine; optionally write a JSONL trace.

    All engines share one trace file (records carry an ``engine``
    static field); each engine runs the same physics spec with only the
    ``engine`` field replaced.  ``steps`` overrides the spec's run
    length.
    """
    from repro.runtime.runner import Runner

    results: dict[str, EngineProfile] = {}
    fh = open(trace_path, "w") if trace_path is not None else None
    try:
        for name in engines:
            espec = spec.with_engine(name)
            tracer = Tracer()
            if fh is not None:
                sink = JsonlSink(fh, static={"engine": name})
                sink.write_meta(spec=espec.to_dict())
                tracer.add_sink(sink)
            runner = Runner.from_spec(espec, tracer=tracer)
            try:
                telemetry = runner.run(steps)
            finally:
                # pool teardown happens outside the engine's measured
                # wall time; spawn is traced as ``parallel.pool``, so
                # neither counts against the coverage gate
                runner.close()
            totals = tracer.phase_totals()
            wall = telemetry.wall_time_s
            coverage = tracer.total_s() / wall if wall > 0 else 0.0
            # A parallel spec can legitimately degrade to the serial
            # path (no fork, periodic box); the telemetry says whether
            # the sharded pipeline — and so ``halo_exchange`` — ran.
            required = required_phases(
                name,
                swap_interval=espec.swap_interval,
                sharded="transport" in telemetry.counters,
                overlapped=bool(telemetry.counters.get("overlap_on")),
            )
            missing = tuple(p for p in required if p not in totals)
            fit = None
            expected = None
            if name == "wse":
                sim = runner.engine.sim
                fit = fit_traced_linear(sim)
                expected = expected_linear_constants(sim)
            results[name] = EngineProfile(
                engine=name,
                steps=telemetry.steps,
                wall_s=wall,
                phase_seconds=totals,
                coverage=coverage,
                missing_phases=missing,
                counters=dict(telemetry.counters),
                fit=fit,
                fit_expected=expected,
            )
    finally:
        if fh is not None:
            fh.close()
    return results
