"""``repro.obs``: structured tracing and metrics for both engines.

The paper's headline claim rests on per-phase accounting — Table II's
``t = A*n_cand + B*n_int + C`` regression and Sec. V-B's per-tile
timestep-time stability both come from instrumenting *where* a step
spends its time.  This package is the software analogue, LAMMPS-style:

* :class:`~repro.obs.tracer.Tracer` — nested phase spans (wall time +
  counter payloads) with self-time accounting, so per-phase totals sum
  to the traced wall time.
* :class:`~repro.obs.metrics.MetricsRegistry` — process-wide counters,
  gauges and histograms (``neighbor.rebuilds``, ``swap.moves``,
  per-tile cycle distributions, kernel dispatch counts).
* Sinks (:mod:`repro.obs.sinks`) — JSONL trace files and the
  end-of-run summary table.
* :mod:`repro.obs.profile` — run a spec under tracing and reduce it to
  a phase breakdown (the ``repro profile`` CLI command).

Phase taxonomy
--------------
Both engines report through one vocabulary:

========== ===============================================================
phase      meaning
========== ===============================================================
exchange   candidate/embedding-derivative neighborhood exchange (WSE only)
neighbor   neighbor search: cell-list/Verlet build + distance filter
density    electron-density accumulation (EAM stage 1)
embedding  embedding energy/derivative evaluation (EAM stage 2)
pair_force pair force/energy evaluation (EAM stage 3 / Eq. 4)
integrate  leap-frog update (+ thermostat)
swap       atom-swap remapping round (WSE only)
========== ===============================================================

Engines may emit extra spans beyond the taxonomy: both wrap each
timestep in a ``step`` envelope whose *self*-time is the loop glue
between phases (LAMMPS's "Other" row), and the lockstep machine adds
``cycle_account``.  Under the ``parallel`` kernel backend the
reference engine additionally emits ``parallel.pool`` — the one-time
worker-pool spawn (fork + shared-memory arena), deliberately its own
phase so pool setup never inflates ``neighbor`` and never counts
against the ``repro profile --check`` wall-coverage gate (teardown
happens outside the engine's measured wall time).  The lockstep
machine emits the same ``parallel.pool`` span when its offset-dispatch
pool (``workers`` on a wse spec) spawns; its streaming sweeps report
``exchange`` and ``neighbor`` as pre-measured child spans inside
``density`` and ``pair_force``, so the wse taxonomy is unchanged.
Sharded runs keep the standard taxonomy — per-shard timings ride as
span counters (``shard_sum_s``/``shard_max_s``) and ``parallel.*``
metrics — plus one extra leaf: each command round's exposed
communication time lands as a pre-measured ``halo_exchange`` child
span (with ``bytes_sent``/``bytes_recv`` counters from the transport)
inside its enclosing phase, the host analogue of the wafer's exchange
cost.  When the overlapped halo protocol is active (the default;
``REPRO_PARALLEL_NO_OVERLAP=1`` disables it) each steady round also
emits two more pre-measured leaves: ``parallel.overlap`` — the ghost
publication time the parent hid behind the workers' interior pass —
and ``parallel.halo_wait`` — the residual stall the slowest worker
spent blocked on its ghost pack before the boundary pass.  Their ratio
is the engine's ``overlap_efficiency`` telemetry counter (fraction of
halo traffic hidden).  :data:`ENGINE_PHASES` names the subset each
engine is *required* to produce, which the ``repro profile --check``
CI smoke asserts; ``required_phases(..., sharded=True)`` adds
``halo_exchange`` for runs the sharded pipeline actually drove, and
``overlapped=True`` further adds the two overlap spans.
"""

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label,
    metrics,
)
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    read_trace,
    render_phase_table,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "PHASES",
    "ENGINE_PHASES",
    "required_phases",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "label",
    "metrics",
    "JsonlSink",
    "ListSink",
    "read_trace",
    "render_phase_table",
]

#: The full phase vocabulary, in canonical (timestep) order.
PHASES = (
    "exchange",
    "neighbor",
    "density",
    "embedding",
    "pair_force",
    "integrate",
    "swap",
)

#: The taxonomy subset each engine must emit every run.
ENGINE_PHASES = {
    "reference": ("neighbor", "density", "embedding", "pair_force", "integrate"),
    "wse": ("exchange", "neighbor", "density", "embedding", "pair_force",
            "integrate", "swap"),
}


def required_phases(
    engine: str,
    *,
    swap_interval: int = 0,
    sharded: bool = False,
    overlapped: bool = False,
) -> tuple[str, ...]:
    """The phases a run of ``engine`` must produce.

    ``swap`` only fires when swapping is enabled, so it is required of
    the lockstep engine only when ``swap_interval > 0``; likewise
    ``halo_exchange`` only fires when the sharded force pipeline drove
    the run (``sharded=True`` — the caller knows from the engine's
    telemetry, since a parallel spec can legitimately fall back to the
    serial path).  ``overlapped`` further requires the
    ``parallel.halo_wait`` / ``parallel.overlap`` spans the overlapped
    steady protocol emits (off when ``REPRO_PARALLEL_NO_OVERLAP=1``
    forced the blocking path — again read from telemetry, not the
    spec).
    """
    phases = ENGINE_PHASES[engine]
    if engine == "wse" and swap_interval == 0:
        phases = tuple(p for p in phases if p != "swap")
    if sharded and engine == "reference":
        phases = (*phases, "halo_exchange")
        if overlapped:
            phases = (*phases, "parallel.halo_wait", "parallel.overlap")
    return phases
