"""Phase-span tracing: nested wall-time spans with counter payloads.

A :class:`Tracer` produces :class:`Span` records for the engine phases
of one run (the taxonomy in :mod:`repro.obs`).  Spans nest; each span
carries its *inclusive* duration and its *self* time (inclusive minus
the time attributed to child spans), so per-phase totals never double
count and their sum equals the total traced wall time — the property
the ``repro profile`` 95 %-coverage check rests on.

Two recording styles:

* :meth:`Tracer.phase` — a context manager wrapping a code region;
  counters can be attached up front or via :meth:`SpanHandle.add`
  once the phase has computed them.
* :meth:`Tracer.record` — a pre-measured leaf span (for costs
  accumulated across loop iterations, e.g. the per-offset neighbor
  filter inside the lockstep exchange sweep).  The duration is
  credited as child time of the currently open span.

The module-level :data:`NULL_TRACER` is a no-op with the same surface;
engines default to it so untraced runs pay (almost) nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "SpanHandle", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class Span:
    """One closed phase span.

    Attributes
    ----------
    name:
        Phase name (taxonomy name or an engine-specific extra).
    path:
        ``/``-joined names from the outermost open span down to this
        one (``"exchange/neighbor"``).
    t_start_s:
        Start time on the tracer's clock (``time.perf_counter``).
    duration_s:
        Inclusive wall time.
    self_s:
        ``duration_s`` minus the time covered by child spans.
    depth:
        Nesting depth (0 = top level).
    counters:
        Phase-supplied payload (candidate counts, pair counts, ...).
    """

    name: str
    path: str
    t_start_s: float
    duration_s: float
    self_s: float
    depth: int
    counters: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready record (the JSONL sink line, minus sink statics)."""
        out = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "t0": round(self.t_start_s, 9),
            "dur": round(self.duration_s, 9),
            "self": round(self.self_s, 9),
            "depth": self.depth,
        }
        if self.counters:
            out["counters"] = self.counters
        return out


class SpanHandle:
    """What :meth:`Tracer.phase` yields: attach counters mid-phase."""

    __slots__ = ("name", "t0", "child_s", "counters")

    def __init__(self, name: str, t0: float, counters: dict) -> None:
        self.name = name
        self.t0 = t0
        self.child_s = 0.0
        self.counters = counters

    def add(self, **counters) -> None:
        """Attach counters computed inside the phase."""
        self.counters.update(counters)


class Tracer:
    """Collects spans, keeps per-phase self-time totals, feeds sinks."""

    enabled = True

    def __init__(self, sinks=(), clock=time.perf_counter) -> None:
        self._sinks = list(sinks)
        self._clock = clock
        self._stack: list[SpanHandle] = []
        self._totals: dict[str, float] = {}
        self.span_count = 0
        self.root_time_s = 0.0

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    @contextmanager
    def phase(self, name: str, **counters):
        """Trace a code region as one span named ``name``."""
        handle = SpanHandle(name, self._clock(), dict(counters))
        self._stack.append(handle)
        try:
            yield handle
        finally:
            now = self._clock()
            self._stack.pop()
            self._close(handle, now)

    def record(
        self, name: str, duration_s: float, counters: dict | None = None
    ) -> None:
        """Record a pre-measured leaf span ending now.

        The duration counts as child time of the currently open span
        (so that span's self time excludes it) and as self time of
        ``name``.
        """
        now = self._clock()
        span = Span(
            name=name,
            path=self._path(name),
            t_start_s=now - duration_s,
            duration_s=duration_s,
            self_s=duration_s,
            depth=len(self._stack),
            counters=dict(counters) if counters else {},
        )
        self._account(span)

    def _close(self, handle: SpanHandle, now: float) -> None:
        duration = now - handle.t0
        span = Span(
            name=handle.name,
            path=self._path(handle.name),
            t_start_s=handle.t0,
            duration_s=duration,
            self_s=max(duration - handle.child_s, 0.0),
            depth=len(self._stack),
            counters=handle.counters,
        )
        self._account(span)

    def _account(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].child_s += span.duration_s
        else:
            self.root_time_s += span.duration_s
        self._totals[span.name] = (
            self._totals.get(span.name, 0.0) + span.self_s
        )
        self.span_count += 1
        for sink in self._sinks:
            sink.emit(span)

    def _path(self, name: str) -> str:
        if not self._stack:
            return name
        return "/".join([h.name for h in self._stack] + [name])

    def phase_totals(self) -> dict[str, float]:
        """Self-time seconds per phase name (sums to the traced total)."""
        return dict(self._totals)

    def total_s(self) -> float:
        """Total traced wall time (sum of top-level span durations)."""
        return self.root_time_s

    def reset(self) -> None:
        """Zero totals and counts (sinks keep whatever they already got)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self._totals.clear()
        self.span_count = 0
        self.root_time_s = 0.0


class _NullSpanHandle:
    __slots__ = ()

    def add(self, **counters) -> None:
        pass


class _NullPhase:
    """Reusable no-op context manager (no per-call allocation)."""

    __slots__ = ()
    _handle = _NullSpanHandle()

    def __enter__(self):
        return self._handle

    def __exit__(self, *exc):
        return False


class NullTracer:
    """No-op tracer with the :class:`Tracer` surface."""

    enabled = False
    span_count = 0
    root_time_s = 0.0
    _phase = _NullPhase()

    def add_sink(self, sink) -> None:
        raise RuntimeError("cannot attach sinks to the null tracer")

    def phase(self, name: str, **counters):
        return self._phase

    def record(self, name, duration_s, counters=None) -> None:
        pass

    def phase_totals(self) -> dict[str, float]:
        return {}

    def total_s(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass


#: Shared no-op tracer; engines without a tracer default to this.
NULL_TRACER = NullTracer()
