"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numeric side of the observability layer
(:mod:`repro.obs`): long-lived, name-keyed instruments that any module
may increment without threading an object through every call site —
``neighbor.rebuilds``, ``swap.moves``, ``kernels.spline_eval.calls``,
per-phase cycle histograms across tiles, and so on.

Instruments are created on first use and live for the process (tests
call :meth:`MetricsRegistry.reset`, which empties the registry *in
place* so module-held references stay valid).  Histograms keep
streaming moments (count / sum / sum-of-squares / min / max) rather
than raw samples, so observing a full 920x920 tile grid every timestep
costs O(1) memory.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "label",
    "metrics",
]


def label(name: str, **labels) -> str:
    """Canonical labelled-metric name: ``name{k=v,...}``, keys sorted.

    The registry is name-keyed, so labels are encoded into the name
    (Prometheus exposition style).  Sorting makes the encoding
    deterministic — ``label("serve.job.steps", job="a1")`` always maps
    to the same instrument.  Label values are stringified; ``{``/``}``
    and commas in values are replaced to keep the name parseable.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        for ch in "{},=":
            value = value.replace(ch, "_")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += n


class Gauge:
    """Last-written value (a level, not a rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution summary (no raw samples kept)."""

    __slots__ = ("name", "count", "total", "sum_sq", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def observe_many(self, values) -> None:
        """Record a whole array of samples (e.g. one value per tile)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.sum_sq += float(np.dot(arr, arr))
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count == 0:
            return 0.0
        var = self.sum_sq / self.count - self.mean**2
        return float(np.sqrt(max(var, 0.0)))

    def summary(self) -> dict:
        """JSON-ready distribution summary."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-keyed instrument store; instruments create on first access."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        self._check_unique(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_unique(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        self._check_unique(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name))

    def _check_unique(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (in place; the registry object survives)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry every instrumented module shares.
REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide :data:`REGISTRY`."""
    return REGISTRY
