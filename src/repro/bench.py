"""Benchmark-regression harness: ``python -m repro bench``.

Times the two engines on the standard Table-I elements and writes a
machine-readable ``BENCH_kernels.json``:

* reference engine (cell-list + fused half-pair EAM kernels) on bulk
  Ta/Cu/W slabs — the workload the kernel layer is optimized for;
* lockstep machine (:class:`repro.core.wse_md.WseMd`) on a thin Ta
  slab — wall-clock of the *simulator* itself, not the modeled WSE-2
  rate.

Each case carries the steps/s measured on the pre-kernel-layer seed
tree (:data:`SEED_BASELINE`) so the report shows ``speedup_vs_seed``
directly.  ``--baseline`` compares against a previously written JSON
and exits non-zero when any case regresses more than ``--max-drop``
(fractional), which is how CI gates kernel changes.

Benchmark numbers are machine-dependent: compare runs from the same
host only.  The committed ``benchmarks/baseline_kernels.json`` is
refreshed whenever the kernels intentionally change speed.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "BenchCase",
    "BenchResult",
    "CASES",
    "SEED_BASELINE",
    "run_case",
    "run_bench",
    "cross_backend_notes",
    "consistency_check",
    "multiwafer_comparison",
    "attach_multiwafer",
    "baseline_for_case",
    "compare_to_baseline",
    "write_report",
    "latest_results",
    "normalize_result_row",
    "peak_rss_bytes",
    "reset_peak_rss",
]


@dataclass(frozen=True)
class BenchCase:
    """One timed workload.

    ``steps``/``warmup`` are (full, quick) pairs; warmup steps run
    untimed first so the cell-list build and first JIT/caching costs do
    not pollute the steady-state rate.  ``backend`` pins the kernel
    backend for this case (``None`` keeps whatever the harness was
    launched with); ``workers`` sizes the parallel pipeline's pool.
    ``seed_key`` names the :data:`SEED_BASELINE` row this case gates
    against — backend variants of a workload (``numba-Ta``,
    ``par-Ta-w*``) share the serial numpy case's seed rate, so their
    ``speedup_vs_seed`` answers "how much faster than the pre-kernel
    tree on the *same physics*", not "vs nothing".
    """

    name: str
    engine: str  # "reference" | "wse"
    element: str
    reps: tuple[int, int, int]
    steps: tuple[int, int]
    warmup: tuple[int, int] = (2, 2)
    backend: str | None = None
    workers: int = 0
    seed_key: str | None = None
    topology: tuple[int, int] | None = None
    transport: str | None = None
    #: timed windows per run; the recorded rate is the best window.
    #: Wall-clock noise on shared hosts is one-sided (throttling and
    #: interference only ever *add* time), so max-of-N windows is the
    #: consistent estimator of the steady rate.  Cases whose rates feed
    #: cross-case ratios (the Ta backend-comparison block) and the
    #: sub-second cases the regression gate watches use 3; the
    #: heavyweight lockstep cases keep a single window.
    windows: int = 1


#: Standard workloads.  Reference slabs are bulk-like (the acceptance
#: workload is the 16,000-atom Ta slab); the lockstep case is small
#: because the simulator carries per-tile overhead in Python.  The
#: ``par-Ta-w*`` cases sweep the sharded pipeline's worker count on the
#: same 16k-atom slab the serial ``ref-Ta`` case times.  The Ta
#: reference cases time a 40-step full-mode window: neighbor candidates
#: persist across steps (serially and shard-side), so a representative
#: rate must span at least two Verlet reuse periods (~16 steps each at
#: 300 K) — a window shorter than one period measures a reuse-only
#: rate no long run can sustain and hides the rebuild economics.
CASES: tuple[BenchCase, ...] = (
    BenchCase("ref-Ta", "reference", "Ta", (20, 20, 20), (40, 40), (2, 5),
              windows=3),
    # The par-Ta-* siblings are compared against ref-Ta's rate, so they
    # run immediately after it: comparison pairs timed back-to-back see
    # the same host state, while a sweep that interleaves the multi-GB
    # lockstep cases hands the later side cold caches and a throttled
    # clock (a ~15% ratio bias measured on 1-core containers).
    BenchCase("par-Ta-w1", "reference", "Ta", (20, 20, 20), (40, 40),
              (2, 5), backend="parallel", workers=1, seed_key="ref-Ta",
              windows=3),
    BenchCase("par-Ta-w2", "reference", "Ta", (20, 20, 20), (40, 40),
              (2, 5), backend="parallel", workers=2, seed_key="ref-Ta",
              windows=3),
    BenchCase("par-Ta-w4", "reference", "Ta", (20, 20, 20), (40, 40),
              (2, 5), backend="parallel", workers=4, seed_key="ref-Ta",
              windows=3),
    # par-Ta-w4 defaults to the near-square 2x2 grid (least ghost
    # surface); this explicit 4x1 sibling keeps the historical 1D
    # column layout measured on the same slab and worker count, so the
    # report's Table VI hook can compare tile shapes (each tile plays
    # one wafer-node; the halo ring plays the ghost shell).
    BenchCase("par-Ta-4x1", "reference", "Ta", (20, 20, 20), (40, 40),
              (2, 5), backend="parallel", seed_key="ref-Ta",
              topology=(4, 1), windows=3),
    # JIT tier on the acceptance workload: same slab as ref-Ta, whole
    # run under the numba backend.  Skipped (with a progress note) on
    # hosts without numba; gates against ref-Ta's seed rate.
    BenchCase("numba-Ta", "reference", "Ta", (20, 20, 20), (40, 40),
              (2, 5), backend="numba", seed_key="ref-Ta", windows=3),
    BenchCase("ref-Cu", "reference", "Cu", (16, 16, 16), (6, 40), (2, 5),
              windows=3),
    BenchCase("ref-W", "reference", "W", (20, 20, 20), (6, 40), (2, 5),
              windows=3),
    BenchCase("wse-Ta", "wse", "Ta", (8, 8, 3), (20, 30), (2, 5),
              windows=3),
    # Lockstep scaling cases: the streaming sweeps keep peak memory at
    # O(chunk x grid), so the machine now runs the paper's actual
    # experiment sizes.  100k is the everyday scaling case; 800k is the
    # paper's 801,792-atom Ta slab (256 x 261 x 6 BCC cells), full mode
    # only — quick mode skips cases without a QUICK_REPS entry.
    BenchCase("wse-Ta-100k", "wse", "Ta", (128, 131, 3), (5, 10), (1, 1)),
    BenchCase("wse-Ta-800k", "wse", "Ta", (256, 261, 6), (3, 3), (1, 1)),
)

#: Quick-mode replications (small slabs so CI finishes in seconds).
#: A case with no entry here is **full-mode only** and is skipped by
#: ``--quick`` runs (wse-Ta-800k: the paper-scale slab has no small
#: stand-in — wse-Ta-100k's quick entry already covers the >=10k-atom
#: scaling regime the CI gate watches).
QUICK_REPS: dict[str, tuple[int, int, int]] = {
    "ref-Ta": (8, 8, 4),
    "ref-Cu": (6, 6, 4),
    "ref-W": (8, 8, 4),
    "wse-Ta": (5, 5, 2),
    "wse-Ta-100k": (48, 48, 3),
    "par-Ta-w1": (8, 8, 4),
    "par-Ta-w2": (8, 8, 4),
    "par-Ta-w4": (8, 8, 4),
    "par-Ta-4x1": (8, 8, 4),
    "numba-Ta": (8, 8, 4),
}

#: steps/s measured on the seed tree (commit c12f1fa, this container)
#: with the same workloads, before the kernel layer existed.  Keyed by
#: ``(case name, mode)``.
SEED_BASELINE: dict[str, dict[str, float]] = {
    "ref-Ta": {"full": 4.875, "quick": 253.6},
    "ref-Cu": {"full": 1.611, "quick": 96.4},
    "ref-W": {"full": 1.396, "quick": 97.2},
    "wse-Ta": {"full": 72.4, "quick": 132.7},
}


@dataclass
class BenchResult:
    """Timing + workload stats for one executed case."""

    name: str
    engine: str
    element: str
    n_atoms: int
    steps: int
    wall_s: float
    steps_per_s: float
    seed_steps_per_s: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def speedup_vs_seed(self) -> float | None:
        if not self.seed_steps_per_s:
            return None
        return self.steps_per_s / self.seed_steps_per_s

    def to_json(self) -> dict:
        out = {
            "name": self.name,
            "engine": self.engine,
            "element": self.element,
            "n_atoms": self.n_atoms,
            "steps": self.steps,
            "wall_s": round(self.wall_s, 4),
            "steps_per_s": round(self.steps_per_s, 3),
            "seed_steps_per_s": self.seed_steps_per_s,
            "speedup_vs_seed": (
                round(self.speedup_vs_seed, 3)
                if self.speedup_vs_seed is not None else None
            ),
        }
        out.update(self.extra)
        return out


def _case_extra(case: BenchCase, telemetry) -> dict:
    """Engine-shaped report extras, from the unified telemetry record."""
    c = telemetry.counters
    if case.engine == "reference":
        ph = telemetry.phase_seconds
        out = {
            "pairs_per_step": round(c["pairs_per_step"], 1),
            "neighbor_rebuilds": c["neighbor_rebuilds"],
            "time_neighbor_s": round(ph["neighbor"], 4),
            "time_force_s": round(ph["force"], 4),
            "time_integrate_s": round(ph["integrate"], 4),
        }
        # topology/transport land in every reference entry (null for
        # serial runs) so 1D, 2D and socket entries in the history are
        # distinguishable and gate against the right baselines.
        out["topology"] = c.get("topology")
        out["transport"] = c.get("transport")
        if "workers" in c:
            # sharded run: worker count, layout, halo traffic and
            # cumulative per-stage shard seconds, so imbalance and
            # seam cost are visible in the report
            out["workers"] = c["workers"]
            out["halo_bytes_sent"] = c["halo_bytes_sent"]
            out["halo_bytes_recv"] = c["halo_bytes_recv"]
            out["halo_seconds"] = c["halo_seconds"]
            # fraction of halo publication time hidden behind the
            # interior kernel pass (0.0 when REPRO_PARALLEL_NO_OVERLAP
            # forced the blocking protocol)
            out["overlap_efficiency"] = c["overlap_efficiency"]
            out["shard_seconds"] = c["shard_seconds"]
        return out
    return {
        "grid": [c["grid_nx"], c["grid_ny"]],
        "b": c["b"],
        "modeled_wse2_steps_per_s": round(c["modeled_steps_per_s"], 1),
        # streaming-sweep knobs, so the memory/speed trajectory in the
        # history is auditable (chunk is the resolved, auto-sized value)
        "offset_chunk": int(c["offset_chunk"]),
        "workers": int(c["workers"]),
    }


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS watermark for this process.

    Writing ``5`` to ``/proc/self/clear_refs`` (Linux >= 4.0) resets
    ``VmHWM``, so each bench case's recorded peak is its own, not the
    high-water mark of whichever earlier case was largest.  Returns
    False where unsupported — then :func:`peak_rss_bytes` reports the
    process-lifetime peak (still an upper bound).
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def peak_rss_bytes() -> int | None:
    """Peak resident set size in bytes (``VmHWM``; ru_maxrss fallback)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return None


def _execute(
    case: BenchCase, reps, steps: int, warmup: int, *, profile: bool = False
) -> BenchResult:
    """One timed case through the runtime factory — engine-agnostic."""
    from repro.kernels import active_backend_name, warmup_backend
    from repro.runtime import RunSpec, build_engine

    # Pay (and record) the backend's one-time JIT compile / cache-load
    # cost before the engine exists, so it can never leak into either
    # the warmup steps or the timed window.  0.0 for hook-less backends;
    # cached after the first case on each backend.
    jit_warmup_s = warmup_backend()
    spec = RunSpec(
        element=case.element,
        reps=reps,
        engine=case.engine,
        steps=steps,
        backend=case.backend,
        workers=case.workers,
        topology=case.topology,
        transport=case.transport,
        # the lockstep case benches the paper's force-symmetry path
        force_symmetry=(case.engine == "wse"),
    )
    reset_peak_rss()
    if profile:
        from repro.obs import Tracer

        engine = build_engine(spec, tracer=Tracer())
    else:
        engine = build_engine(spec)
    window_rates: list[float] = []
    try:
        engine.step(warmup)
        telemetry = None
        # Best-of-N windows: noise on shared hosts only ever slows a
        # window down, so the fastest of N repeats is the consistent
        # estimator of the steady rate (every window re-times the same
        # steady-state workload; the engine keeps running, so later
        # windows span the same rebuild cadence as the first).
        for _ in range(max(1, case.windows)):
            engine.reset_telemetry()  # report steady state, not warmup
            engine.step(steps)
            window = engine.telemetry()
            window_rates.append(window.steps_per_s)
            if telemetry is None or window.steps_per_s > telemetry.steps_per_s:
                telemetry = window
    finally:
        engine.close()
    extra = _case_extra(case, telemetry)
    if len(window_rates) > 1:
        extra["window_steps_per_s"] = [round(r, 3) for r in window_rates]
    extra["kernel_backend"] = active_backend_name()
    extra["jit_warmup_s"] = round(jit_warmup_s, 4)
    if case.topology is not None or case.backend == "parallel":
        # the multiwafer comparison hook needs the slab geometry (any
        # parallel case may resolve to a 2D grid via the near-square
        # default, not just explicit-topology cases)
        extra["reps"] = list(reps)
    peak = peak_rss_bytes()
    if peak is not None:
        extra["peak_rss_bytes"] = peak
    if telemetry.trace_phases is not None:
        extra["phases"] = {
            k: round(v, 4) for k, v in telemetry.trace_phases.items()
        }
    return BenchResult(
        name=case.name,
        engine=case.engine,
        element=case.element,
        n_atoms=int(telemetry.counters["n_atoms"]),
        steps=steps,
        wall_s=telemetry.wall_time_s,
        steps_per_s=telemetry.steps_per_s,
        extra=extra,
    )


def run_case(case: BenchCase, *, quick: bool = False,
             steps: int | None = None, profile: bool = False) -> BenchResult:
    """Execute one case and attach its seed baseline."""
    mode = "quick" if quick else "full"
    reps = QUICK_REPS[case.name] if quick else case.reps
    n_steps = steps if steps is not None else case.steps[1 if quick else 0]
    warmup = case.warmup[1 if quick else 0]
    result = _execute(case, reps, n_steps, warmup, profile=profile)
    # Backend variants (seed_key) gate against the serial numpy seed
    # rate of the same workload, so speedup_vs_seed is cross-backend.
    seed_name = case.seed_key or case.name
    result.seed_steps_per_s = SEED_BASELINE.get(seed_name, {}).get(mode)
    return result


def run_bench(
    *,
    quick: bool = False,
    elements: list[str] | None = None,
    engines: list[str] | None = None,
    steps: int | None = None,
    profile: bool = False,
    workers: int | None = None,
    transport: str | None = None,
    progress=None,
) -> list[BenchResult]:
    """Run the selected cases in declaration order.

    Each case pins its kernel backend explicitly (its own ``backend``
    or the backend active when the sweep started), so a ``parallel``
    case never leaks its backend into the serial cases after it.  A
    case pinned to a backend this host cannot import (``numba-Ta``
    without numba, ``par-*`` without fork) is skipped with a progress
    note rather than silently timing numpy under the wrong name.
    ``workers`` overrides the pool size of every 1D parallel case
    (topology cases keep their grid — a worker override would conflict
    with it) and ``transport`` overrides every parallel case's
    transport (the ``repro bench --workers``/``--transport`` flags).
    After the sweep, every 2D-topology result gains its
    measured-vs-multiwafer-model comparison when a sibling rate was
    timed (:func:`attach_multiwafer` re-runs with the baseline for the
    cross-run case).
    """
    from repro.kernels import (
        active_backend_name,
        available_backends,
        set_backend,
    )

    base_backend = active_backend_name()
    usable = set(available_backends())
    results: list[BenchResult] = []
    for case in CASES:
        if elements and case.element not in elements:
            continue
        if engines and case.engine not in engines:
            continue
        if quick and case.name not in QUICK_REPS:
            # full-mode-only case (no CI-sized stand-in exists)
            if progress:
                progress(f"  {case.name}: full mode only, skipped")
            continue
        if case.backend is not None and case.backend not in usable:
            if progress:
                progress(
                    f"  {case.name}: backend {case.backend!r} "
                    f"unavailable on this host, skipped"
                )
            continue
        is_parallel = (case.backend or base_backend) == "parallel"
        if workers is not None and is_parallel and case.topology is None:
            case = replace(case, workers=workers)
        if transport is not None and is_parallel:
            case = replace(case, transport=transport)
        if progress:
            progress(f"  {case.name} ({case.engine}) ...")
        set_backend(case.backend or base_backend)
        try:
            results.append(run_case(case, quick=quick, steps=steps,
                                    profile=profile))
        finally:
            set_backend(base_backend)
    attach_multiwafer(results)
    return results


def cross_backend_notes(
    results: list[BenchResult],
    baseline: dict | None = None,
    *,
    mode: str | None = None,
) -> list[str]:
    """Backend-vs-numpy comparison lines for ``repro bench`` output.

    Every timed case pinned to a non-default backend whose ``seed_key``
    names a numpy sibling (``numba-Ta`` / ``par-Ta-w*`` vs ``ref-Ta``)
    yields one note stating its rate as a multiple of the sibling's.
    The sibling's rate comes from this run when it was timed, else from
    the newest ``baseline`` history entry that timed it (restricted to
    ``mode`` — quick and full numbers are never comparable); a sibling
    timed nowhere yields a note saying so, never a silent omission.
    """
    by_case = {c.name: c for c in CASES}
    by_name = {r.name: r for r in results}
    notes: list[str] = []
    for r in results:
        case = by_case.get(r.name)
        if case is None or case.backend is None or case.seed_key is None:
            continue
        sibling = case.seed_key
        ref = by_name.get(sibling)
        ref_rate = ref.steps_per_s if ref is not None else None
        source = "this run"
        if not ref_rate and baseline is not None:
            row = baseline_for_case(baseline, sibling, mode=mode)
            if row is not None:
                ref_rate = row["steps_per_s"]
                source = "baseline history"
        if not ref_rate:
            notes.append(
                f"{r.name}: no {sibling} timing in this run or the "
                f"baseline to compare against"
            )
            continue
        ratio = r.steps_per_s / ref_rate
        notes.append(
            f"{r.name} ({case.backend}): {r.steps_per_s:.2f} steps/s = "
            f"{ratio:.2f}x {sibling} ({ref_rate:.2f} steps/s, {source})"
        )
    return notes


def consistency_check(
    *,
    workers: int = 2,
    steps: int = 5,
    tol: float = 1e-9,
    topology: tuple[int, int] | None = None,
    transport: str | None = None,
) -> list[str]:
    """Parallel-vs-numpy physics agreement smoke (``bench --check``).

    Runs the tier-1-sized Ta workload ``steps`` steps under the numpy
    backend and under the parallel backend with ``workers`` shards —
    or a ``topology`` domain grid, over ``transport`` — and compares
    total energy (relative) and the worst per-atom position deviation
    against ``tol``.  Returns human-readable failure lines (empty =
    pass).  When the parallel backend is unavailable on the host the
    check degrades to comparing numpy against itself, which the
    registry has already warned about.
    """
    from repro.kernels import active_backend_name, set_backend
    from repro.runtime import RunSpec, build_engine

    base_backend = active_backend_name()
    failures: list[str] = []
    label = (
        f"{topology[0]}x{topology[1]}" if topology else f"w={workers}"
    )
    if transport:
        label += f", {transport}"

    def _run(backend: str, w: int, topo, tkind):
        set_backend(backend)
        engine = build_engine(
            RunSpec(element="Ta", reps=(6, 6, 3), steps=steps, workers=w,
                    topology=topo, transport=tkind)
        )
        try:
            engine.step(steps)
            return engine.total_energy(), engine.state.positions.copy()
        finally:
            engine.close()

    try:
        e_ref, pos_ref = _run("numpy", 0, None, None)
        e_par, pos_par = _run(
            "parallel", 0 if topology else workers, topology, transport
        )
    finally:
        set_backend(base_backend)
    rel = abs(e_par - e_ref) / max(abs(e_ref), 1e-300)
    if rel > tol:
        failures.append(
            f"total energy: parallel({label}) vs numpy relative "
            f"difference {rel:.3e} > {tol:g}"
        )
    max_dpos = float(np.max(np.abs(pos_par - pos_ref)))
    if max_dpos > 1e-9:
        failures.append(
            f"trajectory: max |dx| {max_dpos:.3e} A > 1e-9 after "
            f"{steps} steps"
        )
    return failures


def multiwafer_comparison(result: BenchResult, single_rate: float,
                          sibling: str) -> dict:
    """Measured-vs-modeled Table VI hook for a 2D-topology bench case.

    Maps the measured 2D run onto the multi-wafer ghost-region model:
    each tile plays one wafer-node holding ``n_atoms / n_domains``
    interior atoms, the halo ring plays the ghost shell (``lambda``
    sized so the model grants at least one step per refresh period),
    and the same-worker-count 1D sibling's measured rate plays the
    single-wafer rate.  Returns a JSON-ready dict with the modeled
    fraction-of-single-wafer next to the measured ratio, so Table VI
    is an experiment, not just a projection.
    """
    import math

    from repro.perfmodel.multiwafer import MultiWaferModel
    from repro.potentials.elements import ELEMENTS

    topo = result.extra.get("topology")
    reps = result.extra.get("reps")
    el = ELEMENTS[result.element]
    n_domains = topo[0] * topo[1]
    lam = max(1, math.ceil(2.0 * el.cutoff_nn))
    # BCC slab: 2 atoms per cell, reps[2] cells thick
    z_sites = max(1, 2 * int(reps[2]))
    per_domain = max(1, result.n_atoms // n_domains)
    x_sites = max(2 * lam + 1, int(round((per_domain / z_sites) ** 0.5)))
    point = MultiWaferModel().evaluate(
        result.element, x_sites, z_sites, lam, el.cutoff_nn,
        1.0 / single_rate, single_rate,
    )
    return {
        "model": {
            "x_sites": point.x_sites,
            "z_sites": point.z_sites,
            "lambda": point.lam,
            "k_steps": point.k_steps,
            "n_ghost": point.n_ghost,
            "fraction_of_single_wafer": round(
                point.fraction_of_single_wafer, 4
            ),
        },
        "measured": {
            "single_wafer_case": sibling,
            "single_wafer_steps_per_s": round(single_rate, 3),
            "steps_per_s": round(result.steps_per_s, 3),
            "fraction_of_single_wafer": round(
                result.steps_per_s / single_rate, 4
            ),
        },
    }


def attach_multiwafer(results: list[BenchResult],
                      baseline: dict | None = None,
                      *, mode: str | None = None) -> list[str]:
    """Attach the Table VI comparison to every 2D-topology result.

    The single-wafer stand-in is the same-worker-count 1D column
    sibling (``par-Ta-4x1`` for the 2x2 grid — worker-count cases
    default to the near-square layout, so the explicit ``Nx1`` case is
    the 1D one), taken from this run or, failing that, the newest
    matching ``baseline`` history entry.  Returns one human-readable
    note per 2D case (including cases with no sibling rate anywhere —
    never a silent omission).
    """
    by_name = {r.name: r for r in results}
    notes: list[str] = []
    for r in results:
        topo = r.extra.get("topology")
        if not topo or topo[1] == 1:
            continue
        n_domains = topo[0] * topo[1]
        sibling = f"par-{r.element}-{n_domains}x1"
        ref = by_name.get(sibling)
        rate = ref.steps_per_s if ref is not None else None
        if not rate and baseline is not None:
            row = baseline_for_case(baseline, sibling, mode=mode)
            if row is not None:
                rate = row["steps_per_s"]
        if not rate:
            notes.append(
                f"{r.name}: no {sibling} rate in this run or the "
                f"baseline; multiwafer comparison skipped"
            )
            continue
        comp = multiwafer_comparison(r, rate, sibling)
        r.extra["multiwafer"] = comp
        notes.append(
            f"{r.name}: measured {comp['measured']['fraction_of_single_wafer']:.2f}x "
            f"of {sibling} vs modeled Table-VI fraction "
            f"{comp['model']['fraction_of_single_wafer']:.2f} "
            f"(lambda={comp['model']['lambda']}, "
            f"k={comp['model']['k_steps']})"
        )
    return notes


def _git_sha() -> str | None:
    """Short commit SHA of the working tree, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def normalize_result_row(row: dict) -> dict:
    """A copy of a history result row with schema gaps filled.

    History entries written before the backend-pinning run recorded
    neither ``kernel_backend`` nor ``workers`` on their cases (every
    case then ran the process-default numpy backend, serially).  The
    read path fills those defaults so baseline walks and trajectory
    tooling can key on them without per-row existence checks.
    """
    if "kernel_backend" in row and "workers" in row:
        return row
    out = dict(row)
    out.setdefault("kernel_backend", "numpy")
    out.setdefault("workers", None)
    return out


def latest_results(report: dict) -> list[dict]:
    """The newest run's result list from a v1 or v2 bench report.

    v1 reports (``repro-bench/1``) store one run at the top level; v2
    reports (``repro-bench/2``) keep an append-only ``history`` whose
    last entry is the newest run.  Rows are normalized on read
    (:func:`normalize_result_row`), so legacy entries look
    schema-complete to callers.
    """
    history = report.get("history")
    if history:
        rows = history[-1].get("results", [])
    else:
        rows = report.get("results", [])
    return [normalize_result_row(r) for r in rows]


def write_report(path: str, results: list[BenchResult], *,
                 quick: bool, backend: str) -> dict:
    """Append this run to the report history at ``path``.

    ``BENCH_kernels.json`` is no longer overwritten per run: each run
    becomes one ``history`` entry (timestamp, git SHA, mode, backend,
    per-case results), so the recorded trajectory of steps/s survives
    across invocations.  A v1 report already on disk is preserved as
    the first history entry; a corrupt file starts a fresh history.
    Returns the full v2 report dict.
    """
    entry = {
        "created_unix": round(time.time(), 1),
        "git_sha": _git_sha(),
        "mode": "quick" if quick else "full",
        "backend": backend,
        "numpy_version": np.__version__,
        # parallel entries are only comparable on similar hosts; record
        # the core count next to each run's worker counts
        "cpu_count": os.cpu_count(),
        "results": [r.to_json() for r in results],
    }
    history: list[dict] = []
    try:
        with open(path) as fh:
            on_disk = json.load(fh)
        if isinstance(on_disk, dict):
            if isinstance(on_disk.get("history"), list):
                history = on_disk["history"]
            elif on_disk.get("results") is not None:
                # v1 single-run report: keep it as the oldest entry
                history = [
                    {
                        k: on_disk.get(k)
                        for k in (
                            "created_unix",
                            "mode",
                            "backend",
                            "numpy_version",
                            "results",
                        )
                    }
                ]
    except (OSError, json.JSONDecodeError):
        history = []
    history.append(entry)
    report = {"schema": "repro-bench/2", "history": history}
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def baseline_for_case(
    baseline: dict,
    name: str,
    *,
    mode: str | None = None,
    match: dict | None = None,
) -> dict | None:
    """Newest baseline record for ``name``, walking the history backwards.

    The latest history entry need not contain every case (selective
    ``--elements``/``--engines`` runs, cases added after the last full
    sweep): the gate compares each case against the most recent entry
    that actually timed it.  ``mode`` restricts the walk to entries of
    one bench mode — quick and full numbers are never comparable.
    ``match`` restricts it further to rows agreeing on the given keys
    (an unrecorded key reads as ``None`` — the serial/default layer —
    on both sides): a ``--transport socket`` sweep must not gate
    against rates the inline tier recorded under the same case name,
    nor vice versa.  Returns ``None`` when no prior timing exists
    anywhere — the committed baseline is refreshed whenever a new
    layer combination starts being benched, so the gap is one run
    wide.  Hits are normalized (:func:`normalize_result_row`) so a
    pre-backend-pinning row never KeyErrors a caller keying on
    ``kernel_backend`` or ``workers``.
    """
    history = baseline.get("history")
    if not history:
        # v1 single-run report
        history = [baseline]
    for entry in reversed(history):
        if mode is not None and entry.get("mode") not in (mode, None):
            continue
        for r in entry.get("results", []):
            if r.get("name") != name or not r.get("steps_per_s"):
                continue
            if match and any(
                r.get(k) != v for k, v in match.items()
            ):
                continue
            return normalize_result_row(r)
    return None


def compare_to_baseline(
    results: list[BenchResult],
    baseline: dict,
    *,
    max_drop: float,
    mode: str | None = None,
) -> tuple[list[str], list[str]]:
    """Regression check vs a previous report (v1 or v2).

    Each case is compared against the latest prior history entry that
    timed it (:func:`baseline_for_case`) — a case absent from the
    newest entry still gates against its own most recent number instead
    of silently passing.  Returns ``(failures, notes)``: failure lines
    (empty = pass), plus one note per case with **no** baseline
    anywhere (new cases are reported distinctly, never silently
    skipped).
    """
    failures: list[str] = []
    notes: list[str] = []
    for r in results:
        # backend/transport/topology-forced sweeps only gate against
        # rows recorded under the same layer stack — an inline or
        # numpy-backend rate is not a floor for a loopback-TCP or
        # parallel-backend run of the same case name
        ref = baseline_for_case(
            baseline, r.name, mode=mode,
            match={
                "kernel_backend": r.extra.get("kernel_backend"),
                "transport": r.extra.get("transport"),
                "topology": r.extra.get("topology"),
            },
        )
        if ref is None:
            notes.append(
                f"{r.name}: no baseline entry (new case; recorded at "
                f"{r.steps_per_s:.2f} steps/s, gated from the next run)"
            )
            continue
        floor = (1.0 - max_drop) * ref["steps_per_s"]
        if r.steps_per_s < floor:
            failures.append(
                f"{r.name}: {r.steps_per_s:.2f} steps/s < "
                f"{floor:.2f} (baseline {ref['steps_per_s']:.2f} "
                f"- {max_drop:.0%} allowance)"
            )
    return failures, notes
