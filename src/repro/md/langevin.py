"""Langevin thermostat: stochastic dynamics at fixed temperature.

The BBK discretization adds a friction and a fluctuation term to the
leap-frog velocity update:

    v <- v (1 - gamma dt) + a dt + sqrt(2 gamma k_B T dt / (m MVV2E)) xi

with ``xi`` standard normal per component.  Useful for equilibrating
grain-boundary structures where local heating (surface relaxation,
boundary reconstruction) would otherwise drive the temperature far from
target — gentler and more local than global velocity rescaling.
"""

from __future__ import annotations

import numpy as np

from repro.constants import KB_EV, MVV2E
from repro.md.state import AtomsState

__all__ = ["LangevinThermostat"]


class LangevinThermostat:
    """Stochastic friction + noise applied after each integration step.

    Parameters
    ----------
    temperature:
        Target temperature (K).
    damping_fs:
        Relaxation time 1/gamma in femtoseconds (LAMMPS ``fix langevin``
        convention).
    seed:
        RNG seed; runs are deterministic given the seed.
    rng:
        Pre-built generator to draw noise from (wins over ``seed``).
        The runtime passes its "thermostat" seed stream here so the
        noise sequence is checkpointable.
    """

    def __init__(
        self,
        temperature: float,
        damping_fs: float = 100.0,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        if damping_fs <= 0:
            raise ValueError(f"damping must be positive, got {damping_fs}")
        self.temperature = float(temperature)
        self.damping_ps = damping_fs / 1000.0
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The noise generator (for checkpointing its state)."""
        return self._rng

    def apply(self, state: AtomsState, dt_fs: float) -> None:
        """One friction + fluctuation kick, in place."""
        dt = dt_fs / 1000.0
        gamma = 1.0 / self.damping_ps
        if gamma * dt >= 1.0:
            raise ValueError(
                f"timestep {dt_fs} fs too large for damping "
                f"{self.damping_ps * 1000} fs (gamma dt >= 1)"
            )
        m = state.atom_masses[:, None]
        state.velocities *= 1.0 - gamma * dt
        if self.temperature > 0.0:
            sigma = np.sqrt(
                2.0 * gamma * KB_EV * self.temperature * dt / (m * MVV2E)
            )
            state.velocities += sigma * self._rng.standard_normal(
                state.velocities.shape
            )
