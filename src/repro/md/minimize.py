"""FIRE energy minimization (Bitzek et al. 2006).

Grain-boundary structures straight out of the bicrystal constructor
carry unrelaxed core atoms; a few hundred FIRE steps settle them into
the slowly-evolving structures the paper simulates (Fig. 2).  FIRE is
the standard MD-friendly minimizer: velocity-projected dynamics with an
adaptive timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.integrators import accelerations
from repro.md.neighbor_list import NeighborList
from repro.md.state import AtomsState
from repro.potentials.base import Potential

__all__ = ["FireMinimizer", "MinimizeResult"]


@dataclass(frozen=True)
class MinimizeResult:
    """Outcome of a minimization run."""

    converged: bool
    n_steps: int
    initial_energy: float
    final_energy: float
    max_force: float


class FireMinimizer:
    """Fast Inertial Relaxation Engine.

    Parameters follow the original paper's recommended defaults.
    """

    def __init__(
        self,
        potential: Potential,
        *,
        dt_fs: float = 1.0,
        dt_max_fs: float = 5.0,
        n_min: int = 5,
        f_inc: float = 1.1,
        f_dec: float = 0.5,
        alpha_start: float = 0.1,
        f_alpha: float = 0.99,
        skin: float = 0.8,
    ) -> None:
        if dt_fs <= 0 or dt_max_fs < dt_fs:
            raise ValueError(f"bad timesteps: {dt_fs}, {dt_max_fs}")
        self.potential = potential
        self.dt0 = dt_fs / 1000.0
        self.dt_max = dt_max_fs / 1000.0
        self.n_min = n_min
        self.f_inc = f_inc
        self.f_dec = f_dec
        self.alpha_start = alpha_start
        self.f_alpha = f_alpha
        self.skin = skin

    def run(
        self,
        state: AtomsState,
        *,
        force_tolerance: float = 1e-3,
        max_steps: int = 2000,
    ) -> MinimizeResult:
        """Minimize in place until max |F| < tolerance (eV/A)."""
        neighbors = NeighborList(state.box, self.potential.cutoff,
                                 skin=self.skin)

        def forces_energy():
            pairs = neighbors.pairs(state.positions)
            e, f = self.potential.compute(state.n_atoms, pairs, state.types)
            return float(np.sum(e)), f

        e0, forces = forces_energy()
        state.velocities[:] = 0.0
        dt = self.dt0
        alpha = self.alpha_start
        steps_since_negative = 0
        e = e0
        for step in range(1, max_steps + 1):
            fmax = float(np.max(np.abs(forces))) if state.n_atoms else 0.0
            if fmax < force_tolerance:
                return MinimizeResult(
                    converged=True, n_steps=step - 1, initial_energy=e0,
                    final_energy=e, max_force=fmax,
                )
            v = state.velocities
            power = float(np.sum(v * forces))
            if power > 0.0:
                # steer velocities toward the force direction
                v_norm = np.linalg.norm(v)
                f_norm = np.linalg.norm(forces)
                if f_norm > 0:
                    state.velocities = (1.0 - alpha) * v + (
                        alpha * v_norm / f_norm
                    ) * forces
                steps_since_negative += 1
                if steps_since_negative > self.n_min:
                    dt = min(dt * self.f_inc, self.dt_max)
                    alpha *= self.f_alpha
            else:
                state.velocities[:] = 0.0
                dt *= self.f_dec
                alpha = self.alpha_start
                steps_since_negative = 0
            # leap-frog step with the adapted dt
            a = accelerations(state, forces)
            state.velocities += a * dt
            state.positions += state.velocities * dt
            e, forces = forces_energy()
        return MinimizeResult(
            converged=False, n_steps=max_steps, initial_energy=e0,
            final_energy=e,
            max_force=float(np.max(np.abs(forces))),
        )
