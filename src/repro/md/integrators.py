"""Trajectory integrators (paper Eq. 5).

The paper uses Verlet leap-frog: velocities live at half steps,
positions at whole steps.  The scheme is symplectic and time-reversible,
which is what makes very long trajectories physically meaningful
(Sec. II-A).  Velocity Verlet is provided as well — it generates the
identical position trajectory and is convenient when synchronized
velocities are needed for observables.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MVV2E
from repro.md.state import AtomsState

__all__ = ["LeapfrogVerlet", "VelocityVerlet", "accelerations"]


def accelerations(state: AtomsState, forces: np.ndarray) -> np.ndarray:
    """a = F / m with the metal-units conversion (A/ps^2)."""
    if forces.shape != state.positions.shape:
        raise ValueError(
            f"forces shape {forces.shape} != positions {state.positions.shape}"
        )
    return forces / (state.atom_masses[:, None] * MVV2E)


class LeapfrogVerlet:
    """Leap-frog: v(k+1/2) = v(k-1/2) + a(k) dt;  r(k+1) = r(k) + v(k+1/2) dt.

    ``state.velocities`` are interpreted as the half-step velocities
    v(k-1/2) on entry and v(k+1/2) on exit, matching the paper's
    formulation exactly.
    """

    def __init__(self, dt_fs: float) -> None:
        if dt_fs <= 0:
            raise ValueError(f"timestep must be positive, got {dt_fs}")
        self.dt = dt_fs / 1000.0  # fs -> ps

    def step(self, state: AtomsState, forces: np.ndarray) -> None:
        """Advance one timestep in place given forces at the current positions."""
        a = accelerations(state, forces)
        state.velocities += a * self.dt
        state.positions += state.velocities * self.dt


class VelocityVerlet:
    """Velocity Verlet (kick-drift-kick); synchronized velocities.

    Produces the same discrete position trajectory as leap-frog when
    started consistently; used where on-step velocities are required.
    """

    def __init__(self, dt_fs: float) -> None:
        if dt_fs <= 0:
            raise ValueError(f"timestep must be positive, got {dt_fs}")
        self.dt = dt_fs / 1000.0

    def half_kick(self, state: AtomsState, forces: np.ndarray) -> None:
        """v += a dt/2."""
        state.velocities += accelerations(state, forces) * (self.dt / 2.0)

    def drift(self, state: AtomsState) -> None:
        """r += v dt."""
        state.positions += state.velocities * self.dt

    def step(self, state: AtomsState, forces: np.ndarray, force_fn) -> np.ndarray:
        """Full KDK step; returns forces at the new positions.

        ``force_fn(state) -> forces`` evaluates forces at the current
        positions.
        """
        self.half_kick(state, forces)
        self.drift(state)
        new_forces = force_fn(state)
        self.half_kick(state, new_forces)
        return new_forces
