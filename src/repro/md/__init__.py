"""Reference molecular dynamics engine (vectorized NumPy).

This engine plays the role LAMMPS plays in the paper: the trusted
implementation that defines correct trajectories.  The WSE lockstep
simulator (:mod:`repro.core`) is validated against it — identical
physics, radically different parallel decomposition.

Pipeline per timestep: neighbor search (cell list + Verlet list with
skin) -> EAM force evaluation -> Verlet leap-frog integration (Eq. 5).
"""

from repro.md.state import AtomsState
from repro.md.boundary import Box
from repro.md.cell_list import CellList
from repro.md.neighbor_list import NeighborList
from repro.md.integrators import LeapfrogVerlet, VelocityVerlet
from repro.md.thermostat import (
    maxwell_boltzmann_velocities,
    rescale_to_temperature,
    BerendsenThermostat,
)
from repro.md.langevin import LangevinThermostat
from repro.md.minimize import FireMinimizer
from repro.md.simulation import Simulation
from repro.md.stress import pair_virial, pressure
from repro.md import observables

__all__ = [
    "AtomsState",
    "Box",
    "CellList",
    "NeighborList",
    "LeapfrogVerlet",
    "VelocityVerlet",
    "maxwell_boltzmann_velocities",
    "rescale_to_temperature",
    "BerendsenThermostat",
    "LangevinThermostat",
    "FireMinimizer",
    "pair_virial",
    "pressure",
    "Simulation",
    "observables",
]
