"""Virial stress / pressure computation.

The per-atom virial for pairwise-decomposable forces (EAM's Eq. 4 form):

    W_i = -1/2 sum_j r_ij (x) f_ij

with the pressure from the kinetic + virial contributions:

    P = (N k_B T + sum_i tr(W_i) / 3) / V.

Used to verify that the Rose-EOS potentials are stress-free at their
equilibrium lattice constants (by construction) and under compression
produce the positive pressure the bulk modulus implies.
"""

from __future__ import annotations

import numpy as np

from repro.constants import KB_EV
from repro.md.state import AtomsState
from repro.potentials.base import PairTable
from repro.potentials.eam import EAMPotential

__all__ = ["pair_virial", "pressure"]


def pair_virial(
    potential: EAMPotential,
    n_atoms: int,
    pairs: PairTable,
    types: np.ndarray | None = None,
) -> np.ndarray:
    """Per-atom virial tensors (N, 3, 3) from the EAM radial forces.

    Uses the same Eq. 4 radial scalar as the force kernel; for a full
    (directed) pair list each entry contributes half the pair virial to
    atom ``i``.
    """
    types = potential._types(n_atoms, types)
    rho = potential.accumulate_density(n_atoms, pairs, types)
    _, f_der = potential.embed(rho, types)
    w = np.zeros((n_atoms, 3, 3))
    if pairs.n_pairs == 0:
        return w
    tables = potential.tables
    p = pairs.n_pairs
    if tables.n_types == 1:
        # fused single pass: one rho' and one phi' evaluation per pair
        rho_d = tables.rho[0].evaluate(pairs.r)[1]
        rho_d_i = rho_d_j = rho_d
        phi_d = tables.phi_for(0, 0).evaluate(pairs.r)[1]
    else:
        rho_d_i = np.empty(p)
        rho_d_j = np.empty(p)
        phi_d = np.empty(p)
        ti = types[pairs.i]
        tj = types[pairs.j]
        for t in range(tables.n_types):
            m = ti == t
            if np.any(m):
                rho_d_i[m] = tables.rho[t].evaluate(pairs.r[m])[1]
            m = tj == t
            if np.any(m):
                rho_d_j[m] = tables.rho[t].evaluate(pairs.r[m])[1]
        for t1 in range(tables.n_types):
            for t2 in range(tables.n_types):
                m = (ti == t1) & (tj == t2)
                if np.any(m):
                    phi_d[m] = tables.phi_for(t1, t2).evaluate(pairs.r[m])[1]
    s = f_der[pairs.i] * rho_d_j + f_der[pairs.j] * rho_d_i + phi_d
    # f_ij on atom i is s * rij / r; virial_i -= 1/2 rij (x) f_ij
    f = s[:, None] * pairs.rij / pairs.r[:, None]
    outer = pairs.rij[:, :, None] * f[:, None, :]
    half = 1.0 if pairs.half else 0.5
    for a in range(3):
        for b in range(3):
            w[:, a, b] -= half * np.bincount(
                pairs.i, weights=outer[:, a, b], minlength=n_atoms
            )
            if pairs.half:
                w[:, a, b] -= half * np.bincount(
                    pairs.j, weights=outer[:, a, b], minlength=n_atoms
                )
    return w


def pressure(
    state: AtomsState,
    potential: EAMPotential,
    pairs: PairTable,
) -> float:
    """Instantaneous pressure (eV/A^3); multiply by ~160.2 for GPa.

    ``P V = N k_B T + (1/3) sum_i tr(W_i)`` with the per-atom virial
    from :func:`pair_virial`.
    """
    w = pair_virial(potential, state.n_atoms, pairs, state.types)
    virial_trace = float(np.trace(w.sum(axis=0)))
    kinetic = state.n_atoms * KB_EV * state.temperature()
    return (kinetic + virial_trace / 3.0) / state.box.volume
