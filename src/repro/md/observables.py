"""Scalar and per-atom observables computed from simulation state."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.state import AtomsState

__all__ = ["EnergyReport", "energy_report", "max_displacement", "msd"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy bookkeeping for one configuration.

    Attributes are total quantities in eV, plus temperature in K.
    """

    potential: float
    kinetic: float
    temperature: float

    @property
    def total(self) -> float:
        """Total (potential + kinetic) energy in eV."""
        return self.potential + self.kinetic


def energy_report(state: AtomsState, potential_energy: float) -> EnergyReport:
    """Bundle potential energy with the state's kinetic quantities."""
    return EnergyReport(
        potential=float(potential_energy),
        kinetic=state.kinetic_energy(),
        temperature=state.temperature(),
    )


def max_displacement(
    positions: np.ndarray, reference: np.ndarray, *, norm: str = "euclidean"
) -> float:
    """Largest per-atom displacement between two configurations.

    ``norm="max_xy"`` gives the paper's Fig. 9 metric: the largest
    max-norm of any atom's displacement in the x-y plane (the quantity
    that determines how far apart interacting atoms' worker cores can
    drift on the wafer).
    """
    delta = np.asarray(positions) - np.asarray(reference)
    if norm == "euclidean":
        return float(np.sqrt(np.max(np.einsum("ij,ij->i", delta, delta))))
    if norm == "max_xy":
        return float(np.max(np.abs(delta[:, :2])))
    raise ValueError(f"unknown norm {norm!r}")


def msd(positions: np.ndarray, reference: np.ndarray) -> float:
    """Mean-squared displacement (A^2) between two configurations."""
    delta = np.asarray(positions) - np.asarray(reference)
    return float(np.mean(np.einsum("ij,ij->i", delta, delta)))
