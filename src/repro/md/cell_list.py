"""Linked-cell spatial binning and candidate pair generation.

The reference engine's neighbor search: atoms are binned into cells of
edge >= cutoff, and candidate pairs are drawn from each atom's 27-cell
stencil.  Each undirected pair is generated exactly *once* (the half
stencil plus ordered same-cell pairs), halving the candidate stream the
distance filter and force kernels consume.  All stages are vectorized;
the only Python-level loop is over the 13 half-stencil offsets.

For periodic dimensions the box must span at least three cells
(= 3 x cutoff) for the stencil to be alias-free; smaller periodic
systems automatically fall back to the brute-force ``all_pairs`` path,
which handles any box permitted by minimum image.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.md.boundary import Box

__all__ = ["CellList", "all_pairs", "concatenated_ranges"]

#: Half stencil: one offset per unordered offset pair (+o covers -o).
#: (0, 0, 0) is excluded — same-cell pairs are generated with i < j.
_HALF_STENCIL = [
    (dx, dy, dz)
    for dx, dy, dz in itertools.product((-1, 0, 1), repeat=3)
    if dz > 0 or (dz == 0 and dy > 0) or (dz == 0 and dy == 0 and dx > 0)
]


def concatenated_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each (s, c) pair."""
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return base + offsets


def all_pairs(
    positions: np.ndarray, cutoff: float, box: Box
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Brute-force directed pairs within ``cutoff``.

    Returns ``(i, j, rij, r)`` with minimum image applied.  O(N^2); for
    tests and small periodic boxes.
    """
    box.check_minimum_image_valid(cutoff)
    n = len(positions)
    delta = positions[None, :, :] - positions[:, None, :]
    delta = box.minimum_image(delta)
    dist2 = np.einsum("ijk,ijk->ij", delta, delta)
    np.fill_diagonal(dist2, np.inf)
    ii, jj = np.nonzero(dist2 < cutoff * cutoff)
    rij = delta[ii, jj]
    return ii, jj, rij, np.sqrt(dist2[ii, jj])


class CellList:
    """Spatial binning for one configuration.

    Build once per neighbor-list rebuild; ``candidate_pairs`` then
    produces every undirected pair within the bin cutoff exactly once.

    ``subdivide=k`` bins at cell edge >= cutoff/k and widens the half
    stencil to radius k (with corner blocks farther than the cutoff
    pruned per build).  Finer cells hug the cutoff sphere tighter, so
    the raw candidate stream the distance filter consumes shrinks —
    at k=2 by roughly 40% — at the price of more stencil offsets per
    build.  The candidate *set* within the cutoff is identical for
    every k; only the enumeration order changes, so callers that pin
    bitwise stream order must keep the default ``subdivide=1``.
    Periodic dims need >= 2k+1 cells to stay alias-free; a build that
    cannot afford that falls back to k=1 (then to brute force).
    """

    def __init__(self, box: Box, cutoff: float, subdivide: int = 1) -> None:
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        if subdivide < 1:
            raise ValueError(f"subdivide must be >= 1, got {subdivide}")
        box.check_minimum_image_valid(cutoff)
        self.box = box
        self.cutoff = float(cutoff)
        self.subdivide = int(subdivide)
        self._stencil: list[tuple[int, int, int]] = _HALF_STENCIL
        # Decided at build time (open dims depend on the configuration).
        self._lo = np.zeros(3)
        self._ncell = np.ones(3, dtype=np.int64)
        self._cell_size = np.ones(3)
        self._cid: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._starts: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._use_brute = False
        # Scratch buffers, sized lazily and reused across rebuilds so a
        # skin-policy rebuild costs no fresh large allocations.
        self._n_buf = -1
        self._ntot_buf = -1

    def build(self, positions: np.ndarray) -> None:
        """Bin atoms; decides grid geometry from the current positions."""
        positions = np.asarray(positions, dtype=np.float64)
        if not np.all(np.isfinite(positions)):
            raise FloatingPointError("non-finite positions in cell-list build")
        eps = 1e-9
        lengths = np.empty(3)
        for d in range(3):
            if self.box.periodic[d]:
                lengths[d] = self.box.lengths[d]
                self._lo[d] = self.box.origin[d]
            else:
                lo = float(positions[:, d].min()) - eps
                hi = float(positions[:, d].max()) + eps
                lengths[d] = max(hi - lo, self.cutoff)
                self._lo[d] = lo
        # Finest alias-free subdivision this box affords: periodic dims
        # need >= 2k+1 cells of edge >= cutoff/k for +o/-o offsets of a
        # radius-k stencil to never wrap onto the same neighbor.
        for k in range(self.subdivide, 0, -1):
            ncell = np.maximum(
                1, np.floor(lengths * k / self.cutoff).astype(np.int64)
            )
            if not np.any(self.box.periodic & (ncell < 2 * k + 1)):
                break
        self._ncell[:] = ncell
        self._cell_size[:] = lengths / self._ncell
        self._stencil = self._half_stencil(k)
        # Alias-free stencil needs >= 3 cells along periodic dims.
        self._use_brute = bool(
            np.any(self.box.periodic & (self._ncell < 3))
        )
        if self._use_brute:
            self._positions = positions
            return

        n = len(positions)
        if n != self._n_buf:
            self._rel = np.empty((n, 3), dtype=np.float64)
            self._coords = np.empty((n, 3), dtype=np.int64)
            self._sorted_coords = np.empty((n, 3), dtype=np.int64)
            self._cid = np.empty(n, dtype=np.int64)
            self._nb = np.empty((n, 3), dtype=np.int64)
            self._n_buf = n
        self._bin_into_buffers(positions)
        ntot = int(np.prod(self._ncell))
        if ntot != self._ntot_buf:
            self._counts = np.empty(ntot, dtype=np.int64)
            self._starts = np.empty(ntot, dtype=np.int64)
            self._ntot_buf = ntot
        self._counts[:] = np.bincount(self._cid, minlength=ntot)
        self._starts[0] = 0
        np.cumsum(self._counts[:-1], out=self._starts[1:])
        self._order = np.argsort(self._cid, kind="stable")
        # Cell-sorted coords: candidate generation walks atoms in bin
        # order, so the starts/counts gathers and the j-range gathers
        # below touch memory near-sequentially.
        np.take(self._coords, self._order, axis=0, out=self._sorted_coords)
        # Cell-sorted flat ids: offsets that cross no periodic dim
        # locate their neighbor cells by pure flat-id arithmetic
        # (see _pairs_at_offset), skipping the per-offset coordinate
        # add + re-flatten.
        self._cid_sorted = self._cid[self._order]
        self._positions = positions

    def _half_stencil(self, k: int) -> list[tuple[int, int, int]]:
        """Radius-``k`` half stencil, pruned to blocks within reach.

        One offset per unordered offset pair (the positivity rule that
        defines ``_HALF_STENCIL``), dropping offsets whose nearest cell
        corners are already farther apart than the cutoff — at k >= 2
        the corner blocks of the (2k+1)^3 cube can't hold any pair
        within the cutoff sphere.  Pruning depends on the actual cell
        sizes, so the stencil is recomputed each build.
        """
        if k == 1:
            return _HALF_STENCIL
        stencil = []
        for o in itertools.product(range(-k, k + 1), repeat=3):
            dx, dy, dz = o
            if not (dz > 0 or (dz == 0 and dy > 0)
                    or (dz == 0 and dy == 0 and dx > 0)):
                continue
            gap2 = sum(
                (max(0, abs(o[d]) - 1) * self._cell_size[d]) ** 2
                for d in range(3)
            )
            if gap2 <= self.cutoff * self.cutoff:
                stencil.append(o)
        return stencil

    def _bin_into_buffers(self, positions: np.ndarray) -> None:
        """Cell coords + flat cell ids, written into reused scratch."""
        np.subtract(positions, self._lo, out=self._rel)
        np.divide(self._rel, self._cell_size, out=self._rel)
        np.floor(self._rel, out=self._rel)
        np.copyto(self._coords, self._rel, casting="unsafe")
        for d in range(3):
            col = self._coords[:, d]
            if self.box.periodic[d]:
                np.mod(col, self._ncell[d], out=col)
            else:
                np.clip(col, 0, self._ncell[d] - 1, out=col)
        nx, ny, nz = self._ncell
        np.multiply(self._coords[:, 0], ny, out=self._cid)
        self._cid += self._coords[:, 1]
        self._cid *= nz
        self._cid += self._coords[:, 2]

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        nx, ny, nz = self._ncell
        return (coords[:, 0] * ny + coords[:, 1]) * nz + coords[:, 2]

    def candidate_pairs(
        self, live: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected candidate pair (i, j) exactly once (half list).

        This is the software analogue of the paper's Force Symmetry
        optimization (Sec. VI-A): every pair is visited once, and force
        kernels scatter both halves.  Same-cell pairs are emitted with
        ``i < j``; cross-cell pairs use the 13-offset half stencil (the
        opposite offset is covered from the partner cell).

        Pairs are a superset of interacting pairs: distance filtering is
        the caller's job (it belongs with the positions used for forces,
        which may have moved since the build when a skin is in use).
        Callers that need both directions expand via
        :meth:`directed_candidate_pairs`.

        ``live`` (optional, per-atom bool) prunes pair blocks where
        *neither* side's cell holds a live atom.  Domain shards mark
        their owned atoms live: a ghost-ghost pair can never survive an
        owns-one-endpoint seam rule, so skipping dead-cell blocks drops
        part of the halo-ring enumeration without touching the order of
        the surviving stream (the result is exactly the full stream
        filtered, never reordered).
        """
        if self._use_brute:
            n = len(self._positions)
            ii, jj = np.triu_indices(n, k=1)
            return ii.astype(np.int64), jj.astype(np.int64)
        if self._cid is None:
            raise RuntimeError("candidate_pairs before build()")
        # Atoms are visited in cell-sorted order (stable argsort of the
        # flat cell id): neighbors-in-space become neighbors-in-stream,
        # so every gather below walks memory near-sequentially.
        atom_idx = self._order
        live_cells = src_live = None
        if live is not None:
            live_cells = np.zeros(int(np.prod(self._ncell)), dtype=bool)
            live_cells[self._cid[np.asarray(live, dtype=bool)]] = True
            src_live = live_cells[self._cid[atom_idx]]
        out_i: list[np.ndarray] = []
        out_j: list[np.ndarray] = []
        # Per-(axis, shift) validity masks, shared across the offsets
        # of one enumeration (a radius-k stencil reuses each shift
        # mask ~(2k+1)^2 times).
        shift_masks: dict = {}
        # Same-cell pairs: both atoms share a cell, keep i < j.
        i, j = self._pairs_at_offset(atom_idx, (0, 0, 0), live_cells,
                                     src_live, shift_masks)
        keep = i < j
        out_i.append(i[keep])
        out_j.append(j[keep])
        # Cross-cell pairs: each unordered cell pair visited from one
        # side only (>= 2k+1 cells along periodic dims guarantees +o
        # and -o never wrap to the same neighbor, see build()).
        for offset in self._stencil:
            i, j = self._pairs_at_offset(atom_idx, offset, live_cells,
                                         src_live, shift_masks)
            out_i.append(i)
            out_j.append(j)
        return np.concatenate(out_i), np.concatenate(out_j)

    def _pairs_at_offset(
        self,
        atom_idx: np.ndarray,
        offset: tuple[int, int, int],
        live_cells: np.ndarray | None = None,
        src_live: np.ndarray | None = None,
        shift_masks: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (i, j) with j in the cell at ``offset`` from i's cell.

        ``atom_idx`` gives the visiting order; row k of the cached
        cell-sorted coords is the cell of atom ``atom_idx[k]``.
        """
        n = len(atom_idx)
        empty = np.empty(0, dtype=np.int64)
        nx, ny, nz = self._ncell
        if not any(
            delta and self.box.periodic[d] for d, delta in enumerate(offset)
        ):
            # No wrap on this offset: the neighbor cell's flat id is
            # the atom's flat id plus a constant, and validity is a
            # one-sided range test per shifted axis — exact integer
            # identities of the generic path below, at a fraction of
            # its per-offset cost.
            valid = None
            for d, delta in enumerate(offset):
                if not delta:
                    continue
                key = (d, delta)
                m = None if shift_masks is None else shift_masks.get(key)
                if m is None:
                    col = self._sorted_coords[:, d]
                    if delta > 0:
                        m = col < self._ncell[d] - delta
                    else:
                        m = col >= -delta
                    if shift_masks is not None:
                        shift_masks[key] = m
                valid = m if valid is None else valid & m
            flat_delta = (offset[0] * ny + offset[1]) * nz + offset[2]
            if valid is None:
                src = atom_idx
                ncid = (self._cid_sorted + flat_delta if flat_delta
                        else self._cid_sorted)
            else:
                if not np.any(valid):
                    return empty, empty
                src = atom_idx[valid]
                ncid = self._cid_sorted[valid]
                if flat_delta:
                    ncid += flat_delta
            src_alive = src_live if valid is None else (
                None if src_live is None else src_live[valid]
            )
        else:
            np.add(self._sorted_coords, np.asarray(offset, dtype=np.int64),
                   out=self._nb)
            nb = self._nb
            valid = np.ones(n, dtype=bool)
            for d, delta in enumerate(offset):
                if self.box.periodic[d]:
                    nb[:, d] = np.mod(nb[:, d], self._ncell[d])
                else:
                    valid &= (nb[:, d] >= 0) & (nb[:, d] < self._ncell[d])
            if not np.any(valid):
                return empty, empty
            src = atom_idx[valid]
            ncid = self._flatten(nb[valid])
            src_alive = None if src_live is None else src_live[valid]
        if live_cells is not None:
            # Dead-cell pruning: with every atom of both cells dead, no
            # pair of this block can own a live endpoint.
            alive = src_alive | live_cells[ncid]
            src = src[alive]
            ncid = ncid[alive]
        counts = self._counts[ncid]
        nonempty = counts > 0
        src = src[nonempty]
        ncid = ncid[nonempty]
        counts = counts[nonempty]
        if len(src) == 0:
            return empty, empty
        j = self._order[concatenated_ranges(self._starts[ncid], counts)]
        i = np.repeat(src, counts)
        return i, j

    def directed_candidate_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Directed (double-counted) view of :meth:`candidate_pairs`."""
        i, j = self.candidate_pairs()
        return np.concatenate([i, j]), np.concatenate([j, i])
