"""Reference MD simulation driver.

Composes neighbor search, potential evaluation and leap-frog
integration into the Verlet loop the paper times ("Loop time" in the
LAMMPS log, Sec. IV-B).  Observers may be attached to sample state at
an interval without cluttering the loop.  The driver keeps per-phase
wall-time and neighbor-list statistics (:class:`SimStats`) — the
observability hook the ``repro bench`` harness reads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.constants import MVV2E
from repro.md.integrators import LeapfrogVerlet
from repro.md.neighbor_list import NeighborList
from repro.md.observables import EnergyReport, energy_report
from repro.md.state import AtomsState
from repro.md.thermostat import BerendsenThermostat
from repro.obs import NULL_TRACER
from repro.potentials.base import Potential

__all__ = ["Simulation", "SimStats", "StepRecord"]


@dataclass
class SimStats:
    """Accumulated loop statistics since construction.

    Wall times split the Verlet loop into its three phases: neighbor
    search (cell-list rebuild + distance filter), force evaluation
    (the potential kernels), and integration (leap-frog + thermostat).
    """

    steps: int = 0
    force_evaluations: int = 0
    neighbor_rebuilds: int = 0
    pairs_last: int = 0
    pairs_total: int = 0
    time_neighbor_s: float = 0.0
    time_force_s: float = 0.0
    time_integrate_s: float = 0.0

    @property
    def wall_time_s(self) -> float:
        """Total accounted wall time across the three phases."""
        return self.time_neighbor_s + self.time_force_s + self.time_integrate_s

    @property
    def pairs_per_step(self) -> float:
        """Mean stored (half) pairs per force evaluation."""
        if self.force_evaluations == 0:
            return 0.0
        return self.pairs_total / self.force_evaluations

    @property
    def steps_per_s(self) -> float:
        """Throughput implied by the accounted wall time."""
        if self.steps == 0 or self.wall_time_s == 0.0:
            return 0.0
        return self.steps / self.wall_time_s


@dataclass
class StepRecord:
    """Per-sample record emitted to observers."""

    step: int
    energies: EnergyReport
    max_force: float
    stats: SimStats | None = None


class Simulation:
    """Reference MD loop: neighbor search -> forces -> leap-frog.

    Parameters
    ----------
    state:
        Atom state (mutated in place by :meth:`run`).
    potential:
        Interatomic potential.
    dt_fs:
        Timestep in femtoseconds (the paper uses 2 fs).
    skin:
        Neighbor-list skin distance (A).
    thermostat:
        Optional Berendsen thermostat applied after each step.
    tracer:
        Optional :class:`repro.obs.Tracer`; phases are emitted through
        it in addition to the always-on :class:`SimStats` accounting.
    workers:
        Worker count for the sharded force pipeline when the
        ``parallel`` kernel backend is active (``None``/0 = one per
        CPU).  Ignored under serial backends.
    topology:
        ``(px, py)`` domain-grid shape for the sharded pipeline
        (``None`` = 1D ``workers x 1`` columns).  Layout, never
        physics.  Ignored under serial backends.
    transport:
        Sharded-pipeline transport (``"shared"``/``"socket"``/
        ``"inline"``/``"auto"``; ``None`` reads
        ``REPRO_PARALLEL_TRANSPORT``, defaulting to ``auto``).
        Ignored under serial backends.
    fuse_integrate:
        Fold the leap-frog kick+drift into the active kernel backend's
        ``force_integrate`` pass instead of the Python-level
        :class:`~repro.md.integrators.LeapfrogVerlet` update.  A speed
        knob, never physics: the fused pass performs the identical
        arithmetic (bitwise under numpy; 1e-9-gated under compiled
        backends).
    """

    def __init__(
        self,
        state: AtomsState,
        potential: Potential,
        *,
        dt_fs: float = 2.0,
        skin: float = 0.5,
        thermostat: BerendsenThermostat | None = None,
        tracer=None,
        workers: int | None = None,
        topology: tuple[int, int] | None = None,
        transport: str | None = None,
        fuse_integrate: bool = False,
    ) -> None:
        from repro.kernels import active_backend, active_backend_name

        self.state = state
        self.potential = potential
        self.dt_fs = float(dt_fs)
        self.skin = float(skin)
        self.workers = workers
        self.topology = topology
        self.transport = transport
        self.fuse_integrate = bool(fuse_integrate)
        self.integrator = LeapfrogVerlet(dt_fs)
        self.neighbors = NeighborList(state.box, potential.cutoff, skin=skin)
        self.thermostat = thermostat
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.step_count = 0
        self.stats = SimStats()
        self._observers: list[tuple[int, Callable[[StepRecord], None]]] = []
        self._pipeline = None
        self._close_lock = threading.Lock()
        # Pipeline construction (fork + arena) is deferred to the first
        # force evaluation so its cost lands in the traced
        # ``parallel.pool`` phase, not in engine construction.
        self._parallel_pending = bool(
            active_backend_name() == "parallel"
            and getattr(active_backend(), "provides_pipeline", False)
        )

    def close(self) -> None:
        """Release the parallel pipeline, if one was spawned.

        Idempotent and thread-safe: the serve scheduler may call this
        twice (cancellation path + worker-thread cleanup) and from a
        different thread than the one that ran the loop.
        """
        self._parallel_pending = False
        with self._close_lock:
            pipeline, self._pipeline = self._pipeline, None
        if pipeline is not None:
            pipeline.close()

    def _init_pipeline(self) -> None:
        """First-use pipeline spawn, attributed to ``parallel.pool``."""
        from repro.parallel import (
            ShardedForcePipeline,
            unsupported_reason,
            warn_fallback,
        )

        self._parallel_pending = False
        reason = unsupported_reason(self.state.box, self.potential)
        if reason is not None:
            warn_fallback(reason)
            return
        with self.tracer.phase("parallel.pool", spawn=1):
            self._pipeline = ShardedForcePipeline(
                self.state,
                self.potential,
                skin=self.skin,
                workers=self.workers,
                topology=self.topology,
                transport=self.transport,
            )

    def add_observer(
        self, interval: int, fn: Callable[[StepRecord], None]
    ) -> None:
        """Call ``fn(record)`` every ``interval`` steps."""
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self._observers.append((interval, fn))

    def compute_forces(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom energies and forces at the current positions."""
        tr = self.tracer
        if self._parallel_pending:
            self._init_pipeline()
        if self._pipeline is not None:
            energies, forces, info = self._pipeline.compute(
                self.state.positions, tr
            )
            st = self.stats
            st.force_evaluations += 1
            st.neighbor_rebuilds += info["rebuilds"]
            st.pairs_last = info["pairs"]
            st.pairs_total += info["pairs"]
            st.time_neighbor_s += info["t_neighbor"]
            st.time_force_s += info["t_force"]
            return energies, forces
        builds_before = self.neighbors.n_builds
        t0 = time.perf_counter()
        with tr.phase("neighbor") as ph:
            pairs = self.neighbors.pairs(self.state.positions)
            ph.add(
                pairs=pairs.n_pairs,
                rebuilds=self.neighbors.n_builds - builds_before,
            )
        t1 = time.perf_counter()
        if self.potential.supports_tracer and tr.enabled:
            # EAM-style potentials split force work into the taxonomy's
            # density/embedding/pair_force phases themselves.
            out = self.potential.compute(
                self.state.n_atoms, pairs, self.state.types, tracer=tr
            )
        elif tr.enabled:
            with tr.phase("pair_force", pairs=pairs.n_pairs):
                out = self.potential.compute(
                    self.state.n_atoms, pairs, self.state.types
                )
        else:
            out = self.potential.compute(
                self.state.n_atoms, pairs, self.state.types
            )
        t2 = time.perf_counter()
        st = self.stats
        st.force_evaluations += 1
        st.neighbor_rebuilds += self.neighbors.n_builds - builds_before
        st.pairs_last = pairs.n_pairs
        st.pairs_total += pairs.n_pairs
        st.time_neighbor_s += t1 - t0
        st.time_force_s += t2 - t1
        return out

    def potential_energy(self) -> float:
        """Total potential energy at the current positions (eV)."""
        e, _ = self.compute_forces()
        return float(np.sum(e))

    def run(self, n_steps: int) -> None:
        """Advance ``n_steps`` timesteps."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        tr = self.tracer
        for _ in range(n_steps):
            # the "step" envelope's self-time is the loop glue between
            # phases (LAMMPS's "Other" row), so traced time tiles the
            # engine wall time
            with tr.phase("step"):
                energies, forces = self.compute_forces()
                t0 = time.perf_counter()
                with tr.phase("integrate"):
                    if self.fuse_integrate:
                        # kick+drift folded into one backend pass over
                        # the force output (same arithmetic as
                        # LeapfrogVerlet.step)
                        from repro.kernels import active_backend

                        active_backend().force_integrate(
                            self.state.positions,
                            self.state.velocities,
                            forces,
                            self.state.atom_masses,
                            self.integrator.dt,
                            MVV2E,
                        )
                    else:
                        self.integrator.step(self.state, forces)
                    if self.thermostat is not None:
                        self.thermostat.apply(self.state, self.dt_fs)
                self.stats.time_integrate_s += time.perf_counter() - t0
                self.step_count += 1
                self.stats.steps += 1
                if self._observers:
                    self._notify(energies, forces)

    def _notify(self, energies: np.ndarray, forces: np.ndarray) -> None:
        due = [fn for iv, fn in self._observers if self.step_count % iv == 0]
        if not due:
            return
        record = StepRecord(
            step=self.step_count,
            energies=energy_report(self.state, float(np.sum(energies))),
            max_force=float(np.max(np.abs(forces))) if len(forces) else 0.0,
            stats=replace(self.stats),
        )
        for fn in due:
            fn(record)

    def equilibrate(
        self, n_steps: int, temperature: float, tau_fs: float = 100.0
    ) -> None:
        """Run with a temporary Berendsen thermostat (paper Sec. IV-B prep)."""
        saved = self.thermostat
        self.thermostat = BerendsenThermostat(temperature, tau_fs)
        try:
            self.run(n_steps)
        finally:
            self.thermostat = saved
