"""Simulation box with per-dimension open or periodic boundaries.

The paper's benchmark slabs use *open* (non-periodic) boundaries —
atoms may drift off the edges (Sec. I) — while the completeness study
(Sec. V-F) exercises periodic boundaries.  The box therefore tracks a
periodic flag per dimension and applies wrapping / minimum-image only
where enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box"]


@dataclass
class Box:
    """Axis-aligned simulation box.

    Attributes
    ----------
    lengths:
        Edge lengths (3,), in angstroms.
    periodic:
        Per-dimension periodicity flags (3,).
    origin:
        Lower corner (3,); defaults to the box centered on 0.
    """

    lengths: np.ndarray
    periodic: np.ndarray = field(
        default_factory=lambda: np.zeros(3, dtype=bool)
    )
    origin: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=np.float64).reshape(3)
        self.periodic = np.asarray(self.periodic, dtype=bool).reshape(3)
        if np.any(self.lengths <= 0):
            raise ValueError(f"box lengths must be positive, got {self.lengths}")
        if self.origin is None:
            self.origin = -self.lengths / 2.0
        else:
            self.origin = np.asarray(self.origin, dtype=np.float64).reshape(3)

    @classmethod
    def open(cls, lengths) -> "Box":
        """Fully open box (all boundaries non-periodic)."""
        return cls(np.asarray(lengths, dtype=np.float64))

    @classmethod
    def cube_periodic(cls, length: float) -> "Box":
        """Fully periodic cubic box."""
        return cls(np.full(3, float(length)), np.ones(3, dtype=bool))

    @property
    def volume(self) -> float:
        """Box volume (A^3)."""
        return float(np.prod(self.lengths))

    def check_minimum_image_valid(self, cutoff: float) -> None:
        """Raise if any periodic dimension is too small for minimum image.

        With a single stored pair per (i, j), every periodic length must
        be at least twice the interaction cutoff.
        """
        too_small = self.periodic & (self.lengths < 2.0 * cutoff)
        if np.any(too_small):
            raise ValueError(
                f"periodic box lengths {self.lengths[too_small]} are below "
                f"2 x cutoff = {2.0 * cutoff}; minimum image is ambiguous"
            )

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell along periodic dimensions."""
        positions = np.asarray(positions, dtype=np.float64)
        out = positions.copy()
        for d in range(3):
            if self.periodic[d]:
                rel = out[:, d] - self.origin[d]
                out[:, d] = self.origin[d] + np.mod(rel, self.lengths[d])
        return out

    def minimum_image(self, displacements: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention along periodic dimensions.

        Half-box ties: a separation of exactly ``+L/2`` or ``-L/2`` has
        two equidistant images.  ``np.round`` banker's-rounds the
        quotient to the nearest even integer, so which image wins flips
        with the (arbitrary) sign of the input — nondeterministic
        across otherwise equivalent paths.  ``floor(x/L + 0.5)`` breaks
        the tie deterministically: both half-box separations map to
        ``-L/2``, and the result lies in ``[-L/2, L/2)``.
        """
        out = np.asarray(displacements, dtype=np.float64).copy()
        for d in range(3):
            if self.periodic[d]:
                ld = self.lengths[d]
                out[..., d] -= ld * np.floor(out[..., d] / ld + 0.5)
        return out

    def contains(self, positions: np.ndarray, *, slack: float = 0.0) -> np.ndarray:
        """Boolean mask of atoms inside the box (+/- ``slack``).

        Open-boundary atoms may legitimately leave; this is a diagnostic,
        not an invariant.
        """
        positions = np.asarray(positions)
        lo = self.origin - slack
        hi = self.origin + self.lengths + slack
        return np.all((positions >= lo) & (positions <= hi), axis=1)
