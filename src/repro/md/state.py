"""Mutable per-atom simulation state.

Positions and velocities are stored as (N, 3) float64 arrays — the
paper's WSE code uses FP32 throughout, and the lockstep simulator can be
run in FP32 to match, but the reference engine defaults to FP64 so it
can serve as the accuracy baseline (Sec. II-B notes production codes
often mix FP32 forces with FP64 integration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MVV2E, kinetic_energy_to_temperature
from repro.md.boundary import Box

__all__ = ["AtomsState"]


@dataclass
class AtomsState:
    """Positions, velocities, types and masses of all atoms.

    Attributes
    ----------
    positions, velocities:
        (N, 3) arrays in angstrom and angstrom/ps.
    types:
        (N,) integer type indices.
    masses:
        Per-*type* masses (g/mol): ``masses[types[i]]`` is atom i's mass.
    box:
        Simulation box and boundary conditions.
    ids:
        Stable atom identities (the WSE mapping permutes storage order;
        ids let trajectories be compared atom-by-atom).
    """

    positions: np.ndarray
    velocities: np.ndarray
    types: np.ndarray
    masses: np.ndarray
    box: Box
    ids: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.types = np.ascontiguousarray(self.types, dtype=np.int64)
        self.masses = np.atleast_1d(np.asarray(self.masses, dtype=np.float64))
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.velocities.shape != (n, 3):
            raise ValueError(
                f"velocities shape {self.velocities.shape} != positions {self.positions.shape}"
            )
        if self.types.shape != (n,):
            raise ValueError(f"types must be (N,), got {self.types.shape}")
        if len(self.masses) and (
            np.any(self.types < 0) or np.any(self.types >= len(self.masses))
        ):
            raise ValueError(
                f"types reference masses outside [0, {len(self.masses)})"
            )
        if np.any(self.masses <= 0):
            raise ValueError(f"masses must be positive, got {self.masses}")
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        else:
            self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
            if self.ids.shape != (n,):
                raise ValueError(f"ids must be (N,), got {self.ids.shape}")

    @classmethod
    def from_positions(
        cls,
        positions: np.ndarray,
        box: Box,
        *,
        mass: float = 1.0,
        types: np.ndarray | None = None,
        masses: np.ndarray | None = None,
    ) -> "AtomsState":
        """Zero-velocity state, single type unless ``types`` given."""
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        if types is None:
            types = np.zeros(n, dtype=np.int64)
        if masses is None:
            masses = np.array([mass], dtype=np.float64)
        return cls(
            positions=positions,
            velocities=np.zeros((n, 3)),
            types=np.asarray(types),
            masses=np.asarray(masses),
            box=box,
        )

    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return len(self.positions)

    @property
    def atom_masses(self) -> np.ndarray:
        """Per-atom masses (N,), expanded from per-type masses."""
        return self.masses[self.types]

    def kinetic_energy(self) -> float:
        """Total kinetic energy (eV)."""
        v2 = np.einsum("ij,ij->i", self.velocities, self.velocities)
        return float(0.5 * MVV2E * np.sum(self.atom_masses * v2))

    def temperature(self) -> float:
        """Instantaneous temperature (K), 3N degrees of freedom."""
        return kinetic_energy_to_temperature(self.kinetic_energy(), 3 * self.n_atoms)

    def momentum(self) -> np.ndarray:
        """Total momentum vector (g/mol * A/ps)."""
        return (self.atom_masses[:, None] * self.velocities).sum(axis=0)

    def copy(self) -> "AtomsState":
        """Deep copy (box shared: boxes are not mutated by integration)."""
        return AtomsState(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            types=self.types.copy(),
            masses=self.masses.copy(),
            box=self.box,
            ids=self.ids.copy(),
        )

    def reorder(self, perm: np.ndarray) -> "AtomsState":
        """New state with atoms permuted by ``perm`` (ids follow atoms)."""
        perm = np.asarray(perm)
        if sorted(perm.tolist()) != list(range(self.n_atoms)):
            raise ValueError("perm must be a permutation of all atom indices")
        return AtomsState(
            positions=self.positions[perm],
            velocities=self.velocities[perm],
            types=self.types[perm],
            masses=self.masses.copy(),
            box=self.box,
            ids=self.ids[perm],
        )
