"""Velocity initialization and temperature control.

The paper's benchmark configurations are equilibrated at 290 K before
timing (Sec. IV-B); these utilities reproduce that preparation:
Maxwell-Boltzmann velocity draws with momentum zeroing, hard rescaling,
and a Berendsen weak-coupling thermostat for gentle equilibration.
"""

from __future__ import annotations

import numpy as np

from repro.constants import thermal_velocity_scale
from repro.md.state import AtomsState

__all__ = [
    "maxwell_boltzmann_velocities",
    "zero_net_momentum",
    "rescale_to_temperature",
    "BerendsenThermostat",
]


def maxwell_boltzmann_velocities(
    state: AtomsState,
    temperature: float,
    rng: np.random.Generator | None = None,
    *,
    zero_momentum: bool = True,
    exact: bool = True,
) -> None:
    """Draw velocities from the Maxwell-Boltzmann distribution in place.

    With ``zero_momentum`` the center-of-mass drift is removed; with
    ``exact`` the result is rescaled so the instantaneous temperature is
    exactly the requested one (LAMMPS ``velocity ... create`` behaviour).
    """
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if temperature == 0.0:
        state.velocities[:] = 0.0
        return
    if rng is None:
        # An implicit unseeded generator would silently make the run
        # irreproducible; demand the caller thread a seeded stream
        # (e.g. repro.runtime.rng.seed_streams(seed)["velocities"]).
        raise ValueError(
            "maxwell_boltzmann_velocities requires an explicit rng for "
            "temperature > 0; pass np.random.default_rng(seed) or a "
            "runtime seed stream"
        )
    sigma = np.array(
        [thermal_velocity_scale(temperature, m) for m in state.masses]
    )
    state.velocities[:] = rng.normal(size=(state.n_atoms, 3)) * sigma[
        state.types, None
    ]
    if zero_momentum:
        zero_net_momentum(state)
    if exact:
        rescale_to_temperature(state, temperature)


def zero_net_momentum(state: AtomsState) -> None:
    """Remove center-of-mass velocity in place."""
    m = state.atom_masses
    v_com = (m[:, None] * state.velocities).sum(axis=0) / m.sum()
    state.velocities -= v_com


def rescale_to_temperature(state: AtomsState, temperature: float) -> None:
    """Hard-rescale velocities to the exact target temperature in place."""
    current = state.temperature()
    if current <= 0:
        if temperature > 0:
            raise ValueError(
                "cannot rescale zero velocities to a finite temperature; "
                "draw velocities first"
            )
        return
    state.velocities *= np.sqrt(temperature / current)


class BerendsenThermostat:
    """Weak-coupling thermostat: lambda = sqrt(1 + dt/tau (T0/T - 1))."""

    def __init__(self, temperature: float, tau_fs: float = 100.0) -> None:
        if temperature < 0:
            raise ValueError(f"temperature must be non-negative, got {temperature}")
        if tau_fs <= 0:
            raise ValueError(f"coupling time must be positive, got {tau_fs}")
        self.temperature = float(temperature)
        self.tau_ps = tau_fs / 1000.0

    def apply(self, state: AtomsState, dt_fs: float) -> None:
        """Scale velocities toward the target temperature in place."""
        current = state.temperature()
        if current <= 0:
            return
        dt_ps = dt_fs / 1000.0
        lam2 = 1.0 + (dt_ps / self.tau_ps) * (self.temperature / current - 1.0)
        state.velocities *= np.sqrt(max(lam2, 0.0))
