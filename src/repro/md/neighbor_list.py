"""Verlet neighbor lists with a skin distance.

The candidate set is built once from a cell list at ``cutoff + skin``
and reused until any atom has moved more than ``skin / 2`` since the
build — the standard LAMMPS policy the paper contrasts against (the
WSE implementation rebuilds every step; neighbor-list *reuse* is one of
its projected future optimizations, Table V row "Neighbor list").

Candidates and the resulting :class:`~repro.potentials.base.PairTable`
are *half* lists — each undirected pair stored once, the software
analogue of the paper's Force Symmetry (Sec. VI-A).  Callers that need
the double-counted view expand with ``PairTable.directed()``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import active_backend
from repro.md.boundary import Box
from repro.md.cell_list import CellList
from repro.obs import metrics
from repro.potentials.base import PairTable

__all__ = ["NeighborList"]


class NeighborList:
    """Reusable half candidate pair list.

    Parameters
    ----------
    box, cutoff:
        Interaction geometry.
    skin:
        Extra candidate radius (A).  Zero forces a rebuild every query.
    """

    def __init__(self, box: Box, cutoff: float, skin: float = 0.5) -> None:
        if skin < 0:
            raise ValueError(f"skin must be non-negative, got {skin}")
        self.box = box
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self._any_periodic = bool(np.any(box.periodic))
        self._cells = CellList(box, self.cutoff + self.skin)
        self._cand_i: np.ndarray | None = None
        self._cand_j: np.ndarray | None = None
        self._ref_positions: np.ndarray | None = None
        self._built_n_atoms = -1
        self.n_builds = 0
        self.last_pair_count = 0

    def rebuild_reason(self, positions: np.ndarray) -> str | None:
        """Why the candidate set must be rebuilt, or ``None`` to reuse.

        Reasons: ``"first"`` (no build yet), ``"skin_zero"`` (skin 0
        forces a rebuild every query), ``"size"`` (atom count changed —
        the cached candidate indices would be stale or out of range),
        ``"displacement"`` (some atom moved more than skin/2).
        """
        if self._ref_positions is None:
            return "first"
        if self.skin == 0.0:
            return "skin_zero"
        if len(positions) != len(self._ref_positions):
            return "size"
        delta = positions - self._ref_positions
        # displacement is physical distance; periodic wrap is irrelevant
        # for "how far did it move" as integration never wraps positions
        max_d2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        if max_d2 > (self.skin / 2.0) ** 2:
            return "displacement"
        return None

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True if any atom moved more than skin/2 since the last build."""
        return self.rebuild_reason(positions) is not None

    def rebuild(self, positions: np.ndarray) -> None:
        """Rebuild the candidate set from scratch.

        Raw stencil candidates are Verlet-prefiltered to
        ``cutoff + skin`` at the build positions: the skin/2 rebuild
        policy guarantees no dropped pair can re-enter the cutoff before
        the next rebuild (each atom moves < skin/2, so a pair's distance
        shrinks by < skin).  The per-query distance filter then runs on
        the ~O(1) interacting superset instead of the full stencil
        stream — on ref-Ta that is ~8x fewer candidates per step.
        """
        self._cells.build(positions)
        ci, cj = self._cells.candidate_pairs()
        reach = self.cutoff + self.skin
        # inclusive filter at the reach; rebuilds only need the kept
        # indices, so the kernel skips materializing rij/r
        self._cand_i, self._cand_j, _, _ = active_backend().neighbor_prefilter(
            positions, ci, cj, self.box.lengths, self.box.periodic,
            reach, inclusive=True, compute_r=False,
        )
        self._ref_positions = np.array(positions, copy=True)
        self._built_n_atoms = len(self._ref_positions)
        self.n_builds += 1

    def pairs(self, positions: np.ndarray) -> PairTable:
        """Half interacting pairs at the *current* positions.

        Rebuilds the candidate set first if the skin criterion demands
        it, then distance-filters candidates to the true cutoff.  Each
        undirected pair appears once (``half=True``); kernels scatter
        both halves, so no physics is lost.
        """
        positions = np.asarray(positions, dtype=np.float64)
        reason = self.rebuild_reason(positions)
        if reason is None and self._built_n_atoms != len(positions):
            # Belt-and-braces: never index stale candidates into a
            # differently-sized position array, even if the reference
            # positions were tampered with between queries.
            reason = "stale_guard"
        reg = metrics()
        if reason is not None:
            self.rebuild(positions)
            reg.counter("neighbor.rebuilds").inc()
            reg.counter(f"neighbor.rebuilds.{reason}").inc()
        else:
            reg.counter("neighbor.reuses").inc()
        # strict filter at the true cutoff, minimum image applied along
        # the periodic dimensions inside the kernel
        i, j, rij, r = active_backend().neighbor_prefilter(
            positions, self._cand_i, self._cand_j,
            self.box.lengths, self.box.periodic,
            self.cutoff, inclusive=False, compute_r=True,
        )
        table = PairTable(i=i, j=j, rij=rij, r=r, half=True)
        self.last_pair_count = table.n_pairs
        return table

    @property
    def n_candidates(self) -> int:
        """Size of the current candidate set (half pairs)."""
        return 0 if self._cand_i is None else len(self._cand_i)
