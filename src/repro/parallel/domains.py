"""Spatial column decomposition for the sharded force pipeline.

The paper maps atoms to PEs through a locality-preserving assignment of
spatial cells to the fabric's rows and columns; the host-side analogue
here slices the (fully open) box into contiguous **columns along x**,
one per worker.  Everything in this module is pure array logic — the
worker processes call it, and the test suite calls it single-process to
pin down the decomposition invariants without any multiprocessing.

Invariants
----------
* The owned intervals ``[edges[k], edges[k+1])`` partition the real
  line (``edges[0] = -inf``, ``edges[-1] = +inf``), so every atom is
  owned by exactly one shard.
* A shard's *local* set is its owned slab dilated by the halo width
  (``cutoff + skin``): every pair a shard is responsible for has both
  members local, because a candidate pair's build-time separation never
  exceeds the halo width.
* A pair is kept by the shard that **owns the smaller global id** — a
  total tie-free rule, so across shards each undirected candidate pair
  appears exactly once (the seam analogue of the half pair list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import active_backend
from repro.md.boundary import Box
from repro.md.cell_list import CellList
from repro.potentials.base import PairTable

__all__ = ["plan_columns", "ShardPairs", "build_shard_pairs"]

#: Shard boxes are fully open: the distance kernel never wraps, so the
#: box lengths it receives are irrelevant placeholders.
_OPEN_PERIODIC = np.zeros(3, dtype=bool)
_OPEN_LENGTHS = np.ones(3, dtype=np.float64)


def plan_columns(
    x: np.ndarray, n_shards: int, cell_width: float
) -> np.ndarray:
    """Cell-aligned column edges with near-equal atom counts.

    Returns ``(n_shards + 1,)`` edges with ``edges[0] = -inf`` and
    ``edges[-1] = +inf``; shard ``k`` owns ``[edges[k], edges[k+1])``.
    Interior edges lie on boundaries of a global x-column grid of width
    >= ``cell_width`` (the cell size the shards bin at, so domains
    align with whole cell columns), chosen where the cumulative atom
    histogram crosses each equal share.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    edges = np.full(n_shards + 1, np.inf)
    edges[0] = -np.inf
    if n_shards == 1 or len(x) == 0:
        return edges
    eps = 1e-9
    lo = float(x.min()) - eps
    hi = float(x.max()) + eps
    extent = max(hi - lo, cell_width)
    ncol = max(1, int(np.floor(extent / cell_width)))
    width = extent / ncol
    col = np.clip((x - lo) // width, 0, ncol - 1).astype(np.int64)
    cum = np.cumsum(np.bincount(col, minlength=ncol))
    n = len(x)
    for k in range(1, n_shards):
        target = k * n / n_shards
        idx = int(np.searchsorted(cum, target))
        edges[k] = lo + (idx + 1) * width
    # Monotonicity: crowded columns can make consecutive targets pick
    # the same boundary; the duplicate edge just yields an empty shard.
    np.maximum.accumulate(edges, out=edges)
    return edges


@dataclass
class ShardPairs:
    """One shard's cached candidate pairs, in global atom indices.

    Built at (re)build time and reused until the next coordinated
    rebuild; :meth:`pairs` distance-filters to the true cutoff at the
    *current* positions, mirroring the serial
    :class:`~repro.md.neighbor_list.NeighborList` query.
    """

    gi: np.ndarray
    gj: np.ndarray
    n_local: int
    n_owned: int

    @property
    def n_candidates(self) -> int:
        return len(self.gi)

    def pairs(self, positions: np.ndarray, cutoff: float) -> PairTable:
        """Half interacting pairs at the current positions (open box)."""
        i, j, rij, r = active_backend().neighbor_prefilter(
            positions, self.gi, self.gj, _OPEN_LENGTHS, _OPEN_PERIODIC,
            cutoff, inclusive=False, compute_r=True,
        )
        return PairTable(i=i, j=j, rij=rij, r=r, half=True)


def build_shard_pairs(
    positions: np.ndarray,
    edges: np.ndarray,
    shard: int,
    *,
    box: Box,
    reach: float,
    cells: CellList | None = None,
) -> ShardPairs:
    """One shard's Verlet-prefiltered candidate pairs.

    ``reach`` is ``cutoff + skin``: it is the Verlet prefilter radius
    *and* the halo width (a kept pair's build separation is <= reach,
    so the partner of any owned atom lies inside the halo slab).
    ``cells`` lets a persistent worker reuse its :class:`CellList`
    buffers across rebuilds.
    """
    lo, hi = float(edges[shard]), float(edges[shard + 1])
    x = positions[:, 0]
    local = np.nonzero((x >= lo - reach) & (x < hi + reach))[0]
    n_owned = int(np.count_nonzero((x >= lo) & (x < hi)))
    empty = np.empty(0, dtype=np.int64)
    if len(local) == 0:
        return ShardPairs(empty, empty, 0, n_owned)
    if cells is None:
        cells = CellList(box, reach)
    cells.build(positions[local])
    ci, cj = cells.candidate_pairs()
    gi = local[ci]
    gj = local[cj]
    # Seam rule: keep the pair iff this shard owns the smaller global
    # id.  Ownership intervals partition the line, so exactly one shard
    # keeps each undirected candidate pair.
    xa = x[np.minimum(gi, gj)]
    keep = (xa >= lo) & (xa < hi)
    gi = gi[keep]
    gj = gj[keep]
    if len(gi) == 0:
        return ShardPairs(empty, empty, len(local), n_owned)
    # Verlet prefilter at the build positions — identical semantics to
    # the serial NeighborList.rebuild, so shard unions reproduce the
    # serial candidate set exactly.
    gi, gj, _, _ = active_backend().neighbor_prefilter(
        positions, gi, gj, _OPEN_LENGTHS, _OPEN_PERIODIC,
        reach, inclusive=True, compute_r=False,
    )
    return ShardPairs(gi, gj, len(local), n_owned)
