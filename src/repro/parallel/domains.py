"""Spatial domain decomposition for the sharded force pipeline.

The paper maps atoms to PEs through a locality-preserving assignment of
spatial cells to the fabric's rows and columns; the host-side analogue
here tiles the (fully open) box into a :class:`DomainGrid` of
``px x py`` contiguous rectangles — ``px`` columns along x crossed with
``py`` rows along y — one tile per worker.  The historical 1D x-column
decomposition (:func:`plan_columns`) is the ``px x 1`` special case.
Everything in this module is pure array logic — the worker processes
call it, and the test suite calls it single-process to pin down the
decomposition invariants without any multiprocessing.

Invariants
----------
* Each axis's owned intervals ``[edges[k], edges[k+1])`` partition the
  real line (``edges[0] = -inf``, ``edges[-1] = +inf``), so the tile
  rectangles partition the plane and every atom is owned by exactly
  one tile.
* A tile's *local* set is its owned rectangle dilated by the halo width
  (``cutoff + skin``) along x and y: every pair a tile is responsible
  for has both members local, because a candidate pair's build-time
  separation never exceeds the halo width.
* A pair is kept by the tile that **owns the smaller global id** — a
  total tie-free rule, so across tiles each undirected candidate pair
  appears exactly once (the seam analogue of the half pair list).
  Nothing in the rule depends on the edges being balanced or
  cell-aligned; any partition of the plane works.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.kernels import active_backend
from repro.md.boundary import Box
from repro.md.cell_list import CellList
from repro.potentials.base import PairTable

__all__ = [
    "DomainGrid",
    "plan_axis",
    "plan_grid",
    "plan_columns",
    "ShardPairs",
    "tile_local_ids",
    "owned_mask_local",
    "build_local_pairs",
    "build_tile_pairs",
    "build_shard_pairs",
    "split_interior_boundary",
    "warn_halo_dominated",
]

#: Shard boxes are fully open: the distance kernel never wraps, so the
#: box lengths it receives are irrelevant placeholders.
_OPEN_PERIODIC = np.zeros(3, dtype=bool)
_OPEN_LENGTHS = np.ones(3, dtype=np.float64)

#: Degenerate-decomposition warnings already issued (once per distinct
#: (axis, requested, available) shape per process, mirroring the
#: registry's once-per-name policy).
_warned_degenerate: set[tuple] = set()


def plan_axis(
    coords: np.ndarray, n_parts: int, cell_width: float, *, axis: str = "x"
) -> np.ndarray:
    """Cell-aligned interval edges with near-equal atom counts.

    Returns ``(n_parts + 1,)`` edges with ``edges[0] = -inf`` and
    ``edges[-1] = +inf``; part ``k`` owns ``[edges[k], edges[k+1])``.
    Interior edges lie on boundaries of a global column grid of width
    >= ``cell_width`` (the cell size the shards bin at, so domains
    align with whole cell columns), chosen where the cumulative atom
    histogram crosses each equal share.

    When ``n_parts`` exceeds the number of cell columns the data spans,
    the effective part count is capped at the column count (the balance
    targets are spread over the cap, and the trailing parts stay empty)
    and a once-per-shape :class:`RuntimeWarning` says so — many silently
    empty shards otherwise look like a balanced decomposition.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    edges = np.full(n_parts + 1, np.inf)
    edges[0] = -np.inf
    if n_parts == 1 or len(coords) == 0:
        return edges
    eps = 1e-9
    lo = float(coords.min()) - eps
    hi = float(coords.max()) + eps
    extent = max(hi - lo, cell_width)
    ncol = max(1, int(np.floor(extent / cell_width)))
    effective = min(n_parts, ncol)
    if effective < n_parts:
        key = (axis, n_parts, ncol)
        if key not in _warned_degenerate:
            _warned_degenerate.add(key)
            warnings.warn(
                f"{axis}-axis decomposition requested {n_parts} domains "
                f"but the data spans only {ncol} cell column(s); capping "
                f"at {effective} ({n_parts - effective} shard(s) stay "
                f"empty)",
                RuntimeWarning,
                stacklevel=3,
            )
    width = extent / ncol
    col = np.clip((coords - lo) // width, 0, ncol - 1).astype(np.int64)
    cum = np.cumsum(np.bincount(col, minlength=ncol))
    n = len(coords)
    for k in range(1, effective):
        target = k * n / effective
        idx = int(np.searchsorted(cum, target))
        edges[k] = lo + (idx + 1) * width
    # Monotonicity: crowded columns can make consecutive targets pick
    # the same boundary; the duplicate edge just yields an empty shard.
    np.maximum.accumulate(edges, out=edges)
    return edges


def plan_columns(
    x: np.ndarray, n_shards: int, cell_width: float
) -> np.ndarray:
    """1D x-column edges — the ``px x 1`` special case of :func:`plan_grid`."""
    return plan_axis(x, n_shards, cell_width, axis="x")


@dataclass(frozen=True)
class DomainGrid:
    """A ``px x py`` rectangular tiling of the xy-plane.

    Tile ``k`` sits at column ``ix = k % px`` and row ``iy = k // px``
    and owns the half-open rectangle
    ``[x_edges[ix], x_edges[ix+1]) x [y_edges[iy], y_edges[iy+1])``.
    Both edge arrays run from ``-inf`` to ``+inf``, so the tiles
    partition the plane and the z-axis is never decomposed (the paper's
    thin-slab workloads are at most a few cells thick in z).

    The grid is a plain picklable value: the parent plans it on a
    rebuild step and broadcasts it to the workers over whatever
    transport is in use.
    """

    px: int
    py: int
    x_edges: np.ndarray
    y_edges: np.ndarray

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ValueError(
                f"topology must be at least 1x1, got {self.px}x{self.py}"
            )
        if len(self.x_edges) != self.px + 1 or len(self.y_edges) != self.py + 1:
            raise ValueError(
                f"edge arrays must have px+1/py+1 entries, got "
                f"{len(self.x_edges)}/{len(self.y_edges)} for "
                f"{self.px}x{self.py}"
            )

    @property
    def n_tiles(self) -> int:
        return self.px * self.py

    def tile_coords(self, tile: int) -> tuple[int, int]:
        """``(ix, iy)`` of tile ``tile`` (row-major over columns first)."""
        return tile % self.px, tile // self.px

    def tile_bounds(self, tile: int) -> tuple[float, float, float, float]:
        """``(xlo, xhi, ylo, yhi)`` of the tile's owned rectangle."""
        ix, iy = self.tile_coords(tile)
        return (
            float(self.x_edges[ix]),
            float(self.x_edges[ix + 1]),
            float(self.y_edges[iy]),
            float(self.y_edges[iy + 1]),
        )

    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Owning tile index per atom (total: every atom has one)."""
        ix = np.searchsorted(self.x_edges, positions[:, 0], side="right") - 1
        iy = np.searchsorted(self.y_edges, positions[:, 1], side="right") - 1
        ix = np.clip(ix, 0, self.px - 1)
        iy = np.clip(iy, 0, self.py - 1)
        return iy * self.px + ix


def plan_grid(
    positions: np.ndarray, px: int, py: int, cell_width: float
) -> DomainGrid:
    """Balanced cell-aligned ``px x py`` tiling of the current positions.

    Each axis is planned independently (a tensor-product grid), so tile
    atom counts are near-equal for near-separable densities — the
    paper's uniform slabs — and the seam rule stays correct regardless.
    """
    return DomainGrid(
        px=px,
        py=py,
        x_edges=plan_axis(positions[:, 0], px, cell_width, axis="x"),
        y_edges=plan_axis(positions[:, 1], py, cell_width, axis="y"),
    )


@dataclass
class ShardPairs:
    """One shard's cached candidate pairs, in global atom indices.

    Built at (re)build time and reused until the next coordinated
    rebuild; :meth:`pairs` distance-filters to the true cutoff at the
    *current* positions, mirroring the serial
    :class:`~repro.md.neighbor_list.NeighborList` query.  ``r_build``
    (candidate separations at the build positions, when the builder
    recorded them) enables the cross-step Verlet pre-mask below.
    """

    gi: np.ndarray
    gj: np.ndarray
    n_local: int
    n_owned: int
    r_build: np.ndarray | None = None

    @property
    def n_candidates(self) -> int:
        return len(self.gi)

    def r_build_max(self) -> float:
        """Largest build-time candidate separation (cached; 0.0 if none).

        The one scalar both cross-step bounds below pivot on, computed
        once per rebuild window.
        """
        m = getattr(self, "_r_build_max", None)
        if m is None:
            m = float(self.r_build.max()) if len(self.r_build) else 0.0
            self._r_build_max = m
        return m

    def premask_can_cut(self, cutoff: float) -> bool:
        """Whether the Verlet pre-mask can ever exclude a candidate.

        The pre-mask bound ``cutoff + 2 * max_disp`` is tightest at
        zero displacement, so when no candidate sat beyond ``cutoff``
        at build time — a packed crystal whose populated shells all
        fall inside the cutoff — the mask provably keeps every
        candidate for the entire reuse window.  Callers then skip both
        the mask and the per-step displacement tracking that feeds it
        (a pure wall-clock cut: the mask is a superset filter, so
        skipping it emits identical bits).
        """
        if self.r_build is None:
            return False
        # mirror the pairs() mask epsilon: a candidate at
        # cutoff + 1e-9 is kept even at zero displacement
        return self.r_build_max() > cutoff + 1e-9

    def pairs(
        self,
        positions: np.ndarray,
        cutoff: float,
        max_disp: float | None = None,
    ) -> PairTable:
        """Half interacting pairs at the current positions (open box).

        ``max_disp`` is an upper bound on the displacement of any local
        atom since the build (any valid bound works — the pipeline
        passes the parent's *global* bound, already in hand from the
        skin trigger).  When known (and ``r_build`` was recorded) it
        powers two provably bit-neutral cross-step cuts:

        * **all-inside**: when ``max(r_build) + 2 * max_disp < cutoff``
          no candidate can have crossed the cutoff outward, so the
          strict filter's mask is all-True and the backend skips the
          predicate and its four compaction copies outright
          (``assume_inside`` — identical values, no copies).  In a
          packed crystal whose populated shells sit inside the cutoff
          this holds for the *entire* reuse window.
        * **pre-mask**: otherwise, candidates with
          ``r_build > cutoff + 2 * max_disp`` provably cannot have
          closed inside the cutoff — each endpoint moved at most
          ``max_disp`` — so their separations are never computed.  An
          order-preserving *superset* cut (the strict filter below
          still decides every survivor), applied only when it removes
          enough candidates to pay for its own index gathers.

        The epsilons absorb the floating-point slack in ``r_build``
        and ``max_disp``; either way the emitted pair list is
        bit-for-bit the plain strict-filtered one.
        """
        gi, gj = self.gi, self.gj
        all_inside = False
        if max_disp is not None and self.r_build is not None:
            bound = 2.0 * max_disp + 1e-9
            if self.r_build_max() + bound < cutoff:
                all_inside = True
            elif self.premask_can_cut(cutoff):
                # The cut weakens monotonically as the displacement
                # bound grows (a bigger bound keeps more candidates),
                # and the bound itself only grows within a reuse
                # window — so once the cut fails to pay at some bound,
                # it fails at every later one and the probe is skipped
                # for the rest of the window (bit-neutral: an unapplied
                # probe never touched the emitted pairs).
                dead = getattr(self, "_premask_dead_bound", np.inf)
                if bound < dead:
                    sel = self.r_build <= cutoff + bound
                    if np.count_nonzero(sel) <= 0.9 * len(sel):
                        gi = gi[sel]
                        gj = gj[sel]
                    else:
                        self._premask_dead_bound = bound
        i, j, rij, r = active_backend().neighbor_prefilter(
            positions, gi, gj, _OPEN_LENGTHS, _OPEN_PERIODIC,
            cutoff, inclusive=False, compute_r=True,
            assume_inside=all_inside,
        )
        return PairTable(i=i, j=j, rij=rij, r=r, half=True)


def tile_local_ids(
    positions: np.ndarray, grid: DomainGrid, tile: int, reach: float
) -> np.ndarray:
    """Global ids of a tile's *local* set — owned rectangle dilated by
    the halo width ``reach`` along x and y — in ascending order.

    Ascending order matters: it makes local-index comparisons order-
    isomorphic to global-id comparisons, so the seam rule evaluated in
    local indices (:func:`build_local_pairs`) keeps exactly the pairs
    the global rule would.
    """
    xlo, xhi, ylo, yhi = grid.tile_bounds(tile)
    x = positions[:, 0]
    y = positions[:, 1]
    return np.nonzero(
        (x >= xlo - reach) & (x < xhi + reach)
        & (y >= ylo - reach) & (y < yhi + reach)
    )[0]


def owned_mask_local(
    local_positions: np.ndarray,
    bounds: tuple[float, float, float, float],
) -> np.ndarray:
    """Which local atoms fall in the tile's owned rectangle.

    Evaluated from the same half-open comparisons the parent's global
    ownership test uses, so a worker holding only its halo pack makes
    bit-identical ownership decisions.
    """
    xlo, xhi, ylo, yhi = bounds
    x = local_positions[:, 0]
    y = local_positions[:, 1]
    return (x >= xlo) & (x < xhi) & (y >= ylo) & (y < yhi)


def build_local_pairs(
    local_positions: np.ndarray,
    owned: np.ndarray,
    *,
    box: Box,
    reach: float,
    cells: CellList | None = None,
) -> ShardPairs:
    """One tile's candidate pairs in *local* index space.

    This is the worker-side build: the worker holds only its halo pack
    (owned + ghost atoms, globally ascending), never the full position
    array.  Because the pack preserves global order, the cell binning,
    the own-smaller-id seam rule and the Verlet prefilter all make the
    same decisions as a global-index build — mapping the result through
    the pack's id list reproduces :func:`build_tile_pairs` exactly
    (pinned by the seam-rule property sweep in ``tests/parallel``).
    """
    n_local = len(local_positions)
    n_owned = int(np.count_nonzero(owned))
    empty = np.empty(0, dtype=np.int64)
    empty_r = np.empty(0, dtype=np.float64)
    if n_local == 0:
        return ShardPairs(empty, empty, 0, n_owned, r_build=empty_r)
    if cells is None:
        cells = CellList(box, reach)
    cells.build(local_positions)
    # Dead-cell pruning: a pair both of whose endpoints sit in cells
    # with no owned atom can never pass the seam rule below, so the
    # halo-ring-vs-halo-ring part of the enumeration is skipped.
    ci, cj = cells.candidate_pairs(live=owned)
    # Seam rule: keep the pair iff this tile owns the smaller id.  The
    # local ids are ascending in global id, so min() in local indices
    # picks the same member the global rule would.
    keep = owned[np.minimum(ci, cj)]
    li = ci[keep]
    lj = cj[keep]
    if len(li) == 0:
        return ShardPairs(empty, empty, n_local, n_owned, r_build=empty_r)
    # Verlet prefilter at the build positions — identical semantics to
    # the serial NeighborList.rebuild, so tile unions reproduce the
    # serial candidate set exactly.  The kept separations are recorded
    # for the cross-step pre-mask in :meth:`ShardPairs.pairs`.
    li, lj, _, r = active_backend().neighbor_prefilter(
        local_positions, li, lj, _OPEN_LENGTHS, _OPEN_PERIODIC,
        reach, inclusive=True, compute_r=True,
    )
    return ShardPairs(li, lj, n_local, n_owned, r_build=r)


def build_tile_pairs(
    positions: np.ndarray,
    grid: DomainGrid,
    tile: int,
    *,
    box: Box,
    reach: float,
    cells: CellList | None = None,
) -> ShardPairs:
    """One tile's Verlet-prefiltered candidate pairs, in global ids.

    ``reach`` is ``cutoff + skin``: it is the Verlet prefilter radius
    *and* the halo width (a kept pair's build separation is <= reach,
    so the partner of any owned atom lies inside the halo ring).
    ``cells`` lets a persistent worker reuse its :class:`CellList`
    buffers across rebuilds.

    Implemented as :func:`build_local_pairs` on the tile's halo pack
    mapped back to global ids — the single-process twin of what a
    worker computes from its pack, which is what lets the test suite
    pin the distributed build against this function.
    """
    local = tile_local_ids(positions, grid, tile, reach)
    sp = build_local_pairs(
        positions[local],
        owned_mask_local(positions[local], grid.tile_bounds(tile)),
        box=box,
        reach=reach,
        cells=cells,
    )
    return ShardPairs(
        local[sp.gi], local[sp.gj], sp.n_local, sp.n_owned,
        r_build=sp.r_build,
    )


def split_interior_boundary(
    sp: ShardPairs, owned: np.ndarray
) -> tuple[ShardPairs, ShardPairs]:
    """Partition candidates into an interior and a boundary shard.

    A candidate is *interior* when both endpoints are owned — its
    separation never reads a ghost row, so the interior filter and the
    interior density/force passes can run before any halo data arrives.
    Everything else (at least one ghost endpoint) is *boundary* and must
    wait for the step's ghost rows.

    The partition is a stable mask split: candidate order within each
    class is the build order, and ``interior ∪ boundary`` in that fixed
    (interior-then-boundary) order is a permutation of the original
    list.  Per-atom accumulation stays bitwise-equal to the unsplit pass
    because the merge adds whole per-atom partial sums in a pinned
    order (interior + boundary) — see ``ShardWorker`` — rather than
    re-interleaving per-pair contributions.  ``r_build`` subsets ride
    along, so the all-inside / pre-mask cuts stay available per class
    (with per-class ``r_build_max``, which can only tighten the bound).
    """
    interior = owned[sp.gi] & owned[sp.gj]
    r_build = sp.r_build
    inside = ShardPairs(
        sp.gi[interior], sp.gj[interior], sp.n_local, sp.n_owned,
        r_build=None if r_build is None else r_build[interior],
    )
    outside = ~interior
    seam = ShardPairs(
        sp.gi[outside], sp.gj[outside], sp.n_local, sp.n_owned,
        r_build=None if r_build is None else r_build[outside],
    )
    return inside, seam


def warn_halo_dominated(
    positions: np.ndarray, px: int, py: int, reach: float
) -> None:
    """Warn once when tiles are so narrow the halo dominates them.

    The decomposition stays *correct* for any tile width (the seam
    rule only needs owned-rectangle-dilated-by-reach locality), but
    when an axis's average tile width drops below ``2 x reach`` the
    ghost ring is wider than the owned region, so the sparse halo
    exchange degenerates toward the full broadcast it replaced.  Keyed
    into the same once-per-shape cache as the capped-decomposition
    warning and re-armed by ``repro.parallel.reset_warnings()``.
    """
    if len(positions) == 0:
        return
    for axis, coords, parts in (
        ("x", positions[:, 0], px),
        ("y", positions[:, 1], py),
    ):
        if parts < 2:
            continue
        width = (float(coords.max()) - float(coords.min())) / parts
        if width >= 2.0 * reach:
            continue
        key = ("halo", axis, parts)
        if key in _warned_degenerate:
            continue
        _warned_degenerate.add(key)
        warnings.warn(
            f"{axis}-axis tiles average {width:.2f} wide but the halo "
            f"reaches {reach:.2f} on each side; ghost regions dominate "
            f"owned regions, so the sparse halo exchange carries "
            f"near-broadcast volume",
            RuntimeWarning,
            stacklevel=3,
        )


def build_shard_pairs(
    positions: np.ndarray,
    edges: np.ndarray,
    shard: int,
    *,
    box: Box,
    reach: float,
    cells: CellList | None = None,
) -> ShardPairs:
    """1D column shard pairs — :func:`build_tile_pairs` on a ``px x 1`` grid."""
    edges = np.asarray(edges, dtype=np.float64)
    grid = DomainGrid(
        px=len(edges) - 1,
        py=1,
        x_edges=edges,
        y_edges=np.array([-np.inf, np.inf]),
    )
    return build_tile_pairs(
        positions, grid, shard, box=box, reach=reach, cells=cells
    )
