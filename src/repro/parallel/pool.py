"""Persistent fork-based worker pool for the sharded force pipeline.

Each worker is a long-lived forked process driven over a private pipe
by three tiny commands per timestep — ``neighbor``, ``density``,
``force`` — mirroring the EAM two-pass structure (the globally reduced
``rho_bar`` must pass through the parent's embedding stage between the
density and force halves).  All array traffic rides the shared-memory
arena the workers inherited at fork; a command message carries at most
the new column edges on a rebuild step.

Workers are daemons: an abandoned pool dies with the parent instead of
orphaning processes.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from repro.parallel.domains import build_shard_pairs

__all__ = ["WorkerPool", "fork_available"]

#: Exception types a worker may re-raise by name in the parent, so the
#: parallel path surfaces the same error classes the serial path does
#: (e.g. the pair-distance cap's FloatingPointError on atom overlap).
_RERAISABLE = {
    "FloatingPointError": FloatingPointError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
}


def fork_available() -> bool:
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_main(conn, wid: int, shared: dict, cfg: dict) -> None:
    """Worker loop: serve neighbor/density/force commands until stop.

    ``shared`` holds numpy views over the fork-inherited arena;
    ``cfg`` carries the (static) potential, box and geometry scalars.
    Everything mutable per step lives in the arena or in this frame.
    """
    from repro.kernels import set_backend
    from repro.md.cell_list import CellList

    # The "parallel" backend name only means "drive a pool from the
    # parent"; each worker's inner loops run a serial backend — numpy
    # by default, or numba when the pipeline was configured to stack
    # the JIT tier on top of sharding (REPRO_PARALLEL_INNER_BACKEND).
    set_backend(cfg.get("inner_backend", "numpy"))
    positions = shared["positions"]
    types = shared["types"]
    f_der = shared["f_der"]
    rho_slot = shared["rho"][wid]
    epair_slot = shared["epair"][wid]
    force_slot = shared["forces"][wid]
    potential = cfg["potential"]
    cutoff = cfg["cutoff"]
    reach = cfg["reach"]
    n_atoms = cfg["n_atoms"]
    cells = CellList(cfg["box"], reach)  # buffers reused across rebuilds
    shard = None
    table = None
    cache: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        t0 = time.perf_counter()
        try:
            if cmd == "neighbor":
                edges = msg[1]
                if edges is not None:
                    shard = build_shard_pairs(
                        positions, edges, wid,
                        box=cfg["box"], reach=reach, cells=cells,
                    )
                table = shard.pairs(positions, cutoff)
                conn.send(
                    ("ok", table.n_pairs, time.perf_counter() - t0)
                )
            elif cmd == "density":
                rho, cache = potential.fused_density(n_atoms, table, types)
                rho_slot[:] = rho
                conn.send(("ok", table.n_pairs, time.perf_counter() - t0))
            elif cmd == "force":
                e_pair, forces = potential.fused_pair_force(
                    n_atoms, table, f_der, types, cache=cache
                )
                epair_slot[:] = e_pair
                force_slot[:] = forces
                conn.send(("ok", table.n_pairs, time.perf_counter() - t0))
            else:
                conn.send(("error", "ValueError", f"unknown command {cmd!r}"))
        except Exception as exc:  # report, keep serving
            conn.send(("error", type(exc).__name__, str(exc)))
    conn.close()


class WorkerPool:
    """Spawn, command and reap the shard workers.

    Construction forks ``n_workers`` processes that inherit ``shared``
    (arena views) and ``cfg`` by copy-on-write; :meth:`command`
    broadcasts one message and gathers one reply per worker, raising in
    the parent if any worker reported an error.
    """

    def __init__(
        self,
        n_workers: int,
        shared: dict,
        cfg: dict,
        *,
        main=_worker_main,
        name: str = "repro-shard",
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for wid in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=main,
                args=(child_conn, wid, shared, cfg),
                daemon=True,
                name=f"{name}-{wid}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def command(self, msg: tuple) -> list[tuple]:
        """Broadcast ``msg``; return each worker's reply payload in order.

        Replies are ``(n_pairs, seconds)`` per worker.  Every reply is
        drained before any error is raised, so the pool stays in a
        consistent idle state even when one shard fails.
        """
        for conn in self._conns:
            conn.send(msg)
        replies: list[tuple] = []
        error: tuple | None = None
        for wid, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                reply = ("error", "RuntimeError", f"worker {wid} died: {exc}")
            if reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
            replies.append(reply[1:])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return replies

    def close(self) -> None:
        """Stop and join every worker (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        self._conns = []
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
