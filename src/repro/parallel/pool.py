"""Persistent fork-based worker pool: spawn, command, reap.

The pool is deliberately protocol-agnostic plumbing: it forks
``n_workers`` long-lived daemon processes running a caller-supplied
``main(conn, wid, shared, cfg)`` and gives the parent one collective —
:meth:`WorkerPool.command` broadcasts a message and gathers one reply
per worker in rank order.  The shard worker protocol itself lives in
:mod:`repro.parallel.transport` (``worker_loop``), and the WSE
offset-dispatch pool (:mod:`repro.parallel.offsets`) reuses this class
with its own main.

Workers are daemons: an abandoned pool dies with the parent instead of
orphaning processes.
"""

from __future__ import annotations

import multiprocessing

__all__ = ["WorkerPool", "fork_available"]

#: Exception types a worker may re-raise by name in the parent, so the
#: parallel path surfaces the same error classes the serial path does
#: (e.g. the pair-distance cap's FloatingPointError on atom overlap).
_RERAISABLE = {
    "FloatingPointError": FloatingPointError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
}

#: Seconds to wait for a worker to exit before terminating it.
_REAP_TIMEOUT_S = 5.0


def fork_available() -> bool:
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Spawn, command and reap a set of forked workers.

    Construction forks ``n_workers`` processes that inherit ``shared``
    (typically shared-memory array views) and ``cfg`` by copy-on-write;
    :meth:`command` broadcasts one message and gathers one reply per
    worker, raising in the parent if any worker reported an error.
    """

    def __init__(
        self,
        n_workers: int,
        shared: dict,
        cfg: dict,
        main,
        *,
        name: str = "repro-shard",
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for wid in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=main,
                args=(child_conn, wid, shared, cfg),
                daemon=True,
                name=f"{name}-{wid}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        """Broadcast ``msg``; return each worker's reply payload in order.

        ``parts`` optionally appends a per-rank payload: worker ``k``
        receives ``msg + parts[k]`` (how the pipeline ships each tile
        its own halo-pack length and owned bounds without broadcasting
        every tile's).  Every reply is drained before any error is
        raised, so the pool stays in a consistent idle state even when
        one shard fails.  A worker that died (broken pipe on send, EOF
        on receive) surfaces as a RuntimeError instead of hanging the
        step.

        ``stagger`` dispatches rank ``k+1`` only after rank ``k``'s
        reply arrives, so on a CPU-starved host at most one worker
        computes at a time instead of all of them timesharing the core
        and evicting each other's caches mid-pass.  Replies are
        identical (and in the same rank order) either way — staggering
        changes wall-clock behavior only, never results.
        """
        if not stagger:
            self.post(msg, parts)
            return self.collect()
        replies: list[tuple] = []
        error: tuple | None = None
        down: set[int] = set()
        for wid, conn in enumerate(self._conns):
            try:
                conn.send(msg if parts is None else msg + tuple(parts[wid]))
            except (BrokenPipeError, OSError) as exc:
                down.add(wid)
                if error is None:
                    error = (wid, "RuntimeError", f"worker died: {exc}")
            if wid not in down:
                replies.append(self._recv_reply(wid))
        for wid in down:
            replies.insert(wid, (0, 0.0))
        return self._finish(replies, error)

    def post(self, msg: tuple, parts: list[tuple] | None = None) -> None:
        """Broadcast ``msg`` without waiting for replies.

        The non-blocking half of :meth:`command`: the parent can do
        work of its own — publish the step's ghost packs — while every
        worker computes, then drain the round with :meth:`collect`.
        Send failures are remembered, not raised, so the reply slots
        stay rank-consistent; :meth:`collect` surfaces them.
        """
        self._post_down: set[int] = set()
        self._post_error: tuple | None = None
        for wid, conn in enumerate(self._conns):
            try:
                conn.send(msg if parts is None else msg + tuple(parts[wid]))
            except (BrokenPipeError, OSError) as exc:
                self._post_down.add(wid)
                if self._post_error is None:
                    self._post_error = (
                        wid, "RuntimeError", f"worker died: {exc}"
                    )

    def collect(self) -> list[tuple]:
        """Drain one reply per worker for the last :meth:`post`."""
        down = getattr(self, "_post_down", set())
        error = getattr(self, "_post_error", None)
        replies: list[tuple] = []
        for wid in range(len(self._conns)):
            if wid in down:
                replies.append((0, 0.0))
            else:
                replies.append(self._recv_reply(wid))
        return self._finish(replies, error)

    def _finish(
        self, replies: list[tuple], error: tuple | None
    ) -> list[tuple]:
        """Scan for worker-reported errors and raise the first one."""
        for wid, reply in enumerate(replies):
            if reply and reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return replies

    def _recv_reply(self, wid: int) -> tuple:
        """One worker's reply payload, with death mapped to an error."""
        try:
            reply = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            reply = ("error", "RuntimeError", f"worker died: {exc}")
        if reply[0] == "error":
            return reply
        return reply[1:]

    def close(self) -> None:
        """Stop and join every worker (idempotent, dead-worker safe).

        A worker that already exited — crashed, killed, or double-close
        — must not hang the parent: sends to broken pipes are
        swallowed, joins are bounded by a timeout, and anything still
        alive after the timeout is terminated.
        """
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns = []
        for proc in self._procs:
            proc.join(timeout=_REAP_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
