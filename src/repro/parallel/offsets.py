"""Offset-parallel dispatch for the lockstep machine's streaming sweeps.

The lockstep streaming sweeps (:mod:`repro.core.streaming`) reduce one
chunk of neighborhood offsets at a time into running accumulators.
Because each offset's contribution is independent until the final
accumulation, the offset list can be split into contiguous per-worker
slices (exchange order preserved within each slice) and swept by forked
workers concurrently: every worker owns its own zeroed accumulator slot
in a :class:`~repro.parallel.shm.SharedArena`, and the parent reduces
the slots **in fixed worker order** afterwards.

Reproducibility contract (same as the shard pipeline's):

* trajectories are bitwise-reproducible for a given worker count, and
* ``workers=1`` hands the whole offset list, in order, to one worker
  whose slot starts at exactly zero — its accumulation sequence is the
  serial sweep's, and the parent's ``acc += slot`` onto a zero grid is
  an identity, so one worker matches the serial path bitwise.

Inputs (positions, occupancy, types, F') are copied into the arena
before each command; outputs come back through the per-worker slots, so
a step ships zero pickled arrays.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArena

__all__ = ["WseOffsetPool", "split_offsets"]


def split_offsets(
    offsets: list[tuple[int, int]], n_workers: int
) -> list[list[tuple[int, int]]]:
    """Contiguous per-worker slices of the offset list, order preserved.

    The first ``len(offsets) % n_workers`` workers take one extra
    offset (``np.array_split`` semantics) — deterministic, so a given
    (offset list, worker count) always yields the same partition.
    """
    if n_workers < 1:
        raise ValueError(f"need at least 1 worker, got {n_workers}")
    n = len(offsets)
    base, rem = divmod(n, n_workers)
    parts: list[list[tuple[int, int]]] = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < rem else 0)
        parts.append(offsets[start:start + size])
        start += size
    return parts


def _offset_worker_main(conn, wid: int, shared: dict, cfg: dict) -> None:
    """Worker loop: serve density/force sweep commands until stop.

    ``shared`` holds numpy views over the fork-inherited arena; ``cfg``
    carries the static sweep geometry plus this worker's offset slice.
    The worker builds its own :class:`~repro.core.streaming.
    StreamingSweeps` over that slice — chunk buffers are per-process,
    so peak memory per worker is O(chunk x grid).
    """
    from repro.core.streaming import StreamingSweeps
    from repro.kernels import set_backend

    # Workers always run the serial numpy kernels (same rule as the
    # shard pipeline): nested pools are never spawned.
    set_backend("numpy")
    pos = shared["pos"]
    occ = shared["occ"]
    typ = shared["typ"]
    f_der = shared["f_der"]
    rho_slot = shared["rho"][wid]
    cand_slot = shared["n_cand"][wid]
    int_slot = shared["n_int"][wid]
    force_slot = shared["force"][wid]
    epair_slot = shared["e_pair"][wid]
    sweeps = StreamingSweeps(
        nx=cfg["nx"],
        ny=cfg["ny"],
        dtype=cfg["dtype"],
        lengths=cfg["lengths"],
        periodic=cfg["periodic"],
        cutoff=cfg["cutoff"],
        tables=cfg["tables"],
        offsets=cfg["offset_slices"][wid],
        chunk=cfg["chunk"],
        force_symmetry=cfg["force_symmetry"],
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        try:
            if cmd == "density":
                rho_slot[...] = 0.0
                cand_slot[...] = 0
                int_slot[...] = 0
                t_ex, t_nb, n_pts = sweeps.density(
                    pos, occ, typ, rho_slot, cand_slot, int_slot
                )
                conn.send(("ok", t_ex, t_nb, n_pts))
            elif cmd == "force":
                force_slot[...] = 0.0
                epair_slot[...] = 0.0
                t_ex, t_nb, n_pts = sweeps.force(
                    pos, occ, typ, f_der, force_slot, epair_slot
                )
                conn.send(("ok", t_ex, t_nb, n_pts))
            else:
                conn.send(("error", "ValueError", f"unknown command {cmd!r}"))
        except Exception as exc:  # report, keep serving
            conn.send(("error", type(exc).__name__, str(exc)))
    conn.close()


class WseOffsetPool:
    """Fork a worker per offset slice and reduce their sweep outputs.

    Exposes the same ``density`` / ``force`` runner protocol as
    :class:`~repro.core.streaming.StreamingSweeps`, so the lockstep
    machine swaps one for the other without branching in the passes.

    Parameters mirror ``StreamingSweeps`` plus ``n_workers``; the
    offset list is split by :func:`split_offsets`.  Timing returned per
    sweep is the **max** over workers (they run concurrently, so the
    slowest slice is the lockstep machine's wall time for the phase).
    """

    def __init__(
        self,
        *,
        n_workers: int,
        nx: int,
        ny: int,
        dtype,
        lengths,
        periodic,
        cutoff: float,
        tables,
        offsets: list[tuple[int, int]],
        chunk: int = 0,
        force_symmetry: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least 1 worker, got {n_workers}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.dtype = np.dtype(dtype)
        w = int(n_workers)
        self._arena = SharedArena(
            {
                "pos": ((nx, ny, 3), self.dtype),
                "occ": ((nx, ny), np.bool_),
                "typ": ((nx, ny), np.int64),
                "f_der": ((nx, ny), np.float64),
                "rho": ((w, nx, ny), np.float64),
                "n_cand": ((w, nx, ny), np.int64),
                "n_int": ((w, nx, ny), np.int64),
                "force": ((w, nx, ny, 3), np.float64),
                "e_pair": ((w, nx, ny), np.float64),
            }
        )
        shared = {name: self._arena[name] for name in self._arena.arrays}
        cfg = {
            "nx": self.nx,
            "ny": self.ny,
            "dtype": self.dtype,
            "lengths": tuple(float(v) for v in lengths),
            "periodic": tuple(bool(v) for v in periodic),
            "cutoff": float(cutoff),
            "tables": tables,
            "offset_slices": split_offsets(list(offsets), w),
            "chunk": int(chunk),
            "force_symmetry": bool(force_symmetry),
        }
        self._pool = WorkerPool(
            w, shared, cfg, main=_offset_worker_main, name="repro-wse-offsets"
        )

    @property
    def n_workers(self) -> int:
        return self._pool.n_workers

    @property
    def arena_bytes(self) -> int:
        """Bytes held by the shared input/output arena."""
        return self._arena.nbytes

    def _load_inputs(self, pos, occ, typ, f_der=None) -> None:
        self._arena["pos"][...] = pos
        self._arena["occ"][...] = occ
        self._arena["typ"][...] = typ
        if f_der is not None:
            self._arena["f_der"][...] = f_der

    def density(self, pos, occ, typ, rho_bar, n_cand, n_int):
        """Sweep every worker's slice, reduce slots in worker order."""
        self._load_inputs(pos, occ, typ)
        replies = self._pool.command(("density",))
        rho = self._arena["rho"]
        cand = self._arena["n_cand"]
        cnt = self._arena["n_int"]
        # fixed-order reduction: the accumulation sequence depends only
        # on the worker count, never on completion order
        for w in range(self.n_workers):
            rho_bar += rho[w]
            n_cand += cand[w]
            n_int += cnt[w]
        t_ex = max(r[0] for r in replies)
        t_nb = max(r[1] for r in replies)
        n_pts = sum(r[2] for r in replies)
        return t_ex, t_nb, n_pts

    def force(self, pos, occ, typ, f_der, force, e_pair):
        """Sweep every worker's slice, reduce slots in worker order."""
        self._load_inputs(pos, occ, typ, f_der)
        replies = self._pool.command(("force",))
        fslots = self._arena["force"]
        eslots = self._arena["e_pair"]
        for w in range(self.n_workers):
            force += fslots[w]
            e_pair += eslots[w]
        t_ex = max(r[0] for r in replies)
        t_nb = max(r[1] for r in replies)
        n_pts = sum(r[2] for r in replies)
        return t_ex, t_nb, n_pts

    def close(self) -> None:
        """Stop the workers and release the arena (idempotent)."""
        self._pool.close()
        self._arena.close()
