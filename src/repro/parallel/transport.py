"""Pluggable transports: how the pipeline reaches its shard workers.

The sharded force pipeline needs exactly three collectives per
timestep, and this module pins them down as the :class:`Transport`
protocol so the decomposition logic never knows how bytes move:

* **scatter** — :meth:`Transport.publish` makes a named parent array
  (positions, types, the embedding derivative) visible to every
  worker before the next command.
* **barrier + gather** — :meth:`Transport.command` broadcasts one
  small message and blocks for every worker's reply, in rank order.
  Replies are ``(n_pairs, seconds)`` tails; worker errors re-raise in
  the parent by exception name, exactly like the serial path.
* **typed buffer channels** — :meth:`Transport.slots` exposes each
  per-worker output (partial density, pair energy, forces) as one
  ``(n_workers, ...)`` float64 array.  The parent always reduces with
  ``np.sum(slots, axis=0)`` — fixed rank order — so a trajectory is
  bitwise-reproducible for a given (topology, transport), and because
  both transports deliver the identical float64 bits into the same
  slot layout, it is bitwise-identical *across* transports too.

Two implementations:

* :class:`ForkTransport` ("shared") — the historical single-host path:
  forked workers inherit a :class:`~repro.parallel.shm.SharedArena`,
  commands ride per-worker pipes, array traffic is zero-copy.
* :class:`SocketTransport` ("socket") — the same worker protocol over
  TCP (:mod:`multiprocessing.connection`): arrays are shipped as
  pickled buffers piggybacked on commands and replies, so shards can
  live in other processes or on other hosts (``repro.parallel.worker``
  is the remote entry point; CI exercises loopback).

Both count ``bytes_sent``/``bytes_recv`` with the same logical rule —
a published array costs ``nbytes x n_workers`` (the broadcast fan-out),
a gathered stage costs the slot bytes — so halo-traffic numbers are
comparable across transports even though the fork path never copies.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Protocol

import numpy as np

from repro.parallel.pool import WorkerPool, _RERAISABLE
from repro.parallel.shm import SharedArena

__all__ = [
    "Transport",
    "ForkTransport",
    "SocketTransport",
    "make_transport",
    "worker_loop",
    "remote_worker_main",
    "TRANSPORTS",
]

TRANSPORTS = ("shared", "socket")

#: Seconds to wait for a worker to exit before terminating it.
_REAP_TIMEOUT_S = 5.0


class Transport(Protocol):
    """What :class:`~repro.parallel.pipeline.ShardedForcePipeline` needs."""

    kind: str
    n_workers: int
    bytes_sent: int
    bytes_recv: int

    def publish(self, name: str, data: np.ndarray) -> None: ...

    def command(self, msg: tuple) -> list[tuple]: ...

    def barrier(self) -> None: ...

    def slots(self, name: str) -> np.ndarray: ...

    def close(self) -> None: ...


# -- the worker protocol (transport-independent) ---------------------------


def worker_loop(channel, wid: int, cfg: dict) -> None:
    """Serve neighbor/density/force commands until stop.

    ``channel`` abstracts the byte movement: :meth:`get` yields the
    current value of a published input array, :meth:`put` stages one
    output slot for the parent, ``recv``/``send`` move command/reply
    messages.  The compute body is identical under every transport —
    that is what makes cross-transport trajectories bitwise-equal.
    """
    from repro.kernels import set_backend
    from repro.md.cell_list import CellList
    from repro.parallel.domains import build_tile_pairs

    # The "parallel" backend name only means "drive workers from the
    # parent"; each worker's inner loops run a serial backend — numpy
    # by default, or numba when the pipeline was configured to stack
    # the JIT tier on top of sharding (REPRO_PARALLEL_INNER_BACKEND).
    set_backend(cfg.get("inner_backend", "numpy"))
    potential = cfg["potential"]
    cutoff = cfg["cutoff"]
    reach = cfg["reach"]
    n_atoms = cfg["n_atoms"]
    cells = CellList(cfg["box"], reach)  # buffers reused across rebuilds
    shard = None
    table = None
    cache: dict = {}
    while True:
        try:
            msg = channel.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        t0 = time.perf_counter()
        try:
            if cmd == "neighbor":
                grid = msg[1]
                positions = channel.get("positions")
                if grid is not None:
                    shard = build_tile_pairs(
                        positions, grid, wid,
                        box=cfg["box"], reach=reach, cells=cells,
                    )
                table = shard.pairs(positions, cutoff)
                channel.send(("ok", table.n_pairs, time.perf_counter() - t0))
            elif cmd == "density":
                types = channel.get("types")
                rho, cache = potential.fused_density(n_atoms, table, types)
                channel.put("rho", rho)
                channel.send(("ok", table.n_pairs, time.perf_counter() - t0))
            elif cmd == "force":
                types = channel.get("types")
                f_der = channel.get("f_der")
                e_pair, forces = potential.fused_pair_force(
                    n_atoms, table, f_der, types, cache=cache
                )
                channel.put("epair", e_pair)
                channel.put("forces", forces)
                channel.send(("ok", table.n_pairs, time.perf_counter() - t0))
            elif cmd == "ping":
                channel.send(("ok", 0, time.perf_counter() - t0))
            else:
                channel.send(
                    ("error", "ValueError", f"unknown command {cmd!r}")
                )
        except Exception as exc:  # report, keep serving
            channel.send(("error", type(exc).__name__, str(exc)))
    channel.close()


class _ArenaChannel:
    """Worker-side channel over fork-inherited shared memory + a pipe.

    Inputs are live arena views (a parent publish is instantly
    visible); outputs are written straight into this worker's slot of
    the ``(n_workers, ...)`` arena arrays.
    """

    def __init__(self, conn, wid: int, shared: dict, outputs: tuple) -> None:
        self._conn = conn
        self._in = {k: v for k, v in shared.items() if k not in outputs}
        self._out = {k: shared[k][wid] for k in outputs}

    def recv(self):
        return self._conn.recv()

    def send(self, reply: tuple) -> None:
        self._conn.send(reply)

    def get(self, name: str) -> np.ndarray:
        return self._in[name]

    def put(self, name: str, data: np.ndarray) -> None:
        self._out[name][:] = data

    def close(self) -> None:
        self._conn.close()


class _SocketChannel:
    """Worker-side channel over one ``multiprocessing.connection`` link.

    Incoming messages are ``(msg, buffers)`` — the buffers refresh the
    local input cache; outputs staged with :meth:`put` piggyback on the
    next reply as ``(reply, outputs)``.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._in: dict[str, np.ndarray] = {}
        self._staged: dict[str, np.ndarray] = {}

    def recv(self):
        msg, bufs = self._conn.recv()
        self._in.update(bufs)
        return msg

    def send(self, reply: tuple) -> None:
        self._conn.send((reply, self._staged))
        self._staged = {}

    def get(self, name: str) -> np.ndarray:
        return self._in[name]

    def put(self, name: str, data: np.ndarray) -> None:
        self._staged[name] = np.ascontiguousarray(data)

    def close(self) -> None:
        self._conn.close()


def _fork_worker_entry(conn, wid: int, shared: dict, cfg: dict) -> None:
    """Fork-pool entry: wrap the inherited arena into a channel."""
    worker_loop(_ArenaChannel(conn, wid, shared, cfg["outputs"]), wid, cfg)


def remote_worker_main(address, authkey: bytes, rank: int) -> None:
    """Socket-transport worker entry: connect, handshake, serve.

    Runs in a separate process (loopback CI) or on another host
    (``python -m repro.parallel.worker``).  The handshake carries the
    rank so the parent can order connections deterministically, then
    the parent ships the full worker config (potential included) in a
    ``setup`` message before the first command.
    """
    from multiprocessing.connection import Client

    conn = Client(address, authkey=authkey)
    conn.send(("hello", rank))
    msg = conn.recv()
    if msg[0] != "setup":  # pragma: no cover - protocol violation
        conn.close()
        raise RuntimeError(f"expected setup message, got {msg[0]!r}")
    cfg = msg[1]
    worker_loop(_SocketChannel(conn), rank, cfg)


# -- parent-side transports ------------------------------------------------


class ForkTransport:
    """Shared-memory transport: SharedArena + forked worker pool.

    ``inputs``/``outputs`` are ``{name: (shape, dtype)}`` specs;
    outputs get a leading ``n_workers`` slot dimension in the arena.
    """

    kind = "shared"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
    ) -> None:
        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        specs = dict(inputs)
        for oname, (shape, dtype) in outputs.items():
            specs[oname] = ((n_workers, *shape), dtype)
        self.arena = SharedArena(specs)
        cfg = dict(cfg, outputs=tuple(outputs))
        self.pool = WorkerPool(
            n_workers, self.arena.arrays, cfg, main=_fork_worker_entry,
            name=name,
        )

    def publish(self, name: str, data) -> None:
        np.copyto(self.arena[name], data)
        self.bytes_sent += self.arena[name].nbytes * self.n_workers

    def command(self, msg: tuple) -> list[tuple]:
        return self.pool.command(msg)

    def barrier(self) -> None:
        self.pool.command(("ping",))

    def slots(self, name: str) -> np.ndarray:
        arr = self.arena[name]
        self.bytes_recv += arr.nbytes
        return arr

    def close(self) -> None:
        self.pool.close()
        self.arena.close()


class SocketTransport:
    """TCP transport over :mod:`multiprocessing.connection`.

    The parent listens on loopback, spawns (or, via
    ``repro.parallel.worker``, awaits) one worker per rank, and pushes
    published arrays as pickled buffers on the next command; workers
    return their stage outputs piggybacked on replies.  Pickling
    preserves float64 bits, so the slot reduction matches the
    shared-memory transport bitwise.
    """

    kind = "socket"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
        address: tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: bool = True,
    ) -> None:
        from multiprocessing.connection import Listener

        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._staged = {
            iname: np.zeros(shape, dtype)
            for iname, (shape, dtype) in inputs.items()
        }
        self._dirty: set[str] = set()
        self._slots = {
            oname: np.zeros((n_workers, *shape), dtype)
            for oname, (shape, dtype) in outputs.items()
        }
        authkey = os.urandom(16)
        self._listener = Listener(address, authkey=authkey)
        self._procs = []
        if spawn_workers:
            ctx = multiprocessing.get_context("fork")
            for rank in range(n_workers):
                proc = ctx.Process(
                    target=remote_worker_main,
                    args=(self._listener.address, authkey, rank),
                    daemon=True,
                    name=f"{name}-sock-{rank}",
                )
                proc.start()
                self._procs.append(proc)
        # Accept in arrival order, then seat by handshake rank so the
        # slot reduction order is the topology's, not the race's.
        self._conns: list = [None] * n_workers
        for _ in range(n_workers):
            conn = self._listener.accept()
            hello = conn.recv()
            if hello[0] != "hello":  # pragma: no cover - protocol violation
                raise RuntimeError(f"expected hello, got {hello[0]!r}")
            rank = int(hello[1])
            if not 0 <= rank < n_workers or self._conns[rank] is not None:
                raise RuntimeError(f"bad worker rank {rank}")
            self._conns[rank] = conn
        setup = ("setup", dict(cfg, outputs=tuple(outputs)))
        for conn in self._conns:
            conn.send(setup)

    def publish(self, name: str, data) -> None:
        np.copyto(self._staged[name], data)
        self._dirty.add(name)

    def command(self, msg: tuple) -> list[tuple]:
        bufs = {iname: self._staged[iname] for iname in sorted(self._dirty)}
        self._dirty.clear()
        payload = (msg, bufs)
        nbytes = sum(b.nbytes for b in bufs.values())
        for conn in self._conns:
            conn.send(payload)
            self.bytes_sent += nbytes
        replies: list[tuple] = []
        error: tuple | None = None
        for wid, conn in enumerate(self._conns):
            try:
                reply, out = conn.recv()
            except (EOFError, OSError) as exc:
                reply = ("error", "RuntimeError", f"worker {wid} died: {exc}")
                out = {}
            for oname, arr in out.items():
                self._slots[oname][wid] = arr
                self.bytes_recv += arr.nbytes
            if reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
            replies.append(reply[1:])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return replies

    def barrier(self) -> None:
        self.command(("ping",))

    def slots(self, name: str) -> np.ndarray:
        return self._slots[name]

    def close(self) -> None:
        """Stop and reap the workers (idempotent, dead-worker safe)."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((("stop",), {}))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns = []
        for proc in self._procs:
            proc.join(timeout=_REAP_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None


def make_transport(
    kind: str | None,
    n_workers: int,
    inputs: dict,
    outputs: dict,
    cfg: dict,
    *,
    name: str = "repro-shard",
) -> ForkTransport | SocketTransport:
    """Construct the named transport (``None`` = ``"shared"``)."""
    kind = kind or "shared"
    if kind == "shared":
        return ForkTransport(n_workers, inputs, outputs, cfg, name=name)
    if kind == "socket":
        return SocketTransport(n_workers, inputs, outputs, cfg, name=name)
    raise ValueError(
        f"unknown transport {kind!r}; expected one of {TRANSPORTS}"
    )
