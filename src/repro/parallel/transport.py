"""Pluggable transports: how the pipeline reaches its shard workers.

The sharded force pipeline moves *sparse halo packs*, never full
arrays, and this module pins the movement down as the
:class:`Transport` protocol so the decomposition logic never knows how
bytes travel:

* **scatter** — :meth:`Transport.scatter` packs, per rank, only the
  rows a tile's halo region needs (``source[ids[k]]``) into that
  rank's slot prefix.  The id lists are the pipeline's cached halo
  pack indices, recomputed only on a candidate rebuild.
* **command + barrier** — :meth:`Transport.command` broadcasts one
  small message (optionally extended with a per-rank part) and blocks
  for every worker's reply, in rank order.  Replies are
  ``(flag, n_pairs, seconds, density_seconds, halo_wait_seconds)``
  tails; worker errors re-raise in the parent by exception name, like
  the serial path.  :meth:`Transport.post` / :meth:`Transport.collect`
  split the round so the parent can work while the shards compute.
* **publish** — :meth:`Transport.publish` ships a step's *ghost* rows
  asynchronously, after the round's command is already in flight: the
  workers run their interior pass on the owned rows delivered by
  :meth:`Transport.scatter_rows` and block (``wait_halo``) only right
  before the boundary pass.  Packs are double-buffered per step parity
  (shared: 2-slot arena side channels + seqlock flags; socket: eager
  ``__halo__`` frames absorbed by a buffered receive; inline:
  trivially complete), so publishing step ``N``'s ghosts can never
  tear a reader still on step ``N - 1``.
* **gather** — :meth:`Transport.gather` returns each rank's staged
  output prefix (partial density, pair energy, forces over its local
  atoms).  The parent scatter-adds the packs **in fixed rank order**
  (the seam reduction), so a trajectory is bitwise-reproducible for a
  given (topology, transport) — and because both transports deliver
  identical float64 bits in identical pack layouts, bitwise-identical
  *across* transports too.

Two implementations:

* :class:`ForkTransport` ("shared") — the historical single-host path:
  forked workers inherit a :class:`~repro.parallel.shm.SharedArena`
  holding one ``(n_workers, capacity, ...)`` row-per-rank array per
  channel; scatters are ``np.take`` straight into the rank's row,
  gathers are prefix views — zero copies beyond the pack itself.
* :class:`SocketTransport` ("socket") — the same worker protocol over
  TCP (:mod:`multiprocessing.connection`): packs ride as pickled
  buffers piggybacked on commands and replies, so shards can live in
  other processes or on other hosts (``repro.parallel.worker`` is the
  remote entry point; CI exercises loopback).

Both count ``bytes_sent``/``bytes_recv`` as the *actual pack prefix
bytes* — charged when a pack is scattered and when a gathered pack is
consumed — so halo-traffic numbers are real sparse volumes and are
identical across transports by construction (a speculative result the
parent discards is never charged, on either transport).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Protocol

import numpy as np

from repro.parallel.pool import WorkerPool, _RERAISABLE
from repro.parallel.shm import SharedArena

__all__ = [
    "Transport",
    "ShardWorker",
    "ForkTransport",
    "SocketTransport",
    "InlineTransport",
    "make_transport",
    "resolve_transport",
    "worker_loop",
    "remote_worker_main",
    "TRANSPORTS",
]

TRANSPORTS = ("shared", "socket", "inline")

#: Seconds to wait for a worker to exit before terminating it.
_REAP_TIMEOUT_S = 5.0


class Transport(Protocol):
    """What :class:`~repro.parallel.pipeline.ShardedForcePipeline` needs."""

    kind: str
    n_workers: int
    bytes_sent: int
    bytes_recv: int

    def set_counts(self, counts: list[int]) -> None: ...

    def scatter(
        self, name: str, source: np.ndarray, ids: list[np.ndarray]
    ) -> None: ...

    def scatter_rows(
        self,
        name: str,
        source: np.ndarray,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
    ) -> None: ...

    def publish(
        self,
        name: str,
        source: np.ndarray,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
        seq: int,
    ) -> None: ...

    def command(
        self, msg: tuple, parts: list[tuple] | None = None
    ) -> list[tuple]: ...

    def post(
        self, msg: tuple, parts: list[tuple] | None = None
    ) -> None: ...

    def collect(self) -> list[tuple]: ...

    def barrier(self) -> None: ...

    def gather(self, name: str) -> list[np.ndarray]: ...

    def close(self) -> None: ...


class _PackStage:
    """Grow-only staging buffers for pack gathers, keyed by (channel, tile).

    Every steady round gathers ``source[ids]`` rows before they cross a
    transport; staging them through per-key grow-only scratch means the
    steady state allocates nothing — the id lists only change on a
    rebuild, so after the first round every gather lands in an
    already-sized buffer (pinned by the no-allocation-growth arm of the
    halo byte-gate test).
    """

    def __init__(self) -> None:
        self._bufs: dict = {}

    def take(self, key, source: np.ndarray, idx: np.ndarray) -> np.ndarray:
        n = len(idx)
        buf = self._bufs.get(key)
        if buf is None or buf.shape[0] < n or buf.dtype != source.dtype:
            buf = np.empty((n, *source.shape[1:]), source.dtype)
            self._bufs[key] = buf
        view = buf[:n]
        np.take(source, idx, axis=0, out=view)
        return view


def _pack_nbytes(source: np.ndarray, idx: np.ndarray) -> int:
    """Bytes of the ``source[idx]`` pack, without materializing it."""
    row = source.dtype.itemsize
    for dim in source.shape[1:]:
        row *= dim
    return len(idx) * row


# -- the worker protocol (transport-independent) ---------------------------


class ShardWorker:
    """One tile's persistent protocol state machine.

    The worker owns its tile across steps: halo-pack positions, types,
    the owned-region mask and the local-index candidate list (with its
    build-time separations) all persist between commands, so a
    steady-state step moves only the pack and the results.  The Verlet
    skin trigger itself is evaluated parent-side (the parent owns every
    position, so its global check equals the OR over the covering tile
    sets exactly); by the time a ``dens`` command arrives, the
    candidates are guaranteed fresh.

    The candidate list is held as an **interior/boundary split**
    (:func:`~repro.parallel.domains.split_interior_boundary`): interior
    candidates touch only owned rows, so the interior filter + kernel
    pass runs before the step's ghost rows have even arrived; the
    worker blocks on the channel's ``wait_halo`` only immediately
    before the boundary pass.  Per-atom results merge as whole partial
    sums in a pinned order (``interior + boundary``), and a round with
    an empty class skips the merge outright — a single-tile run (no
    ghosts, empty boundary) therefore computes the exact unsplit bits,
    preserving the ``w=1`` bitwise-serial contract.

    * ``("dens", max_disp, seq)`` — read the owned position rows and
      distance-filter the *interior* candidates under the parent's
      global displacement bound (a valid upper bound for every tile,
      already in hand from the skin trigger): the bound either proves
      every candidate is still inside the cutoff (the filter skips its
      mask and compaction outright) or pre-masks candidates provably
      still out of range.  Run the interior density pass, wait for the
      step's ghost rows (``seq``), then filter + density the boundary
      class and merge, staging the local ``rho`` pack.
    * ``("rebuild", n_local, bounds)`` — read a freshly planned full
      pack (positions + types), recompute the owned mask from the tile
      bounds, rebuild the local candidate list via the seam rule and
      split it at the seam, then filter + density as above (no wait:
      rebuild packs arrive whole, before the command).
    * ``("force", seq)`` — read the ``f_der`` pack, run the pair-force
      pass over the cached interior pairs, wait for the ghost ``f_der``
      rows, run the boundary pass and merge, stage ``epair``/``forces``.

    :meth:`handle` returns ``("ok", flag, n_pairs, seconds,
    density_seconds, halo_wait_seconds)`` replies (or
    ``("error", type, text)``).  The compute body is identical under
    every transport — forked, remote *and* inline — which is what makes
    cross-transport trajectories bitwise-equal; and identical whether
    the parent published the ghosts before or after the command
    (``REPRO_PARALLEL_NO_OVERLAP``), which is what makes overlap-on
    bitwise-equal to overlap-off.

    ``switch_backend=False`` skips the process-global kernel-backend
    switch: the inline transport runs workers inside the parent
    process, whose active backend (the ``parallel`` backend re-exports
    the numpy kernels) already evaluates the identical arithmetic.
    """

    def __init__(self, channel, cfg: dict, *, switch_backend: bool = True):
        from repro.md.cell_list import CellList

        if switch_backend:
            from repro.kernels import set_backend

            # The "parallel" backend name only means "drive workers
            # from the parent"; each worker's inner loops run a serial
            # backend — numpy by default, or numba when the pipeline
            # was configured to stack the JIT tier on top of sharding
            # (REPRO_PARALLEL_INNER_BACKEND).
            set_backend(cfg.get("inner_backend", "numpy"))
        self.channel = channel
        self.cfg = cfg
        self.potential = cfg["potential"]
        self.cutoff = cfg["cutoff"]
        self.reach = cfg["reach"]
        self.cells = CellList(  # reused buffers across rebuilds
            cfg["box"], self.reach,
            subdivide=cfg.get("build_subdivide", 1),
        )
        self.n_local = 0
        self.types_l = None
        self.shard_int = None  # interior candidates (owned-owned)
        self.shard_bnd = None  # boundary candidates (touching a ghost)
        self.table_int = None
        self.table_bnd = None
        self.cache_int: dict = {}
        self.cache_bnd: dict = {}
        self.ghost_rows = np.empty(0, dtype=np.int64)
        self.positions = None  # current pack (persists dens -> force)
        self.d_max = 0.0  # parent's displacement bound since the rebuild

    def _wait_halo(self, name: str, seq) -> float:
        """Block until the step's ghost rows landed; return the stall.

        A tile with no ghost rows (single-worker runs, interior-only
        tiles of degenerate decompositions) never waits — the parent
        publishes nothing for it.  ``seq is None`` marks a rebuild
        round, whose packs arrived whole before the command.
        """
        if seq is None or len(self.ghost_rows) == 0:
            return 0.0
        t0 = time.perf_counter()
        self.channel.wait_halo(name, seq)
        return time.perf_counter() - t0

    def _two_phase_density(self, t0: float, seq) -> tuple:
        """Interior filter + density, ghost wait, boundary pass, merge."""
        pos = self.positions
        self.table_int = self.shard_int.pairs(
            pos, self.cutoff, max_disp=self.d_max
        )
        td = time.perf_counter()
        rho_int, self.cache_int = self.potential.fused_density(
            self.n_local, self.table_int, self.types_l
        )
        t_dens = time.perf_counter() - td
        t_wait = self._wait_halo("positions", seq)
        self.table_bnd = self.shard_bnd.pairs(
            pos, self.cutoff, max_disp=self.d_max
        )
        td = time.perf_counter()
        if self.table_bnd.n_pairs:
            rho_bnd, self.cache_bnd = self.potential.fused_density(
                self.n_local, self.table_bnd, self.types_l
            )
            # pinned merge order: interior partial + boundary partial;
            # an empty class skips the merge so the populated class's
            # bits pass through untouched (the w=1 exactness hinge)
            if self.table_int.n_pairs:
                rho = np.add(rho_int, rho_bnd, out=rho_int)
            else:
                rho = rho_bnd
        else:
            self.cache_bnd = {}
            rho = rho_int
        t_dens += time.perf_counter() - td
        self.channel.put("rho", rho)
        n_pairs = self.table_int.n_pairs + self.table_bnd.n_pairs
        return (
            "ok", 0, n_pairs, time.perf_counter() - t0, t_dens, t_wait,
        )

    def handle(self, msg: tuple) -> tuple:
        """Serve one command, returning its reply tuple."""
        from repro.parallel.domains import (
            build_local_pairs,
            owned_mask_local,
            split_interior_boundary,
        )

        cmd = msg[0]
        t0 = time.perf_counter()
        try:
            if cmd == "dens":
                self.positions = self.channel.get("positions", self.n_local)
                # The parent's global displacement bound (from its skin
                # trigger) rides on the command: it upper-bounds every
                # tile's local displacement, so the tile pays no einsum
                # of its own.  A looser bound only weakens the provably
                # bit-neutral cross-step cuts, never the emitted pairs.
                self.d_max = float(msg[1])
                return self._two_phase_density(t0, msg[2])
            if cmd == "rebuild":
                self.n_local = int(msg[1])
                bounds = msg[2]
                self.positions = self.channel.get(
                    "positions", self.n_local
                )
                self.types_l = self.channel.get("types", self.n_local)
                owned = owned_mask_local(self.positions, bounds)
                shard = build_local_pairs(
                    self.positions, owned,
                    box=self.cfg["box"], reach=self.reach,
                    cells=self.cells,
                )
                self.shard_int, self.shard_bnd = split_interior_boundary(
                    shard, owned
                )
                self.ghost_rows = np.nonzero(~owned)[0]
                set_rows = getattr(self.channel, "set_rows", None)
                if set_rows is not None:
                    set_rows(np.nonzero(owned)[0], self.ghost_rows)
                self.d_max = 0.0
                return self._two_phase_density(t0, None)
            if cmd == "force":
                seq = msg[1] if len(msg) > 1 else None
                f_der = self.channel.get("f_der", self.n_local)
                e_int, f_int = self.potential.fused_pair_force(
                    self.n_local, self.table_int, f_der, self.types_l,
                    cache=self.cache_int,
                )
                t_wait = self._wait_halo("f_der", seq)
                if self.table_bnd.n_pairs:
                    e_bnd, f_bnd = self.potential.fused_pair_force(
                        self.n_local, self.table_bnd, f_der, self.types_l,
                        cache=self.cache_bnd,
                    )
                    if self.table_int.n_pairs:
                        e_pair = np.add(e_int, e_bnd, out=e_int)
                        forces = np.add(f_int, f_bnd, out=f_int)
                    else:
                        e_pair, forces = e_bnd, f_bnd
                else:
                    e_pair, forces = e_int, f_int
                self.channel.put("epair", e_pair)
                self.channel.put("forces", forces)
                n_pairs = self.table_int.n_pairs + self.table_bnd.n_pairs
                return (
                    "ok", 0, n_pairs,
                    time.perf_counter() - t0, 0.0, t_wait,
                )
            if cmd == "ping":
                return ("ok", 0, 0, time.perf_counter() - t0, 0.0, 0.0)
            return ("error", "ValueError", f"unknown command {cmd!r}")
        except Exception as exc:  # report, keep serving
            return ("error", type(exc).__name__, str(exc))


def worker_loop(channel, wid: int, cfg: dict) -> None:
    """Serve :class:`ShardWorker` commands over a channel until stop."""
    worker = ShardWorker(channel, cfg)
    while True:
        try:
            msg = channel.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        channel.send(worker.handle(msg))
    channel.close()


class _ArenaChannel:
    """Worker-side channel over fork-inherited shared memory + a pipe.

    Every arena array is ``(n_workers, capacity, ...)``; this worker
    reads input pack prefixes from — and writes output pack prefixes
    into — its own row.  A parent scatter is instantly visible.

    Ghost rows arrive through the ``<name>__halo`` side channels: two
    ``(capacity, ...)`` slots per halo channel, indexed by step parity,
    with a per-channel ``__halo_seq__`` flag the parent stores *after*
    the slot write.  :meth:`wait_halo` spins on the flag (an aligned
    int64: the store is atomic, and publication ordering leans on
    x86-TSO plus the interpreter's per-array-op call boundaries — on a
    weaker memory model run ``REPRO_PARALLEL_NO_OVERLAP=1``), then
    copies the slot into its ghost rows.  Two slots mean the parent may
    publish step ``N + 1`` while a straggler still reads step ``N``.
    """

    def __init__(
        self,
        conn,
        wid: int,
        shared: dict,
        outputs: tuple,
        halo: tuple = (),
    ) -> None:
        self._conn = conn
        skip = set(outputs) | {_halo_name(h) for h in halo} | {_HALO_SEQ}
        self._in = {k: v[wid] for k, v in shared.items() if k not in skip}
        self._out = {k: shared[k][wid] for k in outputs}
        self._halo = {h: shared[_halo_name(h)][wid] for h in halo}
        self._flags = shared[_HALO_SEQ][wid] if halo else None
        self._col = {h: i for i, h in enumerate(halo)}
        self._ghost_rows = np.empty(0, dtype=np.int64)

    def recv(self):
        return self._conn.recv()

    def send(self, reply: tuple) -> None:
        self._conn.send(reply)

    def get(self, name: str, n: int) -> np.ndarray:
        return self._in[name][:n]

    def put(self, name: str, data: np.ndarray) -> None:
        self._out[name][: len(data)] = data

    def set_rows(self, own_rows: np.ndarray, ghost_rows: np.ndarray) -> None:
        self._ghost_rows = ghost_rows

    def wait_halo(self, name: str, seq: int) -> None:
        flags = self._flags
        col = self._col[name]
        spins = 0
        while flags[col] < seq:
            spins += 1
            # yield immediately; back off to a short sleep so a stalled
            # parent never pins this core at 100%
            time.sleep(0.0 if spins < 2000 else 5e-5)
        rows = self._ghost_rows
        self._in[name][rows] = self._halo[name][seq & 1][: len(rows)]

    def close(self) -> None:
        self._conn.close()


class _SocketChannel:
    """Worker-side channel over one ``multiprocessing.connection`` link.

    Incoming messages are ``(msg, packs)`` — each pack a
    ``("full" | "own", rows)`` pair that either replaces the persistent
    local buffer (rebuild) or refreshes its owned rows (steady step);
    outputs staged with :meth:`put` piggyback on the next reply as
    ``(reply, outputs)``.  Ghost rows travel as separate eagerly-sent
    ``("__halo__", seq, packs)`` frames: the connection is FIFO, so a
    frame published *before* the command (the no-overlap path) is
    absorbed by the buffered :meth:`recv` loop, and one published after
    is drained by :meth:`wait_halo` right before the boundary pass.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._in: dict[str, np.ndarray] = {}
        self._staged: dict[str, np.ndarray] = {}
        self._own_rows = np.empty(0, dtype=np.int64)
        self._ghost_rows = np.empty(0, dtype=np.int64)
        self._halo_seq: dict[str, int] = {}

    def _ensure(self, name: str, pack: np.ndarray) -> np.ndarray:
        """Persistent local buffer for a row-patched channel.

        Channels that only ever travel as owned/ghost row patches
        (``f_der``) never arrive whole; their buffer is allocated here,
        sized to the current local set, and replaced when a rebuild
        changes that size.
        """
        n = len(self._own_rows) + len(self._ghost_rows)
        buf = self._in.get(name)
        if buf is None or len(buf) != n:
            buf = np.empty((n, *pack.shape[1:]), pack.dtype)
            self._in[name] = buf
        return buf

    def _apply_halo(self, frame: tuple) -> None:
        _, seq, packs = frame
        for name, pack in packs.items():
            self._ensure(name, pack)[self._ghost_rows] = pack
            self._halo_seq[name] = seq

    def recv(self):
        while True:
            obj = self._conn.recv()
            if obj and obj[0] == "__halo__":
                self._apply_halo(obj)
                continue
            msg, bufs = obj
            for name, (tag, pack) in bufs.items():
                if tag == "full":
                    self._in[name] = pack
                else:
                    self._ensure(name, pack)[self._own_rows] = pack
            return msg

    def send(self, reply: tuple) -> None:
        self._conn.send((reply, self._staged))
        self._staged = {}

    def get(self, name: str, n: int) -> np.ndarray:
        pack = self._in[name]
        if len(pack) != n:  # pragma: no cover - protocol violation
            raise RuntimeError(
                f"pack {name!r} has {len(pack)} rows, expected {n}"
            )
        return pack

    def put(self, name: str, data: np.ndarray) -> None:
        self._staged[name] = np.ascontiguousarray(data)

    def set_rows(self, own_rows: np.ndarray, ghost_rows: np.ndarray) -> None:
        self._own_rows = own_rows
        self._ghost_rows = ghost_rows

    def wait_halo(self, name: str, seq: int) -> None:
        while self._halo_seq.get(name, -1) < seq:
            frame = self._conn.recv()
            if not frame or frame[0] != "__halo__":
                # pragma: no cover - protocol violation: commands never
                # overtake their round's reply
                raise RuntimeError(
                    f"expected a halo frame for {name!r}, got {frame!r:.60}"
                )
            self._apply_halo(frame)

    def close(self) -> None:
        self._conn.close()


#: Arena array holding one published-step flag per (rank, halo channel).
_HALO_SEQ = "__halo_seq__"


def _halo_name(channel: str) -> str:
    """Arena name of a channel's double-buffered ghost side channel."""
    return f"{channel}__halo"


def _fork_worker_entry(conn, wid: int, shared: dict, cfg: dict) -> None:
    """Fork-pool entry: wrap the inherited arena into a channel."""
    channel = _ArenaChannel(
        conn, wid, shared, cfg["outputs"], cfg.get("halo", ())
    )
    worker_loop(channel, wid, cfg)


def remote_worker_main(address, authkey: bytes, rank: int) -> None:
    """Socket-transport worker entry: connect, handshake, serve.

    Runs in a separate process (loopback CI) or on another host
    (``python -m repro.parallel.worker``).  The handshake carries the
    rank so the parent can order connections deterministically, then
    the parent ships the full worker config (potential included) in a
    ``setup`` message before the first command.
    """
    from multiprocessing.connection import Client

    conn = Client(address, authkey=authkey)
    conn.send(("hello", rank))
    msg = conn.recv()
    if msg[0] != "setup":  # pragma: no cover - protocol violation
        conn.close()
        raise RuntimeError(f"expected setup message, got {msg[0]!r}")
    cfg = msg[1]
    worker_loop(_SocketChannel(conn), rank, cfg)


# -- parent-side transports ------------------------------------------------


class ForkTransport:
    """Shared-memory transport: SharedArena + forked worker pool.

    ``inputs``/``outputs`` are ``{name: (shape, dtype)}`` per-rank
    capacity specs; every channel gets a leading ``n_workers`` row
    dimension in the arena, and only pack prefixes ever move.
    """

    kind = "shared"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
        halo: tuple = (),
    ) -> None:
        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        self._halo = tuple(halo)
        self._col = {h: i for i, h in enumerate(self._halo)}
        specs = {
            cname: ((n_workers, *shape), dtype)
            for cname, (shape, dtype) in {**inputs, **outputs}.items()
        }
        for h in self._halo:
            shape, dtype = inputs[h]
            # two ghost slots per rank, indexed by step parity
            specs[_halo_name(h)] = ((n_workers, 2, *shape), dtype)
        if self._halo:
            # SharedMemory is zero-filled, so every flag starts below
            # the first published seq (the pipeline counts from 1)
            specs[_HALO_SEQ] = ((n_workers, len(self._halo)), np.int64)
        self.arena = SharedArena(specs)
        self._stage = _PackStage()
        cfg = dict(cfg, outputs=tuple(outputs), halo=self._halo)
        self.pool = WorkerPool(
            n_workers, self.arena.arrays, cfg, main=_fork_worker_entry,
            name=name,
        )

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        rows = self.arena[name]
        for k, idx in enumerate(ids):
            pack = rows[k, : len(idx)]
            np.take(source, idx, axis=0, out=pack)
            self.bytes_sent += pack.nbytes

    def scatter_rows(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
    ) -> None:
        arena_rows = self.arena[name]
        for k, idx in enumerate(ids):
            pack = self._stage.take((name, k), source, idx)
            arena_rows[k][rows[k]] = pack
            self.bytes_sent += pack.nbytes

    def publish(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
        seq: int,
    ) -> None:
        halo = self.arena[_halo_name(name)]
        flags = self.arena[_HALO_SEQ]
        col = self._col[name]
        slot = seq & 1
        for k, idx in enumerate(ids):
            if len(idx):
                pack = halo[k, slot, : len(idx)]
                np.take(source, idx, axis=0, out=pack)
                self.bytes_sent += pack.nbytes
            # the flag store comes program-order after the slot write;
            # aligned int64 stores are atomic and x86-TSO keeps them
            # ordered (see _ArenaChannel.wait_halo)
            flags[k, col] = seq

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        return self.pool.command(msg, parts, stagger=stagger)

    def post(self, msg: tuple, parts: list[tuple] | None = None) -> None:
        self.pool.post(msg, parts)

    def collect(self) -> list[tuple]:
        return self.pool.collect()

    def barrier(self) -> None:
        self.pool.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        rows = self.arena[name]
        packs = [rows[k, : self._counts[k]] for k in range(self.n_workers)]
        self.bytes_recv += sum(p.nbytes for p in packs)
        return packs

    def close(self) -> None:
        self.pool.close()
        self.arena.close()


class SocketTransport:
    """TCP transport over :mod:`multiprocessing.connection`.

    The parent listens on loopback, spawns (or, via
    ``repro.parallel.worker``, awaits) one worker per rank, and sends
    each rank only *its* scattered packs, pickled onto the next
    command; workers return their staged output packs piggybacked on
    replies.  Pickling preserves float64 bits, so the pack reduction
    matches the shared-memory transport bitwise.
    """

    kind = "socket"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
        address: tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: bool = True,
        halo: tuple = (),
    ) -> None:
        from multiprocessing.connection import Listener

        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        self._stage = _PackStage()
        self._pending: list[dict[str, tuple]] = [
            {} for _ in range(n_workers)
        ]
        self._received: list[dict[str, np.ndarray]] = [
            {} for _ in range(n_workers)
        ]
        authkey = os.urandom(16)
        self._listener = Listener(address, authkey=authkey)
        self._procs = []
        if spawn_workers:
            ctx = multiprocessing.get_context("fork")
            for rank in range(n_workers):
                proc = ctx.Process(
                    target=remote_worker_main,
                    args=(self._listener.address, authkey, rank),
                    daemon=True,
                    name=f"{name}-sock-{rank}",
                )
                proc.start()
                self._procs.append(proc)
        # Accept in arrival order, then seat by handshake rank so the
        # pack reduction order is the topology's, not the race's.
        self._conns: list = [None] * n_workers
        for _ in range(n_workers):
            conn = self._listener.accept()
            hello = conn.recv()
            if hello[0] != "hello":  # pragma: no cover - protocol violation
                raise RuntimeError(f"expected hello, got {hello[0]!r}")
            rank = int(hello[1])
            if not 0 <= rank < n_workers or self._conns[rank] is not None:
                raise RuntimeError(f"bad worker rank {rank}")
            self._conns[rank] = conn
        setup = ("setup", dict(cfg, outputs=tuple(outputs)))
        for conn in self._conns:
            conn.send(setup)

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        source = np.asarray(source)
        for k, idx in enumerate(ids):
            pack = self._stage.take((name, k), source, idx)
            self._pending[k][name] = ("full", pack)
            self.bytes_sent += pack.nbytes

    def scatter_rows(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
    ) -> None:
        # the worker knows its own/ghost rows; only the owned values
        # travel, tagged so the channel patches rather than replaces
        source = np.asarray(source)
        for k, idx in enumerate(ids):
            pack = self._stage.take((name, k), source, idx)
            self._pending[k][name] = ("own", pack)
            self.bytes_sent += pack.nbytes

    def publish(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
        seq: int,
    ) -> None:
        # eager send: the frame rides the connection behind (or, in the
        # no-overlap path, ahead of) the round's command — FIFO order
        # is the only synchronization the buffered receive needs
        source = np.asarray(source)
        for k, idx in enumerate(ids):
            if not len(idx):
                continue
            pack = self._stage.take((_halo_name(name), k), source, idx)
            self._conns[k].send(("__halo__", seq, {name: pack}))
            self.bytes_sent += pack.nbytes

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        if not stagger:
            self.post(msg, parts)
            return self.collect()
        replies: list[tuple] = []
        for wid, conn in enumerate(self._conns):
            rank_msg = msg if parts is None else msg + tuple(parts[wid])
            conn.send((rank_msg, self._pending[wid]))
            self._pending[wid] = {}
            # One worker at a time: on CPU-starved hosts this stops
            # the shards evicting each other's caches mid-pass.
            # Replies are identical either way.
            replies.append(self._recv_reply(wid))
        return self._finish(replies)

    def post(self, msg: tuple, parts: list[tuple] | None = None) -> None:
        for wid, conn in enumerate(self._conns):
            rank_msg = msg if parts is None else msg + tuple(parts[wid])
            conn.send((rank_msg, self._pending[wid]))
            self._pending[wid] = {}

    def collect(self) -> list[tuple]:
        replies = [self._recv_reply(wid) for wid in range(len(self._conns))]
        return self._finish(replies)

    def _finish(self, replies: list[tuple]) -> list[tuple]:
        error: tuple | None = None
        for wid, reply in enumerate(replies):
            if reply and reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return replies

    def _recv_reply(self, wid: int) -> tuple:
        """One rank's reply payload; staged packs are absorbed en route."""
        try:
            reply, out = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            reply = ("error", "RuntimeError", f"worker {wid} died: {exc}")
            out = {}
        self._received[wid].update(out)
        if reply[0] == "error":
            return reply
        return reply[1:]

    def barrier(self) -> None:
        self.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        packs = []
        for wid in range(self.n_workers):
            pack = self._received[wid][name]
            if len(pack) != self._counts[wid]:  # pragma: no cover
                raise RuntimeError(
                    f"rank {wid} staged {len(pack)} rows of {name!r}, "
                    f"expected {self._counts[wid]}"
                )
            self.bytes_recv += pack.nbytes
            packs.append(pack)
        return packs

    def close(self) -> None:
        """Stop and reap the workers (idempotent, dead-worker safe)."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((("stop",), {}))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns = []
        for proc in self._procs:
            proc.join(timeout=_REAP_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None


class _InlineChannel:
    """In-process channel: packs live in two plain dicts.

    Input packs are stored by :meth:`InlineTransport.scatter` into
    per-rank reusable buffers; outputs staged with :meth:`put` are read
    back by :meth:`InlineTransport.gather`.  ``recv``/``send`` never
    run — the transport invokes :meth:`ShardWorker.handle` directly.

    Halo publication is trivially complete: the transport finishes
    every pack write during :meth:`InlineTransport.publish`, before the
    round's handlers run inside ``collect()``, so :meth:`wait_halo`
    only asserts the protocol ordering (a wait can never block).
    """

    def __init__(self) -> None:
        self.inputs: dict[str, np.ndarray] = {}
        self.outputs: dict[str, np.ndarray] = {}
        self.halo_seq: dict[str, int] = {}

    def get(self, name: str, n: int) -> np.ndarray:
        return self.inputs[name]

    def put(self, name: str, data: np.ndarray) -> None:
        self.outputs[name] = data

    def set_rows(self, own_rows: np.ndarray, ghost_rows: np.ndarray) -> None:
        pass  # the transport writes rows parent-side

    def wait_halo(self, name: str, seq: int) -> None:
        if self.halo_seq.get(name, -1) < seq:  # pragma: no cover
            raise RuntimeError(
                f"halo {name!r} seq {seq} not published before collect()"
            )


class InlineTransport:
    """In-process transport: virtual shard workers, zero IPC.

    Hosts ``n_workers`` :class:`ShardWorker` state machines inside the
    parent process and runs each command synchronously in rank order.
    The compute body, pack layouts and fixed-order reduction are
    exactly the forked/remote ones, so trajectories are bitwise-equal
    to the other transports by construction — this tier changes
    *where* the protocol runs, never what it computes.

    Exists because process parallelism needs spare cores: on a host
    with fewer CPUs than workers the forked tiers timeshare one core
    and pay IPC + context-switch tax for zero concurrency, while the
    tile decomposition itself is still profitable (tile-sized arrays
    cache better than the global arrays, and dead-block pruning makes
    tile rebuilds cheaper than a global rebuild).  ``resolve_transport``
    picks this tier automatically on such hosts.

    Byte counters report the same sparse pack prefixes the wire
    transports would carry — halo volume is a protocol property, not a
    copper property — so accounting stays comparable across tiers.
    Input packs reuse per-rank buffers sized from ``inputs`` capacity
    specs: steady-state steps allocate nothing on the scatter path.
    """

    kind = "inline"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
        halo: tuple = (),
    ) -> None:
        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        self._channels = [_InlineChannel() for _ in range(n_workers)]
        self._buffers = [
            {
                cname: np.empty(shape, dtype)
                for cname, (shape, dtype) in inputs.items()
            }
            for _ in range(n_workers)
        ]
        self._own_part: dict[str, tuple] = {}
        self._full_ids: dict = {}
        wcfg = dict(cfg, outputs=tuple(outputs))
        self._workers = [
            ShardWorker(ch, wcfg, switch_backend=False)
            for ch in self._channels
        ]

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        for k, idx in enumerate(ids):
            pack = self._buffers[k][name][: len(idx)]
            np.take(source, idx, axis=0, out=pack)
            self._channels[k].inputs[name] = pack
            self.bytes_sent += pack.nbytes

    def scatter_rows(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
    ) -> None:
        # in-process there is nothing to overlap with: defer the write
        # and fuse it with publish() into the single full-prefix
        # np.take of the blocking path (same bits, same cost); only
        # the byte accounting observes the owned/ghost split
        for idx in ids:
            self.bytes_sent += _pack_nbytes(source, idx)
        self._own_part[name] = (source, ids, rows)

    def publish(
        self,
        name: str,
        source,
        ids: list[np.ndarray],
        rows: list[np.ndarray],
        seq: int,
    ) -> None:
        own_source, own_ids, own_rows = self._own_part.pop(name)
        for k, g_idx in enumerate(ids):
            full = self._fused_ids(
                name, k, own_ids[k], own_rows[k], g_idx, rows[k]
            )
            pack = self._buffers[k][name][: len(full)]
            np.take(own_source, full, axis=0, out=pack)
            self._channels[k].inputs[name] = pack
            self._channels[k].halo_seq[name] = seq
            self.bytes_sent += _pack_nbytes(source, g_idx)

    def _fused_ids(self, name, k, own_ids, own_rows, ghost_ids, ghost_rows):
        """Owned + ghost ids re-interleaved to the full pack order.

        Cached per (channel, rank) against the id-list identities —
        the pipeline only replaces them on a rebuild, so steady steps
        reuse the composite without allocating.
        """
        key = (name, k)
        cached = self._full_ids.get(key)
        if cached is not None and cached[0] is own_ids and cached[1] is ghost_ids:
            return cached[2]
        full = np.empty(len(own_ids) + len(ghost_ids), dtype=np.int64)
        full[own_rows] = own_ids
        full[ghost_rows] = ghost_ids
        self._full_ids[key] = (own_ids, ghost_ids, full)
        return full

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        # stagger is meaningless here: rank order IS the execution
        # order, with no competing processes to interleave.
        self.post(msg, parts)
        return self.collect()

    def post(self, msg: tuple, parts: list[tuple] | None = None) -> None:
        self._posted = (msg, parts)

    def collect(self) -> list[tuple]:
        msg, parts = self._posted
        replies: list[tuple] = []
        for wid, worker in enumerate(self._workers):
            rank_msg = msg if parts is None else msg + tuple(parts[wid])
            replies.append(worker.handle(rank_msg))
        error: tuple | None = None
        for wid, reply in enumerate(replies):
            if reply and reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return [r[1:] for r in replies]

    def barrier(self) -> None:
        self.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        packs = []
        for wid in range(self.n_workers):
            pack = self._channels[wid].outputs[name]
            if len(pack) != self._counts[wid]:  # pragma: no cover
                raise RuntimeError(
                    f"rank {wid} staged {len(pack)} rows of {name!r}, "
                    f"expected {self._counts[wid]}"
                )
            self.bytes_recv += pack.nbytes
            packs.append(pack)
        return packs

    def close(self) -> None:
        self._workers = []
        self._channels = []
        self._buffers = []


def resolve_transport(kind: str | None, n_workers: int, cfg: dict) -> str:
    """Resolve ``None``/``"auto"`` to a concrete transport kind.

    Process-backed transports only pay off with spare cores: when the
    host has fewer CPUs than workers (or only one worker), the forked
    tiers add IPC and context-switch cost for zero concurrency, so
    ``auto`` picks the inline tier instead — same bits, no processes.
    A non-default inner kernel backend forces the forked tier (the
    inline workers share the parent's active backend and cannot switch
    it per-tile).

    A core-starved auto-inline pick warns once per (workers, cpus)
    shape: the user asked for parallelism the host cannot deliver, and
    should know the shards run in-process (``n_workers == 1`` stays
    silent — a single worker has nothing to overlap regardless).
    """
    if kind not in (None, "auto"):
        return kind
    if cfg.get("inner_backend", "numpy") != "numpy":
        return "shared"
    if n_workers == 1:
        return "inline"
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        cpus = os.cpu_count() or 1
    if cpus < n_workers:
        from repro.parallel import warn_once

        warn_once(
            f"auto-inline-{n_workers}w-{cpus}c",
            f"transport='auto' picked the inline tier: {n_workers} "
            f"workers but only {cpus} usable CPU(s), so forked workers "
            f"would timeshare cores for no concurrency "
            f"(set REPRO_PARALLEL_TRANSPORT=shared to override)",
        )
        return "inline"
    return "shared"


def make_transport(
    kind: str | None,
    n_workers: int,
    inputs: dict,
    outputs: dict,
    cfg: dict,
    *,
    name: str = "repro-shard",
    halo: tuple = (),
) -> ForkTransport | SocketTransport | InlineTransport:
    """Construct the named transport (``None``/``"auto"`` adapt to host).

    ``halo`` names the input channels whose ghost rows may be published
    asynchronously (:meth:`Transport.publish`); the shared-memory tier
    sizes its double-buffered side channels from it at arena-creation
    time, pre-fork.
    """
    kind = resolve_transport(kind, n_workers, cfg)
    if kind == "shared":
        return ForkTransport(
            n_workers, inputs, outputs, cfg, name=name, halo=halo
        )
    if kind == "socket":
        return SocketTransport(
            n_workers, inputs, outputs, cfg, name=name, halo=halo
        )
    if kind == "inline":
        return InlineTransport(
            n_workers, inputs, outputs, cfg, name=name, halo=halo
        )
    raise ValueError(
        f"unknown transport {kind!r}; expected one of {TRANSPORTS}"
    )
