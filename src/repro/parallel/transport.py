"""Pluggable transports: how the pipeline reaches its shard workers.

The sharded force pipeline moves *sparse halo packs*, never full
arrays, and this module pins the movement down as the
:class:`Transport` protocol so the decomposition logic never knows how
bytes travel:

* **scatter** — :meth:`Transport.scatter` packs, per rank, only the
  rows a tile's halo region needs (``source[ids[k]]``) into that
  rank's slot prefix.  The id lists are the pipeline's cached halo
  pack indices, recomputed only on a candidate rebuild.
* **command + barrier** — :meth:`Transport.command` broadcasts one
  small message (optionally extended with a per-rank part) and blocks
  for every worker's reply, in rank order.  Replies are
  ``(flag, n_pairs, seconds, density_seconds)`` tails; worker errors
  re-raise in the parent by exception name, like the serial path.
* **gather** — :meth:`Transport.gather` returns each rank's staged
  output prefix (partial density, pair energy, forces over its local
  atoms).  The parent scatter-adds the packs **in fixed rank order**
  (the seam reduction), so a trajectory is bitwise-reproducible for a
  given (topology, transport) — and because both transports deliver
  identical float64 bits in identical pack layouts, bitwise-identical
  *across* transports too.

Two implementations:

* :class:`ForkTransport` ("shared") — the historical single-host path:
  forked workers inherit a :class:`~repro.parallel.shm.SharedArena`
  holding one ``(n_workers, capacity, ...)`` row-per-rank array per
  channel; scatters are ``np.take`` straight into the rank's row,
  gathers are prefix views — zero copies beyond the pack itself.
* :class:`SocketTransport` ("socket") — the same worker protocol over
  TCP (:mod:`multiprocessing.connection`): packs ride as pickled
  buffers piggybacked on commands and replies, so shards can live in
  other processes or on other hosts (``repro.parallel.worker`` is the
  remote entry point; CI exercises loopback).

Both count ``bytes_sent``/``bytes_recv`` as the *actual pack prefix
bytes* — charged when a pack is scattered and when a gathered pack is
consumed — so halo-traffic numbers are real sparse volumes and are
identical across transports by construction (a speculative result the
parent discards is never charged, on either transport).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Protocol

import numpy as np

from repro.parallel.pool import WorkerPool, _RERAISABLE
from repro.parallel.shm import SharedArena

__all__ = [
    "Transport",
    "ShardWorker",
    "ForkTransport",
    "SocketTransport",
    "InlineTransport",
    "make_transport",
    "resolve_transport",
    "worker_loop",
    "remote_worker_main",
    "TRANSPORTS",
]

TRANSPORTS = ("shared", "socket", "inline")

#: Seconds to wait for a worker to exit before terminating it.
_REAP_TIMEOUT_S = 5.0


class Transport(Protocol):
    """What :class:`~repro.parallel.pipeline.ShardedForcePipeline` needs."""

    kind: str
    n_workers: int
    bytes_sent: int
    bytes_recv: int

    def set_counts(self, counts: list[int]) -> None: ...

    def scatter(
        self, name: str, source: np.ndarray, ids: list[np.ndarray]
    ) -> None: ...

    def command(
        self, msg: tuple, parts: list[tuple] | None = None
    ) -> list[tuple]: ...

    def barrier(self) -> None: ...

    def gather(self, name: str) -> list[np.ndarray]: ...

    def close(self) -> None: ...


# -- the worker protocol (transport-independent) ---------------------------


class ShardWorker:
    """One tile's persistent protocol state machine.

    The worker owns its tile across steps: halo-pack positions, types,
    the owned-region mask and the local-index candidate list (with its
    build-time separations) all persist between commands, so a
    steady-state step moves only the pack and the results.  The Verlet
    skin trigger itself is evaluated parent-side (the parent owns every
    position, so its global check equals the OR over the covering tile
    sets exactly); by the time a ``dens`` command arrives, the
    candidates are guaranteed fresh.

    * ``("dens", max_disp)`` — read the position pack and
      distance-filter the cached candidates under the parent's global
      displacement bound (a valid upper bound for every tile, already
      in hand from the skin trigger — so no tile recomputes one): the
      bound either proves every candidate is still inside the cutoff
      (the filter skips its mask and compaction outright) or pre-masks
      candidates provably still out of range.  Then run the density
      pass, staging the local ``rho`` pack.
    * ``("rebuild", n_local, bounds)`` — read a freshly planned pack
      (positions + types), recompute the owned mask from the tile
      bounds, rebuild the local candidate list via the seam rule, copy
      the reference positions, then filter + density as above.
    * ``("force",)`` — read the ``f_der`` pack, run the pair-force
      pass over the cached filtered pairs, stage ``epair``/``forces``.

    :meth:`handle` returns ``("ok", flag, n_pairs, seconds,
    density_seconds)`` replies (or ``("error", type, text)``).  The
    compute body is identical under every transport — forked, remote
    *and* inline — which is what makes cross-transport trajectories
    bitwise-equal.

    ``switch_backend=False`` skips the process-global kernel-backend
    switch: the inline transport runs workers inside the parent
    process, whose active backend (the ``parallel`` backend re-exports
    the numpy kernels) already evaluates the identical arithmetic.
    """

    def __init__(self, channel, cfg: dict, *, switch_backend: bool = True):
        from repro.md.cell_list import CellList

        if switch_backend:
            from repro.kernels import set_backend

            # The "parallel" backend name only means "drive workers
            # from the parent"; each worker's inner loops run a serial
            # backend — numpy by default, or numba when the pipeline
            # was configured to stack the JIT tier on top of sharding
            # (REPRO_PARALLEL_INNER_BACKEND).
            set_backend(cfg.get("inner_backend", "numpy"))
        self.channel = channel
        self.cfg = cfg
        self.potential = cfg["potential"]
        self.cutoff = cfg["cutoff"]
        self.reach = cfg["reach"]
        self.cells = CellList(cfg["box"], self.reach)  # reused buffers
        self.n_local = 0
        self.types_l = None
        self.shard = None
        self.table = None
        self.cache: dict = {}
        self.positions = None  # current pack (persists dens -> force)
        self.d_max = 0.0  # parent's displacement bound since the rebuild

    def _filter_density(self, t0: float) -> tuple:
        self.table = self.shard.pairs(
            self.positions, self.cutoff, max_disp=self.d_max
        )
        t_fil = time.perf_counter() - t0
        rho, self.cache = self.potential.fused_density(
            self.n_local, self.table, self.types_l
        )
        self.channel.put("rho", rho)
        t_tot = time.perf_counter() - t0
        return ("ok", 0, self.table.n_pairs, t_tot, t_tot - t_fil)

    def handle(self, msg: tuple) -> tuple:
        """Serve one command, returning its reply tuple."""
        from repro.parallel.domains import (
            build_local_pairs,
            owned_mask_local,
        )

        cmd = msg[0]
        t0 = time.perf_counter()
        try:
            if cmd == "dens":
                self.positions = self.channel.get("positions", self.n_local)
                # The parent's global displacement bound (from its skin
                # trigger) rides on the command: it upper-bounds every
                # tile's local displacement, so the tile pays no einsum
                # of its own.  A looser bound only weakens the provably
                # bit-neutral cross-step cuts, never the emitted pairs.
                self.d_max = float(msg[1])
                return self._filter_density(t0)
            if cmd == "rebuild":
                self.n_local = int(msg[1])
                bounds = msg[2]
                self.positions = self.channel.get(
                    "positions", self.n_local
                )
                self.types_l = self.channel.get("types", self.n_local)
                owned = owned_mask_local(self.positions, bounds)
                self.shard = build_local_pairs(
                    self.positions, owned,
                    box=self.cfg["box"], reach=self.reach,
                    cells=self.cells,
                )
                self.d_max = 0.0
                return self._filter_density(t0)
            if cmd == "force":
                f_der = self.channel.get("f_der", self.n_local)
                e_pair, forces = self.potential.fused_pair_force(
                    self.n_local, self.table, f_der, self.types_l,
                    cache=self.cache,
                )
                self.channel.put("epair", e_pair)
                self.channel.put("forces", forces)
                return (
                    "ok", 0, self.table.n_pairs,
                    time.perf_counter() - t0, 0.0,
                )
            if cmd == "ping":
                return ("ok", 0, 0, time.perf_counter() - t0, 0.0)
            return ("error", "ValueError", f"unknown command {cmd!r}")
        except Exception as exc:  # report, keep serving
            return ("error", type(exc).__name__, str(exc))


def worker_loop(channel, wid: int, cfg: dict) -> None:
    """Serve :class:`ShardWorker` commands over a channel until stop."""
    worker = ShardWorker(channel, cfg)
    while True:
        try:
            msg = channel.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        channel.send(worker.handle(msg))
    channel.close()


class _ArenaChannel:
    """Worker-side channel over fork-inherited shared memory + a pipe.

    Every arena array is ``(n_workers, capacity, ...)``; this worker
    reads input pack prefixes from — and writes output pack prefixes
    into — its own row.  A parent scatter is instantly visible.
    """

    def __init__(self, conn, wid: int, shared: dict, outputs: tuple) -> None:
        self._conn = conn
        self._in = {k: v[wid] for k, v in shared.items() if k not in outputs}
        self._out = {k: shared[k][wid] for k in outputs}

    def recv(self):
        return self._conn.recv()

    def send(self, reply: tuple) -> None:
        self._conn.send(reply)

    def get(self, name: str, n: int) -> np.ndarray:
        return self._in[name][:n]

    def put(self, name: str, data: np.ndarray) -> None:
        self._out[name][: len(data)] = data

    def close(self) -> None:
        self._conn.close()


class _SocketChannel:
    """Worker-side channel over one ``multiprocessing.connection`` link.

    Incoming messages are ``(msg, packs)`` — the packs refresh the
    local input cache (each already cut to this rank's prefix length);
    outputs staged with :meth:`put` piggyback on the next reply as
    ``(reply, outputs)``.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._in: dict[str, np.ndarray] = {}
        self._staged: dict[str, np.ndarray] = {}

    def recv(self):
        msg, bufs = self._conn.recv()
        self._in.update(bufs)
        return msg

    def send(self, reply: tuple) -> None:
        self._conn.send((reply, self._staged))
        self._staged = {}

    def get(self, name: str, n: int) -> np.ndarray:
        pack = self._in[name]
        if len(pack) != n:  # pragma: no cover - protocol violation
            raise RuntimeError(
                f"pack {name!r} has {len(pack)} rows, expected {n}"
            )
        return pack

    def put(self, name: str, data: np.ndarray) -> None:
        self._staged[name] = np.ascontiguousarray(data)

    def close(self) -> None:
        self._conn.close()


def _fork_worker_entry(conn, wid: int, shared: dict, cfg: dict) -> None:
    """Fork-pool entry: wrap the inherited arena into a channel."""
    worker_loop(_ArenaChannel(conn, wid, shared, cfg["outputs"]), wid, cfg)


def remote_worker_main(address, authkey: bytes, rank: int) -> None:
    """Socket-transport worker entry: connect, handshake, serve.

    Runs in a separate process (loopback CI) or on another host
    (``python -m repro.parallel.worker``).  The handshake carries the
    rank so the parent can order connections deterministically, then
    the parent ships the full worker config (potential included) in a
    ``setup`` message before the first command.
    """
    from multiprocessing.connection import Client

    conn = Client(address, authkey=authkey)
    conn.send(("hello", rank))
    msg = conn.recv()
    if msg[0] != "setup":  # pragma: no cover - protocol violation
        conn.close()
        raise RuntimeError(f"expected setup message, got {msg[0]!r}")
    cfg = msg[1]
    worker_loop(_SocketChannel(conn), rank, cfg)


# -- parent-side transports ------------------------------------------------


class ForkTransport:
    """Shared-memory transport: SharedArena + forked worker pool.

    ``inputs``/``outputs`` are ``{name: (shape, dtype)}`` per-rank
    capacity specs; every channel gets a leading ``n_workers`` row
    dimension in the arena, and only pack prefixes ever move.
    """

    kind = "shared"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
    ) -> None:
        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        specs = {
            cname: ((n_workers, *shape), dtype)
            for cname, (shape, dtype) in {**inputs, **outputs}.items()
        }
        self.arena = SharedArena(specs)
        cfg = dict(cfg, outputs=tuple(outputs))
        self.pool = WorkerPool(
            n_workers, self.arena.arrays, cfg, main=_fork_worker_entry,
            name=name,
        )

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        rows = self.arena[name]
        for k, idx in enumerate(ids):
            pack = rows[k, : len(idx)]
            np.take(source, idx, axis=0, out=pack)
            self.bytes_sent += pack.nbytes

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        return self.pool.command(msg, parts, stagger=stagger)

    def barrier(self) -> None:
        self.pool.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        rows = self.arena[name]
        packs = [rows[k, : self._counts[k]] for k in range(self.n_workers)]
        self.bytes_recv += sum(p.nbytes for p in packs)
        return packs

    def close(self) -> None:
        self.pool.close()
        self.arena.close()


class SocketTransport:
    """TCP transport over :mod:`multiprocessing.connection`.

    The parent listens on loopback, spawns (or, via
    ``repro.parallel.worker``, awaits) one worker per rank, and sends
    each rank only *its* scattered packs, pickled onto the next
    command; workers return their staged output packs piggybacked on
    replies.  Pickling preserves float64 bits, so the pack reduction
    matches the shared-memory transport bitwise.
    """

    kind = "socket"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
        address: tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: bool = True,
    ) -> None:
        from multiprocessing.connection import Listener

        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        self._pending: list[dict[str, np.ndarray]] = [
            {} for _ in range(n_workers)
        ]
        self._received: list[dict[str, np.ndarray]] = [
            {} for _ in range(n_workers)
        ]
        authkey = os.urandom(16)
        self._listener = Listener(address, authkey=authkey)
        self._procs = []
        if spawn_workers:
            ctx = multiprocessing.get_context("fork")
            for rank in range(n_workers):
                proc = ctx.Process(
                    target=remote_worker_main,
                    args=(self._listener.address, authkey, rank),
                    daemon=True,
                    name=f"{name}-sock-{rank}",
                )
                proc.start()
                self._procs.append(proc)
        # Accept in arrival order, then seat by handshake rank so the
        # pack reduction order is the topology's, not the race's.
        self._conns: list = [None] * n_workers
        for _ in range(n_workers):
            conn = self._listener.accept()
            hello = conn.recv()
            if hello[0] != "hello":  # pragma: no cover - protocol violation
                raise RuntimeError(f"expected hello, got {hello[0]!r}")
            rank = int(hello[1])
            if not 0 <= rank < n_workers or self._conns[rank] is not None:
                raise RuntimeError(f"bad worker rank {rank}")
            self._conns[rank] = conn
        setup = ("setup", dict(cfg, outputs=tuple(outputs)))
        for conn in self._conns:
            conn.send(setup)

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        source = np.asarray(source)
        for k, idx in enumerate(ids):
            pack = np.take(source, idx, axis=0)
            self._pending[k][name] = pack
            self.bytes_sent += pack.nbytes

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        replies: list[tuple] = []
        for wid, conn in enumerate(self._conns):
            rank_msg = msg if parts is None else msg + tuple(parts[wid])
            conn.send((rank_msg, self._pending[wid]))
            self._pending[wid] = {}
            if stagger:
                # One worker at a time: on CPU-starved hosts this stops
                # the shards evicting each other's caches mid-pass.
                # Replies are identical either way.
                replies.append(self._recv_reply(wid))
        if not stagger:
            for wid in range(len(self._conns)):
                replies.append(self._recv_reply(wid))
        error: tuple | None = None
        for wid, reply in enumerate(replies):
            if reply and reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return replies

    def _recv_reply(self, wid: int) -> tuple:
        """One rank's reply payload; staged packs are absorbed en route."""
        try:
            reply, out = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            reply = ("error", "RuntimeError", f"worker {wid} died: {exc}")
            out = {}
        self._received[wid].update(out)
        if reply[0] == "error":
            return reply
        return reply[1:]

    def barrier(self) -> None:
        self.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        packs = []
        for wid in range(self.n_workers):
            pack = self._received[wid][name]
            if len(pack) != self._counts[wid]:  # pragma: no cover
                raise RuntimeError(
                    f"rank {wid} staged {len(pack)} rows of {name!r}, "
                    f"expected {self._counts[wid]}"
                )
            self.bytes_recv += pack.nbytes
            packs.append(pack)
        return packs

    def close(self) -> None:
        """Stop and reap the workers (idempotent, dead-worker safe)."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((("stop",), {}))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns = []
        for proc in self._procs:
            proc.join(timeout=_REAP_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None


class _InlineChannel:
    """In-process channel: packs live in two plain dicts.

    Input packs are stored by :meth:`InlineTransport.scatter` into
    per-rank reusable buffers; outputs staged with :meth:`put` are read
    back by :meth:`InlineTransport.gather`.  ``recv``/``send`` never
    run — the transport invokes :meth:`ShardWorker.handle` directly.
    """

    def __init__(self) -> None:
        self.inputs: dict[str, np.ndarray] = {}
        self.outputs: dict[str, np.ndarray] = {}

    def get(self, name: str, n: int) -> np.ndarray:
        return self.inputs[name]

    def put(self, name: str, data: np.ndarray) -> None:
        self.outputs[name] = data


class InlineTransport:
    """In-process transport: virtual shard workers, zero IPC.

    Hosts ``n_workers`` :class:`ShardWorker` state machines inside the
    parent process and runs each command synchronously in rank order.
    The compute body, pack layouts and fixed-order reduction are
    exactly the forked/remote ones, so trajectories are bitwise-equal
    to the other transports by construction — this tier changes
    *where* the protocol runs, never what it computes.

    Exists because process parallelism needs spare cores: on a host
    with fewer CPUs than workers the forked tiers timeshare one core
    and pay IPC + context-switch tax for zero concurrency, while the
    tile decomposition itself is still profitable (tile-sized arrays
    cache better than the global arrays, and dead-block pruning makes
    tile rebuilds cheaper than a global rebuild).  ``resolve_transport``
    picks this tier automatically on such hosts.

    Byte counters report the same sparse pack prefixes the wire
    transports would carry — halo volume is a protocol property, not a
    copper property — so accounting stays comparable across tiers.
    Input packs reuse per-rank buffers sized from ``inputs`` capacity
    specs: steady-state steps allocate nothing on the scatter path.
    """

    kind = "inline"

    def __init__(
        self,
        n_workers: int,
        inputs: dict,
        outputs: dict,
        cfg: dict,
        *,
        name: str = "repro-shard",
    ) -> None:
        self.n_workers = n_workers
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._counts = [0] * n_workers
        self._channels = [_InlineChannel() for _ in range(n_workers)]
        self._buffers = [
            {
                cname: np.empty(shape, dtype)
                for cname, (shape, dtype) in inputs.items()
            }
            for _ in range(n_workers)
        ]
        wcfg = dict(cfg, outputs=tuple(outputs))
        self._workers = [
            ShardWorker(ch, wcfg, switch_backend=False)
            for ch in self._channels
        ]

    def set_counts(self, counts: list[int]) -> None:
        self._counts = list(counts)

    def scatter(self, name: str, source, ids: list[np.ndarray]) -> None:
        for k, idx in enumerate(ids):
            pack = self._buffers[k][name][: len(idx)]
            np.take(source, idx, axis=0, out=pack)
            self._channels[k].inputs[name] = pack
            self.bytes_sent += pack.nbytes

    def command(
        self,
        msg: tuple,
        parts: list[tuple] | None = None,
        *,
        stagger: bool = False,
    ) -> list[tuple]:
        # stagger is meaningless here: rank order IS the execution
        # order, with no competing processes to interleave.
        replies: list[tuple] = []
        for wid, worker in enumerate(self._workers):
            rank_msg = msg if parts is None else msg + tuple(parts[wid])
            replies.append(worker.handle(rank_msg))
        error: tuple | None = None
        for wid, reply in enumerate(replies):
            if reply and reply[0] == "error" and error is None:
                error = (wid, reply[1], reply[2])
        if error is not None:
            wid, kind, text = error
            exc_type = _RERAISABLE.get(kind, RuntimeError)
            raise exc_type(f"shard worker {wid}: {text}")
        return [r[1:] for r in replies]

    def barrier(self) -> None:
        self.command(("ping",))

    def gather(self, name: str) -> list[np.ndarray]:
        packs = []
        for wid in range(self.n_workers):
            pack = self._channels[wid].outputs[name]
            if len(pack) != self._counts[wid]:  # pragma: no cover
                raise RuntimeError(
                    f"rank {wid} staged {len(pack)} rows of {name!r}, "
                    f"expected {self._counts[wid]}"
                )
            self.bytes_recv += pack.nbytes
            packs.append(pack)
        return packs

    def close(self) -> None:
        self._workers = []
        self._channels = []
        self._buffers = []


def resolve_transport(kind: str | None, n_workers: int, cfg: dict) -> str:
    """Resolve ``None``/``"auto"`` to a concrete transport kind.

    Process-backed transports only pay off with spare cores: when the
    host has fewer CPUs than workers (or only one worker), the forked
    tiers add IPC and context-switch cost for zero concurrency, so
    ``auto`` picks the inline tier instead — same bits, no processes.
    A non-default inner kernel backend forces the forked tier (the
    inline workers share the parent's active backend and cannot switch
    it per-tile).
    """
    if kind not in (None, "auto"):
        return kind
    if cfg.get("inner_backend", "numpy") != "numpy":
        return "shared"
    if n_workers == 1:
        return "inline"
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        cpus = os.cpu_count() or 1
    return "inline" if cpus < n_workers else "shared"


def make_transport(
    kind: str | None,
    n_workers: int,
    inputs: dict,
    outputs: dict,
    cfg: dict,
    *,
    name: str = "repro-shard",
) -> ForkTransport | SocketTransport | InlineTransport:
    """Construct the named transport (``None``/``"auto"`` adapt to host)."""
    kind = resolve_transport(kind, n_workers, cfg)
    if kind == "shared":
        return ForkTransport(n_workers, inputs, outputs, cfg, name=name)
    if kind == "socket":
        return SocketTransport(n_workers, inputs, outputs, cfg, name=name)
    if kind == "inline":
        return InlineTransport(n_workers, inputs, outputs, cfg, name=name)
    raise ValueError(
        f"unknown transport {kind!r}; expected one of {TRANSPORTS}"
    )
