"""``repro.parallel``: domain-sharded execution over pluggable transports.

The paper's speedup is spatial decomposition — one atom per PE with a
locality-preserving cell-to-fabric mapping.  This package is the
host-side analogue, split into two orthogonal layers:

* **Domains** (:mod:`~repro.parallel.domains`): the box is tiled into a
  cell-aligned ``px x py`` :class:`~repro.parallel.domains.DomainGrid`
  of rectangular domains with balanced atom counts, halo regions of
  width cutoff + skin, and an own-smaller-global-id seam rule that
  keeps the tile union bit-identical to the serial candidate set.  The
  historical 1D column layout is the ``px x 1`` special case.
* **Transport** (:mod:`~repro.parallel.transport`): how bytes reach the
  workers — the fork + :class:`~repro.parallel.shm.SharedArena`
  shared-memory path, or the same worker protocol over TCP sockets so
  shards can live in other processes or hosts.

The :class:`~repro.parallel.pipeline.ShardedForcePipeline` drives the
EAM two-pass per step over whichever transport with a deterministic
fixed-order seam reduction, so trajectories are bitwise-reproducible
per (topology, transport) — and bitwise-identical across transports.
Workers own their tiles across steps: only sparse halo packs (per-tile
position/type/derivative prefixes and result packs) ever move, with
per-shard Verlet candidate lists persisting between steps under an
OR-reduced skin-displacement rebuild trigger that exactly mirrors the
serial :class:`~repro.md.neighbor_list.NeighborList` reuse policy.

Selection is the kernel-backend tier: ``backend="parallel"`` (or
``REPRO_KERNEL_BACKEND=parallel``) turns the pipeline on;
:func:`unsupported_reason` gates the cases it cannot shard (periodic
boxes, potentials without the fused two-stage split, no fork), which
fall back to the serial path with a once-per-reason warning.
``REPRO_PARALLEL_TRANSPORT=socket`` flips the default transport.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.parallel.domains import (
    DomainGrid,
    ShardPairs,
    build_shard_pairs,
    build_tile_pairs,
    plan_columns,
    plan_grid,
)
from repro.parallel.pipeline import ShardedForcePipeline
from repro.parallel.pool import WorkerPool, fork_available
from repro.parallel.shm import SharedArena
from repro.parallel.transport import (
    TRANSPORTS,
    ForkTransport,
    InlineTransport,
    ShardWorker,
    SocketTransport,
    make_transport,
    resolve_transport,
)

__all__ = [
    "ShardedForcePipeline",
    "SharedArena",
    "WorkerPool",
    "DomainGrid",
    "ShardPairs",
    "build_shard_pairs",
    "build_tile_pairs",
    "plan_columns",
    "plan_grid",
    "ForkTransport",
    "InlineTransport",
    "ShardWorker",
    "SocketTransport",
    "make_transport",
    "resolve_transport",
    "TRANSPORTS",
    "fork_available",
    "unsupported_reason",
    "warn_fallback",
    "warn_once",
    "reset_warnings",
]

#: Fallback reasons already warned about (once per reason per process,
#: mirroring the kernel registry's once-per-name policy).  Reset via
#: :func:`reset_warnings` in long-lived processes — otherwise one job's
#: fallback permanently silences every later (unrelated) job's, and
#: forked workers inherit the suppression.
_warned_reasons: set[str] = set()


def reset_warnings() -> None:
    """Re-arm the once-per-reason fallback warnings (and the domain
    planner's once-per-shape degenerate-decomposition warnings).

    Called per served job by the serve scheduler; forked workers that
    inherited a populated cache can call it to hear warnings again.
    """
    from repro.parallel import domains

    _warned_reasons.clear()
    domains._warned_degenerate.clear()


def unsupported_reason(box, potential) -> str | None:
    """Why the sharded pipeline cannot run this workload, or ``None``.

    The pipeline shards fully open boxes (the paper's slab workloads;
    periodic images across domain seams are out of scope) for
    potentials exposing the fused two-stage EAM split.
    """
    if not fork_available():
        return "fork start method unavailable on this platform"
    if np.any(box.periodic):
        return "periodic boundaries are not supported by the sharded pipeline"
    if not hasattr(potential, "fused_density") or not hasattr(
        potential, "fused_pair_force"
    ):
        return (
            "potential lacks the fused density/pair-force stages "
            "(fused_density/fused_pair_force)"
        )
    return None


def warn_fallback(reason: str) -> None:
    """Warn once per distinct reason that parallel fell back to serial."""
    warn_once(
        reason,
        f"parallel pipeline unavailable ({reason}); "
        "running the serial force path",
    )


def warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per ``key`` per process.

    Shares the :func:`reset_warnings`-cleared cache with the fallback
    warnings, so served jobs (whose scheduler re-arms the caches) hear
    degradations like the ``REPRO_PARALLEL_NO_REUSE`` rebuild-every-step
    mode again.
    """
    if key in _warned_reasons:
        return
    _warned_reasons.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)
