"""``repro.parallel``: shared-memory domain-sharded execution layer.

The paper's speedup is spatial decomposition — one atom per PE with a
locality-preserving cell-to-fabric mapping.  This package is the
host-side analogue: the box is sliced into cell-aligned **column
domains** (:mod:`~repro.parallel.domains`), a persistent pool of forked
workers (:mod:`~repro.parallel.pool`) owns one column each, and all
per-step array traffic rides a :class:`~repro.parallel.shm.SharedArena`
so a timestep ships no pickled arrays.  The
:class:`~repro.parallel.pipeline.ShardedForcePipeline` drives the EAM
two-pass per step with halo overlap (halo width = cutoff + skin) and a
deterministic fixed-order seam reduction.

Selection is the kernel-backend tier: ``backend="parallel"`` (or
``REPRO_KERNEL_BACKEND=parallel``) turns the pipeline on;
:func:`unsupported_reason` gates the cases it cannot shard (periodic
boxes, potentials without the fused two-stage split, no fork), which
fall back to the serial path with a once-per-reason warning.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.parallel.domains import ShardPairs, build_shard_pairs, plan_columns
from repro.parallel.pipeline import ShardedForcePipeline
from repro.parallel.pool import WorkerPool, fork_available
from repro.parallel.shm import SharedArena

__all__ = [
    "ShardedForcePipeline",
    "SharedArena",
    "WorkerPool",
    "ShardPairs",
    "build_shard_pairs",
    "plan_columns",
    "fork_available",
    "unsupported_reason",
    "warn_fallback",
]

#: Fallback reasons already warned about (once per reason per process,
#: mirroring the kernel registry's once-per-name policy).
_warned_reasons: set[str] = set()


def unsupported_reason(box, potential) -> str | None:
    """Why the sharded pipeline cannot run this workload, or ``None``.

    The pipeline shards fully open boxes (the paper's slab workloads;
    periodic images across column seams are out of scope) for
    potentials exposing the fused two-stage EAM split.
    """
    if not fork_available():
        return "fork start method unavailable on this platform"
    if np.any(box.periodic):
        return "periodic boundaries are not supported by the sharded pipeline"
    if not hasattr(potential, "fused_density") or not hasattr(
        potential, "fused_pair_force"
    ):
        return (
            "potential lacks the fused density/pair-force stages "
            "(fused_density/fused_pair_force)"
        )
    return None


def warn_fallback(reason: str) -> None:
    """Warn once per distinct reason that parallel fell back to serial."""
    if reason in _warned_reasons:
        return
    _warned_reasons.add(reason)
    warnings.warn(
        f"parallel pipeline unavailable ({reason}); "
        "running the serial force path",
        RuntimeWarning,
        stacklevel=3,
    )
