"""Shared-memory arena: named numpy arrays in one OS-shared block.

The pipeline's per-step traffic lives in a single
:class:`multiprocessing.shared_memory.SharedMemory` block: one
``(n_workers, capacity, ...)`` array per channel (position/type/
derivative halo packs in, density / energy / force result packs out),
where each rank touches only its own row's prefix — the sparse pack
the domain decomposition actually needs that step.  The arena is
created in the parent **before** the workers fork, so the children
inherit the mapping directly — no attach-by-name in the children,
which sidesteps the resource-tracker double-unlink problems of named
attachment, and steady-state steps ship zero pickled arrays and
allocate nothing.
"""

from __future__ import annotations

import os
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena"]

_ALIGN = 64  # cache-line align each array within the block


def _release(shm: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Best-effort close, plus unlink in the creating process only.

    Forked workers inherit the arena (and this finalizer); a worker
    exiting must drop its own mapping but never unlink the segment out
    from under the parent.
    """
    try:
        shm.close()
    except BufferError:  # a view still alive somewhere; unlink anyway
        pass
    if os.getpid() != owner_pid:
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedArena:
    """Allocate named arrays inside one shared-memory segment.

    Parameters
    ----------
    specs:
        ``{name: (shape, dtype)}`` for every array.  Layout order
        follows dict order; each array is 64-byte aligned.
    """

    def __init__(self, specs: dict[str, tuple[tuple[int, ...], type]]):
        offsets: dict[str, int] = {}
        cursor = 0
        for name, (shape, dtype) in specs.items():
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(
                dtype
            ).itemsize
            cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
            offsets[name] = cursor
            cursor += nbytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(cursor, 1)
        )
        self.arrays: dict[str, np.ndarray] = {}
        for name, (shape, dtype) in specs.items():
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._shm.buf, offset=offsets[name]
            )
            view.fill(0)
            self.arrays[name] = view
        # Unlink even if close() is never called (leaked arenas would
        # otherwise pin /dev/shm segments for the machine's lifetime).
        self._finalizer = weakref.finalize(
            self, _release, self._shm, os.getpid()
        )

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Drop the views and release the segment (idempotent)."""
        self.arrays.clear()
        if self._finalizer.detach() is not None:
            _release(self._shm, os.getpid())
