"""Standalone socket-transport shard worker.

Lets a shard live outside the parent process — another container, or
another host on the same trusted network::

    python -m repro.parallel.worker --connect HOST:PORT \\
        --rank 3 --authkey-hex 6f70656e20736179732e2e2e

The parent side is a :class:`~repro.parallel.transport.SocketTransport`
constructed with ``spawn_workers=False`` and a routable listen address;
it blocks until every rank has dialed in, ships the worker config
(potential, box, geometry scalars) in the setup handshake, then drives
the owned-region step protocol: this process keeps its tile's halo
pack, candidate list and rebuild reference between steps, so each
steady-state step moves only the sparse position/derivative packs in
and the result packs out.  Under the overlapped protocol the owned
rows arrive with the command and the ghost rows ride a separate eager
``__halo__`` frame, so this process runs its interior (owned-owned)
kernel pass while the ghost pack is still in flight and blocks in
``halo_wait`` only before the boundary pass.  The process exits when
the parent sends ``stop`` or hangs up.
"""

from __future__ import annotations

import argparse

from repro.parallel.transport import remote_worker_main

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.parallel.worker",
        description="connect one shard worker to a SocketTransport parent",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the parent's listener address",
    )
    parser.add_argument(
        "--rank",
        required=True,
        type=int,
        help="this worker's rank (its tile index in the domain grid)",
    )
    parser.add_argument(
        "--authkey-hex",
        required=True,
        help="connection auth key as hex (printed by the parent)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    if args.rank < 0:
        parser.error(f"--rank must be >= 0, got {args.rank}")
    try:
        authkey = bytes.fromhex(args.authkey_hex)
    except ValueError:
        parser.error("--authkey-hex is not valid hex")
    remote_worker_main((host, int(port)), authkey, args.rank)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())
