"""The sharded force pipeline: per-step orchestration over a transport.

One timestep's force evaluation becomes three lockstep rounds, the
host analogue of the paper's communicate/compute cadence:

1. **neighbor** — the parent publishes positions, applies the (global)
   skin/2 rebuild policy, and on a rebuild broadcasts a fresh balanced
   :class:`~repro.parallel.domains.DomainGrid`; each tile rebuilds or
   reuses its candidate pairs and distance-filters them to the true
   cutoff.
2. **density** — each tile accumulates its partial ``rho_bar`` into
   its slot; the parent reduces the slots **in fixed rank order** (the
   seam reduction), evaluates the embedding stage, and broadcasts
   ``F'(rho_bar)``.
3. **force** — each tile evaluates pair forces/energies into its
   slots; the parent reduces again in fixed order.

The fixed-order slot reduction makes a run bitwise-reproducible for a
given (topology, transport) — and since both transports deliver the
same float64 bits into the same slot layout, bitwise-identical across
transports too.  Across topologies the physics agrees to floating-
point summation tolerance (~1e-12 relative), exactly like any
domain-decomposed MD code.

Halo accounting: each round's *exposed* communication time — publish
cost plus the slack between the command's wall time and the slowest
worker's compute time — is emitted as a pre-measured ``halo_exchange``
child span inside the enclosing phase, with the transport's byte
deltas as counters, so ``repro profile`` shows what the decomposition
pays for its seams.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.obs import NULL_TRACER, metrics
from repro.parallel.domains import plan_grid
from repro.parallel.transport import make_transport

__all__ = ["ShardedForcePipeline"]

_STAGES = ("neighbor", "density", "force")


class ShardedForcePipeline:
    """Persistent domain-sharded evaluator for one simulation's forces.

    Construct once per :class:`~repro.md.simulation.Simulation` (the
    construction cost — arena/sockets + worker spawn — is what the
    ``parallel.pool`` phase accounts for) and call :meth:`compute` once
    per force evaluation.  Must be :meth:`close`\\ d to reap the
    workers; an abandoned pipeline is cleaned up by GC/daemon
    semantics.

    ``topology`` is the ``(px, py)`` domain grid; ``None`` keeps the
    historical 1D column layout (``workers x 1``).  ``transport``
    selects how bytes reach the workers (``"shared"`` or ``"socket"``;
    ``None`` reads ``REPRO_PARALLEL_TRANSPORT``, defaulting to shared
    memory).
    """

    def __init__(
        self,
        state,
        potential,
        *,
        skin: float = 0.5,
        workers: int | None = None,
        topology: tuple[int, int] | None = None,
        transport: str | None = None,
    ) -> None:
        n = state.n_atoms
        if topology is not None:
            px, py = int(topology[0]), int(topology[1])
            if px < 1 or py < 1:
                raise ValueError(
                    f"topology must be at least 1x1, got {px}x{py}"
                )
            if workers and workers != px * py:
                raise ValueError(
                    f"workers={workers} conflicts with topology "
                    f"{px}x{py} ({px * py} tiles)"
                )
        else:
            w = workers if workers else (os.cpu_count() or 1)
            px, py = max(1, int(w)), 1
        self.topology = (px, py)
        self.n_workers = px * py
        self.skin = float(skin)
        self.cutoff = float(potential.cutoff)
        self.reach = self.cutoff + self.skin
        self.n_atoms = n
        self.potential = potential
        self._types = np.asarray(state.types, dtype=np.int64)
        # Shard inner loops call the active backend's fused passes; the
        # worker-side backend defaults to numpy and may be switched to
        # the JIT tier (sharding x compiled kernels compose) via env.
        self.inner_backend = os.environ.get(
            "REPRO_PARALLEL_INNER_BACKEND", "numpy"
        )
        cfg = {
            "potential": potential,
            "box": state.box,
            "cutoff": self.cutoff,
            "reach": self.reach,
            "n_atoms": n,
            "inner_backend": self.inner_backend,
        }
        kind = transport or os.environ.get(
            "REPRO_PARALLEL_TRANSPORT", "shared"
        )
        self.transport = make_transport(
            kind,
            self.n_workers,
            inputs={
                "positions": ((n, 3), np.float64),
                "types": ((n,), np.int64),
                "f_der": ((n,), np.float64),
            },
            outputs={
                "rho": ((n,), np.float64),
                "epair": ((n,), np.float64),
                "forces": ((n, 3), np.float64),
            },
            cfg=cfg,
        )
        self.transport.publish("types", self._types)
        self._ref_positions: np.ndarray | None = None
        self._closed = False
        self.n_builds = 0
        self.last_pair_count = 0
        #: cumulative per-worker seconds per stage (bench telemetry)
        self.shard_seconds: dict[str, list[float]] = {
            s: [0.0] * self.n_workers for s in _STAGES
        }
        #: cumulative exposed halo-exchange seconds (bench telemetry)
        self.halo_seconds = 0.0
        reg = metrics()
        reg.gauge("parallel.workers").set(float(self.n_workers))
        reg.gauge("parallel.topology.px").set(float(px))
        reg.gauge("parallel.topology.py").set(float(py))

    @property
    def transport_kind(self) -> str:
        return self.transport.kind

    @property
    def halo_bytes(self) -> tuple[int, int]:
        """Cumulative (sent, received) halo bytes over the transport."""
        return self.transport.bytes_sent, self.transport.bytes_recv

    # -- rebuild policy (global twin of NeighborList's) --------------------

    def _rebuild_reason(self, positions: np.ndarray) -> str | None:
        if self._ref_positions is None:
            return "first"
        if self.skin == 0.0:
            return "skin_zero"
        if len(positions) != len(self._ref_positions):
            return "size"
        delta = positions - self._ref_positions
        max_d2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        if max_d2 > (self.skin / 2.0) ** 2:
            return "displacement"
        return None

    # -- the step ----------------------------------------------------------

    def compute(
        self, positions: np.ndarray, tr=NULL_TRACER
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Energies, forces and step accounting at ``positions``.

        Returns ``(energies, forces, info)`` where ``info`` carries
        ``pairs``, ``rebuilds``, ``t_neighbor`` and ``t_force`` for the
        caller's :class:`~repro.md.simulation.SimStats`.
        """
        reg = metrics()
        tp = self.transport
        t0 = time.perf_counter()
        with tr.phase("neighbor") as ph:
            tp.publish("positions", positions)
            t_pub = time.perf_counter() - t0
            reason = self._rebuild_reason(positions)
            grid = None
            if reason is not None:
                grid = plan_grid(
                    positions, self.topology[0], self.topology[1], self.reach
                )
                self._ref_positions = np.array(positions, copy=True)
                self.n_builds += 1
                reg.counter("neighbor.rebuilds").inc()
                reg.counter(f"neighbor.rebuilds.{reason}").inc()
            else:
                reg.counter("neighbor.reuses").inc()
            replies = self._round("neighbor", ("neighbor", grid), tr, t_pub)
            n_pairs = int(sum(r[0] for r in replies))
            self._account_stage("neighbor", replies, ph)
            ph.add(pairs=n_pairs, rebuilds=0 if reason is None else 1)
        t1 = time.perf_counter()
        with tr.phase("density", pairs=n_pairs) as ph:
            replies = self._round("density", ("density",), tr)
            # Seam reduction: fixed rank order makes the sum (and the
            # whole trajectory) bitwise-reproducible per topology.
            rho_bar = np.sum(tp.slots("rho"), axis=0)
            self._account_stage("density", replies, ph)
        with tr.phase("embedding"):
            f_val, f_der = self.potential.embed(rho_bar, self._types)
        with tr.phase("pair_force", pairs=n_pairs) as ph:
            tpub0 = time.perf_counter()
            tp.publish("f_der", f_der)
            t_pub = time.perf_counter() - tpub0
            replies = self._round("force", ("force",), tr, t_pub)
            forces = np.sum(tp.slots("forces"), axis=0)
            e_pair = np.sum(tp.slots("epair"), axis=0)
            self._account_stage("force", replies, ph)
        t2 = time.perf_counter()
        self.last_pair_count = n_pairs
        reg.counter("parallel.steps").inc()
        reg.counter("parallel.pairs").inc(float(n_pairs))
        info = {
            "pairs": n_pairs,
            "rebuilds": 0 if reason is None else 1,
            "t_neighbor": t1 - t0,
            "t_force": t2 - t1,
        }
        return e_pair + f_val, forces, info

    def _round(
        self, stage: str, msg: tuple, tr, t_pub: float = 0.0
    ) -> list[tuple]:
        """One command round, with halo-exchange accounting.

        The round's exposed communication time is the publish cost plus
        the command wall time not covered by the slowest worker's
        compute time; it lands as a pre-measured ``halo_exchange``
        child span of the current phase, with the transport's byte
        deltas attached as counters.
        """
        tp = self.transport
        sent0, recv0 = tp.bytes_sent, tp.bytes_recv
        t0 = time.perf_counter()
        replies = tp.command(msg)
        wall = time.perf_counter() - t0
        compute = max((r[1] for r in replies), default=0.0)
        exposed = t_pub + max(0.0, wall - compute)
        d_sent = tp.bytes_sent - sent0
        d_recv = tp.bytes_recv - recv0
        tr.record(
            "halo_exchange",
            exposed,
            {"bytes_sent": d_sent, "bytes_recv": d_recv, "stage": stage},
        )
        self.halo_seconds += exposed
        reg = metrics()
        reg.counter("parallel.halo.seconds").inc(exposed)
        reg.counter("parallel.halo.bytes_sent").inc(float(d_sent))
        reg.counter("parallel.halo.bytes_recv").inc(float(d_recv))
        return replies

    def _account_stage(self, stage: str, replies, ph) -> None:
        """Attach per-shard timings to the span, metrics and telemetry."""
        secs = [r[1] for r in replies]
        total = self.shard_seconds[stage]
        for wid, s in enumerate(secs):
            total[wid] += s
        ph.add(shard_sum_s=sum(secs), shard_max_s=max(secs))
        metrics().histogram(f"parallel.{stage}.shard_s").observe_many(secs)

    def reset_shard_stats(self) -> None:
        """Zero the cumulative shard timings (steady-state benching)."""
        for stage in self.shard_seconds:
            self.shard_seconds[stage] = [0.0] * self.n_workers
        self.halo_seconds = 0.0

    def close(self) -> None:
        """Reap the workers and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.transport.close()
