"""The sharded force pipeline: per-step orchestration over a transport.

Each worker permanently owns its tile: halo-pack positions, types,
owned mask, candidate pairs and the rebuild reference all live
shard-side between steps, so a steady-state timestep is **three**
lockstep rounds moving only sparse packs — the host analogue of the
paper's neighbor-only fabric traffic:

1. **dens** (inside the ``neighbor`` phase) — the parent evaluates the
   Verlet skin/2 trigger itself against the rebuild reference (it owns
   every position, so its global ``max |d|`` is arithmetically *equal*
   to an OR-reduce of per-tile triggers over the covering tile-local
   sets — and bit-equal to the serial NeighborList's check), then
   ships each tile the *owned* rows of its cached halo pack
   (``positions[own_ids_k]``, the index lists persisting until the
   next rebuild), posts the ``dens`` command, and **publishes the
   ghost rows asynchronously while the workers already run**: each
   tile distance-filters and densities its *interior* candidates
   (owned-owned pairs — no ghost row ever read) under the trigger's
   displacement bound riding on the command, blocks on ``halo_wait``
   only right before its *boundary* pass, then merges the two partial
   sums in pinned interior-then-boundary order.  When the trigger
   trips, a ``rebuild`` round runs instead: a fresh balanced
   :class:`~repro.parallel.domains.DomainGrid` is planned, new pack
   ids are cut (with their owned/ghost row splits), and each tile
   rebuilds its candidates from its pack alone (bit-identical to a
   global build) — no stale-pack scatter, no speculative compute is
   ever discarded, and rebuild packs travel whole and blocking (their
   ids just changed; there is nothing safe to overlap).
2. **force** — the parent reduces the gathered ``rho`` packs by
   scatter-adding them **in fixed rank order** into an owned-region
   accumulator, evaluates the embedding stage, ships each tile its
   owned ``F'(rho_bar)`` rows, posts ``force``, publishes the ghost
   rows mid-flight (interior force pass first, boundary after the
   wait, same pinned merge), and reduces the gathered
   pair-energy/force packs the same way.

``REPRO_PARALLEL_NO_OVERLAP=1`` restores the blocking protocol —
ghosts published *before* the command — for A/B testing and bisection.
The worker arithmetic is identical in both modes (the split and merge
happen either way; only the publish scheduling moves), so overlap-on
trajectories are bitwise-identical to overlap-off.  The hidden
publish time and the workers' residual stalls are accounted as
``parallel.overlap`` / ``parallel.halo_wait`` spans, summarized by
:attr:`ShardedForcePipeline.overlap_efficiency`.

The fixed-order pack reduction makes a run bitwise-reproducible for a
given (topology, transport) — and since both transports deliver the
same float64 bits in the same pack layout, bitwise-identical across
transports too.  A single tile owns every pair, so ``workers=1`` stays
bitwise-serial.  Across topologies the physics agrees to floating-
point summation tolerance, like any domain-decomposed MD code.

Halo accounting: every round's *exposed* communication time — pack
scatter/gather cost plus the slack between the command's wall time and
the slowest worker's compute time — is emitted as a pre-measured
``halo_exchange`` child span inside the enclosing phase, with the
transport's byte deltas as counters.  The bytes are **actual sparse
pack bytes** (per-tile prefix sizes, not ``nbytes x workers``
broadcasts), and the ghost-row share — the part that scales with tile
*boundary* area rather than system size — is tracked separately as
``parallel.halo.bytes_ghost``.  Because the density pass runs inside
the ``neighbor``-phase dens round, its worker seconds are
re-attributed to the ``density`` phase via a pre-measured child span,
keeping the reference taxonomy unchanged.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.obs import NULL_TRACER, metrics
from repro.parallel.domains import (
    owned_mask_local,
    plan_grid,
    tile_local_ids,
    warn_halo_dominated,
)
from repro.parallel.transport import make_transport

__all__ = ["ShardedForcePipeline"]

_STAGES = ("neighbor", "density", "force")

#: Per-row pack bytes by channel (float64 3-vectors and scalars).
_ROW_BYTES = {
    "positions": 24, "types": 8, "f_der": 8,
    "rho": 8, "epair": 8, "forces": 24,
}


class ShardedForcePipeline:
    """Persistent domain-sharded evaluator for one simulation's forces.

    Construct once per :class:`~repro.md.simulation.Simulation` (the
    construction cost — arena/sockets + worker spawn — is what the
    ``parallel.pool`` phase accounts for) and call :meth:`compute` once
    per force evaluation.  Must be :meth:`close`\\ d to reap the
    workers; an abandoned pipeline is cleaned up by GC/daemon
    semantics.

    ``topology`` is the ``(px, py)`` domain grid; ``None`` picks the
    most nearly square factorization of the worker count (least tile
    boundary, hence least ghost traffic — pass an explicit
    ``(workers, 1)`` for the historical 1D column layout).
    ``transport``
    selects how bytes reach the workers (``"shared"``, ``"socket"``,
    ``"inline"`` or ``"auto"``; ``None`` reads
    ``REPRO_PARALLEL_TRANSPORT``, defaulting to ``auto`` — inline
    virtual workers when the host has fewer cores than workers, forked
    shared memory otherwise).  Setting ``REPRO_PARALLEL_NO_REUSE`` to a
    non-empty,
    non-zero value disables cross-step candidate reuse (a rebuild every
    step — the property-test control and a debugging fallback), warned
    about once per process.
    """

    def __init__(
        self,
        state,
        potential,
        *,
        skin: float = 0.5,
        workers: int | None = None,
        topology: tuple[int, int] | None = None,
        transport: str | None = None,
    ) -> None:
        n = state.n_atoms
        if topology is not None:
            px, py = int(topology[0]), int(topology[1])
            if px < 1 or py < 1:
                raise ValueError(
                    f"topology must be at least 1x1, got {px}x{py}"
                )
            if workers and workers != px * py:
                raise ValueError(
                    f"workers={workers} conflicts with topology "
                    f"{px}x{py} ({px * py} tiles)"
                )
        else:
            w = max(1, int(workers if workers else (os.cpu_count() or 1)))
            # Most nearly square factorization: least tile perimeter,
            # hence least ghost-row traffic per step.
            py = int(np.sqrt(w))
            while w % py:
                py -= 1
            px = w // py
        self.topology = (px, py)
        self.n_workers = px * py
        self.skin = float(skin)
        self.cutoff = float(potential.cutoff)
        self.reach = self.cutoff + self.skin
        self.n_atoms = n
        self.potential = potential
        self._types = np.asarray(state.types, dtype=np.int64)
        self.no_reuse = os.environ.get(
            "REPRO_PARALLEL_NO_REUSE", ""
        ) not in ("", "0")
        # Overlapped halo exchange: ghosts publish while the round's
        # command is already in flight.  The escape hatch restores the
        # blocking publish-then-command order (bitwise-identical
        # results either way; scheduling only).
        self.overlap = os.environ.get(
            "REPRO_PARALLEL_NO_OVERLAP", ""
        ) in ("", "0")
        # Shard inner loops call the active backend's fused passes; the
        # worker-side backend defaults to numpy and may be switched to
        # the JIT tier (sharding x compiled kernels compose) via env.
        self.inner_backend = os.environ.get(
            "REPRO_PARALLEL_INNER_BACKEND", "numpy"
        )
        # On a host with fewer cores than workers, concurrent shards
        # timeshare cores and evict each other's caches mid-pass, so
        # heavy rounds run fastest dispatched one rank at a time.
        # Results are identical either way (the reduction order is
        # fixed by rank, not arrival); this is purely a wall-clock
        # policy, overridable via REPRO_PARALLEL_STAGGER=0/1.
        env_stagger = os.environ.get("REPRO_PARALLEL_STAGGER", "")
        if env_stagger in ("", "auto"):
            try:
                cpus = len(os.sched_getaffinity(0))
            except (AttributeError, OSError):  # pragma: no cover
                cpus = os.cpu_count() or 1
            self.stagger = cpus < self.n_workers
        else:
            self.stagger = env_stagger != "0"
        # Tile builds bin at half the reach (radius-2 stencil): the
        # finer grid hugs the reach sphere tighter, cutting the raw
        # candidate stream the build prefilter consumes by ~40%.  Only
        # the enumeration *order* changes — the prefiltered candidate
        # set is identical — so the w=1 bitwise-serial contract pins
        # single-tile runs to the serial radius-1 enumeration.
        env_sub = os.environ.get("REPRO_PARALLEL_BUILD_SUBDIVIDE", "")
        if self.n_workers == 1:
            self.build_subdivide = 1
        else:
            self.build_subdivide = int(env_sub) if env_sub else 2
        cfg = {
            "potential": potential,
            "box": state.box,
            "cutoff": self.cutoff,
            "reach": self.reach,
            "skin": self.skin,
            "n_atoms": n,
            "inner_backend": self.inner_backend,
            "build_subdivide": self.build_subdivide,
        }
        kind = transport or os.environ.get(
            "REPRO_PARALLEL_TRANSPORT", "auto"
        )
        self.transport = make_transport(
            kind,
            self.n_workers,
            inputs={
                "positions": ((n, 3), np.float64),
                "types": ((n,), np.int64),
                "f_der": ((n,), np.float64),
            },
            outputs={
                "rho": ((n,), np.float64),
                "epair": ((n,), np.float64),
                "forces": ((n, 3), np.float64),
            },
            cfg=cfg,
            halo=("positions", "f_der"),
        )
        #: cached halo pack index lists, one per tile; valid until the
        #: next rebuild (None = no build yet)
        self._ids: list[np.ndarray] | None = None
        #: per-tile owned/ghost splits of ``_ids`` — global ids and the
        #: pack-row positions they land in — recomputed at rebuild;
        #: steady rounds ship owned rows synchronously and publish the
        #: ghost rows asynchronously
        self._own_ids: list[np.ndarray] = []
        self._own_rows: list[np.ndarray] = []
        self._ghost_ids: list[np.ndarray] = []
        self._ghost_rows: list[np.ndarray] = []
        #: monotone step-publication sequence (the double-buffer clock)
        self._seq = 0
        #: the same lists concatenated in rank order — the index vector
        #: the single-pass bincount reductions run over
        self._ids_flat: np.ndarray | None = None
        #: rebuild reference positions for the parent-side skin trigger
        #: (bit-equal to the serial NeighborList's check, and to an
        #: OR-reduce of per-tile checks over the covering local sets)
        self._ref_positions: np.ndarray | None = None
        self._counts: list[int] = [0] * self.n_workers
        #: owned-region accumulators reused every step (steady-state
        #: steps allocate nothing on the reduction path beyond the
        #: returned force array itself, which the caller keeps)
        self._rho = np.zeros(n)
        self._epair = np.zeros(n)
        self._closed = False
        self.n_builds = 0
        self.last_pair_count = 0
        #: current ghost-row count, sum over tiles of (local - owned) —
        #: the boundary-scaling share of every pack
        self.ghost_atoms = 0
        #: cumulative ghost-row bytes moved (the O(boundary) component
        #: of bytes_sent + bytes_recv)
        self.ghost_bytes = 0
        #: cumulative per-worker seconds per stage (bench telemetry)
        self.shard_seconds: dict[str, list[float]] = {
            s: [0.0] * self.n_workers for s in _STAGES
        }
        #: cumulative exposed halo-exchange seconds (bench telemetry)
        self.halo_seconds = 0.0
        #: cumulative ghost-publish seconds spent while a round's
        #: command was already in flight (the hidden halo share)
        self.overlap_seconds = 0.0
        #: cumulative slowest-rank ``halo_wait`` stall per round (the
        #: halo share that stayed exposed inside worker compute)
        self.halo_wait_seconds = 0.0
        #: grow-only reduction scratch (rank-concatenated pack rows)
        self._concat: dict[str, np.ndarray] = {}
        reg = metrics()
        reg.gauge("parallel.workers").set(float(self.n_workers))
        reg.gauge("parallel.topology.px").set(float(px))
        reg.gauge("parallel.topology.py").set(float(py))

    @property
    def transport_kind(self) -> str:
        return self.transport.kind

    @property
    def halo_bytes(self) -> tuple[int, int]:
        """Cumulative (sent, received) sparse pack bytes over the transport."""
        return self.transport.bytes_sent, self.transport.bytes_recv

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of halo publication time hidden behind compute.

        ``overlap / (overlap + wait)``: publish seconds spent while a
        command was in flight, over that plus the slowest rank's
        residual ``halo_wait`` stalls.  1.0 means every published byte
        was fully absorbed by interior compute; with overlap disabled
        nothing is ever hidden, so the field reads 0.0.
        """
        hidden = self.overlap_seconds
        wait = self.halo_wait_seconds
        if hidden + wait <= 0.0:
            return 1.0 if self.overlap else 0.0
        return hidden / (hidden + wait)

    # -- ghost accounting --------------------------------------------------

    def _charge_ghost(self, *channels: str) -> None:
        """Credit the ghost-row share of pack transfers just performed."""
        amount = self.ghost_atoms * sum(_ROW_BYTES[c] for c in channels)
        if amount:
            self.ghost_bytes += amount
            metrics().counter("parallel.halo.bytes_ghost").inc(float(amount))

    # -- the step ----------------------------------------------------------

    def compute(
        self, positions: np.ndarray, tr=NULL_TRACER
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Energies, forces and step accounting at ``positions``.

        Returns ``(energies, forces, info)`` where ``info`` carries
        ``pairs``, ``rebuilds``, ``t_neighbor`` and ``t_force`` for the
        caller's :class:`~repro.md.simulation.SimStats`.
        """
        if len(positions) != self.n_atoms:
            raise ValueError(
                f"pipeline built for {self.n_atoms} atoms, "
                f"got {len(positions)}"
            )
        reg = metrics()
        t0 = time.perf_counter()
        with tr.phase("neighbor") as ph:
            reason = self._forced_rebuild_reason()
            d_max = 0.0
            if reason is None:
                # Parent-side skin trigger: same arithmetic as the
                # serial NeighborList (and as an OR-reduce of per-tile
                # checks — the tile-local sets cover every atom), but
                # resolved before any scatter or round, so a triggered
                # step never ships a stale pack or wastes a pass.
                delta = positions - self._ref_positions
                max_d2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
                if max_d2 > (self.skin / 2.0) ** 2:
                    reason = "displacement"
                else:
                    d_max = float(np.sqrt(max_d2))
            if reason is not None:
                replies = self._rebuild_round(positions, reason, tr)
                reg.counter("neighbor.rebuilds").inc()
                reg.counter(f"neighbor.rebuilds.{reason}").inc()
            else:
                # Clean step: ship the owned rows, post the command,
                # publish the ghost rows while the interior pass runs.
                # The trigger's displacement bound rides on the command
                # — it upper-bounds every tile's local bound, feeding
                # the shards' bit-neutral cross-step filter cuts
                # without any per-tile displacement pass.
                self._seq += 1
                replies = self._steady_round(
                    "neighbor", ("dens", d_max, self._seq),
                    "positions", positions, tr,
                )
                reg.counter("neighbor.reuses").inc()
            n_pairs = int(sum(r[1] for r in replies))
            den_secs = [r[3] for r in replies]
            den_sum = sum(den_secs)
            # The density pass ran inside the dens/rebuild round; hand
            # its worker seconds to the density phase as a pre-measured
            # child so the reference taxonomy stays truthful.
            tr.record("density", den_sum)
            self._account_stage(
                "neighbor", [r[2] - r[3] - r[4] for r in replies], ph
            )
            ph.add(pairs=n_pairs, rebuilds=0 if reason is None else 1)
        t1 = time.perf_counter()
        with tr.phase("density", pairs=n_pairs) as ph:
            packs = self._gather_round("density", ("rho",), tr)
            self._charge_ghost("rho")
            # Seam reduction: accumulate every tile's pack in fixed
            # rank order — bitwise-reproducible per topology, and
            # elementwise (hence bitwise-serial) for a single tile.
            # bincount over the rank-concatenated id list performs the
            # same additions in the same order as a per-tile
            # scatter-add loop (equal ids sum in order of appearance),
            # just in one pass.
            self._reduce_1d(self._rho, packs["rho"])
            self._account_stage("density", den_secs, ph)
        with tr.phase("embedding"):
            f_val, f_der = self.potential.embed(self._rho, self._types)
        with tr.phase("pair_force", pairs=n_pairs) as ph:
            self._seq += 1
            force_replies = self._steady_round(
                "pair_force", ("force", self._seq), "f_der", f_der, tr,
            )
            packs = self._gather_round(
                "pair_force", ("epair", "forces"), tr
            )
            self._charge_ghost("epair", "forces")
            self._reduce_1d(self._epair, packs["epair"])
            pack = self._concat_packs("forces", packs["forces"])
            forces = np.empty((self.n_atoms, 3))
            for c in range(3):
                forces[:, c] = np.bincount(
                    self._ids_flat, weights=pack[:, c],
                    minlength=self.n_atoms,
                )
            self._account_stage(
                "force", [r[2] - r[4] for r in force_replies], ph
            )
        t2 = time.perf_counter()
        self.last_pair_count = n_pairs
        reg.counter("parallel.steps").inc()
        reg.counter("parallel.pairs").inc(float(n_pairs))
        info = {
            "pairs": n_pairs,
            "rebuilds": 0 if reason is None else 1,
            "t_neighbor": max(0.0, (t1 - t0) - den_sum),
            "t_force": (t2 - t1) + den_sum,
        }
        return self._epair + f_val, forces, info

    # -- rebuild policy (the forced arms; displacement is shard-side) ------

    def _reduce_1d(self, out: np.ndarray, packs: list) -> None:
        """Fixed-order seam reduction of per-tile scalar packs.

        ``bincount`` over the rank-concatenated ids adds equal-index
        contributions in order of appearance — the identical addition
        sequence a per-tile ``out[ids] += pack`` loop performs, so the
        result is bitwise-equal to the loop (and elementwise for a
        single tile, preserving the ``workers=1`` bitwise-serial
        guarantee).
        """
        out[:] = np.bincount(
            self._ids_flat,
            weights=self._concat_packs("scalar", packs),
            minlength=self.n_atoms,
        )

    def _concat_packs(self, key: str, packs: list) -> np.ndarray:
        """Rank-order concatenation into grow-only scratch.

        Bit-identical to ``np.concatenate`` (same rows, same order);
        the reuse just keeps steady steps off the allocator — pack
        sizes only change on a rebuild.
        """
        total = sum(len(p) for p in packs)
        buf = self._concat.get(key)
        if buf is None or buf.shape[0] < total:
            tail = packs[0].shape[1:] if packs else ()
            buf = np.empty((total, *tail), dtype=np.float64)
            self._concat[key] = buf
        return np.concatenate(packs, axis=0, out=buf[:total])

    def _forced_rebuild_reason(self) -> str | None:
        if self._ids is None:
            return "first"
        if self.skin == 0.0:
            return "skin_zero"
        if self.no_reuse:
            from repro import parallel as par

            par.warn_once(
                "no_reuse",
                "cross-step candidate reuse disabled "
                "(REPRO_PARALLEL_NO_REUSE); rebuilding every step",
            )
            return "no_reuse"
        return None

    def _rebuild_round(
        self, positions: np.ndarray, reason: str, tr
    ) -> list[tuple]:
        """Plan a fresh grid, cut new halo packs, run the rebuild round."""
        grid = plan_grid(
            positions, self.topology[0], self.topology[1], self.reach
        )
        warn_halo_dominated(
            positions, self.topology[0], self.topology[1], self.reach
        )
        ids = [
            tile_local_ids(positions, grid, t, self.reach)
            for t in range(self.n_workers)
        ]
        parts = [
            (len(ids[t]), grid.tile_bounds(t))
            for t in range(self.n_workers)
        ]
        self._ids = ids
        self._ids_flat = np.concatenate(ids) if ids else np.empty(
            0, dtype=np.int64
        )
        # Owned/ghost split per tile, from the same half-open ownership
        # comparisons the worker applies to its pack — bit-identical
        # decisions, so parent row splits and worker row splits agree.
        self._own_ids, self._own_rows = [], []
        self._ghost_ids, self._ghost_rows = [], []
        for t in range(self.n_workers):
            owned = owned_mask_local(
                positions[ids[t]], grid.tile_bounds(t)
            )
            own_rows = np.nonzero(owned)[0]
            ghost_rows = np.nonzero(~owned)[0]
            self._own_rows.append(own_rows)
            self._ghost_rows.append(ghost_rows)
            self._own_ids.append(ids[t][own_rows])
            self._ghost_ids.append(ids[t][ghost_rows])
        self._ref_positions = np.array(positions, copy=True)
        self._counts = [len(i) for i in ids]
        self.ghost_atoms = int(sum(self._counts)) - self.n_atoms
        metrics().gauge("parallel.ghost_atoms").set(float(self.ghost_atoms))
        self.n_builds += 1
        tp = self.transport
        tp.set_counts(self._counts)
        tpub0 = time.perf_counter()
        tp.scatter("positions", positions, ids)
        tp.scatter("types", self._types, ids)
        self._charge_ghost("positions", "types")
        t_pub = time.perf_counter() - tpub0
        return self._round("neighbor", ("rebuild",), tr, t_pub, parts=parts)

    # -- rounds ------------------------------------------------------------

    def _steady_round(
        self, stage: str, msg: tuple, channel: str, source, tr
    ) -> list[tuple]:
        """One overlapped steady round: owned scatter, post, publish, collect.

        With overlap on, the ghost publish runs *after* the command is
        posted — the workers' interior passes absorb its latency, and
        its wall time lands in the ``parallel.overlap`` span instead of
        the exposed halo total.  The slowest rank's residual
        ``halo_wait`` stall (reply tail) is recorded alongside; the two
        together feed :attr:`overlap_efficiency`.  With overlap off the
        publish happens before the post (the historical blocking order)
        and is charged as exposed halo time.
        """
        tp = self.transport
        sent0, recv0 = tp.bytes_sent, tp.bytes_recv
        t0 = time.perf_counter()
        tp.scatter_rows(channel, source, self._own_ids, self._own_rows)
        t_own = time.perf_counter() - t0
        t_ghost = 0.0
        if self.overlap:
            tp.post(msg)
            tg0 = time.perf_counter()
            tp.publish(
                channel, source, self._ghost_ids, self._ghost_rows,
                self._seq,
            )
            t_ghost = time.perf_counter() - tg0
        else:
            tg0 = time.perf_counter()
            tp.publish(
                channel, source, self._ghost_ids, self._ghost_rows,
                self._seq,
            )
            t_ghost = time.perf_counter() - tg0
            tp.post(msg)
        self._charge_ghost(channel)
        tc0 = time.perf_counter()
        replies = tp.collect()
        wall = time.perf_counter() - tc0
        compute = max((r[2] for r in replies if len(r) > 2), default=0.0)
        wait_max = max((r[4] for r in replies if len(r) > 4), default=0.0)
        exposed = t_own + max(0.0, wall - compute)
        if self.overlap:
            # the publish ran while the command was in flight: its cost
            # is hidden (up to the workers' measured residual stalls)
            self.overlap_seconds += t_ghost
            self.halo_wait_seconds += wait_max
            tr.record("parallel.overlap", t_ghost, {"stage": stage})
            tr.record("parallel.halo_wait", wait_max, {"stage": stage})
        else:
            exposed += t_ghost
        self._record_halo(stage, exposed, sent0, recv0, tr)
        return replies

    def _round(
        self, stage: str, msg: tuple, tr, t_pub: float = 0.0, parts=None
    ) -> list[tuple]:
        """One command round, with halo-exchange accounting.

        Compute-heavy commands honor the stagger policy (one rank at a
        time on CPU-starved hosts).

        The round's exposed communication time is the pack scatter cost
        plus the command wall time not covered by the slowest worker's
        compute time; it lands as a pre-measured ``halo_exchange``
        child span of the current phase, with the transport's byte
        deltas (actual pack bytes) attached as counters.
        """
        tp = self.transport
        sent0, recv0 = tp.bytes_sent, tp.bytes_recv
        t0 = time.perf_counter()
        # Only the rebuild round is long enough (tens of ms of binning
        # and candidate generation per rank) for one-rank-at-a-time
        # dispatch to pay for its serialized pipe round-trips; the
        # short steady rounds measure faster letting the OS interleave.
        stagger = self.stagger and msg[0] == "rebuild"
        replies = tp.command(msg, parts, stagger=stagger)
        wall = time.perf_counter() - t0
        compute = max((r[2] for r in replies), default=0.0)
        exposed = t_pub + max(0.0, wall - compute)
        self._record_halo(stage, exposed, sent0, recv0, tr)
        return replies

    def _gather_round(self, stage: str, names: tuple, tr) -> dict:
        """Pull result packs; account the gather as halo exchange."""
        tp = self.transport
        sent0, recv0 = tp.bytes_sent, tp.bytes_recv
        t0 = time.perf_counter()
        packs = {name: tp.gather(name) for name in names}
        self._record_halo(
            stage, time.perf_counter() - t0, sent0, recv0, tr
        )
        return packs

    def _record_halo(
        self, stage: str, exposed: float, sent0: int, recv0: int, tr
    ) -> None:
        tp = self.transport
        d_sent = tp.bytes_sent - sent0
        d_recv = tp.bytes_recv - recv0
        tr.record(
            "halo_exchange",
            exposed,
            {"bytes_sent": d_sent, "bytes_recv": d_recv, "stage": stage},
        )
        self.halo_seconds += exposed
        reg = metrics()
        reg.counter("parallel.halo.seconds").inc(exposed)
        reg.counter("parallel.halo.bytes_sent").inc(float(d_sent))
        reg.counter("parallel.halo.bytes_recv").inc(float(d_recv))

    def _account_stage(self, stage: str, secs: list[float], ph) -> None:
        """Attach per-shard timings to the span, metrics and telemetry."""
        total = self.shard_seconds[stage]
        for wid, s in enumerate(secs):
            total[wid] += s
        ph.add(shard_sum_s=sum(secs), shard_max_s=max(secs))
        metrics().histogram(f"parallel.{stage}.shard_s").observe_many(secs)

    def reset_shard_stats(self) -> None:
        """Zero the cumulative shard timings (steady-state benching)."""
        for stage in self.shard_seconds:
            self.shard_seconds[stage] = [0.0] * self.n_workers
        self.halo_seconds = 0.0
        self.overlap_seconds = 0.0
        self.halo_wait_seconds = 0.0

    def close(self) -> None:
        """Reap the workers and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.transport.close()
