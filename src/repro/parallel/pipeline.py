"""The sharded force pipeline: per-step orchestration over the pool.

One timestep's force evaluation becomes three lockstep rounds, the
host analogue of the paper's communicate/compute cadence:

1. **neighbor** — the parent publishes positions to the arena, applies
   the (global) skin/2 rebuild policy, and on a rebuild broadcasts
   fresh balanced column edges; each shard rebuilds or reuses its
   candidate pairs and distance-filters them to the true cutoff.
2. **density** — each shard accumulates its partial ``rho_bar`` into
   its arena slot; the parent reduces the slots **in fixed worker
   order** (the seam reduction), evaluates the embedding stage, and
   broadcasts ``F'(rho_bar)``.
3. **force** — each shard evaluates pair forces/energies into its
   slots; the parent reduces again in fixed order.

The fixed-order slot reduction makes a run bitwise-reproducible for a
given worker count; across worker counts the physics agrees to
floating-point summation tolerance (~1e-12 relative), exactly like any
domain-decomposed MD code.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.obs import NULL_TRACER, metrics
from repro.parallel.domains import plan_columns
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArena

__all__ = ["ShardedForcePipeline"]

_STAGES = ("neighbor", "density", "force")


class ShardedForcePipeline:
    """Persistent domain-sharded evaluator for one simulation's forces.

    Construct once per :class:`~repro.md.simulation.Simulation` (the
    construction cost — arena + fork — is what the ``parallel.pool``
    phase accounts for) and call :meth:`compute` once per force
    evaluation.  Must be :meth:`close`\\ d to reap the workers; an
    abandoned pipeline is cleaned up by GC/daemon semantics.
    """

    def __init__(
        self,
        state,
        potential,
        *,
        skin: float = 0.5,
        workers: int | None = None,
    ) -> None:
        n = state.n_atoms
        w = workers if workers else (os.cpu_count() or 1)
        self.n_workers = max(1, int(w))
        self.skin = float(skin)
        self.cutoff = float(potential.cutoff)
        self.reach = self.cutoff + self.skin
        self.n_atoms = n
        self.potential = potential
        self._types = np.asarray(state.types, dtype=np.int64)
        self.arena = SharedArena(
            {
                "positions": ((n, 3), np.float64),
                "types": ((n,), np.int64),
                "f_der": ((n,), np.float64),
                "rho": ((self.n_workers, n), np.float64),
                "epair": ((self.n_workers, n), np.float64),
                "forces": ((self.n_workers, n, 3), np.float64),
            }
        )
        self.arena["types"][:] = self._types
        # Shard inner loops call the active backend's fused passes; the
        # worker-side backend defaults to numpy and may be switched to
        # the JIT tier (sharding x compiled kernels compose) via env.
        self.inner_backend = os.environ.get(
            "REPRO_PARALLEL_INNER_BACKEND", "numpy"
        )
        cfg = {
            "potential": potential,
            "box": state.box,
            "cutoff": self.cutoff,
            "reach": self.reach,
            "n_atoms": n,
            "inner_backend": self.inner_backend,
        }
        self.pool = WorkerPool(self.n_workers, self.arena.arrays, cfg)
        self._ref_positions: np.ndarray | None = None
        self.n_builds = 0
        self.last_pair_count = 0
        #: cumulative per-worker seconds per stage (bench telemetry)
        self.shard_seconds: dict[str, list[float]] = {
            s: [0.0] * self.n_workers for s in _STAGES
        }
        metrics().gauge("parallel.workers").set(float(self.n_workers))

    # -- rebuild policy (global twin of NeighborList's) --------------------

    def _rebuild_reason(self, positions: np.ndarray) -> str | None:
        if self._ref_positions is None:
            return "first"
        if self.skin == 0.0:
            return "skin_zero"
        if len(positions) != len(self._ref_positions):
            return "size"
        delta = positions - self._ref_positions
        max_d2 = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        if max_d2 > (self.skin / 2.0) ** 2:
            return "displacement"
        return None

    # -- the step ----------------------------------------------------------

    def compute(
        self, positions: np.ndarray, tr=NULL_TRACER
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Energies, forces and step accounting at ``positions``.

        Returns ``(energies, forces, info)`` where ``info`` carries
        ``pairs``, ``rebuilds``, ``t_neighbor`` and ``t_force`` for the
        caller's :class:`~repro.md.simulation.SimStats`.
        """
        reg = metrics()
        pos_view = self.arena["positions"]
        t0 = time.perf_counter()
        with tr.phase("neighbor") as ph:
            np.copyto(pos_view, positions)
            reason = self._rebuild_reason(positions)
            edges = None
            if reason is not None:
                edges = plan_columns(
                    positions[:, 0], self.n_workers, self.reach
                )
                self._ref_positions = np.array(positions, copy=True)
                self.n_builds += 1
                reg.counter("neighbor.rebuilds").inc()
                reg.counter(f"neighbor.rebuilds.{reason}").inc()
            else:
                reg.counter("neighbor.reuses").inc()
            replies = self.pool.command(("neighbor", edges))
            n_pairs = int(sum(r[0] for r in replies))
            self._account_stage("neighbor", replies, ph)
            ph.add(pairs=n_pairs, rebuilds=0 if reason is None else 1)
        t1 = time.perf_counter()
        with tr.phase("density", pairs=n_pairs) as ph:
            replies = self.pool.command(("density",))
            # Seam reduction: fixed worker order makes the sum (and the
            # whole trajectory) bitwise-reproducible per worker count.
            rho_bar = np.sum(self.arena["rho"], axis=0)
            self._account_stage("density", replies, ph)
        with tr.phase("embedding"):
            f_val, f_der = self.potential.embed(rho_bar, self._types)
            np.copyto(self.arena["f_der"], f_der)
        with tr.phase("pair_force", pairs=n_pairs) as ph:
            replies = self.pool.command(("force",))
            forces = np.sum(self.arena["forces"], axis=0)
            e_pair = np.sum(self.arena["epair"], axis=0)
            self._account_stage("force", replies, ph)
        t2 = time.perf_counter()
        self.last_pair_count = n_pairs
        reg.counter("parallel.steps").inc()
        reg.counter("parallel.pairs").inc(float(n_pairs))
        info = {
            "pairs": n_pairs,
            "rebuilds": 0 if reason is None else 1,
            "t_neighbor": t1 - t0,
            "t_force": t2 - t1,
        }
        return e_pair + f_val, forces, info

    def _account_stage(self, stage: str, replies, ph) -> None:
        """Attach per-shard timings to the span, metrics and telemetry."""
        secs = [r[1] for r in replies]
        total = self.shard_seconds[stage]
        for wid, s in enumerate(secs):
            total[wid] += s
        ph.add(shard_sum_s=sum(secs), shard_max_s=max(secs))
        metrics().histogram(f"parallel.{stage}.shard_s").observe_many(secs)

    def reset_shard_stats(self) -> None:
        """Zero the cumulative shard timings (steady-state benching)."""
        for stage in self.shard_seconds:
            self.shard_seconds[stage] = [0.0] * self.n_workers

    def close(self) -> None:
        """Reap the workers and release the arena (idempotent)."""
        self.pool.close()
        self.arena.close()
