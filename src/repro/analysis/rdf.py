"""Radial distribution function g(r).

Used to verify that equilibrated crystals retain their lattice order
(RDF peaks at the ideal shell distances) — the structural sanity check
behind the benchmark configurations.
"""

from __future__ import annotations

import numpy as np

from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList

__all__ = ["radial_distribution"]


def radial_distribution(
    positions: np.ndarray,
    box: Box,
    r_max: float,
    n_bins: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute g(r) up to ``r_max``.

    Returns (bin centers, g values).  Normalization uses the mean number
    density inside the box volume; for open boundaries this is
    approximate near the surface, which is fine for its diagnostic use.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n < 2:
        raise ValueError(f"need at least 2 atoms, got {n}")
    if r_max <= 0 or n_bins < 1:
        raise ValueError(f"bad r_max/n_bins: {r_max}, {n_bins}")
    pairs = NeighborList(box, r_max, skin=0.0).pairs(positions)
    counts, edges = np.histogram(pairs.r, bins=n_bins, range=(0.0, r_max))
    if pairs.half:
        # each undirected pair stored once; g(r) counts both directions
        counts = counts * 2
    centers = 0.5 * (edges[:-1] + edges[1:])
    density = n / box.volume
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = density * shell_vol * n
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g
