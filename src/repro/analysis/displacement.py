"""Displacement tracking for the atom-swap study (paper Fig. 9).

Fig. 9's black line is the largest max-norm displacement of any atom in
the x-y plane as a function of time — the quantity that determines how
far the atom-to-core assignment degrades without remapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisplacementTracker"]


class DisplacementTracker:
    """Tracks per-atom displacement from a reference configuration."""

    def __init__(self, reference_positions: np.ndarray) -> None:
        ref = np.asarray(reference_positions, dtype=np.float64)
        if ref.ndim != 2 or ref.shape[1] != 3:
            raise ValueError(f"reference must be (N, 3), got {ref.shape}")
        self.reference = ref.copy()
        self.history: list[tuple[float, float]] = []  # (time_ps, max xy)

    def max_xy_norm(self, positions: np.ndarray) -> float:
        """Largest max-norm x-y displacement of any atom (A)."""
        delta = np.asarray(positions) - self.reference
        if delta.shape != self.reference.shape:
            raise ValueError(
                f"positions shape {delta.shape} != reference "
                f"{self.reference.shape}"
            )
        return float(np.max(np.abs(delta[:, :2])))

    def record(self, time_ps: float, positions: np.ndarray) -> float:
        """Record and return the current max x-y displacement."""
        d = self.max_xy_norm(positions)
        self.history.append((float(time_ps), d))
        return d

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times_ps, displacements) as arrays."""
        if not self.history:
            return np.empty(0), np.empty(0)
        arr = np.asarray(self.history)
        return arr[:, 0], arr[:, 1]
