"""Common Neighbor Analysis (CNA): FCC / HCP / BCC / other.

The standard structural classifier (Honeycutt & Andersen 1987; Faken &
Jonsson 1994) behind visualizations like the paper's Fig. 2: each
bonded pair gets a signature ``(n_common, n_bonds, max_chain)`` over the
neighbors common to both atoms, and an atom's environment is typed by
its multiset of signatures:

* FCC:  12 bonds of (4, 2, 1)
* HCP:  6 x (4, 2, 1) + 6 x (4, 2, 2)
* BCC:  6 x (4, 4, 4) + 8 x (6, 6, 6)   (14-neighbor cutoff)

Everything else — surfaces, grain boundaries, melts — is OTHER.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList

__all__ = ["StructureType", "common_neighbor_analysis", "cna_signatures"]


class StructureType(enum.IntEnum):
    """Per-atom structural classification."""

    OTHER = 0
    FCC = 1
    HCP = 2
    BCC = 3


def _neighbor_sets(positions: np.ndarray, box: Box, cutoff: float):
    pairs = NeighborList(box, cutoff, skin=0.0).pairs(positions)
    sets: list[set[int]] = [set() for _ in range(len(positions))]
    # neighborhood is symmetric; works for half and directed tables alike
    for i, j in zip(pairs.i.tolist(), pairs.j.tolist()):
        sets[i].add(j)
        sets[j].add(i)
    return sets


def _max_chain(nodes: list[int], bonds: set[tuple[int, int]]) -> int:
    """Longest path (in bonds) through the common-neighbor bond graph."""
    if not bonds:
        return 0
    adj: dict[int, set[int]] = {n: set() for n in nodes}
    for a, b in bonds:
        adj[a].add(b)
        adj[b].add(a)

    best = 0

    def dfs(node: int, used: set[tuple[int, int]], length: int) -> None:
        nonlocal best
        best = max(best, length)
        for nxt in adj[node]:
            edge = (min(node, nxt), max(node, nxt))
            if edge not in used:
                used.add(edge)
                dfs(nxt, used, length + 1)
                used.remove(edge)

    for n in nodes:
        dfs(n, set(), 0)
    return best


def cna_signatures(
    positions: np.ndarray, box: Box, cutoff: float
) -> list[list[tuple[int, int, int]]]:
    """Per-atom list of (n_common, n_bonds, max_chain) bond signatures."""
    neigh = _neighbor_sets(np.asarray(positions, dtype=np.float64), box,
                           cutoff)
    out: list[list[tuple[int, int, int]]] = []
    for i, ni in enumerate(neigh):
        sigs = []
        for j in sorted(ni):
            common = sorted(ni & neigh[j])
            bonds = {
                (a, b)
                for ai, a in enumerate(common)
                for b in common[ai + 1:]
                if b in neigh[a]
            }
            sigs.append((len(common), len(bonds), _max_chain(common, bonds)))
        out.append(sigs)
    return out


_FCC = {(4, 2, 1): 12}
_HCP = {(4, 2, 1): 6, (4, 2, 2): 6}
_BCC = {(4, 4, 4): 6, (6, 6, 6): 8}


def _matches(sigs: list[tuple[int, int, int]],
             pattern: dict[tuple[int, int, int], int]) -> bool:
    if len(sigs) != sum(pattern.values()):
        return False
    counts: dict[tuple[int, int, int], int] = {}
    for s in sigs:
        counts[s] = counts.get(s, 0) + 1
    return counts == pattern


def common_neighbor_analysis(
    positions: np.ndarray,
    box: Box,
    cutoff: float,
) -> np.ndarray:
    """Classify every atom as FCC / HCP / BCC / OTHER.

    ``cutoff`` should sit between the shells the convention expects:
    for FCC/HCP between the 1st and 2nd shells (~1.2 x nearest
    neighbor); for BCC between the 2nd and 3rd (~1.2 x lattice
    constant x sqrt(3)/2, i.e. including all 14 near neighbors).
    """
    sig_lists = cna_signatures(positions, box, cutoff)
    out = np.full(len(sig_lists), int(StructureType.OTHER), dtype=np.int64)
    for k, sigs in enumerate(sig_lists):
        if _matches(sigs, _FCC):
            out[k] = StructureType.FCC
        elif _matches(sigs, _HCP):
            out[k] = StructureType.HCP
        elif _matches(sigs, _BCC):
            out[k] = StructureType.BCC
    return out
