"""Centro-symmetry parameter: identifying grain-boundary atoms (Fig. 2).

The paper's Fig. 2 colors grain-boundary atoms (white) against the two
bulk crystal orientations.  The standard classifier is the
centro-symmetry parameter (Kelchner et al. 1998):

    CSP_i = sum_{k=1}^{N/2} | r_k + r_{k+N/2} |^2

over the ``N`` nearest neighbors paired so that each pair is as close
to opposite as possible.  Perfect centrosymmetric environments (bulk
FCC with N = 12, BCC with N = 8) give CSP ~ 0; defects, surfaces and
grain boundaries give large values.
"""

from __future__ import annotations

import numpy as np

from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList

__all__ = ["centrosymmetry", "classify_boundary_atoms"]


def centrosymmetry(
    positions: np.ndarray,
    box: Box,
    *,
    n_neighbors: int = 8,
    cutoff: float | None = None,
) -> np.ndarray:
    """Centro-symmetry parameter per atom (A^2).

    ``n_neighbors`` should be the bulk coordination of the first shell
    (12 for FCC, 8 for BCC).  Atoms with fewer neighbors than that
    (surfaces) get ``inf`` — they are trivially non-centrosymmetric.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n_neighbors < 2 or n_neighbors % 2:
        raise ValueError(f"n_neighbors must be even and >= 2, got {n_neighbors}")
    if cutoff is None:
        # generous first-shell reach; neighbors are rank-selected below
        span = np.ptp(positions, axis=0)
        cutoff = max(1.0, float(np.min(span[span > 0])) / 4.0) if n > 1 else 1.0
        cutoff = min(cutoff, 6.0)
    # per-atom neighborhood indexing needs both (i, j) and (j, i)
    pairs = NeighborList(box, cutoff, skin=0.0).pairs(positions).directed()

    csp = np.full(n, np.inf)
    order = np.lexsort((pairs.r, pairs.i))
    i_sorted = pairs.i[order]
    rij_sorted = pairs.rij[order]
    starts = np.searchsorted(i_sorted, np.arange(n))
    ends = np.searchsorted(i_sorted, np.arange(n) + 1)
    half = n_neighbors // 2
    for atom in range(n):
        vecs = rij_sorted[starts[atom]:ends[atom]][:n_neighbors]
        if len(vecs) < n_neighbors:
            continue
        # greedy opposite-pairing of the neighbor vectors
        remaining = list(range(n_neighbors))
        total = 0.0
        for _ in range(half):
            a = remaining.pop(0)
            sums = [float(np.sum((vecs[a] + vecs[b]) ** 2)) for b in remaining]
            k = int(np.argmin(sums))
            total += sums[k]
            remaining.pop(k)
        csp[atom] = total
    return csp


def classify_boundary_atoms(
    positions: np.ndarray,
    box: Box,
    *,
    n_neighbors: int = 8,
    threshold: float = 1.0,
    cutoff: float | None = None,
) -> np.ndarray:
    """Boolean mask of defective (grain-boundary/surface) atoms.

    ``threshold`` in A^2; bulk atoms at moderate temperature stay well
    below 1 A^2 while boundary atoms exceed it.
    """
    csp = centrosymmetry(positions, box, n_neighbors=n_neighbors,
                         cutoff=cutoff)
    return csp > threshold
