"""Trajectory analysis: displacement tracking, RDF, MSD."""

from repro.analysis.displacement import DisplacementTracker
from repro.analysis.rdf import radial_distribution
from repro.analysis.msd import MsdTracker
from repro.analysis.centrosymmetry import centrosymmetry, classify_boundary_atoms
from repro.analysis.cna import common_neighbor_analysis, StructureType

__all__ = [
    "DisplacementTracker",
    "radial_distribution",
    "MsdTracker",
    "centrosymmetry",
    "classify_boundary_atoms",
    "common_neighbor_analysis",
    "StructureType",
]
