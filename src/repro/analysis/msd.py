"""Mean-squared displacement over a trajectory."""

from __future__ import annotations

import numpy as np

__all__ = ["MsdTracker"]


class MsdTracker:
    """Accumulates MSD(t) samples relative to the starting configuration."""

    def __init__(self, reference_positions: np.ndarray) -> None:
        ref = np.asarray(reference_positions, dtype=np.float64)
        if ref.ndim != 2 or ref.shape[1] != 3:
            raise ValueError(f"reference must be (N, 3), got {ref.shape}")
        self.reference = ref.copy()
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time_ps: float, positions: np.ndarray) -> float:
        """Record MSD at ``time_ps`` and return it (A^2)."""
        delta = np.asarray(positions) - self.reference
        msd = float(np.mean(np.einsum("ij,ij->i", delta, delta)))
        self.times.append(float(time_ps))
        self.values.append(msd)
        return msd

    def diffusion_coefficient(self) -> float:
        """Einstein-relation estimate D = MSD / (6 t) from a linear fit.

        Returns A^2/ps; requires at least two samples at distinct times.
        """
        if len(self.times) < 2:
            raise RuntimeError("need at least two MSD samples")
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        if np.ptp(t) <= 0:
            raise RuntimeError("MSD samples must span distinct times")
        slope = np.polyfit(t, v, 1)[0]
        return float(slope / 6.0)
