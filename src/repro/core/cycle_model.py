"""Per-tile cycle accounting for one WSE-MD timestep.

The model the paper fits empirically (Table II,
``t_wall = A n_candidate + B n_interaction + C``, r^2 = 0.9998) emerges
here from components:

    cycles = X(b)                      # marching-multicast exchanges
           + c_cand * n_candidate      # receive, distance^2, threshold,
                                       # compaction ("miss" processing)
           + c_int  * n_interaction    # rsqrt, splines, force terms
           + c_fixed                   # embedding, integration, control

``X(b)`` is the exact exchange schedule cost
(:func:`repro.wse.multicast.exchange_cycle_model`) for the position
(3-word) and embedding-derivative (1-word) exchanges; its mild
``b``-dependence is the paper's "square root of the candidate count"
term.  The compute constants come from :class:`repro.wse.tile.TileCoreModel`
(Table III FLOPs + calibrated overheads) and land the regression on the
paper's A = 26.6 ns, B = 71.4 ns, C = 574 ns at the WSE-2 clock.

Optimization levels reproduce Table V (future projections) and Fig. 10
(the optimization history): each level scales the component costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.wse.machine import WSE2, MachineConfig
from repro.wse.multicast import exchange_cycle_model
from repro.wse.tile import TileCoreModel

__all__ = [
    "OptimizationConfig",
    "CycleCostModel",
    "BASELINE",
    "TABLE5_LEVELS",
    "FIG10_STAGES",
]


@dataclass(frozen=True)
class OptimizationConfig:
    """Cost multipliers for one optimization level.

    Factors multiply the corresponding baseline component; 1.0 means
    unchanged.  ``neighbor_list_reuse`` models re-examining candidates
    every k-th step (candidate processing amortized by 1/k).
    """

    name: str
    multicast_factor: float = 1.0
    candidate_factor: float = 1.0
    interaction_factor: float = 1.0
    fixed_factor: float = 1.0
    neighbor_list_reuse: int = 1

    def __post_init__(self) -> None:
        for f in (
            self.multicast_factor,
            self.candidate_factor,
            self.interaction_factor,
            self.fixed_factor,
        ):
            if f <= 0:
                raise ValueError(f"{self.name}: factors must be positive")
        if self.neighbor_list_reuse < 1:
            raise ValueError(f"{self.name}: reuse interval must be >= 1")


BASELINE = OptimizationConfig(name="baseline")

#: Paper Table V, cumulative rows.  "Fixed cost" halves C; "Neighbor
#: list" amortizes candidate processing over 10 steps; "Symmetry" halves
#: interaction work (i<j with a reduction returning the sum); "Parallel"
#: halves multicast, candidate and interaction once more (4-core workers).
TABLE5_LEVELS: list[OptimizationConfig] = [
    BASELINE,
    OptimizationConfig(name="fixed_cost", fixed_factor=0.5),
    OptimizationConfig(
        name="neighbor_list", fixed_factor=0.5, neighbor_list_reuse=10
    ),
    OptimizationConfig(
        name="symmetry",
        fixed_factor=0.5,
        neighbor_list_reuse=10,
        interaction_factor=0.5,
    ),
    OptimizationConfig(
        name="parallel",
        fixed_factor=0.5,
        neighbor_list_reuse=10,
        interaction_factor=0.25,
        candidate_factor=0.5,
        multicast_factor=0.5,
    ),
]

#: Paper Fig. 10: the optimization history from the first functioning
#: code (5.6x slower than the performance model) through Tungsten-level
#: changes (to within 2x) to hand-edited assembly (matching the model).
#: Factors scale all compute components uniformly.
FIG10_STAGES: list[tuple[str, float]] = [
    ("first functioning code", 5.6),
    ("loop vectorization", 3.9),
    ("remove unused features", 3.1),
    ("interleave memory layout", 2.5),
    ("minimize conditional logic", 2.0),
    ("instruction reordering (asm)", 1.6),
    ("reuse stream descriptors (asm)", 1.35),
    ("shift offsets, avoid bank conflicts (asm)", 1.15),
    ("hardware offloads (asm)", 1.0),
]


@dataclass
class CycleCostModel:
    """Prices a timestep in cycles for given per-tile work counts."""

    machine: MachineConfig = WSE2
    tile: TileCoreModel = None  # type: ignore[assignment]
    opt: OptimizationConfig = BASELINE
    pbc_extra_candidate_cycles: float = 1.0  # modular arithmetic, Sec. V-F

    def __post_init__(self) -> None:
        if self.tile is None:
            self.tile = TileCoreModel()

    # -- component costs ----------------------------------------------------

    def exchange_cycles(self, b: int, *, pbc: bool = False) -> float:
        """Both marching-multicast exchanges of one step.

        Positions are 3 words, embedding derivatives 1 word.  Periodic
        boundaries double the transferred data but, as the paper
        verifies (Sec. V-F), not the transfer *time*: the reverse
        fabric direction absorbs the extra load, so the cost is
        unchanged (``pbc`` only adds compute, see ``candidate_cycles``).
        """
        cycles = exchange_cycle_model(3, b) + exchange_cycle_model(1, b)
        return cycles * self.opt.multicast_factor

    def candidate_cycles(self, *, pbc: bool = False) -> float:
        """Per-candidate receive/reject processing cost."""
        base = self.tile.candidate_cycles()
        if pbc:
            base += self.pbc_extra_candidate_cycles
        return base * self.opt.candidate_factor / self.opt.neighbor_list_reuse

    def interaction_cycles(self) -> float:
        """Per-interaction force evaluation cost."""
        return self.tile.interaction_cycles() * self.opt.interaction_factor

    def fixed_cycles(self) -> float:
        """Fixed per-step cost."""
        return self.tile.fixed_cycles() * self.opt.fixed_factor

    # -- step pricing ----------------------------------------------------------

    def step_cycles(
        self,
        n_candidate,
        n_interaction,
        b: int,
        *,
        pbc: bool = False,
    ):
        """Cycles for one timestep; accepts scalars or per-tile arrays."""
        n_candidate = np.asarray(n_candidate, dtype=np.float64)
        n_interaction = np.asarray(n_interaction, dtype=np.float64)
        cycles = (
            self.exchange_cycles(b, pbc=pbc)
            + self.candidate_cycles(pbc=pbc) * n_candidate
            + self.interaction_cycles() * n_interaction
            + self.fixed_cycles()
        )
        if cycles.ndim == 0:
            return float(cycles)
        return cycles

    def step_time_ns(self, n_candidate, n_interaction, b: int, **kw):
        """Wall time of one step in nanoseconds."""
        cycles = self.step_cycles(n_candidate, n_interaction, b, **kw)
        return np.asarray(cycles) * self.machine.cycle_ns if np.ndim(cycles) else (
            cycles * self.machine.cycle_ns
        )

    def steps_per_second(
        self, n_candidate: float, n_interaction: float, b: int, **kw
    ) -> float:
        """Predicted timestep rate for a uniform workload."""
        t_ns = float(
            np.max(self.step_time_ns(n_candidate, n_interaction, b, **kw))
        )
        return 1.0e9 / t_ns

    def with_opt(self, opt: OptimizationConfig) -> "CycleCostModel":
        """Copy of this model at a different optimization level."""
        return CycleCostModel(
            machine=self.machine,
            tile=self.tile,
            opt=opt,
            pbc_extra_candidate_cycles=self.pbc_extra_candidate_cycles,
        )

    def scaled(self, compute_factor: float) -> "CycleCostModel":
        """Copy with all compute components scaled (Fig. 10 stages).

        Communication (multicast) is hardware-scheduled and was never
        the bottleneck, so stages scale only the compute overheads.
        """
        tile = replace(
            self.tile,
            overhead_candidate=self.tile.overhead_candidate * compute_factor
            + (compute_factor - 1.0)
            * (9 / self.tile.flops_per_cycle),
            overhead_interaction=self.tile.overhead_interaction * compute_factor
            + (compute_factor - 1.0) * (36 / self.tile.flops_per_cycle),
            overhead_fixed=self.tile.overhead_fixed * compute_factor
            + (compute_factor - 1.0) * (12 / self.tile.flops_per_cycle),
        )
        return CycleCostModel(
            machine=self.machine,
            tile=tile,
            opt=self.opt,
            pbc_extra_candidate_cycles=self.pbc_extra_candidate_cycles,
        )
