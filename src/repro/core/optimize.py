"""Offline assignment-cost optimization (paper Sec. V-E).

The paper compares online swap maintenance against "our best off-line
attempt at optimizing of the assignment cost", which reached 2.1 A plus
the EAM cutoff.  This module provides that offline pass: repeated
greedy mutual-swap rounds over a static configuration until the
assignment cost converges, returning an improved
:class:`~repro.core.mapping.Mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mapping import Mapping
from repro.core.swap import SwapEngine

__all__ = ["OptimizeResult", "optimize_mapping"]


@dataclass(frozen=True)
class OptimizeResult:
    """Outcome of an offline optimization run."""

    mapping: Mapping
    initial_cost: float
    final_cost: float
    rounds: int
    swaps: int


def optimize_mapping(
    mapping: Mapping,
    positions: np.ndarray,
    *,
    max_rounds: int = 200,
    patience: int = 5,
    engine: SwapEngine | None = None,
) -> OptimizeResult:
    """Improve a mapping by repeated swap rounds until converged.

    Stops after ``patience`` consecutive rounds without a swap, or
    ``max_rounds``.  Returns a new mapping; the input is untouched.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if len(positions) != mapping.n_atoms:
        raise ValueError(
            f"{len(positions)} positions for {mapping.n_atoms} mapped atoms"
        )
    engine = engine or SwapEngine()
    grid = mapping.grid
    nx, ny = grid.nx, grid.ny

    # per-tile grids: atom index held by each core (-1 empty)
    holder = np.full((nx, ny), -1, dtype=np.int64)
    cx, cy = mapping.core_xy()
    holder[cx, cy] = np.arange(mapping.n_atoms)
    occ = holder >= 0

    proj_atoms = mapping.projection.project(positions)
    proj = np.full((nx, ny, 2), 1.0e15)
    proj[cx, cy] = proj_atoms

    centers = np.empty((nx, ny, 2))
    centers[:, :, 0] = mapping.origin[0] + np.arange(nx)[:, None] * mapping.pitch[0]
    centers[:, :, 1] = mapping.origin[1] + np.arange(ny)[None, :] * mapping.pitch[1]

    initial_cost = mapping.assignment_cost(positions)
    grids = {"holder": holder, "proj": proj, "occ": occ}
    total_swaps = 0
    quiet = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        n = engine.apply(grids, grids["proj"], grids["occ"], centers,
                         mapping.pitch)
        total_swaps += n
        quiet = quiet + 1 if n == 0 else 0
        if quiet >= patience:
            break

    atom_core = np.empty(mapping.n_atoms, dtype=np.int64)
    fx, fy = np.nonzero(grids["occ"])
    atom_core[grids["holder"][fx, fy]] = grid.flatten(fx, fy)
    improved = Mapping(
        grid=grid,
        projection=mapping.projection,
        pitch=mapping.pitch,
        origin=mapping.origin,
        atom_core=atom_core,
    )
    return OptimizeResult(
        mapping=improved,
        initial_cost=initial_cost,
        final_cost=improved.assignment_cost(positions),
        rounds=rounds,
        swaps=total_swaps,
    )
