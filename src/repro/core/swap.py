"""Greedy mutual atom-swap remapping (paper Sec. III-D, Fig. 9).

As atoms diffuse, the assignment cost of the initial mapping grows; an
occasional remapping step counteracts this.  The protocol uses two
neighborhood exchanges:

1. Cores exchange atom state and compute, for every adjacent core, the
   change in (local) assignment cost a swap would produce.
2. Cores exchange the identifier of their preferred partner; when two
   cores *mutually* prefer each other, both overwrite their local atom
   state — a swap.

Empty tiles participate (their "atom at infinity" has no cost), which
lets atoms migrate into free cores.  Mutual agreement guarantees each
core joins at most one swap per round, so the whole round is applied
with aligned array operations — no conflict resolution needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exchange import shift2d

__all__ = ["SwapEngine", "SWAP_OFFSETS"]

#: The 8 adjacent-core offsets, paired so that offset k's inverse is
#: OPPOSITE[k].  Swaps are applied from the positive half to avoid
#: double application.
SWAP_OFFSETS: list[tuple[int, int]] = [
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (-1, -1), (1, -1), (-1, 1),
]
_OPPOSITE = {0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4, 6: 7, 7: 6}
_POSITIVE = (0, 2, 4, 6)

#: Sentinel local cost for an empty tile: below any real max-norm cost,
#: so swapping an atom onto an empty tile counts only the atom's new cost.
_EMPTY_COST = -1.0


@dataclass
class SwapEngine:
    """Applies swap rounds to the lockstep machine's per-tile grids.

    Parameters
    ----------
    min_benefit:
        Minimum assignment-cost improvement (A) for a swap to be
        proposed; a small positive threshold prevents oscillation
        between equal-cost configurations.
    """

    min_benefit: float = 1e-9

    def local_cost(
        self,
        proj: np.ndarray,
        occupied: np.ndarray,
        core_centers: np.ndarray,
    ) -> np.ndarray:
        """Per-tile max-norm cost of the currently held atom.

        ``proj`` is the (nx, ny, 2) fabric-plane projection of each
        tile's atom; empty tiles get the sentinel cost.
        """
        delta = np.abs(proj - core_centers)
        cost = delta.max(axis=2)
        return np.where(occupied, cost, _EMPTY_COST)

    def propose(
        self,
        proj: np.ndarray,
        occupied: np.ndarray,
        core_centers: np.ndarray,
        pitch: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One proposal round.

        Returns
        -------
        (choice, benefit):
            ``choice[x, y]`` is the preferred offset index (-1: none);
            ``benefit`` the corresponding cost improvement.
        """
        nx, ny = occupied.shape
        here_cost = self.local_cost(proj, occupied, core_centers)
        best_benefit = np.full((nx, ny), -np.inf)
        choice = np.full((nx, ny), -1, dtype=np.int64)
        for k, (dx, dy) in enumerate(SWAP_OFFSETS):
            n_proj = shift2d(proj, dx, dy, fill=0.0)
            n_occ = shift2d(occupied, dx, dy, fill=False)
            n_centers = shift2d(core_centers, dx, dy, fill=0.0)
            in_fabric = shift2d(
                np.ones((nx, ny), dtype=bool), dx, dy, fill=False
            )
            n_cost = np.where(
                n_occ, np.abs(n_proj - n_centers).max(axis=2), _EMPTY_COST
            )
            # cost of my atom on the neighbor core / theirs on mine
            mine_there = np.where(
                occupied, np.abs(proj - n_centers).max(axis=2), _EMPTY_COST
            )
            theirs_here = np.where(
                n_occ, np.abs(n_proj - core_centers).max(axis=2), _EMPTY_COST
            )
            old = np.maximum(here_cost, n_cost)
            new = np.maximum(mine_there, theirs_here)
            benefit = np.where(
                in_fabric & (occupied | n_occ), old - new, -np.inf
            )
            better = benefit > best_benefit
            best_benefit = np.where(better, benefit, best_benefit)
            choice = np.where(better, k, choice)
        viable = best_benefit > self.min_benefit
        choice = np.where(viable, choice, -1)
        benefit = np.where(viable, best_benefit, 0.0)
        return choice, benefit

    def mutual_pairs(self, choice: np.ndarray) -> list[tuple[np.ndarray, int]]:
        """Masks of swap initiators per positive offset.

        A tile at (x, y) choosing positive offset k swaps with
        (x+dx, y+dy) iff that tile chose the opposite offset.  Returns
        [(initiator_mask, offset_index), ...] covering every mutual pair
        exactly once.
        """
        out = []
        for k in _POSITIVE:
            dx, dy = SWAP_OFFSETS[k]
            partner_choice = shift2d(choice, dx, dy, fill=-1)
            mask = (choice == k) & (partner_choice == _OPPOSITE[k])
            if np.any(mask):
                out.append((mask, k))
        return out

    def apply(
        self,
        grids: dict[str, np.ndarray],
        proj: np.ndarray,
        occupied: np.ndarray,
        core_centers: np.ndarray,
        pitch: np.ndarray,
    ) -> int:
        """Run one full swap round, mutating ``grids`` in place.

        ``grids`` maps names to per-tile arrays (positions, velocities,
        ids, types, occupancy...) that must travel with the atom.
        Returns the number of swaps performed.
        """
        choice, _ = self.propose(proj, occupied, core_centers, pitch)
        n_swaps = 0
        for mask, k in self.mutual_pairs(choice):
            dx, dy = SWAP_OFFSETS[k]
            n_swaps += int(mask.sum())
            src = np.nonzero(mask)
            dst = (src[0] + dx, src[1] + dy)
            for arr in grids.values():
                tmp = arr[src].copy()
                arr[src] = arr[dst]
                arr[dst] = tmp
        return n_swaps
