"""Locality-preserving atom-to-core mapping (paper Sec. III-A).

Each core ``c`` is identified with a nominal fabric-plane coordinate
``P(c)``; the assignment cost ``C(g)`` of a mapping ``g`` is the
worst-case max-norm displacement between an atom's projected position
``P(r_i)`` and its worker core's coordinate ``P(g(i))``.  Together with
the cutoff, ``C(g)`` bounds the fabric distance between the workers of
interacting atoms by ``2 C(g) + r_cut`` — which is what sizes the
candidate neighborhood (:mod:`repro.core.neighborhood`).

The builder uses a two-stage geometric assignment:

1. **Columns** — each atom's projected x picks a core column; columns
   over capacity spill their outermost atoms to the neighbor column
   (one rightward then one leftward balancing pass).
2. **Rows** — within a column, atoms sorted by projected y are placed on
   distinct rows minimizing the worst row displacement (a cummax-based
   order-preserving assignment).

The result is deterministic, one-to-one, and leaves empty cores free for
the online swap remapping (Sec. III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.folding import FabricProjection
from repro.md.boundary import Box
from repro.wse.geometry import TileGrid

__all__ = ["Mapping", "build_mapping", "grid_for_atoms", "assign_rows"]


def grid_for_atoms(
    n_atoms: int,
    extent: np.ndarray,
    *,
    fill: float = 0.94,
    max_tiles: int | None = None,
) -> TileGrid:
    """Choose a core grid for ``n_atoms`` with aspect matching ``extent``.

    ``fill`` is the target occupancy (the paper's 801,792-atom runs use
    94 % of the CS-2's 850k cores); the grid's aspect ratio follows the
    projected domain so pitch is roughly isotropic.
    """
    if n_atoms < 1:
        raise ValueError(f"need at least one atom, got {n_atoms}")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    ex, ey = float(extent[0]), float(extent[1])
    if ex <= 0 or ey <= 0:
        raise ValueError(f"degenerate extent {extent}")
    target = n_atoms / fill
    gx = max(1, int(np.ceil(np.sqrt(target * ex / ey))))
    gy = max(1, int(np.ceil(target / gx)))
    while gx * gy < n_atoms:
        gy += 1
    if max_tiles is not None and gx * gy > max_tiles:
        raise ValueError(
            f"{n_atoms} atoms at fill {fill} need {gx * gy} tiles, "
            f"machine has {max_tiles}"
        )
    return TileGrid(gx, gy)


def _assign_lowest(desired: np.ndarray, n_rows: int) -> np.ndarray:
    """Lowest feasible strictly-increasing assignment >= pattern.

    ``r_k = k + cummax(d_k - k)`` pushed down from the top so the tail
    fits; the minimal order-preserving assignment at or above the
    desired slots wherever possible.
    """
    m = len(desired)
    k = np.arange(m, dtype=np.int64)
    rows = k + np.maximum.accumulate(np.asarray(desired, dtype=np.int64) - k)
    return np.minimum(rows, n_rows - m + k)


def assign_rows(desired: np.ndarray, n_rows: int) -> np.ndarray:
    """Distinct, order-preserving assignment with *centered* displacement.

    ``desired`` are the (sorted ascending) preferred rows.  A one-sided
    greedy (always shift up on collision) lets displacement accumulate
    across a long run of over-demand; instead we compute the lowest and
    highest feasible assignments and take their midpoint, so local
    surpluses push half the atoms down and half up and the worst-case
    displacement stays bounded by the local overload, independent of
    system size.
    """
    m = len(desired)
    if m > n_rows:
        raise ValueError(f"{m} atoms cannot occupy {n_rows} distinct rows")
    if m == 0:
        return np.empty(0, dtype=np.int64)
    desired = np.clip(np.asarray(desired, dtype=np.int64), 0, n_rows - 1)
    low = _assign_lowest(desired, n_rows)
    # highest feasible = mirror of the lowest on the complemented pattern
    mirrored = (n_rows - 1) - desired[::-1]
    high = (n_rows - 1) - _assign_lowest(mirrored, n_rows)[::-1]
    return (low + high) // 2


@dataclass
class Mapping:
    """A one-to-one atom-to-core assignment.

    Attributes
    ----------
    grid:
        The core grid in use.
    projection:
        Fabric-plane projection (handles periodic folding).
    pitch:
        Fabric-plane length per tile, (2,).
    origin:
        Fabric-plane coordinate of core (0, 0)'s center, (2,).
    atom_core:
        Flat core index per atom, (N,).
    """

    grid: TileGrid
    projection: FabricProjection
    pitch: np.ndarray
    origin: np.ndarray
    atom_core: np.ndarray

    def __post_init__(self) -> None:
        self.atom_core = np.asarray(self.atom_core, dtype=np.int64)
        uniq = np.unique(self.atom_core)
        if len(uniq) != len(self.atom_core):
            raise ValueError("mapping is not one-to-one: duplicate cores")
        if np.any(self.atom_core < 0) or np.any(
            self.atom_core >= self.grid.n_tiles
        ):
            raise ValueError("mapping references cores outside the grid")

    @property
    def n_atoms(self) -> int:
        """Number of mapped atoms."""
        return len(self.atom_core)

    def core_xy(self) -> tuple[np.ndarray, np.ndarray]:
        """Grid coordinates (x, y) of each atom's core."""
        return self.grid.unflatten(self.atom_core)

    def core_centers(self) -> np.ndarray:
        """Fabric-plane coordinates of each atom's core center, (N, 2)."""
        cx, cy = self.core_xy()
        return self.origin + np.stack([cx, cy], axis=1) * self.pitch

    def per_atom_cost(self, positions: np.ndarray) -> np.ndarray:
        """Max-norm fabric-plane displacement of each atom (angstrom)."""
        proj = self.projection.project(positions)
        delta = np.abs(proj - self.core_centers())
        return delta.max(axis=1)

    def assignment_cost(self, positions: np.ndarray) -> float:
        """The paper's C(g): worst-case coordinate displacement."""
        return float(np.max(self.per_atom_cost(positions)))

    def occupancy(self) -> np.ndarray:
        """Boolean per-tile occupancy, shape (grid.nx, grid.ny)."""
        occ = np.zeros(self.grid.n_tiles, dtype=bool)
        occ[self.atom_core] = True
        return occ.reshape(self.grid.nx, self.grid.ny)


def layer_offsets(z: np.ndarray, *, max_layers: int = 128) -> np.ndarray | None:
    """Per-atom serpentine in-plane offsets derived from z-layers.

    A thin slab stacks many atoms above each tile footprint; they must
    spread over a small block of cores.  Doing that *consistently* —
    every atom of z-layer ``l`` shifted by the same (ox, oy) pattern
    position — keeps the offsets of interacting atoms correlated (same
    layer: identical; adjacent layers: adjacent pattern cells), which is
    what lets the required neighborhood ``b`` stay near ``r_cut/pitch``
    (the paper's b = 4 for Ta, b = 7 for Cu/W).  Returns (N, 2) offsets
    in *pattern units* (to be scaled by the pitch), or None when the
    configuration has no usable layer structure.
    """
    z = np.asarray(z, dtype=np.float64)
    span = float(z.max() - z.min()) if len(z) else 0.0
    if span < 1e-9:
        return None
    # quantize generously: layers are crystal planes, typically > 0.5 A apart
    quant = np.round((z - z.min()) / (span / 512.0)).astype(np.int64)
    uniq, inverse = np.unique(quant, return_inverse=True)
    # merge quantization bins closer than 1/64 of the span into layers
    layer_of_bin = np.zeros(len(uniq), dtype=np.int64)
    layer = 0
    for k in range(1, len(uniq)):
        if uniq[k] - uniq[k - 1] > 8:  # > span/64 apart: a new layer
            layer += 1
        layer_of_bin[k] = layer
    layers = layer_of_bin[inverse]
    n_layers = layer + 1
    if n_layers < 2 or n_layers > max_layers:
        return None
    sx = int(np.ceil(np.sqrt(n_layers)))
    sy = int(np.ceil(n_layers / sx))
    # serpentine: adjacent layers land on adjacent pattern cells
    l = np.arange(n_layers)
    oy, ox = l // sx, l % sx
    ox = np.where(oy % 2 == 1, sx - 1 - ox, ox)
    ox = ox - (sx - 1) / 2.0
    oy = oy - (sy - 1) / 2.0
    return np.stack([ox[layers], oy[layers]], axis=1)


def build_mapping(
    positions: np.ndarray,
    box: Box,
    *,
    grid: TileGrid | None = None,
    fill: float = 0.94,
    layer_aware: bool = True,
) -> Mapping:
    """Construct the locality-preserving mapping for a configuration."""
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n == 0:
        raise ValueError("cannot map an empty configuration")
    projection = FabricProjection(box)
    proj = projection.project(positions)
    lo, hi = projection.plane_extent(positions)
    extent = np.maximum(hi - lo, 1e-9)
    if grid is None:
        grid = grid_for_atoms(n, extent, fill=fill)
    if grid.n_tiles < n:
        raise ValueError(f"grid {grid.nx}x{grid.ny} too small for {n} atoms")
    pitch = extent / np.array([grid.nx, grid.ny], dtype=np.float64)
    origin = lo + pitch / 2.0

    # Effective coordinates: project, then displace each atom by its
    # z-layer's pattern offset so stacked atoms spread consistently.
    eff = proj.copy()
    offsets = layer_offsets(positions[:, 2]) if layer_aware else None
    if offsets is not None:
        eff = eff + offsets * pitch

    # Quantile (rank) transport in both axes.  Anchoring atoms to the
    # grid cell under their projection fails on crystals: lattice
    # discreteness makes some columns systematically over-dense along
    # their whole height, and any order-preserving point assignment
    # then accumulates displacement with system size.  Rank transport
    # instead re-pitches each column to its own load, so displacement is
    # bounded by *local* density fluctuations, independent of size.
    atom_core = np.empty(n, dtype=np.int64)
    # Crystals produce large groups of atoms with *identical* effective
    # x (same lattice plane and layer, every y).  A rank cut through
    # such a group must take a y-uniform subset — splitting by storage
    # order would give adjacent columns y-skewed catches and bend the
    # mapping.  A golden-ratio tie-break key is equidistributed in y,
    # so every prefix of a tie group covers the column height evenly.
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    order_xy = np.lexsort((eff[:, 1], eff[:, 0]))
    x_sorted = eff[order_xy, 0]
    new_group = np.concatenate([[True], x_sorted[1:] != x_sorted[:-1]])
    starts = np.repeat(
        np.nonzero(new_group)[0], np.diff(np.append(np.nonzero(new_group)[0], n))
    )
    rank_in_group = np.arange(n, dtype=np.int64) - starts
    tie_break = np.empty(n)
    # golden-ratio sequence on the *rank*: every prefix of a tie group
    # sorted by this key is a uniformly spread subset of its y order
    tie_break[order_xy] = np.modf(rank_in_group * golden)[0]
    order_x = np.lexsort((tie_break, eff[:, 0]))
    columns = np.empty(n, dtype=np.int64)
    columns[order_x] = (np.arange(n, dtype=np.int64) * grid.nx) // n
    # Rows stay *anchored* to physical y (no stretch: the fill slack is
    # left wherever the atoms are not), with collisions resolved by the
    # centered order-preserving assignment.  Equal-count columns make
    # each column's y-load uniform, so no displacement accumulates.
    desired_rows = np.floor((eff[:, 1] - lo[1]) / pitch[1]).astype(np.int64)
    order = np.lexsort((eff[:, 1], desired_rows, columns))
    col_sorted = columns[order]
    boundaries = np.nonzero(np.diff(col_sorted))[0] + 1
    for seg in np.split(np.arange(n), boundaries):
        if len(seg) == 0:
            continue
        atoms = order[seg]
        col = int(col_sorted[seg[0]])
        rows = assign_rows(desired_rows[atoms], grid.ny)
        atom_core[atoms] = grid.flatten(col, rows)
    return Mapping(
        grid=grid,
        projection=projection,
        pitch=pitch,
        origin=origin,
        atom_core=atom_core,
    )


def _assign_columns(
    px: np.ndarray, lo_x: float, pitch_x: float, grid: TileGrid
) -> np.ndarray:
    """Capacity-constrained, order-preserving column assignment.

    Point-binning by x alone fails on crystals: lattice x coordinates
    are discrete, so some grid columns would receive a multiple of
    their capacity while neighbors stay empty, and naive spilling makes
    displacement grow with system size.  Instead, treat each column as
    ``grid.ny`` *slots* and assign x-sorted atoms to strictly
    increasing slots nearest their desired position — the same cummax
    construction as :func:`assign_rows`, generalized to capacity
    ``ny``.  Displacement is then bounded by the local surplus (a few
    lattice cells), independent of system size.
    """
    n = len(px)
    gy = grid.ny
    order = np.argsort(px, kind="stable")
    desired = np.clip(
        np.floor((px[order] - lo_x) / pitch_x).astype(np.int64),
        0,
        grid.nx - 1,
    )
    slots = assign_rows(desired * gy, grid.nx * gy)
    columns = np.empty(n, dtype=np.int64)
    columns[order] = slots // gy
    return columns
