"""Periodic-dimension folding (paper Sec. III-E, Fig. 5).

A periodic coordinate lives on a circle; mapping the circle naively onto
a line of cores would put the two ends — which interact — at opposite
edges of the wafer.  The paper's solution: split the circle in two and
collapse it onto a line so atoms from the two halves *interleave*.
Interacting atoms then sit at most two fabric hops apart instead of one.

Concretely, a coordinate ``u`` on a circle of circumference ``L`` maps to

    w(u) = 2 * min(u, L - u) - [u > L/2]

The factor 2 is the interleaving stride (each half of the circle uses
every other position), and the ``-1`` offsets the far half between the
near half's positions.  For two points at circle distance ``d``:
``|w(u1) - w(u2)| <= 2 d + 1`` — the Lipschitz factor of 2 that doubles
the neighborhood data volume while leaving exchange *time* unchanged
(Sec. V-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.boundary import Box

__all__ = ["fold_coordinate", "circle_distance", "FabricProjection"]


def fold_coordinate(u: np.ndarray, length: float) -> np.ndarray:
    """Fold a periodic coordinate onto the interleaved line.

    ``u`` may lie anywhere; it is first wrapped into ``[0, L)``.
    Output spans ``[-1, L]``.
    """
    if length <= 0:
        raise ValueError(f"period must be positive, got {length}")
    u = np.mod(np.asarray(u, dtype=np.float64), length)
    near = np.minimum(u, length - u)
    far_side = u > length / 2.0
    return 2.0 * near - far_side.astype(np.float64)


def circle_distance(u1: np.ndarray, u2: np.ndarray, length: float) -> np.ndarray:
    """Distance on the circle of circumference ``length``."""
    d = np.abs(np.mod(np.asarray(u1) - np.asarray(u2), length))
    return np.minimum(d, length - d)


@dataclass
class FabricProjection:
    """Projection ``P`` of the simulation domain onto the fabric plane.

    Flattens atoms onto x-y (zeroing z, paper Sec. III-A) and folds any
    periodic in-plane dimension.  ``lipschitz`` per dimension bounds how
    much faster fabric-plane distance can grow than physical distance —
    the quantity the neighborhood half-width ``b`` must absorb.
    """

    box: Box
    fold_dims: tuple[bool, bool] = field(init=False)

    def __post_init__(self) -> None:
        self.fold_dims = (bool(self.box.periodic[0]), bool(self.box.periodic[1]))

    @property
    def lipschitz(self) -> np.ndarray:
        """Per-dimension distance amplification of the projection (2,)."""
        return np.where(np.array(self.fold_dims), 2.0, 1.0)

    def project(self, positions: np.ndarray) -> np.ndarray:
        """Fabric-plane coordinates (N, 2) of atom positions (N, 3)."""
        positions = np.asarray(positions, dtype=np.float64)
        out = np.empty((len(positions), 2))
        for d in range(2):
            if self.fold_dims[d]:
                rel = positions[:, d] - self.box.origin[d]
                out[:, d] = fold_coordinate(rel, self.box.lengths[d])
            else:
                out[:, d] = positions[:, d]
        return out

    def plane_extent(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) of the projected coordinates, (2,) each.

        Folded dimensions have a fixed extent of ``[-1, L]``; open
        dimensions take the configuration's bounding interval.
        """
        proj = self.project(positions)
        lo = proj.min(axis=0)
        hi = proj.max(axis=0)
        for d in range(2):
            if self.fold_dims[d]:
                lo[d] = -1.0
                hi[d] = self.box.lengths[d]
        return lo, hi

    def separation_bound(self, physical_distance: float) -> float:
        """Max fabric-plane separation of atoms within ``physical_distance``.

        Open dims: the distance itself.  Folded dims: ``2 d + 1``.
        """
        factor = float(self.lipschitz.max())
        extra = 1.0 if any(self.fold_dims) else 0.0
        return factor * physical_distance + extra
