"""WseMd: the lockstep vectorized wafer-scale MD machine.

Executes every tile's worker program simultaneously on per-tile grid
arrays, following the five-step timestep of paper Sec. III-A:

1. **Candidate exchange** — streamed over the (2b+1)^2 neighborhood
   offsets in fixed-size chunks (:mod:`repro.core.streaming`), the
   functional equivalent of the marching multicast.  No per-offset
   record survives a pass: each chunk is shifted, filtered, reduced
   into the running accumulators and its buffers reused, so peak
   memory is O(chunk x grid), never O(offsets x grid).
2. **Neighbor list** — the within-cutoff mask per offset (candidates
   arrive in deterministic order; the mask *is* the ordinal list).
3. **Embedding calculation and exchange** — density accumulation, then
   ``F`` and ``F'`` per tile; the second exchange ships ``F'``.
4. **Force calculation and integration** — Eq. 4 radial terms and the
   Verlet leap-frog update (Eq. 5).
5. **Atom swap** — every ``swap_interval`` steps, the greedy mutual
   remapping (:mod:`repro.core.swap`).

Cycle accounting: each step records per-tile cycle counts from the
calibrated :class:`~repro.core.cycle_model.CycleCostModel` using each
tile's actual candidate and interaction counts, into a
:class:`~repro.wse.trace.CycleTrace` — the machine's "hardware cycle
counter in a scratch buffer" (Sec. IV-B).

The physics is identical to the reference engine
(:mod:`repro.md.simulation`); tests assert trajectory equivalence.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.constants import MVV2E
from repro.core.cycle_model import CycleCostModel
from repro.core.mapping import Mapping, build_mapping
from repro.core.streaming import StreamingSweeps
from repro.core.neighborhood import required_b
from repro.core.swap import SwapEngine
from repro.md.state import AtomsState
from repro.obs import NULL_TRACER, metrics
from repro.potentials.eam import EAMPotential
from repro.wse.geometry import TileGrid
from repro.wse.trace import CycleTrace

__all__ = ["WseMd"]

#: Fabric-plane sentinel coordinate of an empty tile's "atom at infinity".
_FAR = 1.0e15


def _embed_with_border(mapping: Mapping, b: int) -> Mapping:
    """Re-host a mapping on a grid at least (2b+2) wide, same pitch.

    Atoms keep their relative core positions; an empty border of tiles
    is added symmetrically so the (2b+1)-square neighborhood always fits
    on the fabric.
    """
    side_x = max(mapping.grid.nx, 2 * b + 2)
    side_y = max(mapping.grid.ny, 2 * b + 2)
    border_x = (side_x - mapping.grid.nx) // 2
    border_y = (side_y - mapping.grid.ny) // 2
    large = TileGrid(side_x, side_y)
    cx, cy = mapping.core_xy()
    return Mapping(
        grid=large,
        projection=mapping.projection,
        pitch=mapping.pitch,
        origin=mapping.origin - np.array([border_x, border_y]) * mapping.pitch,
        atom_core=large.flatten(cx + border_x, cy + border_y),
    )


class WseMd:
    """One-atom-per-core EAM MD on a simulated wafer.

    Parameters
    ----------
    state:
        Initial atom state (consumed; use :meth:`gather_state` to read
        results back in id order).
    potential:
        EAM potential (the per-tile spline tables).
    grid:
        Core grid; sized automatically from ``fill`` when omitted.
    b:
        Neighborhood half-width; chosen from the mapping cost and
        cutoff when omitted.
    b_margin:
        Physical slack (A) added when auto-choosing ``b`` — headroom
        for atom motion between swap rounds.
    dt_fs:
        Timestep (fs).
    cost_model:
        Cycle pricing; defaults to the calibrated baseline model.
    swap_interval:
        Apply a swap round every this many steps (0 disables).
    dtype:
        Storage/compute dtype for per-tile state; ``np.float32``
        matches the WSE's single-precision implementation.
    jitter_rel:
        Relative per-tile timing noise (models hardware effects like
        bank conflicts; the paper measures 0.11 %).  Deterministic via
        ``seed`` (or the passed ``rng``).
    rng:
        Pre-built generator for the timing noise (wins over ``seed``).
        The runtime passes its "engine" seed stream here so the noise
        sequence is checkpointable.
    force_symmetry:
        Enable the paper's "Force Symmetry" future optimization
        (Sec. VI-A): pair terms are computed once per undirected pair
        (half the neighborhood offsets) and the partner's share is
        returned by the reverse-multicast reduction — functionally a
        scatter through the opposite offset.  Physics is identical;
        pair work halves (price it with an
        :class:`~repro.core.cycle_model.OptimizationConfig` whose
        ``interaction_factor`` is 0.5).
    offset_chunk:
        Offsets stacked per streaming batch (0 auto-sizes from the
        grid; see :func:`repro.core.streaming.auto_chunk`).  A speed /
        memory knob only — any chunking produces bitwise-identical
        trajectories.
    workers:
        Dispatch offset chunks across this many forked workers
        (:class:`repro.parallel.offsets.WseOffsetPool`); 0 runs the
        sweeps in-process.  Trajectories are bitwise-reproducible per
        worker count, and ``workers=1`` matches the serial path
        bitwise.  Falls back to serial (with a once-per-process
        warning) where fork is unavailable.
    """

    def __init__(
        self,
        state: AtomsState,
        potential: EAMPotential,
        *,
        grid: TileGrid | None = None,
        b: int | None = None,
        b_margin: float = 1.0,
        fill: float = 0.94,
        dt_fs: float = 2.0,
        cost_model: CycleCostModel | None = None,
        swap_interval: int = 0,
        swap_engine: SwapEngine | None = None,
        mapping: Mapping | None = None,
        dtype=np.float64,
        jitter_rel: float = 0.0,
        seed: int = 0,
        rng: np.random.Generator | None = None,
        force_symmetry: bool = False,
        offset_chunk: int = 0,
        workers: int = 0,
        tracer=None,
    ) -> None:
        self.potential = potential
        self.box = state.box
        self.masses = state.masses.copy()
        self.dt = dt_fs / 1000.0
        self.dt_fs = float(dt_fs)
        self.cost_model = cost_model or CycleCostModel()
        if swap_interval < 0:
            raise ValueError(f"swap interval must be >= 0, got {swap_interval}")
        self.swap_interval = swap_interval
        self.swap_engine = swap_engine or SwapEngine()
        self.dtype = np.dtype(dtype)
        self.jitter_rel = float(jitter_rel)
        self.force_symmetry = bool(force_symmetry)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self.pbc_inplane = bool(state.box.periodic[0] or state.box.periodic[1])

        self.mapping = mapping or build_mapping(
            state.positions, state.box, grid=grid, fill=fill
        )
        self.grid = self.mapping.grid
        auto_sized = mapping is None and grid is None
        if b is None:
            b = required_b(
                self.mapping,
                state.positions,
                state.box,
                potential.cutoff,
                margin=b_margin,
            )
            # Tiny workloads can need a neighborhood wider than the
            # snug auto-sized grid.  Embed the mapping in a larger grid
            # with an empty border at the *same pitch* (the wafer always
            # has spare tiles around a small problem); b is unchanged
            # because worker separations are unchanged.
            if auto_sized and 2 * b + 1 > min(self.grid.nx, self.grid.ny):
                self.mapping = _embed_with_border(self.mapping, b)
                self.grid = self.mapping.grid
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        self.b = int(b)

        nx, ny = self.grid.nx, self.grid.ny
        self.occ = np.zeros((nx, ny), dtype=bool)
        self.pos = np.full((nx, ny, 3), _FAR, dtype=self.dtype)
        self.vel = np.zeros((nx, ny, 3), dtype=self.dtype)
        self.aid = np.full((nx, ny), -1, dtype=np.int64)
        self.typ = np.zeros((nx, ny), dtype=np.int64)
        cx, cy = self.mapping.core_xy()
        self.occ[cx, cy] = True
        self.pos[cx, cy] = state.positions.astype(self.dtype)
        self.vel[cx, cy] = state.velocities.astype(self.dtype)
        self.aid[cx, cy] = state.ids
        self.typ[cx, cy] = state.types

        # precomputed per-tile nominal fabric coordinates
        gx = np.arange(nx)[:, None] * self.mapping.pitch[0]
        gy = np.arange(ny)[None, :] * self.mapping.pitch[1]
        self.core_centers = np.empty((nx, ny, 2))
        self.core_centers[:, :, 0] = self.mapping.origin[0] + gx
        self.core_centers[:, :, 1] = self.mapping.origin[1] + gy

        self.trace = CycleTrace(self.grid.n_tiles)
        self.step_count = 0
        self.swap_count = 0
        self.last_candidates = np.zeros((nx, ny), dtype=np.int64)
        self.last_interactions = np.zeros((nx, ny), dtype=np.int64)
        self._check_b_coverage_possible()

        # Streaming-sweep state: the (2b+1)^2 - 1 neighborhood offsets
        # depend only on the (fixed) grid and b; with force symmetry a
        # worker processes only the "i < j" half (the multicast is
        # cropped, Sec. VI-A) and each pair's partner share travels
        # back via the reverse reduction.  The sweeper owns the
        # chunk-stacked exchange buffers — peak memory is
        # O(chunk x nx x ny), never O(offsets x nx x ny).
        if offset_chunk < 0:
            raise ValueError(
                f"offset_chunk must be >= 0, got {offset_chunk}"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.offset_chunk = int(offset_chunk)
        self.workers = int(workers)
        self._offsets = [
            (int(dx), int(dy))
            for dx, dy in self.grid.neighborhood_offsets(self.b)
        ]
        self._pass_offsets = [
            (dx, dy)
            for dx, dy in self._offsets
            if not self.force_symmetry or dy > 0 or (dy == 0 and dx > 0)
        ]
        self._sweeps = StreamingSweeps(
            nx=nx,
            ny=ny,
            dtype=self.dtype,
            lengths=self.box.lengths,
            periodic=self.box.periodic,
            cutoff=potential.cutoff,
            tables=potential.tables,
            offsets=self._pass_offsets,
            chunk=self.offset_chunk,
            force_symmetry=self.force_symmetry,
        )
        self._pool = None
        self._pool_failed = False
        self._close_lock = threading.Lock()

    # -- helpers ---------------------------------------------------------------

    def _check_b_coverage_possible(self) -> None:
        if 2 * self.b + 1 > max(self.grid.nx, self.grid.ny):
            raise ValueError(
                f"neighborhood 2b+1={2 * self.b + 1} exceeds grid "
                f"{self.grid.nx}x{self.grid.ny}"
            )

    @property
    def n_atoms(self) -> int:
        """Number of atoms on the machine."""
        return int(self.occ.sum())

    @property
    def rng(self) -> np.random.Generator:
        """The timing-noise generator (for checkpointing its state)."""
        return self._rng

    @property
    def effective_offset_chunk(self) -> int:
        """The resolved streaming chunk (auto-sized when 0 was passed)."""
        return self._sweeps.chunk

    def _minimum_image(self, d: np.ndarray) -> np.ndarray:
        # floor(x/L + 0.5), not round(x/L): np.round banker's-rounds
        # half-box ties (exactly +-L/2) to the nearest *even* multiple,
        # making the wrapped sign depend on which image the separation
        # came from.  floor maps both ties deterministically to -L/2,
        # matching Box.minimum_image so the engines stay bit-equivalent.
        for dim in range(3):
            if self.box.periodic[dim]:
                ld = self.box.lengths[dim]
                d[..., dim] -= ld * np.floor(d[..., dim] / ld + 0.5)
        return d

    # -- the five-step timestep ------------------------------------------------

    def _ensure_pool(self):
        """The offset-dispatch pool, spawned lazily (or None = serial).

        The spawn is traced as its own ``parallel.pool`` phase (like
        the reference engine's shard pool) so pool setup never inflates
        a taxonomy phase.  Where fork is unavailable the machine warns
        once and runs the sweeps in-process.
        """
        if self.workers <= 0 or self._pool_failed:
            return None
        if self._pool is not None:
            return self._pool
        from repro.parallel.offsets import WseOffsetPool
        from repro.parallel.pool import fork_available

        if not fork_available():
            self._pool_failed = True
            import warnings

            warnings.warn(
                "fork start method unavailable; wse offset dispatch "
                "falls back to the serial streaming sweeps",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        with self.tracer.phase("parallel.pool") as ph:
            self._pool = WseOffsetPool(
                n_workers=self.workers,
                nx=self.grid.nx,
                ny=self.grid.ny,
                dtype=self.dtype,
                lengths=self.box.lengths,
                periodic=self.box.periodic,
                cutoff=self.potential.cutoff,
                tables=self.potential.tables,
                offsets=self._pass_offsets,
                chunk=self.offset_chunk,
                force_symmetry=self.force_symmetry,
            )
            ph.add(workers=self._pool.n_workers)
        return self._pool

    def _density_sweep(self):
        """Steps 1-3a: candidate exchange, neighbor mask, density sums.

        Returns the accumulated grids plus the exchange / neighbor
        wall-time split the streaming sweep measured (recorded as child
        spans of the ``density`` phase by :meth:`step`).
        """
        nx, ny = self.grid.nx, self.grid.ny
        rho_bar = np.zeros((nx, ny))
        n_cand = np.zeros((nx, ny), dtype=np.int64)
        n_int = np.zeros((nx, ny), dtype=np.int64)
        pool = self._ensure_pool()
        runner = pool if pool is not None else self._sweeps
        t_ex, t_nb, _ = runner.density(
            self.pos, self.occ, self.typ, rho_bar, n_cand, n_int
        )
        self.last_candidates = n_cand
        self.last_interactions = n_int
        return rho_bar, n_cand, n_int, t_ex, t_nb

    def _embed(self, rho_bar: np.ndarray):
        """Step 3b: embedding energy and derivative per tile."""
        tables = self.potential.tables
        nx, ny = self.grid.nx, self.grid.ny
        f_val = np.zeros((nx, ny))
        f_der = np.zeros((nx, ny))
        if tables.n_types == 1:
            v, dv = tables.embed[0].evaluate(rho_bar[self.occ])
            f_val[self.occ] = v
            f_der[self.occ] = dv
        else:
            for t in range(tables.n_types):
                m = self.occ & (self.typ == t)
                if np.any(m):
                    v, dv = tables.embed[t].evaluate(rho_bar[m])
                    f_val[m] = v
                    f_der[m] = dv
        return f_val, f_der

    def _force_sweep(self, f_der: np.ndarray):
        """Steps 3c-4a: F' exchange and Eq. 4 force accumulation.

        Re-runs the streaming filter (positions are unchanged since the
        density sweep, so masks and distances are bitwise identical)
        instead of caching per-offset records — that cache was the
        O(offsets x grid) memory blow-up this engine no longer has.
        """
        nx, ny = self.grid.nx, self.grid.ny
        force = np.zeros((nx, ny, 3))
        e_pair = np.zeros((nx, ny))
        pool = self._ensure_pool()
        runner = pool if pool is not None else self._sweeps
        t_ex, t_nb, _ = runner.force(
            self.pos, self.occ, self.typ, f_der, force, e_pair
        )
        return force, e_pair, t_ex, t_nb

    def _integrate(self, force: np.ndarray) -> None:
        """Step 4b: leap-frog update, restricted to the occupied tiles.

        Empty tiles must never integrate: their sentinel positions and
        zero velocities are load-bearing for the exchange masks, and a
        stray force value on a vacated tile would silently corrupt the
        next atom swapped onto it.
        """
        occ = self.occ
        mass = self.masses[self.typ[occ]]
        accel = force[occ] / (mass[:, None] * MVV2E)
        self.vel[occ] += (accel * self.dt).astype(self.dtype)
        self.pos[occ] += (self.vel[occ] * self.dt).astype(self.dtype)

    def _record_cycles(self, n_cand: np.ndarray, n_int: np.ndarray) -> None:
        cycles = self.cost_model.step_cycles(
            n_cand.astype(np.float64),
            n_int.astype(np.float64),
            self.b,
            pbc=self.pbc_inplane,
        )
        # empty tiles still pay the exchange and fixed control costs
        empty_cost = self.cost_model.exchange_cycles(
            self.b, pbc=self.pbc_inplane
        ) + self.cost_model.fixed_cycles()
        cycles = np.where(self.occ, cycles, empty_cost)
        if self.jitter_rel > 0.0:
            noise = self._rng.standard_normal(cycles.shape)
            cycles = cycles * (1.0 + self.jitter_rel * noise)
        # empty tiles did no candidate/interaction work this step
        cand = np.where(self.occ, n_cand, 0)
        cnt_int = np.where(self.occ, n_int, 0)
        self.trace.record(cycles.ravel(), cand.ravel(), cnt_int.ravel())
        reg = metrics()
        reg.histogram("wse.cycles_per_tile").observe_many(cycles.ravel())
        reg.counter("wse.multicast.cycles").inc(
            float(self.grid.n_tiles)
            * self.cost_model.exchange_cycles(self.b, pbc=self.pbc_inplane)
        )

    def _swap_round(self) -> int:
        proj3 = self.pos.copy()
        proj = self._project_grid(proj3)
        grids = {
            "pos": self.pos,
            "vel": self.vel,
            "aid": self.aid,
            "typ": self.typ,
            "occ": self.occ,
        }
        n = self.swap_engine.apply(
            grids, proj, self.occ, self.core_centers, self.mapping.pitch
        )
        # Re-assert the empty-tile invariants after the remap: a tile an
        # atom just left must look exactly like it never held one (far
        # sentinel position, zero velocity, id -1), or the exchange
        # masks and a later swap onto it would see stale state.
        vac = ~self.occ
        self.pos[vac] = _FAR
        self.vel[vac] = 0.0
        self.aid[vac] = -1
        self.typ[vac] = 0
        self.swap_count += n
        metrics().counter("swap.moves").inc(float(n))
        return n

    def _project_grid(self, pos3: np.ndarray) -> np.ndarray:
        """Fabric-plane projection of every tile's atom (empty -> far)."""
        nx, ny = self.grid.nx, self.grid.ny
        flat = pos3.reshape(-1, 3)
        proj = self.mapping.projection.project(flat).reshape(nx, ny, 2)
        proj[~self.occ] = _FAR
        return proj

    # -- public API --------------------------------------------------------------

    def step(self, n_steps: int = 1) -> None:
        """Advance ``n_steps`` timesteps (with swaps at the set interval)."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        tr = self.tracer
        n_offsets = len(self._pass_offsets)
        for _ in range(n_steps):
            # the "step" envelope's self-time is the loop glue between
            # phases (LAMMPS's "Other" row), so traced time tiles the
            # engine wall time.  Each sweep reports its exchange /
            # neighbor wall-time split, recorded as child spans so the
            # taxonomy phases still tile the step: the machine performs
            # two exchanges per step (candidates, then F'), exactly as
            # the paper's timestep does.
            with tr.phase("step"):
                with tr.phase("density") as ph:
                    rho_bar, n_cand, n_int, t_ex, t_nb = (
                        self._density_sweep()
                    )
                    tr.record("exchange", t_ex, {"offsets": n_offsets})
                    tr.record("neighbor", t_nb, {"offsets": n_offsets})
                    ph.add(
                        candidates=int(n_cand.sum()),
                        interactions=int(n_int.sum()),
                    )
                with tr.phase("embedding"):
                    _, f_der = self._embed(rho_bar)
                with tr.phase("pair_force"):
                    force, _, t_ex, t_nb = self._force_sweep(f_der)
                    tr.record("exchange", t_ex, {"offsets": n_offsets})
                    tr.record("neighbor", t_nb, {"offsets": n_offsets})
                with tr.phase("integrate"):
                    self._integrate(force)
                with tr.phase("cycle_account"):
                    self._record_cycles(n_cand, n_int)
                self.step_count += 1
                if (
                    self.swap_interval
                    and self.step_count % self.swap_interval == 0
                ):
                    with tr.phase("swap") as ph:
                        moved = self._swap_round()
                        ph.add(moves=moved)

    def compute_energy(self) -> float:
        """Total potential energy at the current positions (eV)."""
        rho_bar, _, _, _, _ = self._density_sweep()
        f_val, f_der = self._embed(rho_bar)
        _, e_pair, _, _ = self._force_sweep(f_der)
        return float(f_val[self.occ].sum() + e_pair[self.occ].sum())

    def compute_forces(self) -> np.ndarray:
        """Forces on the occupied tiles' atoms, id order, (N, 3)."""
        rho_bar, _, _, _, _ = self._density_sweep()
        _, f_der = self._embed(rho_bar)
        force, _, _, _ = self._force_sweep(f_der)
        order = np.argsort(self.aid[self.occ])
        return force[self.occ][order]

    def close(self) -> None:
        """Release the offset-dispatch pool (no-op when running serial).

        Idempotent and thread-safe — the serve scheduler may close a
        cancelled job from a different thread than the stepping one,
        and then again on cleanup.
        """
        with self._close_lock:
            pool, self._pool = self._pool, None
            self._pool_failed = True  # no respawn after close
        if pool is not None:
            pool.close()

    def verify_coverage(self) -> int:
        """Check every interacting pair lies within the b-neighborhood.

        Returns the number of *uncovered* pairs (0 means the current
        ``b`` is safe).  The wafer algorithm's correctness rests on
        this invariant (Sec. III-A: "every (2b+1)-wide square
        neighborhood contains all interactions"); it can be violated if
        atoms drift or the mapping is perturbed beyond the margin ``b``
        was chosen for, in which case forces are silently wrong.
        """
        state = self.gather_state()
        from repro.md.neighbor_list import NeighborList

        pairs = NeighborList(self.box, self.potential.cutoff, skin=0.0).pairs(
            state.positions
        )
        occ = self.occ
        order = np.argsort(self.aid[occ])
        fx, fy = np.nonzero(occ)
        cx = fx[order]
        cy = fy[order]
        dist = np.maximum(
            np.abs(cx[pairs.i] - cx[pairs.j]),
            np.abs(cy[pairs.i] - cy[pairs.j]),
        )
        return int(np.count_nonzero(dist > self.b))

    def assignment_cost(self) -> float:
        """Current C(g) in fabric-plane angstroms (Fig. 9's metric)."""
        proj = self._project_grid(self.pos)
        delta = np.abs(proj - self.core_centers).max(axis=2)
        return float(delta[self.occ].max())

    def gather_state(self) -> AtomsState:
        """Read atoms back into an :class:`AtomsState`, ordered by id."""
        occ = self.occ
        order = np.argsort(self.aid[occ])
        return AtomsState(
            positions=self.pos[occ][order].astype(np.float64),
            velocities=self.vel[occ][order].astype(np.float64),
            types=self.typ[occ][order],
            masses=self.masses.copy(),
            box=self.box,
            ids=self.aid[occ][order],
        )

    def mean_counts(self) -> tuple[float, float]:
        """Mean (candidates, interactions) per occupied tile, last step."""
        occ = self.occ
        return (
            float(self.last_candidates[occ].mean()),
            float(self.last_interactions[occ].mean()),
        )

    def measured_rate(self) -> float:
        """Timesteps/second implied by the recorded cycle trace."""
        if self.trace.n_steps == 0:
            raise RuntimeError("no steps recorded yet")
        total = self.trace.total_cycles()
        seconds = self.cost_model.machine.cycles_to_seconds(total)
        return self.trace.n_steps / seconds
