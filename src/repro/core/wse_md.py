"""WseMd: the lockstep vectorized wafer-scale MD machine.

Executes every tile's worker program simultaneously on per-tile grid
arrays, following the five-step timestep of paper Sec. III-A:

1. **Candidate exchange** — streamed over the (2b+1)^2 neighborhood
   offsets (:mod:`repro.core.exchange`), the functional equivalent of
   the marching multicast.
2. **Neighbor list** — the within-cutoff mask per offset (candidates
   arrive in deterministic order; the mask *is* the ordinal list).
3. **Embedding calculation and exchange** — density accumulation, then
   ``F`` and ``F'`` per tile; the second exchange ships ``F'``.
4. **Force calculation and integration** — Eq. 4 radial terms and the
   Verlet leap-frog update (Eq. 5).
5. **Atom swap** — every ``swap_interval`` steps, the greedy mutual
   remapping (:mod:`repro.core.swap`).

Cycle accounting: each step records per-tile cycle counts from the
calibrated :class:`~repro.core.cycle_model.CycleCostModel` using each
tile's actual candidate and interaction counts, into a
:class:`~repro.wse.trace.CycleTrace` — the machine's "hardware cycle
counter in a scratch buffer" (Sec. IV-B).

The physics is identical to the reference engine
(:mod:`repro.md.simulation`); tests assert trajectory equivalence.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import MVV2E
from repro.core.cycle_model import CycleCostModel
from repro.core.exchange import iter_neighborhood, shift2d, shift2d_into
from repro.core.mapping import Mapping, build_mapping
from repro.core.neighborhood import required_b
from repro.core.swap import SwapEngine
from repro.md.state import AtomsState
from repro.obs import NULL_TRACER, metrics
from repro.potentials.eam import EAMPotential
from repro.wse.geometry import TileGrid
from repro.wse.trace import CycleTrace

__all__ = ["WseMd"]

#: Fabric-plane sentinel coordinate of an empty tile's "atom at infinity".
_FAR = 1.0e15


def _embed_with_border(mapping: Mapping, b: int) -> Mapping:
    """Re-host a mapping on a grid at least (2b+2) wide, same pitch.

    Atoms keep their relative core positions; an empty border of tiles
    is added symmetrically so the (2b+1)-square neighborhood always fits
    on the fabric.
    """
    side_x = max(mapping.grid.nx, 2 * b + 2)
    side_y = max(mapping.grid.ny, 2 * b + 2)
    border_x = (side_x - mapping.grid.nx) // 2
    border_y = (side_y - mapping.grid.ny) // 2
    large = TileGrid(side_x, side_y)
    cx, cy = mapping.core_xy()
    return Mapping(
        grid=large,
        projection=mapping.projection,
        pitch=mapping.pitch,
        origin=mapping.origin - np.array([border_x, border_y]) * mapping.pitch,
        atom_core=large.flatten(cx + border_x, cy + border_y),
    )


class WseMd:
    """One-atom-per-core EAM MD on a simulated wafer.

    Parameters
    ----------
    state:
        Initial atom state (consumed; use :meth:`gather_state` to read
        results back in id order).
    potential:
        EAM potential (the per-tile spline tables).
    grid:
        Core grid; sized automatically from ``fill`` when omitted.
    b:
        Neighborhood half-width; chosen from the mapping cost and
        cutoff when omitted.
    b_margin:
        Physical slack (A) added when auto-choosing ``b`` — headroom
        for atom motion between swap rounds.
    dt_fs:
        Timestep (fs).
    cost_model:
        Cycle pricing; defaults to the calibrated baseline model.
    swap_interval:
        Apply a swap round every this many steps (0 disables).
    dtype:
        Storage/compute dtype for per-tile state; ``np.float32``
        matches the WSE's single-precision implementation.
    jitter_rel:
        Relative per-tile timing noise (models hardware effects like
        bank conflicts; the paper measures 0.11 %).  Deterministic via
        ``seed`` (or the passed ``rng``).
    rng:
        Pre-built generator for the timing noise (wins over ``seed``).
        The runtime passes its "engine" seed stream here so the noise
        sequence is checkpointable.
    force_symmetry:
        Enable the paper's "Force Symmetry" future optimization
        (Sec. VI-A): pair terms are computed once per undirected pair
        (half the neighborhood offsets) and the partner's share is
        returned by the reverse-multicast reduction — functionally a
        scatter through the opposite offset.  Physics is identical;
        pair work halves (price it with an
        :class:`~repro.core.cycle_model.OptimizationConfig` whose
        ``interaction_factor`` is 0.5).
    """

    def __init__(
        self,
        state: AtomsState,
        potential: EAMPotential,
        *,
        grid: TileGrid | None = None,
        b: int | None = None,
        b_margin: float = 1.0,
        fill: float = 0.94,
        dt_fs: float = 2.0,
        cost_model: CycleCostModel | None = None,
        swap_interval: int = 0,
        swap_engine: SwapEngine | None = None,
        mapping: Mapping | None = None,
        dtype=np.float64,
        jitter_rel: float = 0.0,
        seed: int = 0,
        rng: np.random.Generator | None = None,
        force_symmetry: bool = False,
        tracer=None,
    ) -> None:
        self.potential = potential
        self.box = state.box
        self.masses = state.masses.copy()
        self.dt = dt_fs / 1000.0
        self.dt_fs = float(dt_fs)
        self.cost_model = cost_model or CycleCostModel()
        if swap_interval < 0:
            raise ValueError(f"swap interval must be >= 0, got {swap_interval}")
        self.swap_interval = swap_interval
        self.swap_engine = swap_engine or SwapEngine()
        self.dtype = np.dtype(dtype)
        self.jitter_rel = float(jitter_rel)
        self.force_symmetry = bool(force_symmetry)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self.pbc_inplane = bool(state.box.periodic[0] or state.box.periodic[1])

        self.mapping = mapping or build_mapping(
            state.positions, state.box, grid=grid, fill=fill
        )
        self.grid = self.mapping.grid
        auto_sized = mapping is None and grid is None
        if b is None:
            b = required_b(
                self.mapping,
                state.positions,
                state.box,
                potential.cutoff,
                margin=b_margin,
            )
            # Tiny workloads can need a neighborhood wider than the
            # snug auto-sized grid.  Embed the mapping in a larger grid
            # with an empty border at the *same pitch* (the wafer always
            # has spare tiles around a small problem); b is unchanged
            # because worker separations are unchanged.
            if auto_sized and 2 * b + 1 > min(self.grid.nx, self.grid.ny):
                self.mapping = _embed_with_border(self.mapping, b)
                self.grid = self.mapping.grid
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        self.b = int(b)

        nx, ny = self.grid.nx, self.grid.ny
        self.occ = np.zeros((nx, ny), dtype=bool)
        self.pos = np.full((nx, ny, 3), _FAR, dtype=self.dtype)
        self.vel = np.zeros((nx, ny, 3), dtype=self.dtype)
        self.aid = np.full((nx, ny), -1, dtype=np.int64)
        self.typ = np.zeros((nx, ny), dtype=np.int64)
        cx, cy = self.mapping.core_xy()
        self.occ[cx, cy] = True
        self.pos[cx, cy] = state.positions.astype(self.dtype)
        self.vel[cx, cy] = state.velocities.astype(self.dtype)
        self.aid[cx, cy] = state.ids
        self.typ[cx, cy] = state.types

        # precomputed per-tile nominal fabric coordinates
        gx = np.arange(nx)[:, None] * self.mapping.pitch[0]
        gy = np.arange(ny)[None, :] * self.mapping.pitch[1]
        self.core_centers = np.empty((nx, ny, 2))
        self.core_centers[:, :, 0] = self.mapping.origin[0] + gx
        self.core_centers[:, :, 1] = self.mapping.origin[1] + gy

        self.trace = CycleTrace(self.grid.n_tiles)
        self.step_count = 0
        self.swap_count = 0
        self.last_candidates = np.zeros((nx, ny), dtype=np.int64)
        self.last_interactions = np.zeros((nx, ny), dtype=np.int64)
        self._check_b_coverage_possible()

        # Fast-path state: the (2b+1)^2 - 1 neighborhood offsets and
        # their in-fabric masks depend only on the (fixed) grid and b,
        # so they are computed once here instead of every step; the
        # exchange buffers below are reused by every shift so the hot
        # loop allocates nothing proportional to the grid.
        self._offsets = list(iter_neighborhood(self.grid, self.b))
        self._xbuf_pos = np.empty((nx, ny, 3), dtype=self.dtype)
        self._xbuf_occ = np.empty((nx, ny), dtype=bool)
        self._xbuf_d = np.empty((nx, ny, 3), dtype=self.dtype)
        self._xbuf_r2 = np.empty((nx, ny), dtype=self.dtype)
        self._xbuf_fder = np.empty((nx, ny), dtype=np.float64)
        self._xbuf_typ = np.empty((nx, ny), dtype=np.int64)
        self._xbuf_vec = np.empty((nx, ny, 3), dtype=np.float64)
        self._xbuf_vec_shift = np.empty((nx, ny, 3), dtype=np.float64)
        self._xbuf_scal = np.empty((nx, ny), dtype=np.float64)
        self._xbuf_scal_shift = np.empty((nx, ny), dtype=np.float64)

    # -- helpers ---------------------------------------------------------------

    def _check_b_coverage_possible(self) -> None:
        if 2 * self.b + 1 > max(self.grid.nx, self.grid.ny):
            raise ValueError(
                f"neighborhood 2b+1={2 * self.b + 1} exceeds grid "
                f"{self.grid.nx}x{self.grid.ny}"
            )

    @property
    def n_atoms(self) -> int:
        """Number of atoms on the machine."""
        return int(self.occ.sum())

    @property
    def rng(self) -> np.random.Generator:
        """The timing-noise generator (for checkpointing its state)."""
        return self._rng

    def _minimum_image(self, d: np.ndarray) -> np.ndarray:
        # floor(x/L + 0.5), not round(x/L): np.round banker's-rounds
        # half-box ties (exactly +-L/2) to the nearest *even* multiple,
        # making the wrapped sign depend on which image the separation
        # came from.  floor maps both ties deterministically to -L/2,
        # matching Box.minimum_image so the engines stay bit-equivalent.
        for dim in range(3):
            if self.box.periodic[dim]:
                ld = self.box.lengths[dim]
                d[..., dim] -= ld * np.floor(d[..., dim] / ld + 0.5)
        return d

    def _exchange_shift(self, dx: int, dy: int):
        """One offset's candidate exchange: shifted neighbor state.

        The returned arrays are reused exchange buffers — valid only
        until the next offset is processed.
        """
        opos = shift2d_into(self._xbuf_pos, self.pos, dx, dy, fill=_FAR)
        oocc = shift2d_into(self._xbuf_occ, self.occ, dx, dy, fill=False)
        return opos, oocc

    def _neighbor_filter(self, opos: np.ndarray, oocc: np.ndarray):
        """The within-cutoff mask and pair distances for one offset."""
        d = np.subtract(opos, self.pos, out=self._xbuf_d)
        both = self.occ & oocc
        np.copyto(d, 0.0, where=~both[:, :, None])
        d = self._minimum_image(d)
        r2 = np.einsum("xyk,xyk->xy", d, d, out=self._xbuf_r2)
        rc2 = self.potential.cutoff**2
        within = both & (r2 < rc2) & (r2 > 0.0)
        return d, r2, within

    def _pair_quantities(self, dx: int, dy: int):
        """Shifted neighbor state and pair distances for one offset."""
        opos, oocc = self._exchange_shift(dx, dy)
        d, r2, within = self._neighbor_filter(opos, oocc)
        return opos, oocc, d, r2, within

    def _collect_pairs(self):
        """One candidate-exchange sweep, cached for both compute passes.

        The density and force passes consume the same received
        candidates (positions do not move between them), so the
        exchange is swept once per step: per offset, the within-cutoff
        tile mask, pair distances, and unit displacement vectors.

        Tracing: the sweep is one ``exchange`` span; the per-offset
        distance filter is accumulated and recorded as a ``neighbor``
        child, so loop glue lands in exchange self-time and the two
        phases together cover the whole sweep.
        """
        tr = self.tracer
        tracing = tr.enabled
        records = []
        with tr.phase("exchange") as ex:
            t_nb = 0.0
            n_offsets = 0
            for dx, dy, fabric in self._pass_offsets():
                n_offsets += 1
                opos, oocc = self._exchange_shift(dx, dy)
                if tracing:
                    t0 = time.perf_counter()
                d, r2, within = self._neighbor_filter(opos, oocc)
                if np.any(within):
                    r = np.sqrt(r2[within])
                    unit = d[within] / r[:, None]
                else:
                    r = np.empty(0)
                    unit = np.empty((0, 3))
                if tracing:
                    t_nb += time.perf_counter() - t0
                records.append((dx, dy, fabric, within, r, unit))
            if tracing:
                tr.record("neighbor", t_nb, {"offsets": n_offsets})
                ex.add(offsets=n_offsets)
        return records

    # -- the five-step timestep ------------------------------------------------

    def _pass_offsets(self):
        """Neighborhood offsets a worker processes locally.

        With force symmetry only the "i < j" half-neighborhood is
        processed (the multicast is cropped, Sec. VI-A); each pair's
        result for the partner atom travels back via the reverse
        reduction, which the lockstep machine realizes as a scatter
        through the opposite offset.
        """
        for dx, dy, fabric in self._offsets:
            if self.force_symmetry and not (dy > 0 or (dy == 0 and dx > 0)):
                continue
            yield dx, dy, fabric

    def _rho_values(self, r: np.ndarray, src_types: np.ndarray) -> np.ndarray:
        tables = self.potential.tables
        if tables.n_types == 1:
            return tables.rho[0](r)
        vals = np.zeros(len(r))
        for t in range(tables.n_types):
            m = src_types == t
            if np.any(m):
                vals[m] = tables.rho[t](r[m])
        return vals

    def _density_pass(self, records=None):
        """Steps 1-3a: candidate exchange, neighbor mask, density sums."""
        nx, ny = self.grid.nx, self.grid.ny
        rho_bar = np.zeros((nx, ny))
        n_cand = np.zeros((nx, ny), dtype=np.int64)
        n_int = np.zeros((nx, ny), dtype=np.int64)
        tables = self.potential.tables
        records = records if records is not None else self._collect_pairs()
        for dx, dy, fabric, within, r, _unit in records:
            n_cand += fabric & self.occ
            n_int += within
            if len(r) == 0:
                continue
            if tables.n_types == 1:
                src_t = ctr_t = np.zeros(len(r), dtype=np.int64)
            else:
                otyp = shift2d_into(self._xbuf_typ, self.typ, dx, dy, fill=0)
                src_t = otyp[within]
                ctr_t = self.typ[within]
            rho_bar[within] += self._rho_values(r, src_t)
            if self.force_symmetry:
                # reverse reduction: the partner's density share
                contrib = self._xbuf_scal
                contrib[...] = 0.0
                contrib[within] = self._rho_values(r, ctr_t)
                rho_bar += shift2d_into(
                    self._xbuf_scal_shift, contrib, -dx, -dy, fill=0.0
                )
        self.last_candidates = n_cand
        self.last_interactions = n_int
        return rho_bar, n_cand, n_int

    def _embed(self, rho_bar: np.ndarray):
        """Step 3b: embedding energy and derivative per tile."""
        tables = self.potential.tables
        nx, ny = self.grid.nx, self.grid.ny
        f_val = np.zeros((nx, ny))
        f_der = np.zeros((nx, ny))
        if tables.n_types == 1:
            v, dv = tables.embed[0].evaluate(rho_bar[self.occ])
            f_val[self.occ] = v
            f_der[self.occ] = dv
        else:
            for t in range(tables.n_types):
                m = self.occ & (self.typ == t)
                if np.any(m):
                    v, dv = tables.embed[t].evaluate(rho_bar[m])
                    f_val[m] = v
                    f_der[m] = dv
        return f_val, f_der

    def _force_pass(self, f_der: np.ndarray, records=None):
        """Steps 3c-4a: F' exchange and Eq. 4 force accumulation."""
        nx, ny = self.grid.nx, self.grid.ny
        force = np.zeros((nx, ny, 3))
        e_pair = np.zeros((nx, ny))
        tables = self.potential.tables
        records = records if records is not None else self._collect_pairs()
        for dx, dy, _fabric, within, r, unit in records:
            if len(r) == 0:
                continue
            ofder = shift2d_into(self._xbuf_fder, f_der, dx, dy, fill=0.0)
            if tables.n_types == 1:
                rho_d = tables.rho[0].evaluate(r)[1]
                rho_d_src = rho_d
                rho_d_ctr = rho_d
                phi_v, phi_d = tables.phi_for(0, 0).evaluate(r)
            else:
                otyp = shift2d_into(self._xbuf_typ, self.typ, dx, dy, fill=0)
                t_src = otyp[within]
                t_ctr = self.typ[within]
                rho_d_src = np.zeros(len(r))
                rho_d_ctr = np.zeros(len(r))
                phi_v = np.zeros(len(r))
                phi_d = np.zeros(len(r))
                for t in range(tables.n_types):
                    m = t_src == t
                    if np.any(m):
                        rho_d_src[m] = tables.rho[t].evaluate(r[m])[1]
                    m = t_ctr == t
                    if np.any(m):
                        rho_d_ctr[m] = tables.rho[t].evaluate(r[m])[1]
                for t1 in range(tables.n_types):
                    for t2 in range(tables.n_types):
                        m = (t_ctr == t1) & (t_src == t2)
                        if np.any(m):
                            v, dv = tables.phi_for(t1, t2).evaluate(r[m])
                            phi_v[m] = v
                            phi_d[m] = dv
            s = f_der[within] * rho_d_src + ofder[within] * rho_d_ctr + phi_d
            if self.force_symmetry:
                # compute once, return the partner's (negated) share via
                # the reverse reduction
                fvec = self._xbuf_vec
                fvec[...] = 0.0
                fvec[within] = s[:, None] * unit
                force += fvec
                force -= shift2d_into(
                    self._xbuf_vec_shift, fvec, -dx, -dy, fill=0.0
                )
                e_half = self._xbuf_scal
                e_half[...] = 0.0
                e_half[within] = 0.5 * phi_v
                e_pair += e_half + shift2d_into(
                    self._xbuf_scal_shift, e_half, -dx, -dy, fill=0.0
                )
            else:
                force[within] += s[:, None] * unit
                e_pair[within] += 0.5 * phi_v
        return force, e_pair

    def _integrate(self, force: np.ndarray) -> None:
        """Step 4b: leap-frog update, restricted to the occupied tiles.

        Empty tiles must never integrate: their sentinel positions and
        zero velocities are load-bearing for the exchange masks, and a
        stray force value on a vacated tile would silently corrupt the
        next atom swapped onto it.
        """
        occ = self.occ
        mass = self.masses[self.typ[occ]]
        accel = force[occ] / (mass[:, None] * MVV2E)
        self.vel[occ] += (accel * self.dt).astype(self.dtype)
        self.pos[occ] += (self.vel[occ] * self.dt).astype(self.dtype)

    def _record_cycles(self, n_cand: np.ndarray, n_int: np.ndarray) -> None:
        cycles = self.cost_model.step_cycles(
            n_cand.astype(np.float64),
            n_int.astype(np.float64),
            self.b,
            pbc=self.pbc_inplane,
        )
        # empty tiles still pay the exchange and fixed control costs
        empty_cost = self.cost_model.exchange_cycles(
            self.b, pbc=self.pbc_inplane
        ) + self.cost_model.fixed_cycles()
        cycles = np.where(self.occ, cycles, empty_cost)
        if self.jitter_rel > 0.0:
            noise = self._rng.standard_normal(cycles.shape)
            cycles = cycles * (1.0 + self.jitter_rel * noise)
        # empty tiles did no candidate/interaction work this step
        cand = np.where(self.occ, n_cand, 0)
        cnt_int = np.where(self.occ, n_int, 0)
        self.trace.record(cycles.ravel(), cand.ravel(), cnt_int.ravel())
        reg = metrics()
        reg.histogram("wse.cycles_per_tile").observe_many(cycles.ravel())
        reg.counter("wse.multicast.cycles").inc(
            float(self.grid.n_tiles)
            * self.cost_model.exchange_cycles(self.b, pbc=self.pbc_inplane)
        )

    def _swap_round(self) -> int:
        proj3 = self.pos.copy()
        proj = self._project_grid(proj3)
        grids = {
            "pos": self.pos,
            "vel": self.vel,
            "aid": self.aid,
            "typ": self.typ,
            "occ": self.occ,
        }
        n = self.swap_engine.apply(
            grids, proj, self.occ, self.core_centers, self.mapping.pitch
        )
        # Re-assert the empty-tile invariants after the remap: a tile an
        # atom just left must look exactly like it never held one (far
        # sentinel position, zero velocity, id -1), or the exchange
        # masks and a later swap onto it would see stale state.
        vac = ~self.occ
        self.pos[vac] = _FAR
        self.vel[vac] = 0.0
        self.aid[vac] = -1
        self.typ[vac] = 0
        self.swap_count += n
        metrics().counter("swap.moves").inc(float(n))
        return n

    def _project_grid(self, pos3: np.ndarray) -> np.ndarray:
        """Fabric-plane projection of every tile's atom (empty -> far)."""
        nx, ny = self.grid.nx, self.grid.ny
        flat = pos3.reshape(-1, 3)
        proj = self.mapping.projection.project(flat).reshape(nx, ny, 2)
        proj[~self.occ] = _FAR
        return proj

    # -- public API --------------------------------------------------------------

    def step(self, n_steps: int = 1) -> None:
        """Advance ``n_steps`` timesteps (with swaps at the set interval)."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        tr = self.tracer
        for _ in range(n_steps):
            # the "step" envelope's self-time is the loop glue between
            # phases (LAMMPS's "Other" row), so traced time tiles the
            # engine wall time
            with tr.phase("step"):
                records = self._collect_pairs()
                with tr.phase("density") as ph:
                    rho_bar, n_cand, n_int = self._density_pass(records)
                    ph.add(
                        candidates=int(n_cand.sum()),
                        interactions=int(n_int.sum()),
                    )
                with tr.phase("embedding"):
                    _, f_der = self._embed(rho_bar)
                with tr.phase("pair_force"):
                    force, _ = self._force_pass(f_der, records)
                with tr.phase("integrate"):
                    self._integrate(force)
                with tr.phase("cycle_account"):
                    self._record_cycles(n_cand, n_int)
                self.step_count += 1
                if (
                    self.swap_interval
                    and self.step_count % self.swap_interval == 0
                ):
                    with tr.phase("swap") as ph:
                        moved = self._swap_round()
                        ph.add(moves=moved)

    def compute_energy(self) -> float:
        """Total potential energy at the current positions (eV)."""
        records = self._collect_pairs()
        rho_bar, _, _ = self._density_pass(records)
        f_val, f_der = self._embed(rho_bar)
        _, e_pair = self._force_pass(f_der, records)
        return float(f_val[self.occ].sum() + e_pair[self.occ].sum())

    def compute_forces(self) -> np.ndarray:
        """Forces on the occupied tiles' atoms, id order, (N, 3)."""
        records = self._collect_pairs()
        rho_bar, _, _ = self._density_pass(records)
        _, f_der = self._embed(rho_bar)
        force, _ = self._force_pass(f_der, records)
        order = np.argsort(self.aid[self.occ])
        return force[self.occ][order]

    def verify_coverage(self) -> int:
        """Check every interacting pair lies within the b-neighborhood.

        Returns the number of *uncovered* pairs (0 means the current
        ``b`` is safe).  The wafer algorithm's correctness rests on
        this invariant (Sec. III-A: "every (2b+1)-wide square
        neighborhood contains all interactions"); it can be violated if
        atoms drift or the mapping is perturbed beyond the margin ``b``
        was chosen for, in which case forces are silently wrong.
        """
        state = self.gather_state()
        from repro.md.neighbor_list import NeighborList

        pairs = NeighborList(self.box, self.potential.cutoff, skin=0.0).pairs(
            state.positions
        )
        occ = self.occ
        order = np.argsort(self.aid[occ])
        fx, fy = np.nonzero(occ)
        cx = fx[order]
        cy = fy[order]
        dist = np.maximum(
            np.abs(cx[pairs.i] - cx[pairs.j]),
            np.abs(cy[pairs.i] - cy[pairs.j]),
        )
        return int(np.count_nonzero(dist > self.b))

    def assignment_cost(self) -> float:
        """Current C(g) in fabric-plane angstroms (Fig. 9's metric)."""
        proj = self._project_grid(self.pos)
        delta = np.abs(proj - self.core_centers).max(axis=2)
        return float(delta[self.occ].max())

    def gather_state(self) -> AtomsState:
        """Read atoms back into an :class:`AtomsState`, ordered by id."""
        occ = self.occ
        order = np.argsort(self.aid[occ])
        return AtomsState(
            positions=self.pos[occ][order].astype(np.float64),
            velocities=self.vel[occ][order].astype(np.float64),
            types=self.typ[occ][order],
            masses=self.masses.copy(),
            box=self.box,
            ids=self.aid[occ][order],
        )

    def mean_counts(self) -> tuple[float, float]:
        """Mean (candidates, interactions) per occupied tile, last step."""
        occ = self.occ
        return (
            float(self.last_candidates[occ].mean()),
            float(self.last_interactions[occ].mean()),
        )

    def measured_rate(self) -> float:
        """Timesteps/second implied by the recorded cycle trace."""
        if self.trace.n_steps == 0:
            raise RuntimeError("no steps recorded yet")
        total = self.trace.total_cycles()
        seconds = self.cost_model.machine.cycles_to_seconds(total)
        return self.trace.n_steps / seconds
