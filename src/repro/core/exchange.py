"""Functional neighborhood exchange for the lockstep machine.

The lockstep simulator executes every tile's worker simultaneously on
per-tile grid arrays of shape ``(nx, ny, ...)``.  The candidate exchange
then becomes, for each neighborhood offset ``(dx, dy)``, an aligned
array shift: ``shifted[x, y] = grid[x + dx, y + dy]`` (out-of-fabric
reads yield the fill value — the "atom at infinity" the paper uses for
empty tiles).  Iterating offsets in the deterministic exchange order and
accumulating streamingly keeps memory at O(grid) instead of
O(grid x candidates), mirroring how real tiles process candidates as
they arrive rather than materializing them.

The equivalence of this functional exchange with the wavelet-level
marching multicast is established by tests: the event simulator's
per-tile delivered source sets equal these shifts' source sets.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.wse.geometry import TileGrid

__all__ = [
    "shift2d",
    "shift2d_into",
    "iter_neighborhood",
    "neighborhood_sources",
]


def shift2d_into(
    out: np.ndarray, grid: np.ndarray, dx: int, dy: int, fill=0
) -> np.ndarray:
    """Aligned shift written into a caller-owned buffer.

    ``out[x, y] = grid[x + dx, y + dy]`` where the source exists,
    ``fill`` elsewhere.  Semantics identical to :func:`shift2d`; lets
    hot loops (one shift per neighborhood offset per step) reuse a
    preallocated exchange buffer instead of allocating every call.
    """
    nx, ny = grid.shape[:2]
    out[...] = fill
    xs0, xs1 = max(dx, 0), nx + min(dx, 0)
    ys0, ys1 = max(dy, 0), ny + min(dy, 0)
    if xs0 >= xs1 or ys0 >= ys1:
        return out
    xd0, xd1 = max(-dx, 0), nx + min(-dx, 0)
    yd0, yd1 = max(-dy, 0), ny + min(-dy, 0)
    out[xd0:xd1, yd0:yd1] = grid[xs0:xs1, ys0:ys1]
    return out


def shift2d(grid: np.ndarray, dx: int, dy: int, fill=0) -> np.ndarray:
    """Aligned shift: ``out[x, y] = grid[x + dx, y + dy]`` or ``fill``.

    Works for (nx, ny) and (nx, ny, k) arrays; the shift applies to the
    leading two axes.  Non-periodic fabric: out-of-range reads fill.
    """
    return shift2d_into(np.empty_like(grid), grid, dx, dy, fill=fill)


def iter_neighborhood(
    grid: TileGrid, b: int
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield (dx, dy, in_fabric_mask) for each neighborhood offset.

    Offsets follow the deterministic arrival order of the exchange
    (:meth:`repro.wse.geometry.TileGrid.neighborhood_offsets`); the mask
    marks tiles whose neighbor at that offset exists on the fabric (the
    candidate is *received* there — edge tiles see fewer candidates).
    """
    xs = np.arange(grid.nx)[:, None]
    ys = np.arange(grid.ny)[None, :]
    for dx, dy in grid.neighborhood_offsets(b):
        mask = (
            (xs + dx >= 0)
            & (xs + dx < grid.nx)
            & (ys + dy >= 0)
            & (ys + dy < grid.ny)
        )
        yield int(dx), int(dy), np.broadcast_to(mask, (grid.nx, grid.ny))


def neighborhood_sources(grid: TileGrid, b: int, tile_x: int, tile_y: int) -> set[int]:
    """Flat indices of the tiles whose data reaches (tile_x, tile_y).

    Reference implementation used to cross-check the event-level fabric
    simulation and the shift-based exchange against each other.
    """
    out: set[int] = set()
    for dx, dy in grid.neighborhood_offsets(b):
        x, y = tile_x + dx, tile_y + dy
        if 0 <= x < grid.nx and 0 <= y < grid.ny:
            out.add(int(grid.flatten(x, y)))
    return out
