"""Streaming, offset-fused sweeps for the lockstep machine.

The record-based lockstep passes kept one full-grid record — shifted
positions, masks, distances, unit vectors — per neighborhood offset,
an O(offsets x nx x ny) working set that made paper-scale grids
(801,792 atoms, ~80 offsets) infeasible.  This module replaces them
with two streaming sweeps over *chunks* of offsets stacked on a batch
axis:

1. each offset of a chunk is shifted into a reused stack slice (the
   candidate exchange),
2. the whole chunk is distance-filtered at once (the neighbor mask),
3. the surviving candidates are spline-evaluated in one batched call
   per table family (:class:`~repro.potentials.spline.SplineGroup`),
4. each offset's contributions are scattered into the running
   accumulators *in exchange order*, and the chunk buffers are reused
   for the next chunk.

Nothing proportional to the full neighborhood survives a sweep: peak
memory is O(chunk x nx x ny), with ``chunk`` configurable (the
``offset_chunk`` RunSpec knob).  The arithmetic per candidate and the
per-tile accumulation order are exactly those of the record-based
passes, so trajectories are bitwise identical — the equivalence the
``tests/core`` streaming suite asserts.

The sweeps are self-contained (no reference to the parent machine), so
the same code runs in-process for the serial path and inside forked
workers for the offset-parallel path (:mod:`repro.parallel.offsets`),
each worker owning a contiguous slice of the offset list.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.exchange import shift2d_into

__all__ = ["StreamingSweeps", "auto_chunk", "FAR"]

#: Fabric-plane sentinel coordinate of an empty tile's "atom at
#: infinity" (shared with :mod:`repro.core.wse_md`).
FAR = 1.0e15

#: Element budget for the auto-sized chunk: chunk * nx * ny stays at or
#: under this many stacked tiles (~96 MB of float64 displacement stack),
#: capped so small grids do not build absurdly deep stacks.
_AUTO_CHUNK_ELEMENTS = 4_000_000
_AUTO_CHUNK_MAX = 16


def auto_chunk(nx: int, ny: int) -> int:
    """Default offset-chunk size for an ``nx x ny`` grid.

    Sized so the stacked exchange buffers stay around 100 MB however
    large the grid is, while small grids still batch enough offsets to
    amortize per-chunk dispatch.
    """
    return max(1, min(_AUTO_CHUNK_MAX, _AUTO_CHUNK_ELEMENTS // (nx * ny)))


class StreamingSweeps:
    """Chunked density and force sweeps over a fixed offset list.

    Parameters
    ----------
    nx, ny:
        Core-grid shape.
    dtype:
        Per-tile position dtype (the machine's storage dtype).
    lengths, periodic:
        Box edge lengths and periodic flags (minimum-image wrap).
    cutoff:
        Interaction cutoff (A).
    tables:
        :class:`~repro.potentials.eam.EAMTables`; batched evaluation
        uses its cached :meth:`~repro.potentials.eam.EAMTables.grouped`
        banks.
    offsets:
        The ``(dx, dy)`` neighborhood offsets this sweeper owns, in
        exchange order (already cropped to the half neighborhood when
        force symmetry is on).
    chunk:
        Offsets stacked per batch (0 = :func:`auto_chunk`).
    force_symmetry:
        Paper Sec. VI-A half-neighborhood mode: every pair term is
        computed once and the partner's share is scattered through the
        reverse offset.
    """

    def __init__(
        self,
        *,
        nx: int,
        ny: int,
        dtype,
        lengths,
        periodic,
        cutoff: float,
        tables,
        offsets: list[tuple[int, int]],
        chunk: int = 0,
        force_symmetry: bool = False,
    ) -> None:
        if chunk < 0:
            raise ValueError(f"offset chunk must be >= 0, got {chunk}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.dtype = np.dtype(dtype)
        self.lengths = tuple(float(v) for v in lengths)
        self.periodic = tuple(bool(v) for v in periodic)
        self.cutoff = float(cutoff)
        self.tables = tables
        self.offsets = [(int(dx), int(dy)) for dx, dy in offsets]
        self.force_symmetry = bool(force_symmetry)
        self.chunk = int(chunk) if chunk else auto_chunk(self.nx, self.ny)
        depth = max(1, min(self.chunk, len(self.offsets)))
        self._depth = depth
        # Chunk-stacked exchange buffers, reused by every chunk of both
        # sweeps — the only allocations proportional to the grid.
        self._d = np.empty((depth, self.nx, self.ny, 3), dtype=self.dtype)
        self._oocc = np.empty((depth, self.nx, self.ny), dtype=bool)
        self._r2 = np.empty((depth, self.nx, self.ny), dtype=self.dtype)
        self._both = np.empty((depth, self.nx, self.ny), dtype=bool)
        if self.force_symmetry:
            # reverse-reduction scatter buffers (one offset at a time)
            self._vec = np.empty((self.nx, self.ny, 3), dtype=np.float64)
            self._vec_shift = np.empty_like(self._vec)
            self._scal = np.empty((self.nx, self.ny), dtype=np.float64)
            self._scal_shift = np.empty_like(self._scal)
        # per-chunk offset arrays for gather indexing
        self._chunks: list[tuple[list[tuple[int, int]], np.ndarray, np.ndarray]] = []
        for start in range(0, len(self.offsets), depth):
            part = self.offsets[start:start + depth]
            dxa = np.array([o[0] for o in part], dtype=np.int64)
            dya = np.array([o[1] for o in part], dtype=np.int64)
            self._chunks.append((part, dxa, dya))

    def buffer_bytes(self) -> int:
        """Bytes held by the reusable chunk-stacked buffers."""
        total = self._d.nbytes + self._oocc.nbytes
        total += self._r2.nbytes + self._both.nbytes
        if self.force_symmetry:
            total += self._vec.nbytes + self._vec_shift.nbytes
            total += self._scal.nbytes + self._scal_shift.nbytes
        return total

    # -- the shared exchange + filter front end ---------------------------

    def _filter_chunk(self, part, pos, occ):
        """Shift + distance-filter one chunk of offsets.

        Returns the candidate points in (offset-major) exchange order:
        stack/tile indices, distances, and the exchange / neighbor
        split of the elapsed time.  The displacement stack ``self._d``
        holds the filtered displacements for :meth:`force` to turn into
        unit vectors.
        """
        c = len(part)
        d = self._d[:c]
        oocc = self._oocc[:c]
        t0 = time.perf_counter()
        for i, (dx, dy) in enumerate(part):
            shift2d_into(d[i], pos, dx, dy, fill=FAR)
            shift2d_into(oocc[i], occ, dx, dy, fill=False)
        t1 = time.perf_counter()
        np.subtract(d, pos[None], out=d)
        both = np.logical_and(occ[None], oocc, out=self._both[:c])
        np.copyto(d, 0.0, where=~both[..., None])
        for dim in range(3):
            if self.periodic[dim]:
                ld = self.lengths[dim]
                d[..., dim] -= ld * np.floor(d[..., dim] / ld + 0.5)
        r2 = np.einsum("cxyk,cxyk->cxy", d, d, out=self._r2[:c])
        rc2 = self.cutoff**2
        within = both & (r2 < rc2) & (r2 > 0.0)
        cc, xx, yy = np.nonzero(within)
        r = np.sqrt(r2[within])
        starts = np.searchsorted(cc, np.arange(c + 1))
        t2 = time.perf_counter()
        return within, cc, xx, yy, r, starts, t1 - t0, t2 - t1

    @staticmethod
    def _cand_rect(n_cand, occ, dx, dy) -> None:
        """Count one offset's received candidates (occupied tiles whose
        neighbor at (dx, dy) exists on the fabric) — the in-fabric mask
        of the record-based pass is a rectangle, so this is a slice add.
        """
        nx, ny = occ.shape
        x0, x1 = max(-dx, 0), nx + min(-dx, 0)
        y0, y1 = max(-dy, 0), ny + min(-dy, 0)
        if x0 < x1 and y0 < y1:
            n_cand[x0:x1, y0:y1] += occ[x0:x1, y0:y1]

    # -- sweep 1: density -------------------------------------------------

    def density(self, pos, occ, typ, rho_bar, n_cand, n_int):
        """Candidate exchange + neighbor filter + density accumulation.

        Accumulates into the caller's ``rho_bar`` (float64),
        ``n_cand``/``n_int`` (int64) grids and returns
        ``(t_exchange, t_neighbor, n_points)``.
        """
        grouped = self.tables.grouped()
        nt = self.tables.n_types
        t_ex = t_nb = 0.0
        n_pts = 0
        for part, dxa, dya in self._chunks:
            within, cc, xx, yy, r, starts, dt_ex, dt_nb = self._filter_chunk(
                part, pos, occ
            )
            t_ex += dt_ex
            t_nb += dt_nb
            for dx, dy in part:
                self._cand_rect(n_cand, occ, dx, dy)
            n_int += within.sum(axis=0)
            if len(r) == 0:
                continue
            n_pts += len(r)
            if nt == 1:
                vals = grouped.rho.evaluate(r, 0)[0]
            else:
                src_t = typ[xx + dxa[cc], yy + dya[cc]]
                vals = grouped.rho.evaluate(r, src_t)[0]
            if self.force_symmetry:
                ctr_t = 0 if nt == 1 else typ[xx, yy]
                vals_ctr = grouped.rho.evaluate(r, ctr_t)[0]
            for i, (dx, dy) in enumerate(part):
                s0, s1 = starts[i], starts[i + 1]
                if s0 == s1:
                    continue
                rho_bar[xx[s0:s1], yy[s0:s1]] += vals[s0:s1]
                if self.force_symmetry:
                    # reverse reduction: the partner's density share
                    contrib = self._scal
                    contrib[...] = 0.0
                    contrib[xx[s0:s1], yy[s0:s1]] = vals_ctr[s0:s1]
                    rho_bar += shift2d_into(
                        self._scal_shift, contrib, -dx, -dy, fill=0.0
                    )
        return t_ex, t_nb, n_pts

    # -- sweep 2: forces --------------------------------------------------

    def force(self, pos, occ, typ, f_der, force, e_pair):
        """F' exchange + Eq. 4 force/pair-energy accumulation.

        Re-runs the chunk filter (positions have not moved since the
        density sweep, so the masks and distances come out bitwise
        identical) and accumulates into the caller's ``force`` /
        ``e_pair`` float64 grids.  Returns
        ``(t_exchange, t_neighbor, n_points)``.
        """
        grouped = self.tables.grouped()
        nt = self.tables.n_types
        t_ex = t_nb = 0.0
        n_pts = 0
        for part, dxa, dya in self._chunks:
            within, cc, xx, yy, r, starts, dt_ex, dt_nb = self._filter_chunk(
                part, pos, occ
            )
            t_ex += dt_ex
            if len(r) == 0:
                t_nb += dt_nb
                continue
            n_pts += len(r)
            t0 = time.perf_counter()
            unit = self._d[:len(part)][within] / r[:, None]
            t_nb += dt_nb + (time.perf_counter() - t0)
            fder_ctr = f_der[xx, yy]
            fder_src = f_der[xx + dxa[cc], yy + dya[cc]]
            if nt == 1:
                rho_d = grouped.rho.evaluate(r, 0)[1]
                rho_d_src = rho_d_ctr = rho_d
                phi_v, phi_d = grouped.phi.evaluate(r, 0)
            else:
                src_t = typ[xx + dxa[cc], yy + dya[cc]]
                ctr_t = typ[xx, yy]
                rho_d_src = grouped.rho.evaluate(r, src_t)[1]
                rho_d_ctr = grouped.rho.evaluate(r, ctr_t)[1]
                phi_v, phi_d = grouped.phi.evaluate(
                    r, grouped.phi_index[ctr_t, src_t]
                )
            s = fder_ctr * rho_d_src + fder_src * rho_d_ctr + phi_d
            fvec_pts = s[:, None] * unit
            for i, (dx, dy) in enumerate(part):
                s0, s1 = starts[i], starts[i + 1]
                if s0 == s1:
                    continue
                px = xx[s0:s1]
                py = yy[s0:s1]
                if self.force_symmetry:
                    # compute once, return the partner's (negated)
                    # share via the reverse reduction
                    fvec = self._vec
                    fvec[...] = 0.0
                    fvec[px, py] = fvec_pts[s0:s1]
                    force += fvec
                    force -= shift2d_into(
                        self._vec_shift, fvec, -dx, -dy, fill=0.0
                    )
                    e_half = self._scal
                    e_half[...] = 0.0
                    e_half[px, py] = 0.5 * phi_v[s0:s1]
                    e_pair += e_half + shift2d_into(
                        self._scal_shift, e_half, -dx, -dy, fill=0.0
                    )
                else:
                    force[px, py] += fvec_pts[s0:s1]
                    e_pair[px, py] += 0.5 * phi_v[s0:s1]
        return t_ex, t_nb, n_pts
