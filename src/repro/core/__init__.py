"""The paper's contribution: EAM MD mapped one-atom-per-core onto a WSE.

Composition (paper Sec. III):

* :mod:`repro.core.mapping` — locality-preserving atom-to-core mapping
  ``g`` with assignment cost ``C(g)`` (Sec. III-A).
* :mod:`repro.core.folding` — periodic-dimension folding so periodic
  neighbors stay two fabric hops apart (Sec. III-E, Fig. 5).
* :mod:`repro.core.neighborhood` — choosing the neighborhood half-width
  ``b`` from ``2 C(g) + r_cut``.
* :mod:`repro.core.exchange` — the functional neighborhood exchange the
  lockstep machine uses (validated against the event-level fabric sim).
* :mod:`repro.core.worker` — the scalar per-tile worker program
  (the five-step timestep of Sec. III-A).
* :mod:`repro.core.swap` — the greedy mutual atom-swap remapping
  (Sec. III-D).
* :mod:`repro.core.cycle_model` — per-tile cycle accounting with the
  paper's optimization levels (Tables II & V, Fig. 10).
* :mod:`repro.core.wse_md` — :class:`WseMd`, the lockstep full-machine
  simulator: every tile's worker executed simultaneously via NumPy,
  cycle-accounted per tile.
"""

from repro.core.mapping import Mapping, build_mapping, grid_for_atoms
from repro.core.folding import fold_coordinate, FabricProjection
from repro.core.neighborhood import choose_b
from repro.core.swap import SwapEngine
from repro.core.cycle_model import (
    CycleCostModel,
    OptimizationConfig,
    BASELINE,
    TABLE5_LEVELS,
    FIG10_STAGES,
)
from repro.core.optimize import optimize_mapping, OptimizeResult
from repro.core.wse_md import WseMd
from repro.core.worker import Worker

__all__ = [
    "Mapping",
    "build_mapping",
    "grid_for_atoms",
    "fold_coordinate",
    "FabricProjection",
    "choose_b",
    "SwapEngine",
    "CycleCostModel",
    "OptimizationConfig",
    "BASELINE",
    "TABLE5_LEVELS",
    "FIG10_STAGES",
    "optimize_mapping",
    "OptimizeResult",
    "WseMd",
    "Worker",
]
