"""Choosing the candidate-neighborhood half-width ``b`` (paper Sec. III-A).

Interacting atoms are at most ``r_cut`` apart; each is at most ``C(g)``
(max-norm, fabric plane) from its core's nominal coordinate; so their
worker cores are at most ``(2 C(g) + r_cut) / pitch`` tiles apart,
amplified by the folding projection's Lipschitz factor when in-plane
periodic boundaries are active.  ``b`` is the ceiling of that bound:
every (2b+1)-wide square neighborhood then contains all interactions for
the atom at its center.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mapping import Mapping
from repro.md.boundary import Box
from repro.md.neighbor_list import NeighborList

__all__ = ["choose_b", "required_b", "candidate_count"]


def required_b(
    mapping: Mapping,
    positions: np.ndarray,
    box: Box,
    cutoff: float,
    *,
    margin: float = 0.0,
) -> int:
    """Empirical minimum neighborhood half-width for this configuration.

    This is the paper's runtime procedure: find the largest max-norm
    fabric distance between the worker cores of any *actually
    interacting* pair, and size the neighborhood to contain it.
    ``margin`` adds slack in physical angstroms (converted at the
    mapping's pitch) for atom motion between remappings.
    """
    positions = np.asarray(positions, dtype=np.float64)
    pairs = NeighborList(box, cutoff, skin=0.0).pairs(positions)
    cx, cy = mapping.core_xy()
    if pairs.n_pairs == 0:
        base = 1
    else:
        dist = np.maximum(
            np.abs(cx[pairs.i] - cx[pairs.j]),
            np.abs(cy[pairs.i] - cy[pairs.j]),
        )
        base = max(1, int(dist.max()))
    slack = math.ceil(
        mapping.projection.separation_bound(margin) / float(min(mapping.pitch))
    ) if margin > 0 else 0
    return base + slack


def choose_b(
    mapping: Mapping,
    positions,
    cutoff: float,
    *,
    cost: float | None = None,
    margin: float = 0.0,
) -> int:
    """Smallest safe neighborhood half-width for the current mapping.

    Parameters
    ----------
    mapping, positions:
        The assignment whose cost bounds worker separation.
    cutoff:
        Interaction cutoff radius (A).
    cost:
        Override for the assignment cost ``C(g)`` (e.g. a budget the
        swap remapping is expected to maintain, Fig. 9); computed from
        the positions when omitted.
    margin:
        Extra physical distance (A) of slack, e.g. anticipated atom
        motion between remappings.
    """
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    c = mapping.assignment_cost(positions) if cost is None else float(cost)
    if c < 0:
        raise ValueError(f"assignment cost must be non-negative, got {c}")
    reach = mapping.projection.separation_bound(cutoff + margin) + 2.0 * c
    pitch = float(min(mapping.pitch))
    b = max(1, math.ceil(reach / pitch))
    if 2 * b + 1 > max(mapping.grid.nx, mapping.grid.ny):
        raise ValueError(
            f"required neighborhood b={b} exceeds the {mapping.grid.nx}"
            f"x{mapping.grid.ny} grid; mapping cost {c:.2f} A is too high"
        )
    return b


def candidate_count(b: int) -> int:
    """Candidates received per atom: the (2b+1)^2 square minus itself."""
    if b < 0:
        raise ValueError(f"b must be non-negative, got {b}")
    side = 2 * b + 1
    return side * side - 1
