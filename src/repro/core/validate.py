"""Trajectory equivalence between the WSE machine and the reference engine.

The central correctness claim: the wafer mapping changes *where* each
atom's arithmetic happens, not *what* is computed.  These helpers run
the same initial state through both engines and compare atom-by-atom
(ids make the comparison permutation-proof: the WSE machine may shuffle
storage via atom swaps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.wse_md import WseMd
from repro.md.simulation import Simulation
from repro.md.state import AtomsState

__all__ = ["TrajectoryComparison", "compare_trajectories", "validate_spec"]


@dataclass(frozen=True)
class TrajectoryComparison:
    """Max deviations between two trajectories after N steps."""

    n_steps: int
    max_position_error: float
    max_velocity_error: float
    energy_error: float

    def within(self, tol_pos: float, tol_vel: float | None = None) -> bool:
        """True if deviations are inside tolerance."""
        tol_vel = tol_pos if tol_vel is None else tol_vel
        return (
            self.max_position_error <= tol_pos
            and self.max_velocity_error <= tol_vel
        )


def compare_trajectories(
    state: AtomsState,
    wse: WseMd,
    reference: Simulation,
    n_steps: int,
) -> TrajectoryComparison:
    """Advance both engines ``n_steps`` and measure deviations.

    ``wse`` and ``reference`` must have been built from copies of
    ``state``; ``state`` itself is untouched.
    """
    wse.step(n_steps)
    reference.run(n_steps)
    a = wse.gather_state()
    b = reference.state
    order_b = np.argsort(b.ids)
    if not np.array_equal(a.ids, b.ids[order_b]):
        raise ValueError("engines hold different atom id sets")
    dp = np.abs(a.positions - b.positions[order_b]).max() if a.n_atoms else 0.0
    dv = np.abs(a.velocities - b.velocities[order_b]).max() if a.n_atoms else 0.0
    e_wse = wse.compute_energy()
    e_ref = reference.potential_energy()
    return TrajectoryComparison(
        n_steps=n_steps,
        max_position_error=float(dp),
        max_velocity_error=float(dv),
        energy_error=abs(e_wse - e_ref),
    )


def validate_spec(
    spec,
    *,
    n_steps: int | None = None,
    tol_pos: float = 1e-8,
    tol_energy: float = 1e-6,
) -> tuple[TrajectoryComparison, bool]:
    """Run one spec's workload through *both* engines and compare.

    The spec's ``engine`` field is ignored: the same initial state
    (drawn once from the spec's velocity stream) is advanced by the
    reference engine and the lockstep machine through the common
    Engine protocol, so thermostats and every other spec knob apply
    identically on both sides.

    Returns ``(comparison, passed)`` where ``passed`` requires the
    position/velocity deviations within ``tol_pos`` and the potential
    energy deviation within ``tol_energy``.
    """
    from repro.runtime import build_engine, build_state, seed_streams

    n = int(spec.steps if n_steps is None else n_steps)
    state, potential = build_state(
        spec, seed_streams(spec.seed)["velocities"]
    )
    engines = {
        name: build_engine(
            spec.with_engine(name), state=state.copy(), potential=potential
        )
        for name in ("reference", "wse")
    }
    for engine in engines.values():
        engine.step(n)
    a = engines["wse"].state
    b = engines["reference"].state
    order_b = np.argsort(b.ids)
    if not np.array_equal(a.ids, b.ids[order_b]):
        raise ValueError("engines hold different atom id sets")
    dp = np.abs(a.positions - b.positions[order_b]).max() if a.n_atoms else 0.0
    dv = np.abs(a.velocities - b.velocities[order_b]).max() if a.n_atoms else 0.0
    comparison = TrajectoryComparison(
        n_steps=n,
        max_position_error=float(dp),
        max_velocity_error=float(dv),
        energy_error=abs(
            engines["wse"].potential_energy()
            - engines["reference"].potential_energy()
        ),
    )
    passed = comparison.within(tol_pos) and comparison.energy_error <= tol_energy
    return comparison, passed
