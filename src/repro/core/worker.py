"""Scalar per-tile worker: the five-step program one core runs.

This is the readable, single-atom reference for what every tile of the
lockstep machine does in vectorized form — the analogue of the paper's
~200-line Tungsten program (Sec. IV-B).  It exists for validation: a
:class:`Worker` fed the candidate stream for one atom must reproduce the
reference engine's force and energy for that atom exactly, and tests do
exactly that.  It also provides the per-step work counters the cycle
model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MVV2E
from repro.potentials.eam import EAMTables

__all__ = ["Worker", "Candidate"]


@dataclass(frozen=True)
class Candidate:
    """One received candidate atom record (id + position, 16 bytes)."""

    atom_id: int
    position: np.ndarray
    type_index: int = 0


@dataclass
class Worker:
    """State and program of one worker core.

    Attributes
    ----------
    atom_id, position, velocity, type_index:
        The single atom this core integrates.
    tables:
        Local copies of the interpolation tables (Sec. III-A).
    mass:
        Atom mass (g/mol).
    """

    atom_id: int
    position: np.ndarray
    velocity: np.ndarray
    tables: EAMTables
    mass: float
    type_index: int = 0
    # step-local storage, mirroring tile SRAM buffers
    neighbor_list: list[int] = field(default_factory=list)
    gathered: np.ndarray | None = None
    gathered_types: np.ndarray | None = None
    rho_bar: float = 0.0
    f_der: float = 0.0
    n_candidates: int = 0

    def receive_candidates(self, candidates: list[Candidate]) -> None:
        """Step 2: distance-filter candidates, gather survivors.

        Candidates arrive in deterministic exchange order, so the
        neighbor list is simply the ordinal numbers of admitted ones;
        survivors are gathered into contiguous memory immediately
        (Sec. III-C).
        """
        self.n_candidates = len(candidates)
        rc2 = self.tables.cutoff**2
        self.neighbor_list = []
        rows = []
        types = []
        for ordinal, cand in enumerate(candidates):
            d = np.asarray(cand.position, dtype=np.float64) - self.position
            if float(d @ d) < rc2:
                self.neighbor_list.append(ordinal)
                rows.append(np.asarray(cand.position, dtype=np.float64))
                types.append(cand.type_index)
        self.gathered = (
            np.stack(rows) if rows else np.empty((0, 3))
        )
        self.gathered_types = np.asarray(types, dtype=np.int64)

    @property
    def n_interactions(self) -> int:
        """Accepted candidates (within cutoff)."""
        return len(self.neighbor_list)

    def compute_embedding(self) -> float:
        """Step 3: density sum and embedding derivative; returns F'."""
        if self.gathered is None:
            raise RuntimeError("compute_embedding before receive_candidates")
        if len(self.gathered):
            r = np.linalg.norm(self.gathered - self.position, axis=1)
            rho = 0.0
            for t in range(self.tables.n_types):
                m = self.gathered_types == t
                if np.any(m):
                    rho += float(np.sum(self.tables.rho[t](r[m])))
        else:
            rho = 0.0
        self.rho_bar = rho
        _, self.f_der = self.tables.embed[self.type_index].evaluate(rho)
        self.f_der = float(self.f_der)
        return self.f_der

    def embedding_energy(self) -> float:
        """F(rho_bar) for this atom."""
        val, _ = self.tables.embed[self.type_index].evaluate(self.rho_bar)
        return float(val)

    def compute_force(self, neighbor_f_der: np.ndarray) -> np.ndarray:
        """Step 4a: Eq. 4 force from gathered neighbors and their F'."""
        if self.gathered is None:
            raise RuntimeError("compute_force before receive_candidates")
        neighbor_f_der = np.asarray(neighbor_f_der, dtype=np.float64)
        if neighbor_f_der.shape != (self.n_interactions,):
            raise ValueError(
                f"need one F' per neighbor ({self.n_interactions}), got "
                f"{neighbor_f_der.shape}"
            )
        if not self.n_interactions:
            return np.zeros(3)
        d = self.gathered - self.position  # r_j - r_i
        r = np.linalg.norm(d, axis=1)
        rho_d_src = np.empty_like(r)
        rho_d_ctr = np.empty_like(r)
        phi_d = np.empty_like(r)
        for t in range(self.tables.n_types):
            m = self.gathered_types == t
            if np.any(m):
                rho_d_src[m] = self.tables.rho[t].evaluate(r[m])[1]
        rho_d_ctr[:] = self.tables.rho[self.type_index].evaluate(r)[1]
        for t in range(self.tables.n_types):
            m = self.gathered_types == t
            if np.any(m):
                phi_d[m] = self.tables.phi_for(self.type_index, t).evaluate(
                    r[m]
                )[1]
        s = self.f_der * rho_d_src + neighbor_f_der * rho_d_ctr + phi_d
        return (s[:, None] * d / r[:, None]).sum(axis=0)

    def pair_energy(self) -> float:
        """Half-sum of phi over neighbors (this atom's share)."""
        if not self.n_interactions:
            return 0.0
        r = np.linalg.norm(self.gathered - self.position, axis=1)
        e = 0.0
        for t in range(self.tables.n_types):
            m = self.gathered_types == t
            if np.any(m):
                e += float(
                    np.sum(self.tables.phi_for(self.type_index, t)(r[m]))
                )
        return 0.5 * e

    def integrate(self, force: np.ndarray, dt_fs: float) -> None:
        """Step 4b: leap-frog velocity and position update."""
        dt = dt_fs / 1000.0
        accel = np.asarray(force, dtype=np.float64) / (self.mass * MVV2E)
        self.velocity = self.velocity + accel * dt
        self.position = self.position + self.velocity * dt
