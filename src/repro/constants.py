"""Physical constants and the "metal" unit system used throughout.

The library works in LAMMPS-style *metal units*:

===========  ==========================
quantity     unit
===========  ==========================
length       angstrom (A)
time         picosecond (ps)
energy       electron-volt (eV)
mass         gram/mole (g/mol)
temperature  kelvin (K)
force        eV / angstrom
velocity     angstrom / picosecond
===========  ==========================

In this system Newton's second law needs a conversion factor because the
unit of ``mass * velocity^2`` is not the unit of energy:

    1 (g/mol) * (A/ps)^2 = MVV2E eV

so ``a [A/ps^2] = F [eV/A] / m [g/mol] / MVV2E``.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants (CODATA 2018)
# ---------------------------------------------------------------------------

#: Boltzmann constant in eV/K.
KB_EV = 8.617333262e-5

#: Avogadro's number, 1/mol.
AVOGADRO = 6.02214076e23

#: Elementary charge in coulomb (1 eV in joule).
EV_IN_JOULE = 1.602176634e-19

#: One atomic mass unit (g/mol) in kilograms.
AMU_IN_KG = 1.0e-3 / AVOGADRO

# ---------------------------------------------------------------------------
# Metal-unit conversion factors
# ---------------------------------------------------------------------------

#: Converts (g/mol)*(A/ps)^2 to eV.  LAMMPS calls this ``mvv2e``.
MVV2E = AMU_IN_KG * (1.0e-10 / 1.0e-12) ** 2 / EV_IN_JOULE  # ~1.0364e-4

#: Converts force/mass (eV/A per g/mol) to acceleration in A/ps^2.
FORCE_TO_ACCEL = 1.0 / MVV2E  # ~9648.5

#: Femtoseconds per picosecond.
FS_PER_PS = 1000.0

#: GPa expressed in eV/A^3 (for bulk-modulus input).
GPA_TO_EV_PER_A3 = 1.0e9 * 1.0e-30 / EV_IN_JOULE  # ~6.2415e-3


def kinetic_energy_to_temperature(ke_ev: float, n_dof: int) -> float:
    """Instantaneous temperature (K) from total kinetic energy (eV).

    Uses the equipartition theorem ``KE = n_dof * kB * T / 2``.
    """
    if n_dof <= 0:
        return 0.0
    return 2.0 * ke_ev / (n_dof * KB_EV)


def temperature_to_kinetic_energy(temp_k: float, n_dof: int) -> float:
    """Equipartition kinetic energy (eV) at temperature ``temp_k``."""
    return 0.5 * n_dof * KB_EV * temp_k


def thermal_velocity_scale(temp_k: float, mass_gmol: float) -> float:
    """Standard deviation (A/ps) of one velocity component at ``temp_k``.

    From ``m sigma^2 * MVV2E = kB T``.
    """
    if mass_gmol <= 0:
        raise ValueError(f"mass must be positive, got {mass_gmol}")
    return math.sqrt(KB_EV * temp_k / (mass_gmol * MVV2E))
