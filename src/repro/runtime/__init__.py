"""Unified engine runtime: one declarative way to run either engine.

The layers, bottom to top:

:mod:`repro.runtime.rng`
    Named deterministic RNG streams split from one run seed.
:mod:`repro.runtime.telemetry`
    The :class:`Telemetry` record both engines reduce their accounting
    to.
:mod:`repro.runtime.spec`
    :class:`RunSpec` — everything that determines a run, loadable from
    TOML/JSON, hashed for checkpoint compatibility.
:mod:`repro.runtime.engines`
    The :class:`Engine` protocol, the two adapters, and the
    :func:`build_engine` factory.
:mod:`repro.runtime.checkpoint`
    Full-precision ``.npz`` + JSON sidecar + extended-XYZ snapshots.
:mod:`repro.runtime.runner`
    The :class:`Runner` loop: observers, checkpoints, resume.

Typical use::

    from repro.runtime import RunSpec, Runner

    spec = RunSpec.from_file("run.toml")
    runner = Runner.from_spec(spec, checkpoint_prefix="out/run")
    telemetry = runner.run()
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    checkpoint_paths,
    read_checkpoint,
    sweep_orphan_tmp,
    write_checkpoint,
)
from repro.runtime.engines import (
    Engine,
    ReferenceEngine,
    WseEngine,
    build_engine,
    build_state,
)
from repro.runtime.rng import (
    STREAM_NAMES,
    get_rng_state,
    seed_streams,
    set_rng_state,
)
from repro.runtime.runner import RunEvent, Runner
from repro.runtime.spec import RunSpec, SpecError, ThermostatSpec
from repro.runtime.telemetry import Telemetry

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "Engine",
    "ReferenceEngine",
    "RunEvent",
    "RunSpec",
    "Runner",
    "STREAM_NAMES",
    "SpecError",
    "Telemetry",
    "ThermostatSpec",
    "WseEngine",
    "build_engine",
    "build_state",
    "checkpoint_paths",
    "get_rng_state",
    "read_checkpoint",
    "seed_streams",
    "set_rng_state",
    "sweep_orphan_tmp",
    "write_checkpoint",
]
