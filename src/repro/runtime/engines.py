"""The common ``Engine`` protocol and the spec-driven engine factory.

The paper's central claim — the same EAM physics on two very different
machines — is reflected here as one small surface both engines sit
behind:

* :meth:`Engine.step` advances timesteps,
* :attr:`Engine.state` is an id-ordered :class:`AtomsState` snapshot,
* :meth:`Engine.telemetry` reduces the engine's native accounting
  (wall-time phases or modeled cycles) to one :class:`Telemetry`.

:func:`build_engine` turns a :class:`RunSpec` into a running engine.
It owns all seeding: the spec's master seed is split into named streams
(:mod:`repro.runtime.rng`) and threaded explicitly through velocity
initialization, stochastic thermostats and the lockstep machine, so
identical specs give identical trajectories and a checkpoint can
capture every generator's state.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.constants import MVV2E, kinetic_energy_to_temperature
from repro.core.wse_md import WseMd
from repro.lattice.slab import make_slab
from repro.md.boundary import Box
from repro.md.langevin import LangevinThermostat
from repro.md.simulation import SimStats, Simulation
from repro.md.state import AtomsState
from repro.md.thermostat import (
    BerendsenThermostat,
    maxwell_boltzmann_velocities,
)
from repro.potentials.elements import ELEMENTS, make_element_potential
from repro.runtime.rng import get_rng_state, seed_streams, set_rng_state
from repro.runtime.spec import RunSpec, SpecError
from repro.runtime.telemetry import Telemetry
from repro.wse.trace import CycleTrace

if TYPE_CHECKING:
    from repro.runtime.checkpoint import Checkpoint

__all__ = [
    "Engine",
    "ReferenceEngine",
    "WseEngine",
    "build_state",
    "build_engine",
]


@runtime_checkable
class Engine(Protocol):
    """What the runner, CLI and bench harness require of an engine."""

    spec: RunSpec

    @property
    def name(self) -> str: ...

    @property
    def step_count(self) -> int: ...

    def step(self, n_steps: int = 1) -> None: ...

    @property
    def state(self) -> AtomsState: ...

    def telemetry(self) -> Telemetry: ...

    def close(self) -> None: ...


def build_state(
    spec: RunSpec,
    rng: np.random.Generator | None = None,
    *,
    workload_cache: dict | None = None,
) -> tuple[AtomsState, object]:
    """The spec's thin-slab workload: initial state and potential.

    ``rng`` is the velocity stream; when omitted it is derived from
    ``spec.seed`` exactly as :func:`build_engine` derives it, so a
    state built here matches the one a factory-built engine starts
    from.

    ``workload_cache`` amortizes lattice and potential construction
    across an ensemble: keyed by ``(element, reps)``, it stores the
    slab positions, box extent and potential so N replicas (different
    seeds / temperatures — the same geometry) build the lattice once.
    Each call still returns a *fresh* state (positions copied, box
    rebuilt), so replicas never alias mutable arrays.
    """
    el = ELEMENTS[spec.element]
    key = (spec.element, spec.reps)
    cached = workload_cache.get(key) if workload_cache is not None else None
    if cached is None:
        potential = make_element_potential(spec.element)
        slab = make_slab(el.cell, el.lattice_constant, spec.reps)
        extent = slab.box + 4.0 * el.cutoff
        if workload_cache is not None:
            workload_cache[key] = (slab.positions, extent, potential)
        positions = slab.positions
    else:
        positions, extent, potential = cached
    box = Box.open(extent)
    state = AtomsState.from_positions(
        np.array(positions, dtype=np.float64, copy=True), box, mass=el.mass
    )
    if spec.temperature > 0:
        if rng is None:
            rng = seed_streams(spec.seed)["velocities"]
        maxwell_boltzmann_velocities(state, spec.temperature, rng)
    return state, potential


def _build_reference_thermostat(spec: RunSpec, rng: np.random.Generator):
    """Thermostat object for the reference engine, or ``None``.

    Returns ``(thermostat, uses_rng)`` — the runner checkpoints the
    thermostat stream only when the thermostat actually draws from it.
    """
    ts = spec.thermostat
    if ts is None:
        return None, False
    if ts.kind == "berendsen":
        return BerendsenThermostat(ts.temperature, ts.tau_fs), False
    return (
        LangevinThermostat(ts.temperature, damping_fs=ts.tau_fs, rng=rng),
        True,
    )


class ReferenceEngine:
    """:class:`~repro.md.simulation.Simulation` behind the Engine protocol."""

    name = "reference"

    def __init__(
        self,
        spec: RunSpec,
        sim: Simulation,
        *,
        thermostat_rng: np.random.Generator | None = None,
    ) -> None:
        self.spec = spec
        self.sim = sim
        self._thermostat_rng = thermostat_rng
        self._wall_s = 0.0

    @property
    def step_count(self) -> int:
        return self.sim.step_count

    @property
    def tracer(self):
        """The simulation's phase tracer (the null tracer if untraced)."""
        return self.sim.tracer

    def step(self, n_steps: int = 1) -> None:
        t0 = time.perf_counter()
        self.sim.run(n_steps)
        self._wall_s += time.perf_counter() - t0

    @property
    def state(self) -> AtomsState:
        """The live simulation state (already in stable id order)."""
        return self.sim.state

    def potential_energy(self) -> float:
        return self.sim.potential_energy()

    def total_energy(self) -> float:
        return self.sim.potential_energy() + self.sim.state.kinetic_energy()

    def telemetry(self) -> Telemetry:
        st = self.sim.stats
        tr = self.sim.tracer
        counters = {
            "n_atoms": self.sim.state.n_atoms,
            "pairs_per_step": st.pairs_per_step,
            "neighbor_rebuilds": st.neighbor_rebuilds,
            "force_evaluations": st.force_evaluations,
        }
        pipeline = getattr(self.sim, "_pipeline", None)
        if pipeline is not None:
            counters["workers"] = pipeline.n_workers
            counters["topology"] = list(pipeline.topology)
            counters["transport"] = pipeline.transport_kind
            sent, recv = pipeline.halo_bytes
            counters["halo_bytes_sent"] = sent
            counters["halo_bytes_recv"] = recv
            counters["halo_bytes_ghost"] = pipeline.ghost_bytes
            counters["ghost_atoms"] = pipeline.ghost_atoms
            counters["halo_seconds"] = round(pipeline.halo_seconds, 6)
            counters["overlap_on"] = pipeline.overlap
            counters["overlap_seconds"] = round(pipeline.overlap_seconds, 6)
            counters["halo_wait_seconds"] = round(
                pipeline.halo_wait_seconds, 6
            )
            counters["overlap_efficiency"] = round(
                pipeline.overlap_efficiency, 4
            )
            counters["shard_seconds"] = {
                stage: [round(s, 4) for s in secs]
                for stage, secs in pipeline.shard_seconds.items()
            }
        return Telemetry(
            engine=self.name,
            steps=st.steps,
            wall_time_s=self._wall_s,
            phase_seconds={
                "neighbor": st.time_neighbor_s,
                "force": st.time_force_s,
                "integrate": st.time_integrate_s,
            },
            counters=counters,
            trace_phases=tr.phase_totals() if tr.enabled else None,
        )

    def reset_telemetry(self) -> None:
        """Zero the accounting (keep state); for steady-state timing."""
        self.sim.stats = SimStats()
        self._wall_s = 0.0
        self.sim.tracer.reset()
        pipeline = getattr(self.sim, "_pipeline", None)
        if pipeline is not None:
            pipeline.reset_shard_stats()

    def close(self) -> None:
        """Release engine resources (the parallel worker pool)."""
        self.sim.close()

    # -- checkpoint hooks --------------------------------------------------

    def rng_states(self) -> dict[str, dict]:
        if self._thermostat_rng is None:
            return {}
        return {"thermostat": get_rng_state(self._thermostat_rng)}

    def checkpoint_extra(self) -> dict:
        return {}

    def restore(self, checkpoint: "Checkpoint") -> None:
        """Continue from a checkpoint (state was passed at construction)."""
        self.sim.step_count = checkpoint.step_count
        thermo = checkpoint.rng_states.get("thermostat")
        if thermo is not None and self._thermostat_rng is not None:
            set_rng_state(self._thermostat_rng, thermo)


class WseEngine:
    """:class:`~repro.core.wse_md.WseMd` behind the Engine protocol."""

    name = "wse"

    def __init__(self, spec: RunSpec, sim: WseMd) -> None:
        self.spec = spec
        self.sim = sim
        self._wall_s = 0.0
        self._steps = 0
        ts = spec.thermostat
        self._berendsen = ts if ts is not None and ts.kind == "berendsen" else None

    @property
    def step_count(self) -> int:
        return self.sim.step_count

    @property
    def tracer(self):
        """The lockstep machine's phase tracer (null if untraced)."""
        return self.sim.tracer

    def step(self, n_steps: int = 1) -> None:
        t0 = time.perf_counter()
        if self._berendsen is None:
            self.sim.step(n_steps)
        else:
            # the lockstep loop has no thermostat hook; interleave the
            # (global, deterministic) Berendsen rescale per step.  The
            # rescale is part of the taxonomy's integrate phase.
            tr = self.sim.tracer
            for _ in range(n_steps):
                self.sim.step(1)
                with tr.phase("integrate"):
                    self._apply_berendsen()
        self._steps += n_steps
        self._wall_s += time.perf_counter() - t0

    def _apply_berendsen(self) -> None:
        """Berendsen velocity rescale on the occupied tiles.

        Same lambda as :class:`BerendsenThermostat` — the temperature is
        a global reduction, so the grid layout does not change it.
        """
        sim = self.sim
        occ = sim.occ
        v = sim.vel[occ]
        m = sim.masses[sim.typ[occ]]
        ke = float(0.5 * MVV2E * np.sum(m * np.einsum("ij,ij->i", v, v)))
        current = kinetic_energy_to_temperature(ke, 3 * len(v))
        if current <= 0:
            return
        ts = self._berendsen
        lam2 = 1.0 + (sim.dt_fs / ts.tau_fs) * (ts.temperature / current - 1.0)
        sim.vel[occ] = v * np.sqrt(max(lam2, 0.0))

    @property
    def state(self) -> AtomsState:
        """Id-ordered snapshot gathered from the tile grid (a copy)."""
        return self.sim.gather_state()

    def potential_energy(self) -> float:
        return self.sim.compute_energy()

    def total_energy(self) -> float:
        return self.sim.compute_energy() + self.state.kinetic_energy()

    def telemetry(self) -> Telemetry:
        sim = self.sim
        counters: dict[str, float] = {
            "n_atoms": sim.n_atoms,
            "grid_nx": sim.grid.nx,
            "grid_ny": sim.grid.ny,
            "b": sim.b,
            "swap_count": sim.swap_count,
            "offset_chunk": sim.effective_offset_chunk,
            "workers": sim.workers,
        }
        phase_seconds: dict[str, float] = {}
        if sim.trace.n_steps > 0:
            cand, inter = sim.mean_counts()
            counters["candidates_per_atom"] = cand
            counters["interactions_per_atom"] = inter
            counters["modeled_steps_per_s"] = sim.measured_rate()
            # modeled per-phase machine time over the recorded steps
            model = sim.cost_model
            n = sim.trace.n_steps
            to_s = model.machine.cycles_to_seconds
            pbc = sim.pbc_inplane
            phase_seconds = {
                "exchange": to_s(n * model.exchange_cycles(sim.b, pbc=pbc)),
                "candidate": to_s(n * model.candidate_cycles(pbc=pbc) * cand),
                "interaction": to_s(n * model.interaction_cycles() * inter),
                "fixed": to_s(n * model.fixed_cycles()),
            }
        tr = self.sim.tracer
        return Telemetry(
            engine=self.name,
            steps=self._steps,
            wall_time_s=self._wall_s,
            phase_seconds=phase_seconds,
            counters=counters,
            trace_phases=tr.phase_totals() if tr.enabled else None,
        )

    def reset_telemetry(self) -> None:
        """Zero the accounting (keep state); for steady-state timing."""
        self.sim.trace = CycleTrace(self.sim.grid.n_tiles)
        self._wall_s = 0.0
        self._steps = 0
        self.sim.tracer.reset()

    def close(self) -> None:
        """Release the machine's offset-dispatch pool (if spawned)."""
        self.sim.close()

    # -- checkpoint hooks --------------------------------------------------

    def rng_states(self) -> dict[str, dict]:
        return {"engine": get_rng_state(self.sim.rng)}

    def checkpoint_extra(self) -> dict:
        return {"swap_count": int(self.sim.swap_count)}

    def restore(self, checkpoint: "Checkpoint") -> None:
        """Continue from a checkpoint (state was passed at construction)."""
        self.sim.step_count = checkpoint.step_count
        self.sim.swap_count = int(checkpoint.extra.get("swap_count", 0))
        engine_rng = checkpoint.rng_states.get("engine")
        if engine_rng is not None:
            set_rng_state(self.sim.rng, engine_rng)


def build_engine(
    spec: RunSpec,
    *,
    state: AtomsState | None = None,
    potential=None,
    **engine_kwargs,
) -> ReferenceEngine | WseEngine:
    """Construct the spec's engine, fully seeded and ready to step.

    ``state``/``potential`` override the spec's thin-slab workload (for
    custom geometries and alloys — the state is used as passed, no
    velocity redraw).  Extra keyword arguments are forwarded verbatim
    to the underlying engine constructor and win over spec-derived
    values.
    """
    streams = seed_streams(spec.seed)
    if spec.backend is not None:
        from repro.kernels import set_backend

        set_backend(spec.backend)
    if state is None:
        state, default_potential = build_state(spec, streams["velocities"])
    else:
        default_potential = None
    if potential is None:
        if default_potential is None:
            default_potential = make_element_potential(spec.element)
        potential = default_potential

    if spec.engine == "reference":
        thermostat, uses_rng = _build_reference_thermostat(
            spec, streams["thermostat"]
        )
        kwargs = {
            "dt_fs": spec.dt_fs,
            "skin": spec.skin,
            "thermostat": thermostat,
            "workers": spec.workers or None,
            "topology": spec.topology,
            "transport": spec.transport,
            "fuse_integrate": spec.fuse_integrate,
        }
        kwargs.update(engine_kwargs)
        sim = Simulation(state, potential, **kwargs)
        return ReferenceEngine(
            spec,
            sim,
            thermostat_rng=streams["thermostat"] if uses_rng else None,
        )
    if spec.engine == "wse":
        kwargs = {
            "dt_fs": spec.dt_fs,
            "swap_interval": spec.swap_interval,
            "force_symmetry": spec.force_symmetry,
            "offset_chunk": spec.offset_chunk,
            "workers": spec.workers,
            "rng": streams["engine"],
        }
        kwargs.update(engine_kwargs)
        sim = WseMd(state, potential, **kwargs)
        return WseEngine(spec, sim)
    raise SpecError(f"unknown engine {spec.engine!r}")  # pragma: no cover
