"""The Runner: one orchestration loop for every engine.

The runner owns what used to be duplicated per command: the stepping
loop, an observer bus, and checkpointing.  It drives anything
satisfying the :class:`~repro.runtime.engines.Engine` protocol, so the
CLI, the bench harness and the validators all stop caring which
machine executes the physics.

Observers fire on absolute step numbers (every ``interval`` steps),
and the loop advances in chunks cut at the next observer or checkpoint
boundary — between boundaries the engine steps at full speed with no
per-step Python dispatch.

Checkpointing (:mod:`repro.runtime.checkpoint`) is enabled by giving a
prefix; ``spec.checkpoint_interval`` adds periodic snapshots and a
final one is always written.  :meth:`Runner.resume` rebuilds the
engine from the snapshot state, restores step count and every RNG
stream, and continues the interrupted trajectory.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.md.state import AtomsState
from repro.obs import NULL_TRACER
from repro.runtime.checkpoint import (
    read_checkpoint,
    sweep_orphan_tmp,
    write_checkpoint,
)
from repro.runtime.engines import build_engine
from repro.runtime.spec import RunSpec
from repro.runtime.telemetry import Telemetry

__all__ = ["RunEvent", "Runner"]


@dataclass(frozen=True)
class RunEvent:
    """What an observer sees: the step just completed and the engine."""

    step: int
    engine: object

    @property
    def state(self) -> AtomsState:
        """Current atom state (gathers from the grid on the WSE engine)."""
        return self.engine.state


class Runner:
    """Drive an engine through a run, with observers and checkpoints.

    Parameters
    ----------
    engine:
        Any :class:`~repro.runtime.engines.Engine`; usually built via
        :meth:`from_spec` or :meth:`resume`.
    checkpoint_prefix:
        Path prefix for checkpoint files; ``None`` disables
        checkpointing entirely.
    """

    def __init__(
        self,
        engine,
        *,
        checkpoint_prefix: str | Path | None = None,
    ) -> None:
        self.engine = engine
        self.spec: RunSpec = engine.spec
        self.checkpoint_prefix = (
            Path(checkpoint_prefix) if checkpoint_prefix is not None else None
        )
        self._observers: list[tuple[int, Callable[[RunEvent], None]]] = []
        self._stop = threading.Event()
        self._close_lock = threading.Lock()
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec: RunSpec,
        *,
        checkpoint_prefix: str | Path | None = None,
        **engine_kwargs,
    ) -> "Runner":
        """Fresh runner for a spec (engine built via the factory)."""
        engine = build_engine(spec, **engine_kwargs)
        return cls(engine, checkpoint_prefix=checkpoint_prefix)

    @classmethod
    def resume(
        cls,
        spec: RunSpec,
        prefix: str | Path,
        *,
        checkpoint_prefix: str | Path | None = None,
        **engine_kwargs,
    ) -> "Runner":
        """Continue an interrupted run from its checkpoint.

        The checkpoint's ``spec_hash`` must match ``spec`` (physics
        fields only — a longer ``steps`` or different ``backend`` is
        fine).  The engine is rebuilt around the snapshot state, then
        its step count and RNG streams are restored, so the continued
        trajectory matches the uninterrupted one to FP tolerance.

        New checkpoints go to ``checkpoint_prefix``, defaulting to the
        prefix being resumed from.
        """
        sweep_orphan_tmp(prefix)
        checkpoint = read_checkpoint(
            prefix, expected_spec_hash=spec.spec_hash()
        )
        engine = build_engine(spec, state=checkpoint.state, **engine_kwargs)
        engine.restore(checkpoint)
        if checkpoint_prefix is None:
            checkpoint_prefix = prefix
        return cls(engine, checkpoint_prefix=checkpoint_prefix)

    # -- observer bus ------------------------------------------------------

    def add_observer(
        self, interval: int, fn: Callable[[RunEvent], None]
    ) -> None:
        """Call ``fn(event)`` after every ``interval``-th absolute step."""
        if interval < 1:
            raise ValueError(f"observer interval must be >= 1, got {interval}")
        self._observers.append((int(interval), fn))

    # -- the loop ----------------------------------------------------------

    def run(self, n_steps: int | None = None) -> Telemetry:
        """Advance ``n_steps`` (default: the spec's remaining steps).

        Returns the engine's telemetry after the run.  A final
        checkpoint is written whenever a prefix is configured; periodic
        ones additionally every ``spec.checkpoint_interval`` steps.
        A :meth:`request_stop` from any thread makes the loop break at
        the next chunk boundary — the final checkpoint is still
        written, so a cancelled run stays resumable.
        """
        engine = self.engine
        if n_steps is None:
            n_steps = max(0, self.spec.steps - engine.step_count)
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        target = engine.step_count + n_steps
        ckpt_interval = (
            self.spec.checkpoint_interval if self.checkpoint_prefix else 0
        )
        tracer = getattr(engine, "tracer", NULL_TRACER)
        while engine.step_count < target and not self._stop.is_set():
            chunk = target - engine.step_count
            step = engine.step_count
            for interval, _ in self._observers:
                chunk = min(chunk, interval - step % interval)
            if ckpt_interval:
                chunk = min(chunk, ckpt_interval - step % ckpt_interval)
            engine.step(chunk)
            step = engine.step_count
            due = [fn for iv, fn in self._observers if step % iv == 0]
            if due:
                with tracer.phase("observer", step=step):
                    for fn in due:
                        fn(RunEvent(step=step, engine=engine))
            if ckpt_interval and step % ckpt_interval == 0 and step < target:
                self.write_checkpoint()
        if self.checkpoint_prefix is not None:
            self.write_checkpoint()
        return engine.telemetry()

    def request_stop(self) -> None:
        """Ask a :meth:`run` in progress to break at the next chunk.

        Safe from any thread — this is how the serve scheduler cancels
        a job whose loop runs in a worker thread.  The loop still
        writes its final checkpoint, so the partial trajectory remains
        resumable.
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        """Whether :meth:`request_stop` has been called."""
        return self._stop.is_set()

    def close(self) -> None:
        """Release engine resources (e.g. the parallel worker pool).

        Idempotent and thread-safe: the serve scheduler calls this both
        from its cancellation path and from the worker thread's cleanup,
        possibly concurrently.  Also stops any loop still running.
        """
        self._stop.set()
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.engine.close()

    # -- checkpointing -----------------------------------------------------

    def write_checkpoint(self, prefix: str | Path | None = None):
        """Snapshot the engine now (default prefix: the configured one)."""
        if prefix is None:
            prefix = self.checkpoint_prefix
        if prefix is None:
            raise ValueError("no checkpoint prefix configured")
        state = self.engine.state
        # spec element labels the xyz frame for the single-type workload;
        # custom multi-type states fall back to generic type symbols
        symbols = [self.spec.element] if len(state.masses) == 1 else None
        return write_checkpoint(
            prefix,
            state,
            step_count=self.engine.step_count,
            spec_hash=self.spec.spec_hash(),
            engine=self.engine.name,
            rng_states=self.engine.rng_states(),
            extra=self.engine.checkpoint_extra(),
            symbols=symbols,
        )
